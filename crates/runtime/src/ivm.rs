//! Incremental view maintenance — the "Notifications" runtime service
//! (§5): "it may be valuable for certain actions on data in S to produce
//! notifications of corresponding actions to data in T. For update
//! actions, this is the problem of maintaining materialized views."
//!
//! Insert-only deltas are propagated with the classical algebraic delta
//! rules (Δ(A ⋈ B) = ΔA ⋈ Bⁿᵉʷ ∪ Aᵒˡᵈ ⋈ ΔB and friends); operators that
//! are not insert-monotone (difference, outer join) force a recompute,
//! which the maintainer reports via [`MaintenanceStrategy`]. EQ5
//! benchmarks incremental maintenance against recompute to find the
//! crossover.

use mm_eval::{eval_governed, EvalError};
use mm_expr::{Expr, ViewSet};
use mm_guard::{Degradation, DegradationKind, ExecBudget, ExecError, Governor};
use mm_instance::{Database, Relation, Tuple};
use mm_metamodel::Schema;
use std::collections::BTreeMap;

fn malformed_col(col: &str, context: &str) -> EvalError {
    EvalError::Exec(ExecError::malformed(format!("column '{col}' missing in {context}")))
}

/// A set-semantics delta: tuples inserted per relation. (Deletions force
/// recompute in this engine; see module docs.)
#[derive(Debug, Clone, Default)]
pub struct Delta {
    pub inserts: BTreeMap<String, Vec<Tuple>>,
}

impl Delta {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, relation: impl Into<String>, tuple: Tuple) {
        self.inserts.entry(relation.into()).or_default().push(tuple);
    }

    pub fn is_empty(&self) -> bool {
        self.inserts.values().all(Vec::is_empty)
    }

    pub fn len(&self) -> usize {
        self.inserts.values().map(Vec::len).sum()
    }

    /// Apply the delta to a database (inserting into existing relations).
    pub fn apply_to(&self, db: &mut Database) {
        for (rel, tuples) in &self.inserts {
            for t in tuples {
                db.insert(rel, t.clone());
            }
        }
    }

    /// A database holding only the delta tuples, with the schema's
    /// layouts (relations absent from the delta are empty).
    pub fn as_database(&self, schema: &Schema) -> Database {
        let mut db = Database::empty_of(schema);
        for (rel, tuples) in &self.inserts {
            if db.relation(rel).is_some() {
                for t in tuples {
                    db.insert(rel, t.clone());
                }
            }
        }
        db
    }
}

/// How a view was (or must be) maintained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceStrategy {
    /// Delta rules applied; cost proportional to the delta.
    Incremental,
    /// The view contains a non-monotone operator; full recompute.
    Recompute,
}

/// Whether an expression is insert-monotone (delta rules apply).
fn monotone(expr: &Expr) -> bool {
    match expr {
        Expr::Base(_) | Expr::Literal { .. } => true,
        Expr::Project { input, .. }
        | Expr::Select { input, .. }
        | Expr::Rename { input, .. }
        | Expr::Extend { input, .. }
        | Expr::Distinct { input } => monotone(input),
        Expr::Join { left, right, .. } | Expr::Product { left, right } => {
            monotone(left) && monotone(right)
        }
        Expr::Union { left, right, .. } => monotone(left) && monotone(right),
        Expr::Diff { .. } | Expr::LeftJoin { .. } | Expr::Aggregate { .. } => false,
    }
}

/// Compute the inserted tuples of `expr` under an insert-only base delta:
/// `old_db` is the pre-update database, `new_db` the post-update one,
/// `delta_db` holds only the inserted tuples.
fn delta_eval(
    expr: &Expr,
    schema: &Schema,
    old_db: &Database,
    new_db: &Database,
    delta_db: &Database,
    gov: &mut Governor,
) -> Result<Relation, EvalError> {
    match expr {
        Expr::Base(_) | Expr::Literal { .. } => {
            // Δ(R) = delta tuples of R; literals never change
            match expr {
                Expr::Base(_) => eval_governed(expr, schema, delta_db, gov),
                _ => {
                    let r = eval_governed(expr, schema, new_db, gov)?;
                    Ok(Relation::new(r.schema))
                }
            }
        }
        Expr::Select { .. }
        | Expr::Project { .. }
        | Expr::Rename { .. }
        | Expr::Extend { .. }
        | Expr::Distinct { .. }
        | Expr::Union { .. }
        | Expr::Join { .. }
        | Expr::Product { .. } => delta_structural(expr, schema, old_db, new_db, delta_db, gov),
        Expr::Diff { .. } | Expr::LeftJoin { .. } | Expr::Aggregate { .. } => {
            Err(EvalError::Exec(ExecError::internal(
                "non-monotone operator reached the delta rules; recompute routing failed",
            )))
        }
    }
}

/// Structural delta rules, implemented by re-evaluating the operator over
/// materialized child deltas.
fn delta_structural(
    expr: &Expr,
    schema: &Schema,
    old_db: &Database,
    new_db: &Database,
    delta_db: &Database,
    gov: &mut Governor,
) -> Result<Relation, EvalError> {
    match expr {
        Expr::Project { input, columns } => {
            let d = delta_eval(input, schema, old_db, new_db, delta_db, gov)?;
            let positions: Vec<usize> = columns
                .iter()
                .map(|c| {
                    d.schema.position(c).ok_or_else(|| malformed_col(c, "projection delta"))
                })
                .collect::<Result<_, _>>()?;
            let out_attrs: Vec<_> =
                positions.iter().map(|&i| d.schema.attributes[i].clone()).collect();
            let mut out = Relation::new(mm_instance::RelSchema::new(out_attrs));
            for t in d.iter() {
                gov.row()?;
                out.insert(t.project(&positions));
            }
            Ok(out)
        }
        Expr::Rename { input, renames } => {
            let d = delta_eval(input, schema, old_db, new_db, delta_db, gov)?;
            let mut attrs = d.schema.attributes.clone();
            for (old, new) in renames {
                if let Some(a) = attrs.iter_mut().find(|a| &a.name == old) {
                    a.name = new.clone();
                }
            }
            let mut out = Relation::new(mm_instance::RelSchema::new(attrs));
            for t in d.iter() {
                gov.row()?;
                out.insert(t.clone());
            }
            Ok(out)
        }
        Expr::Distinct { input } => delta_eval(input, schema, old_db, new_db, delta_db, gov),
        Expr::Union { left, right, .. } => {
            let mut l = delta_eval(left, schema, old_db, new_db, delta_db, gov)?;
            let r = delta_eval(right, schema, old_db, new_db, delta_db, gov)?;
            for t in r.iter() {
                gov.row()?;
                l.insert(t.clone());
            }
            Ok(l)
        }
        Expr::Select { .. } | Expr::Extend { .. } => {
            // re-express: materialize child delta into a scratch relation
            // and run the unary operator over it via the main evaluator
            let (input, rebuild): (&Expr, Box<dyn Fn(Expr) -> Expr>) = match expr {
                Expr::Select { input, predicate } => {
                    let p = predicate.clone();
                    (input, Box::new(move |e| e.select(p.clone())))
                }
                Expr::Extend { input, column, scalar } => {
                    let c = column.clone();
                    let s = scalar.clone();
                    (input, Box::new(move |e| e.extend(&c, s.clone())))
                }
                _ => unreachable!(),
            };
            let d = delta_eval(input, schema, old_db, new_db, delta_db, gov)?;
            run_over_scratch(schema, d, rebuild, gov)
        }
        Expr::Join { left, right, on } => {
            // Δ(A ⋈ B) = ΔA ⋈ Bⁿᵉʷ  ∪  Aᵒˡᵈ ⋈ ΔB
            let da = delta_eval(left, schema, old_db, new_db, delta_db, gov)?;
            let db_ = delta_eval(right, schema, old_db, new_db, delta_db, gov)?;
            let b_new = eval_governed(right, schema, new_db, gov)?;
            let a_old = eval_governed(left, schema, old_db, gov)?;
            let part1 = join_materialized(&da, &b_new, on, gov)?;
            let part2 = join_materialized(&a_old, &db_, on, gov)?;
            let mut out = part1;
            for t in part2.iter() {
                gov.row()?;
                out.insert(t.clone());
            }
            Ok(out)
        }
        Expr::Product { left, right } => {
            let da = delta_eval(left, schema, old_db, new_db, delta_db, gov)?;
            let db_ = delta_eval(right, schema, old_db, new_db, delta_db, gov)?;
            let b_new = eval_governed(right, schema, new_db, gov)?;
            let a_old = eval_governed(left, schema, old_db, gov)?;
            let mut out = product_materialized(&da, &b_new, gov)?;
            for t in product_materialized(&a_old, &db_, gov)?.iter() {
                gov.row()?;
                out.insert(t.clone());
            }
            Ok(out)
        }
        _ => unreachable!("handled elsewhere"),
    }
}

/// Run a unary operator over a materialized relation by staging it as a
/// scratch base relation.
fn run_over_scratch(
    schema: &Schema,
    input: Relation,
    rebuild: Box<dyn Fn(Expr) -> Expr>,
    gov: &mut Governor,
) -> Result<Relation, EvalError> {
    use mm_metamodel::{Element, ElementKind};
    let mut scratch_schema = schema.clone();
    let _ = scratch_schema.add_element(Element {
        name: "$scratch".into(),
        kind: ElementKind::Relation,
        attributes: input.schema.attributes.clone(),
    });
    let mut scratch_db = Database::new("$scratch");
    scratch_db.insert_relation("$scratch", input);
    let e = rebuild(Expr::base("$scratch"));
    eval_governed(&e, &scratch_schema, &scratch_db, gov)
}

fn join_materialized(
    left: &Relation,
    right: &Relation,
    on: &[(String, String)],
    gov: &mut Governor,
) -> Result<Relation, EvalError> {
    use std::collections::HashMap;
    let l_keys: Vec<usize> = on
        .iter()
        .map(|(a, _)| left.schema.position(a).ok_or_else(|| malformed_col(a, "join delta (left)")))
        .collect::<Result<_, _>>()?;
    let r_keys: Vec<usize> = on
        .iter()
        .map(|(_, b)| {
            right.schema.position(b).ok_or_else(|| malformed_col(b, "join delta (right)"))
        })
        .collect::<Result<_, _>>()?;
    let keep_right: Vec<usize> =
        (0..right.schema.arity()).filter(|i| !r_keys.contains(i)).collect();
    let mut out_attrs = left.schema.attributes.clone();
    for &i in &keep_right {
        out_attrs.push(right.schema.attributes[i].clone());
    }
    let mut table: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
    for t in right.iter() {
        gov.step()?;
        let key = t.project(&r_keys);
        if key.values().iter().any(mm_instance::Value::is_null) {
            continue;
        }
        table.entry(key).or_default().push(t);
    }
    let mut out = Relation::new(mm_instance::RelSchema::new(out_attrs));
    for lt in left.iter() {
        gov.step()?;
        let key = lt.project(&l_keys);
        if key.values().iter().any(mm_instance::Value::is_null) {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for rt in matches {
                gov.row()?;
                let mut vals = lt.values().to_vec();
                for &i in &keep_right {
                    vals.push(rt.values()[i].clone());
                }
                out.insert(Tuple::new(vals));
            }
        }
    }
    Ok(out)
}

fn product_materialized(
    left: &Relation,
    right: &Relation,
    gov: &mut Governor,
) -> Result<Relation, EvalError> {
    let mut out_attrs = left.schema.attributes.clone();
    out_attrs.extend(right.schema.attributes.iter().cloned());
    let mut out = Relation::new(mm_instance::RelSchema::new(out_attrs));
    for lt in left.iter() {
        for rt in right.iter() {
            gov.row()?;
            out.insert(lt.concat(rt));
        }
    }
    Ok(out)
}

/// The inserted rows of `expr` under an insert-only base `delta`
/// (pre-update database `old_db`). Monotone expressions use the delta
/// rules; non-monotone ones fall back to evaluating before/after and
/// diffing. Rows already derivable before the delta are excluded.
pub fn view_insert_delta(
    expr: &Expr,
    schema: &Schema,
    old_db: &Database,
    delta: &Delta,
) -> Result<Relation, EvalError> {
    let mut gov = Governor::new(&ExecBudget::unbounded());
    view_insert_delta_governed(expr, schema, old_db, delta, &mut gov)
}

/// Budgeted variant of [`view_insert_delta`]: both the delta rules and
/// the before-image check accrue against `gov`.
pub fn view_insert_delta_governed(
    expr: &Expr,
    schema: &Schema,
    old_db: &Database,
    delta: &Delta,
    gov: &mut Governor,
) -> Result<Relation, EvalError> {
    let mut new_db = old_db.clone();
    delta.apply_to(&mut new_db);
    if monotone(expr) {
        let delta_db = delta.as_database(schema);
        let raw = delta_eval(expr, schema, old_db, &new_db, &delta_db, gov)?;
        // delta rules may re-derive tuples that already existed
        let before = eval_governed(expr, schema, old_db, gov)?;
        let mut out = Relation::new(raw.schema.clone());
        for t in raw.iter() {
            gov.step()?;
            if !before.contains(t) {
                out.insert(t.clone());
            }
        }
        Ok(out)
    } else {
        let before = eval_governed(expr, schema, old_db, gov)?;
        let after = eval_governed(expr, schema, &new_db, gov)?;
        let mut out = Relation::new(after.schema.clone());
        for t in after.iter() {
            gov.step()?;
            if !before.contains(t) {
                out.insert(t.clone());
            }
        }
        Ok(out)
    }
}

/// A compiled maintenance plan: the delta-independent analysis of a view
/// set — which views are insert-monotone (delta rules apply) and which
/// must recompute — done once and reused across deltas, like the chase's
/// compiled [`mm_chase::ChaseProgram`]s.
#[derive(Debug, Clone)]
pub struct MaintenancePlan {
    views: ViewSet,
    monotone: Vec<bool>,
}

impl MaintenancePlan {
    /// Analyze every view once.
    pub fn compile(views: &ViewSet) -> MaintenancePlan {
        let monotone = views.views.iter().map(|v| monotone(&v.expr)).collect();
        MaintenancePlan { views: views.clone(), monotone }
    }

    /// The strategy this plan will attempt for `view` (the incremental
    /// attempt can still degrade to a recompute at run time if the delta
    /// rules trip the budget).
    pub fn planned_strategy(&self, view: &str) -> Option<MaintenanceStrategy> {
        self.views.views.iter().position(|v| v.name == view).map(|i| {
            if self.monotone[i] {
                MaintenanceStrategy::Incremental
            } else {
                MaintenanceStrategy::Recompute
            }
        })
    }

    /// The views this plan maintains.
    pub fn views(&self) -> &ViewSet {
        &self.views
    }
}

/// Maintain materialized `views` (stored in `materialized`) under an
/// insert-only base `delta`. `base_db` must be the *pre-update* database;
/// the function applies the delta to a copy internally. Returns the
/// strategy used per view.
pub fn maintain_insertions(
    views: &ViewSet,
    base_schema: &Schema,
    base_db: &Database,
    delta: &Delta,
    materialized: &mut Database,
) -> Result<Vec<(String, MaintenanceStrategy)>, EvalError> {
    let reports = maintain_insertions_governed(
        views,
        base_schema,
        base_db,
        delta,
        materialized,
        &ExecBudget::unbounded(),
    )?;
    Ok(reports.into_iter().map(|r| (r.view, r.strategy)).collect())
}

/// How one view fared under [`maintain_insertions_governed`].
#[derive(Debug)]
pub struct MaintenanceReport {
    pub view: String,
    pub strategy: MaintenanceStrategy,
    /// `Some` when the delta rules tripped the budget and the maintainer
    /// fell back to a full recompute for this view.
    pub degradation: Option<Degradation>,
}

/// Budgeted variant of [`maintain_insertions`]. The step/row budget
/// governs the incremental pass as a whole; when the delta rules for a
/// view exhaust it, the maintainer degrades to a full recompute of that
/// view under a fresh step meter (the wall-clock deadline and the
/// cancellation token carry over, so the call stays bounded end to end)
/// and records the [`Degradation`]. Cancellation and non-resource errors
/// propagate — only `BudgetExhausted` triggers the fallback.
pub fn maintain_insertions_governed(
    views: &ViewSet,
    base_schema: &Schema,
    base_db: &Database,
    delta: &Delta,
    materialized: &mut Database,
    budget: &ExecBudget,
) -> Result<Vec<MaintenanceReport>, EvalError> {
    let plan = MaintenancePlan::compile(views);
    maintain_insertions_with_plan(&plan, base_schema, base_db, delta, materialized, budget)
}

/// [`maintain_insertions_governed`] over a pre-compiled plan: the
/// monotonicity analysis was paid once at [`MaintenancePlan::compile`];
/// each call only runs the delta rules (or planned recomputes) for one
/// delta. Use this when the same view set absorbs a stream of deltas.
pub fn maintain_insertions_with_plan(
    plan: &MaintenancePlan,
    base_schema: &Schema,
    base_db: &Database,
    delta: &Delta,
    materialized: &mut Database,
    budget: &ExecBudget,
) -> Result<Vec<MaintenanceReport>, EvalError> {
    let mut new_db = base_db.clone();
    delta.apply_to(&mut new_db);
    let delta_db = delta.as_database(base_schema);
    let mut gov = Governor::new(budget);
    let mut reports = Vec::with_capacity(plan.views.views.len());
    for (v, &is_monotone) in plan.views.views.iter().zip(&plan.monotone) {
        if is_monotone {
            match delta_eval(&v.expr, base_schema, base_db, &new_db, &delta_db, &mut gov) {
                Ok(d) => {
                    if let Some(rel) = materialized.relation_mut(&v.name) {
                        for t in d.iter() {
                            rel.insert(t.clone());
                        }
                    } else {
                        materialized.insert_relation(v.name.clone(), d);
                    }
                    reports.push(MaintenanceReport {
                        view: v.name.clone(),
                        strategy: MaintenanceStrategy::Incremental,
                        degradation: None,
                    });
                }
                Err(EvalError::Exec(cause @ ExecError::BudgetExhausted { .. })) => {
                    let mut recompute_gov = Governor::new(budget);
                    let r = eval_governed(&v.expr, base_schema, &new_db, &mut recompute_gov)?;
                    materialized.insert_relation(v.name.clone(), r);
                    reports.push(MaintenanceReport {
                        view: v.name.clone(),
                        strategy: MaintenanceStrategy::Recompute,
                        degradation: Some(Degradation {
                            kind: DegradationKind::IncrementalToRecompute,
                            cause,
                        }),
                    });
                }
                Err(e) => return Err(e),
            }
        } else {
            // Planned recompute (non-monotone view): runs under its own
            // step meter, like the degraded path, so one expensive
            // recompute does not starve the incremental views.
            let mut recompute_gov = Governor::new(budget);
            let r = eval_governed(&v.expr, base_schema, &new_db, &mut recompute_gov)?;
            materialized.insert_relation(v.name.clone(), r);
            reports.push(MaintenanceReport {
                view: v.name.clone(),
                strategy: MaintenanceStrategy::Recompute,
                degradation: None,
            });
        }
    }
    Ok(reports)
}

/// [`maintain_insertions_with_plan`] with telemetry: the pass runs under
/// an `ivm.maintain` span, and every [`MaintenanceReport`] that carries a
/// [`Degradation`] is mirrored as exactly one `ivm.degraded` event (and
/// counted by cause at the IVM site). With disabled telemetry this is
/// the plain planned call.
pub fn maintain_insertions_traced(
    plan: &MaintenancePlan,
    base_schema: &Schema,
    base_db: &Database,
    delta: &Delta,
    materialized: &mut Database,
    budget: &ExecBudget,
    tel: &mm_telemetry::Telemetry,
) -> Result<Vec<MaintenanceReport>, EvalError> {
    if !tel.is_enabled() {
        return maintain_insertions_with_plan(
            plan,
            base_schema,
            base_db,
            delta,
            materialized,
            budget,
        );
    }
    let mut span = mm_telemetry::Span::enter(tel, "ivm.maintain", base_db.name.as_str());
    let result =
        maintain_insertions_with_plan(plan, base_schema, base_db, delta, materialized, budget);
    match &result {
        Ok(reports) => {
            let mut incremental = 0u64;
            let mut recomputed = 0u64;
            for r in reports {
                match r.strategy {
                    MaintenanceStrategy::Incremental => incremental += 1,
                    MaintenanceStrategy::Recompute => recomputed += 1,
                }
                let Some(d) = &r.degradation else { continue };
                if let Some(m) = tel.metrics() {
                    m.degradation(
                        mm_telemetry::DegradationSite::Ivm,
                        d.cause.telemetry_cause(),
                    );
                }
                tel.event(
                    "ivm.degraded",
                    r.view.as_str(),
                    vec![
                        mm_telemetry::Field { key: "kind", value: d.kind.to_string().into() },
                        mm_telemetry::Field { key: "cause", value: d.cause.to_string().into() },
                    ],
                );
            }
            span.field("views", reports.len());
            span.field("incremental", incremental);
            span.field("recomputed", recomputed);
            span.field("delta_tuples", delta.len());
        }
        Err(e) => span.field("error", e.to_string()),
    }
    span.finish();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_eval::materialize_views;
    use mm_expr::{Predicate, ViewDef};
    use mm_instance::Value;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn setup() -> (Schema, Database, ViewSet) {
        let s = SchemaBuilder::new("S")
            .relation("Orders", &[("oid", DataType::Int), ("cust", DataType::Int), ("total", DataType::Int)])
            .relation("Customers", &[("cid", DataType::Int), ("name", DataType::Text)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("Customers", Tuple::from([Value::Int(1), Value::text("ann")]));
        db.insert("Customers", Tuple::from([Value::Int(2), Value::text("bob")]));
        db.insert("Orders", Tuple::from([Value::Int(10), Value::Int(1), Value::Int(99)]));
        let mut vs = ViewSet::new("S", "V");
        vs.push(ViewDef::new(
            "BigOrders",
            Expr::base("Orders")
                .select(Predicate::Cmp {
                    op: mm_expr::CmpOp::Gt,
                    left: mm_expr::Scalar::col("total"),
                    right: mm_expr::Scalar::lit(50i64),
                })
                .join(Expr::base("Customers"), &[("cust", "cid")])
                .project(&["oid", "name"]),
        ));
        vs
            .push(ViewDef::new("AllCustomers", Expr::base("Customers")));
        (s, db, vs)
    }

    #[test]
    fn incremental_insert_matches_recompute() {
        let (s, db, vs) = setup();
        let mut mat = materialize_views(&vs, &s, &db).unwrap();

        let mut delta = Delta::new();
        delta.insert("Orders", Tuple::from([Value::Int(11), Value::Int(2), Value::Int(80)]));
        delta.insert("Orders", Tuple::from([Value::Int(12), Value::Int(2), Value::Int(10)])); // filtered
        delta.insert("Customers", Tuple::from([Value::Int(3), Value::text("cyd")]));

        let strategies = maintain_insertions(&vs, &s, &db, &delta, &mut mat).unwrap();
        assert!(strategies
            .iter()
            .all(|(_, st)| *st == MaintenanceStrategy::Incremental));

        // oracle: full recompute on the updated base
        let mut new_db = db.clone();
        delta.apply_to(&mut new_db);
        let oracle = materialize_views(&vs, &s, &new_db).unwrap();
        for (name, rel) in oracle.relations() {
            assert!(
                rel.set_eq(mat.relation(name).unwrap()),
                "view {name} diverged\noracle:\n{rel}\nmaintained:\n{}",
                mat.relation(name).unwrap()
            );
        }
        assert_eq!(mat.relation("BigOrders").unwrap().len(), 2);
    }

    #[test]
    fn join_delta_covers_both_sides() {
        let (s, db, vs) = setup();
        let mut mat = materialize_views(&vs, &s, &db).unwrap();
        // insert a customer that matches an existing big order? no — the
        // existing order already matched. Insert a new order for an
        // existing customer AND a new customer with a new order that both
        // arrive in the same delta (ΔA ⋈ ΔB must not be double counted)
        let mut delta = Delta::new();
        delta.insert("Orders", Tuple::from([Value::Int(13), Value::Int(3), Value::Int(70)]));
        delta.insert("Customers", Tuple::from([Value::Int(3), Value::text("cyd")]));
        maintain_insertions(&vs, &s, &db, &delta, &mut mat).unwrap();
        let mut new_db = db.clone();
        delta.apply_to(&mut new_db);
        let oracle = materialize_views(&vs, &s, &new_db).unwrap();
        assert!(oracle
            .relation("BigOrders")
            .unwrap()
            .set_eq(mat.relation("BigOrders").unwrap()));
    }

    #[test]
    fn non_monotone_views_recompute() {
        let (s, db, _) = setup();
        let mut vs = ViewSet::new("S", "V");
        vs.push(ViewDef::new(
            "CustomersWithoutOrders",
            Expr::base("Customers")
                .project(&["cid"])
                .diff(Expr::base("Orders").project(&["cust"]).rename(&[("cust", "cid")])),
        ));
        let mut mat = materialize_views(&vs, &s, &db).unwrap();
        assert_eq!(mat.relation("CustomersWithoutOrders").unwrap().len(), 1); // bob
        let mut delta = Delta::new();
        delta.insert("Orders", Tuple::from([Value::Int(14), Value::Int(2), Value::Int(5)]));
        let st = maintain_insertions(&vs, &s, &db, &delta, &mut mat).unwrap();
        assert_eq!(st[0].1, MaintenanceStrategy::Recompute);
        // bob now has an order; the anti-join shrinks (only recompute can
        // express this under insert-only deltas)
        assert_eq!(mat.relation("CustomersWithoutOrders").unwrap().len(), 0);
    }

    #[test]
    fn aggregate_views_recompute() {
        use mm_expr::AggSpec;
        let (s, db, _) = setup();
        let mut vs = ViewSet::new("S", "V");
        vs.push(ViewDef::new(
            "OrdersPerCustomer",
            Expr::base("Orders").aggregate(&["cust"], vec![AggSpec::count("n")]),
        ));
        let mut mat = materialize_views(&vs, &s, &db).unwrap();
        let mut delta = Delta::new();
        delta.insert("Orders", Tuple::from([Value::Int(20), Value::Int(1), Value::Int(5)]));
        let st = maintain_insertions(&vs, &s, &db, &delta, &mut mat).unwrap();
        assert_eq!(st[0].1, MaintenanceStrategy::Recompute);
        // customer 1 now has two orders: the existing group row CHANGED —
        // only recompute can express that under insert-only deltas
        let rel = mat.relation("OrdersPerCustomer").unwrap();
        let row = rel.iter().find(|t| t.values()[0] == Value::Int(1)).unwrap();
        assert_eq!(row.values()[1], Value::Int(2));
    }

    #[test]
    fn governed_maintenance_degrades_to_recompute_on_tight_budget() {
        let (s, db, vs) = setup();
        let mut mat = materialize_views(&vs, &s, &db).unwrap();
        let mut delta = Delta::new();
        delta.insert("Orders", Tuple::from([Value::Int(11), Value::Int(2), Value::Int(80)]));
        delta.insert("Customers", Tuple::from([Value::Int(3), Value::text("cyd")]));
        // Probe the two strategies' costs: the delta rules for the join
        // view touch its before/after images, so the incremental pass
        // costs strictly more than any single recompute. A budget between
        // the two trips the delta rules but lets the fallback finish.
        let mut new_db = db.clone();
        delta.apply_to(&mut new_db);
        let delta_db = delta.as_database(&s);
        let mut inc_gov = Governor::new(&ExecBudget::unbounded());
        for v in vs.views.iter().filter(|v| monotone(&v.expr)) {
            delta_eval(&v.expr, &s, &db, &new_db, &delta_db, &mut inc_gov).unwrap();
        }
        let inc_cost = inc_gov.steps_consumed();
        let mut rec_max = 0;
        for v in &vs.views {
            let mut g = Governor::new(&ExecBudget::unbounded());
            mm_eval::eval_governed(&v.expr, &s, &new_db, &mut g).unwrap();
            rec_max = rec_max.max(g.steps_consumed());
        }
        assert!(rec_max < inc_cost, "probe: recompute {rec_max} vs incremental {inc_cost}");
        let budget = ExecBudget::unbounded().with_steps((rec_max + inc_cost) / 2);
        let reports =
            maintain_insertions_governed(&vs, &s, &db, &delta, &mut mat, &budget).unwrap();
        let degraded: Vec<_> = reports.iter().filter(|r| r.degradation.is_some()).collect();
        assert!(!degraded.is_empty(), "expected at least one view to degrade: {reports:?}");
        for r in &degraded {
            assert_eq!(r.strategy, MaintenanceStrategy::Recompute);
            let d = r.degradation.as_ref().unwrap();
            assert_eq!(d.kind, mm_guard::DegradationKind::IncrementalToRecompute);
            assert!(matches!(d.cause, mm_guard::ExecError::BudgetExhausted { .. }));
        }
        // degraded maintenance must still produce the correct views
        let mut new_db = db.clone();
        delta.apply_to(&mut new_db);
        let oracle = materialize_views(&vs, &s, &new_db).unwrap();
        for (name, rel) in oracle.relations() {
            assert!(rel.set_eq(mat.relation(name).unwrap()), "view {name} diverged");
        }
    }

    #[test]
    fn governed_maintenance_unbounded_matches_ungoverned() {
        let (s, db, vs) = setup();
        let mut mat = materialize_views(&vs, &s, &db).unwrap();
        let mut delta = Delta::new();
        delta.insert("Orders", Tuple::from([Value::Int(11), Value::Int(2), Value::Int(80)]));
        let reports = maintain_insertions_governed(
            &vs,
            &s,
            &db,
            &delta,
            &mut mat,
            &ExecBudget::unbounded(),
        )
        .unwrap();
        assert!(reports.iter().all(|r| r.degradation.is_none()));
        assert!(reports
            .iter()
            .all(|r| r.strategy == MaintenanceStrategy::Incremental));
    }

    #[test]
    fn compiled_plan_absorbs_a_stream_of_deltas() {
        let (s, db, vs) = setup();
        let plan = MaintenancePlan::compile(&vs);
        assert_eq!(
            plan.planned_strategy("BigOrders"),
            Some(MaintenanceStrategy::Incremental)
        );
        assert_eq!(
            plan.planned_strategy("AllCustomers"),
            Some(MaintenanceStrategy::Incremental)
        );
        assert_eq!(plan.planned_strategy("NoSuchView"), None);

        let mut mat = materialize_views(&vs, &s, &db).unwrap();
        let mut base = db.clone();
        for (oid, cust, total) in [(21, 1, 70), (22, 2, 90), (23, 1, 5)] {
            let mut delta = Delta::new();
            delta.insert(
                "Orders",
                Tuple::from([Value::Int(oid), Value::Int(cust), Value::Int(total)]),
            );
            let reports = maintain_insertions_with_plan(
                &plan,
                &s,
                &base,
                &delta,
                &mut mat,
                &ExecBudget::unbounded(),
            )
            .unwrap();
            assert!(reports.iter().all(|r| r.strategy == MaintenanceStrategy::Incremental));
            delta.apply_to(&mut base);
        }
        let oracle = materialize_views(&vs, &s, &base).unwrap();
        for (name, rel) in oracle.relations() {
            assert!(rel.set_eq(mat.relation(name).unwrap()), "view {name} diverged");
        }
    }

    #[test]
    fn empty_delta_changes_nothing() {
        let (s, db, vs) = setup();
        let mut mat = materialize_views(&vs, &s, &db).unwrap();
        let before: Vec<usize> = mat.relations().map(|(_, r)| r.len()).collect();
        maintain_insertions(&vs, &s, &db, &Delta::new(), &mut mat).unwrap();
        let after: Vec<usize> = mat.relations().map(|(_, r)| r.len()).collect();
        assert_eq!(before, after);
    }
}
