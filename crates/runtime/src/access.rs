//! Access control over mapped schemas (§5, "Access control"):
//! "Access control constraints on the target might be enforced by a
//! combination of constraints enforced on the server and those enforced
//! by the client runtime. This may affect the constraint preprocessing
//! required by the design tools to distribute the access control work
//! between the two layers."
//!
//! The policy language is deliberately view-shaped: per target relation,
//! a set of visible columns and an optional row predicate. The compiler
//! folds the policy *into* the view definitions (design time), so the
//! runtime needs no per-row checks — and the same policy can be checked
//! against a query statically (client side) to fail fast before any data
//! moves.

use mm_expr::{Expr, Predicate, ViewDef, ViewSet};
use std::collections::BTreeMap;
use std::fmt;

/// Per-relation access rule.
#[derive(Debug, Clone)]
pub struct AccessRule {
    /// Columns the subject may see; empty = all columns.
    pub visible_columns: Vec<String>,
    /// Row-level restriction, over the relation's columns.
    pub row_filter: Option<Predicate>,
}

impl AccessRule {
    pub fn columns(cols: &[&str]) -> Self {
        AccessRule {
            visible_columns: cols.iter().map(|c| (*c).into()).collect(),
            row_filter: None,
        }
    }

    pub fn rows(filter: Predicate) -> Self {
        AccessRule { visible_columns: Vec::new(), row_filter: Some(filter) }
    }

    pub fn with_rows(mut self, filter: Predicate) -> Self {
        self.row_filter = Some(filter);
        self
    }
}

/// An access policy: rules per target relation. Relations without a rule
/// are denied entirely (deny-by-default).
#[derive(Debug, Clone, Default)]
pub struct AccessPolicy {
    pub rules: BTreeMap<String, AccessRule>,
}

impl AccessPolicy {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn allow(mut self, relation: impl Into<String>, rule: AccessRule) -> Self {
        self.rules.insert(relation.into(), rule);
        self
    }
}

/// A static authorization failure (the client-side half of the paper's
/// split enforcement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessViolation {
    DeniedRelation(String),
    DeniedColumn { relation: String, column: String },
}

impl fmt::Display for AccessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessViolation::DeniedRelation(r) => write!(f, "access to `{r}` denied"),
            AccessViolation::DeniedColumn { relation, column } => {
                write!(f, "access to `{relation}.{column}` denied")
            }
        }
    }
}

/// Design-time compilation: fold the policy into the view set, producing
/// restricted views (σ row-filter, π visible columns). Queries mediated
/// through the result can never observe denied rows/columns; relations
/// without rules are dropped.
pub fn compile_policy(views: &ViewSet, policy: &AccessPolicy) -> ViewSet {
    let mut out = ViewSet::new(views.base_schema.clone(), views.view_schema.clone());
    for v in &views.views {
        let Some(rule) = policy.rules.get(&v.name) else { continue };
        let mut expr = v.expr.clone();
        if let Some(filter) = &rule.row_filter {
            expr = expr.select(filter.clone());
        }
        if !rule.visible_columns.is_empty() {
            expr = expr.project_owned(rule.visible_columns.clone());
        }
        out.push(ViewDef::new(v.name.clone(), expr));
    }
    out
}

/// Client-side static check: does `query` touch anything the policy
/// denies? Collects all violations (a tool wants the full list).
///
/// Column attribution is by name: a referenced column is authorized iff
/// it appears in the visible set of some relation the query *uses* (a
/// relation with an empty mask authorizes all of its columns, which —
/// name-based — means every referenced column). Columns visible only in
/// rules for relations the query does not touch grant nothing.
pub fn check_query(query: &Expr, policy: &AccessPolicy) -> Vec<AccessViolation> {
    let mut out = Vec::new();
    let used_relations = mm_expr::analyze::base_relations(query);
    let mut any_unmasked = false;
    let mut allowed: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut first_masked: Option<&str> = None;
    for base in &used_relations {
        match policy.rules.get(*base) {
            None => out.push(AccessViolation::DeniedRelation(base.to_string())),
            Some(rule) if rule.visible_columns.is_empty() => any_unmasked = true,
            Some(rule) => {
                first_masked.get_or_insert(base);
                allowed.extend(rule.visible_columns.iter().map(String::as_str));
            }
        }
    }
    if !any_unmasked {
        if let Some(attribute_to) = first_masked {
            let mut used_cols = std::collections::BTreeSet::new();
            collect_columns(query, &mut used_cols);
            for c in &used_cols {
                if !allowed.contains(c.as_str()) {
                    out.push(AccessViolation::DeniedColumn {
                        relation: attribute_to.to_string(),
                        column: c.clone(),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    out.dedup();
    out
}

fn collect_columns(e: &Expr, out: &mut std::collections::BTreeSet<String>) {
    match e {
        Expr::Project { input, columns } => {
            out.extend(columns.iter().cloned());
            collect_columns(input, out);
        }
        Expr::Select { input, .. }
        | Expr::Rename { input, .. }
        | Expr::Extend { input, .. }
        | Expr::Distinct { input } => collect_columns(input, out),
        Expr::Join { left, right, .. }
        | Expr::LeftJoin { left, right, .. }
        | Expr::Product { left, right }
        | Expr::Union { left, right, .. }
        | Expr::Diff { left, right } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_eval::{eval, materialize_views, unfold_query};
    use mm_instance::{Database, Tuple, Value};
    use mm_metamodel::{DataType, Schema, SchemaBuilder};

    fn base() -> (Schema, Database, ViewSet) {
        let s = SchemaBuilder::new("HRDB")
            .relation("emp", &[
                ("id", DataType::Int),
                ("name", DataType::Text),
                ("salary", DataType::Int),
                ("dept", DataType::Text),
            ])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        for (id, name, salary, dept) in
            [(1, "ann", 90, "eng"), (2, "bob", 70, "eng"), (3, "cyd", 80, "hr")]
        {
            db.insert(
                "emp",
                Tuple::from([
                    Value::Int(id),
                    Value::text(name),
                    Value::Int(salary),
                    Value::text(dept),
                ]),
            );
        }
        let mut views = ViewSet::new("HRDB", "Portal");
        views.push(ViewDef::new("Employees", Expr::base("emp")));
        views.push(ViewDef::new(
            "Payroll",
            Expr::base("emp").project(&["id", "salary"]),
        ));
        (s, db, views)
    }

    #[test]
    fn column_mask_hides_salary() {
        let (s, db, views) = base();
        let policy = AccessPolicy::new()
            .allow("Employees", AccessRule::columns(&["id", "name", "dept"]));
        let restricted = compile_policy(&views, &policy);
        let mat = materialize_views(&restricted, &s, &db).unwrap();
        let emp = mat.relation("Employees").unwrap();
        assert!(!emp.schema.has("salary"));
        assert_eq!(emp.len(), 3);
        // the Payroll view is denied entirely
        assert!(mat.relation("Payroll").is_none());
    }

    #[test]
    fn row_filter_restricts_visible_rows() {
        let (s, db, views) = base();
        let policy = AccessPolicy::new().allow(
            "Employees",
            AccessRule::columns(&["id", "name", "dept"])
                .with_rows(Predicate::col_eq_lit("dept", "eng")),
        );
        let restricted = compile_policy(&views, &policy);
        let mat = materialize_views(&restricted, &s, &db).unwrap();
        assert_eq!(mat.relation("Employees").unwrap().len(), 2);
    }

    #[test]
    fn queries_through_restricted_views_cannot_leak() {
        let (s, db, views) = base();
        let policy = AccessPolicy::new().allow(
            "Employees",
            AccessRule::columns(&["id", "name"])
                .with_rows(Predicate::col_eq_lit("dept", "eng")),
        );
        let restricted = compile_policy(&views, &policy);
        // an adversarial query asking for everything still sees the mask
        let q = Expr::base("Employees");
        let unfolded = unfold_query(&q, &restricted);
        let r = eval(&unfolded, &s, &db).unwrap();
        let cols: Vec<&str> = r.schema.names().collect();
        assert_eq!(cols, ["id", "name"]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn static_check_flags_denied_access() {
        let (_, _, _) = base();
        let policy =
            AccessPolicy::new().allow("Employees", AccessRule::columns(&["id", "name"]));
        let bad = Expr::base("Payroll").project(&["salary"]);
        let violations = check_query(&bad, &policy);
        assert!(violations.contains(&AccessViolation::DeniedRelation("Payroll".into())));
        let sneaky = Expr::base("Employees").project(&["salary"]);
        let violations = check_query(&sneaky, &policy);
        assert!(violations
            .iter()
            .any(|v| matches!(v, AccessViolation::DeniedColumn { column, .. } if column == "salary")));
        let fine = Expr::base("Employees").project(&["name"]);
        assert!(check_query(&fine, &policy).is_empty());
    }

    #[test]
    fn columns_visible_only_in_unused_rules_grant_nothing() {
        // salary is visible through Payroll, but a query against
        // Employees must not borrow that visibility
        let policy = AccessPolicy::new()
            .allow("Employees", AccessRule::columns(&["id", "name"]))
            .allow("Payroll", AccessRule::columns(&["id", "salary"]));
        let sneaky = Expr::base("Employees").project(&["salary"]);
        let v = check_query(&sneaky, &policy);
        assert!(v
            .iter()
            .any(|x| matches!(x, AccessViolation::DeniedColumn { column, .. } if column == "salary")));
        // but querying salary through Payroll itself is fine
        let fine = Expr::base("Payroll").project(&["salary"]);
        assert!(check_query(&fine, &policy).is_empty());
    }
}
