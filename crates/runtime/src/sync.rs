//! Synchronization logic across mappings (§5, "Synchronization logic"):
//! "Data replication rules may be stated in terms of T … For efficiency,
//! it may be better to translate the rules into equivalent rules on
//! finer-grained (e.g., relational) data in the corresponding sources S1
//! and S2 to be executed there."
//!
//! A [`SyncRule`] replicates a slice of a *target* (view-level) relation
//! from one peer to another. [`translate_rules`] pushes each rule through
//! both peers' mappings, producing base-level copy rules: an (optimized)
//! source expression over peer 1's base schema and a loader into peer 2's
//! base relations via peer 2's update views. [`run_sync`] executes the
//! translated rules.

use mm_eval::{eval, materialize_views, EvalError};
use mm_expr::{Expr, Predicate, ViewSet};
use mm_instance::Database;
use mm_metamodel::Schema;

/// A replication rule in target terms: copy `σ filter (view_relation)`
/// from peer 1 to peer 2.
#[derive(Debug, Clone)]
pub struct SyncRule {
    pub view_relation: String,
    pub filter: Option<Predicate>,
}

impl SyncRule {
    pub fn all(view_relation: impl Into<String>) -> Self {
        SyncRule { view_relation: view_relation.into(), filter: None }
    }

    pub fn filtered(view_relation: impl Into<String>, filter: Predicate) -> Self {
        SyncRule { view_relation: view_relation.into(), filter: Some(filter) }
    }
}

/// A rule translated to base level: evaluate `source_expr` on peer 1's
/// base database; the rows are target-level tuples staged for peer 2.
#[derive(Debug, Clone)]
pub struct TranslatedRule {
    pub view_relation: String,
    /// Over peer 1's base schema (unfolded + optimized).
    pub source_expr: Expr,
}

/// Translate target-level rules to base-level rules against peer 1.
pub fn translate_rules(
    rules: &[SyncRule],
    peer1_views: &ViewSet,
    peer1_schema: &Schema,
) -> Vec<TranslatedRule> {
    rules
        .iter()
        .map(|r| {
            let mut q = Expr::base(r.view_relation.clone());
            if let Some(f) = &r.filter {
                q = q.select(f.clone());
            }
            let unfolded = mm_eval::unfold_query(&q, peer1_views);
            let source_expr =
                mm_expr::optimize(&unfolded, peer1_schema).unwrap_or(unfolded);
            TranslatedRule { view_relation: r.view_relation.clone(), source_expr }
        })
        .collect()
}

/// Statistics of one sync run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncStats {
    pub rows_read: usize,
    pub rows_written: usize,
}

/// Execute translated rules: read from peer 1's base, write into peer 2's
/// base through peer 2's *update views* (peer 2's target relations are
/// staged, then pushed down). Peer 2's view schema must contain the
/// synced relations.
pub fn run_sync(
    rules: &[TranslatedRule],
    peer1_schema: &Schema,
    peer1_db: &Database,
    peer2_update_views: &ViewSet,
    peer2_view_schema: &Schema,
    peer2_db: &mut Database,
) -> Result<SyncStats, EvalError> {
    let mut stats = SyncStats::default();
    // stage the replicated slices as an instance of peer 2's view schema
    let mut staged = Database::empty_of(peer2_view_schema);
    for rule in rules {
        let rows = eval(&rule.source_expr, peer1_schema, peer1_db)?;
        stats.rows_read += rows.len();
        for t in rows.iter() {
            staged.insert(&rule.view_relation, t.clone());
        }
    }
    // push through peer 2's update views into its base relations
    let tables = materialize_views(peer2_update_views, peer2_view_schema, &staged)?;
    for (name, rel) in tables.relations() {
        for t in rel.iter() {
            if let Some(target) = peer2_db.relation_mut(name) {
                if target.insert(t.clone()) {
                    stats.rows_written += 1;
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_expr::ViewDef;
    use mm_instance::{Tuple, Value};
    use mm_metamodel::{DataType, SchemaBuilder};

    /// Two peers exposing the same `Contacts` view over different base
    /// layouts: peer 1 splits name/phone over two tables, peer 2 stores
    /// one table.
    fn setup() -> (Schema, Database, ViewSet, Schema, Schema, Database, ViewSet) {
        let p1 = SchemaBuilder::new("P1")
            .relation("names", &[("id", DataType::Int), ("name", DataType::Text)])
            .relation("phones", &[("id", DataType::Int), ("phone", DataType::Text)])
            .build()
            .unwrap();
        let mut p1db = Database::empty_of(&p1);
        for (id, name, phone) in [(1, "ann", "555"), (2, "bob", "556")] {
            p1db.insert("names", Tuple::from([Value::Int(id), Value::text(name)]));
            p1db.insert("phones", Tuple::from([Value::Int(id), Value::text(phone)]));
        }
        let mut p1_views = ViewSet::new("P1", "T");
        p1_views.push(ViewDef::new(
            "Contacts",
            Expr::base("names").join(Expr::base("phones"), &[("id", "id")]),
        ));

        let tschema = SchemaBuilder::new("T")
            .relation("Contacts", &[
                ("id", DataType::Int),
                ("name", DataType::Text),
                ("phone", DataType::Text),
            ])
            .build()
            .unwrap();

        let p2 = SchemaBuilder::new("P2")
            .relation("contact_book", &[
                ("id", DataType::Int),
                ("name", DataType::Text),
                ("phone", DataType::Text),
            ])
            .build()
            .unwrap();
        let p2db = Database::empty_of(&p2);
        // peer 2's update views: its base table as a function of the view
        let mut p2_uviews = ViewSet::new("T", "P2");
        p2_uviews.push(ViewDef::new("contact_book", Expr::base("Contacts")));
        (p1, p1db, p1_views, tschema, p2, p2db, p2_uviews)
    }

    #[test]
    fn rule_translates_to_optimized_base_expression() {
        let (p1, _, p1_views, ..) = setup();
        let rules = vec![SyncRule::filtered(
            "Contacts",
            Predicate::col_eq_lit("name", "ann"),
        )];
        let translated = translate_rules(&rules, &p1_views, &p1);
        let text = translated[0].source_expr.to_string();
        // the filter was pushed to the base `names` relation
        assert!(text.contains("(names) WHERE name = 'ann'"), "{text}");
    }

    #[test]
    fn sync_replicates_the_slice() {
        let (p1, p1db, p1_views, tschema, _, mut p2db, p2_uviews) = setup();
        let rules = vec![SyncRule::filtered(
            "Contacts",
            Predicate::col_eq_lit("name", "ann"),
        )];
        let translated = translate_rules(&rules, &p1_views, &p1);
        let stats =
            run_sync(&translated, &p1, &p1db, &p2_uviews, &tschema, &mut p2db).unwrap();
        assert_eq!(stats.rows_read, 1);
        assert_eq!(stats.rows_written, 1);
        let book = p2db.relation("contact_book").unwrap();
        assert_eq!(book.len(), 1);
        assert_eq!(book.iter().next().unwrap().values()[1], Value::text("ann"));
    }

    #[test]
    fn sync_is_idempotent() {
        let (p1, p1db, p1_views, tschema, _, mut p2db, p2_uviews) = setup();
        let rules = vec![SyncRule::all("Contacts")];
        let translated = translate_rules(&rules, &p1_views, &p1);
        let first =
            run_sync(&translated, &p1, &p1db, &p2_uviews, &tschema, &mut p2db).unwrap();
        assert_eq!(first.rows_written, 2);
        let second =
            run_sync(&translated, &p1, &p1db, &p2_uviews, &tschema, &mut p2db).unwrap();
        assert_eq!(second.rows_written, 0); // set semantics: nothing new
        assert_eq!(p2db.relation("contact_book").unwrap().len(), 2);
    }
}
