//! Query mediation through chains of mappings (§5, "Peer-to-peer").
//!
//! "There is a chain of mappings from the schema to be queried, T, to a
//! source S1, which is mapped to a source S2, etc. The mapping design tool
//! might optimize a query on T to collapse the chain into direct
//! mappings … the runtime needs to be able to process a query on T by
//! propagating it through the chain." Both strategies live here; EQ6
//! benchmarks them against each other.

use mm_compose::compose_views;
use mm_eval::{eval, eval_governed, unfold_query, EvalError};
use mm_expr::{Expr, ViewSet};
use mm_guard::{Degradation, DegradationKind, ExecBudget, ExecError, Governor};
use mm_instance::{Database, Relation};
use mm_metamodel::Schema;
use mm_telemetry::{DegradationSite, ExplainNode, Telemetry};
use std::fmt;

/// Which mediation strategy produced an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediationMode {
    /// The chain was pre-composed into one direct mapping.
    Collapsed,
    /// The query was unfolded hop by hop down the chain.
    Chained,
}

/// Result of a governed mediation: the rows plus a record of which
/// strategy ran and whether the mediator had to degrade to produce them.
#[derive(Debug, Clone)]
pub struct MediationResult {
    pub rows: Relation,
    pub mode: MediationMode,
    /// `Some` when the collapsed plan tripped the budget and the mediator
    /// fell back to hop-by-hop unfolding.
    pub degradation: Option<Degradation>,
}

/// A prepared mediation strategy: the collapse-or-degrade decision of
/// [`Mediator::answer_governed`], made once per chain and reusable across
/// queries — the runtime analogue of the engine's chase-plan cache.
/// Collapsing an n-hop chain is the expensive, query-independent part of
/// mediation; a plan amortizes it.
#[derive(Debug)]
pub struct MediationPlan {
    strategy: Strategy,
    /// `Some` when planning degraded (composing the chain tripped the
    /// budget); copied into every answer produced from this plan.
    degradation: Option<Degradation>,
}

#[derive(Debug)]
enum Strategy {
    /// Unfold queries through the pre-composed direct mapping.
    Collapsed(ViewSet),
    /// Unfold hop by hop: the chain is empty, or collapsing it degraded.
    Chained,
}

impl MediationPlan {
    /// Which strategy answers produced from this plan will report.
    pub fn mode(&self) -> MediationMode {
        match self.strategy {
            Strategy::Collapsed(_) => MediationMode::Collapsed,
            Strategy::Chained => MediationMode::Chained,
        }
    }

    /// The pre-composed direct mapping, when the plan collapsed.
    pub fn collapsed_views(&self) -> Option<&ViewSet> {
        match &self.strategy {
            Strategy::Collapsed(vs) => Some(vs),
            Strategy::Chained => None,
        }
    }

    /// The degradation recorded at plan time, if composing the chain
    /// tripped the budget.
    pub fn degradation(&self) -> Option<&Degradation> {
        self.degradation.as_ref()
    }
}

/// Why a [`MediationPlan`] answers the way it does: the path chosen
/// (collapsed vs chained) and, when the fast path was abandoned, the
/// typed cause. Returned by [`Mediator::explain_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediationExplain {
    pub mode: MediationMode,
    /// Chain length the mediator planned over.
    pub hops: usize,
    /// Human-readable reason the mode was chosen.
    pub why: String,
    /// Display of the [`ExecError`] that forced a degradation, if any.
    pub cause: Option<String>,
}

impl MediationExplain {
    /// Render as a telemetry explain tree (stable field order).
    pub fn to_node(&self) -> ExplainNode {
        let mode = match self.mode {
            MediationMode::Collapsed => "collapsed",
            MediationMode::Chained => "chained",
        };
        let mut node = ExplainNode::new("mediation")
            .field("mode", mode)
            .field("hops", self.hops)
            .field("why", &self.why);
        if let Some(c) = &self.cause {
            node.push_field("cause", c);
        }
        node
    }
}

impl fmt::Display for MediationExplain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_node().fmt(f)
    }
}

/// A mediator over a chain of view-defined mappings.
///
/// `chain[0]` defines the first virtual schema over the base; `chain[i]`
/// defines level i+1 over level i. Queries arrive against the top level.
pub struct Mediator<'a> {
    pub base_schema: &'a Schema,
    pub chain: Vec<&'a ViewSet>,
    tel: Telemetry,
}

impl<'a> Mediator<'a> {
    pub fn new(base_schema: &'a Schema, chain: Vec<&'a ViewSet>) -> Self {
        Mediator { base_schema, chain, tel: Telemetry::disabled() }
    }

    /// Attach a telemetry handle: planning degradations are mirrored as
    /// `mediator.degraded` events and counted by cause.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Explain what answers produced from `plan` will do and why.
    pub fn explain_plan(&self, plan: &MediationPlan) -> MediationExplain {
        let (why, cause) = match (&plan.strategy, &plan.degradation) {
            (Strategy::Collapsed(_), _) => {
                ("chain pre-composed into a direct mapping within budget".to_string(), None)
            }
            (Strategy::Chained, Some(d)) => (
                "composing the chain tripped the budget; unfolding hop by hop".to_string(),
                Some(d.cause.to_string()),
            ),
            (Strategy::Chained, None) => {
                ("empty chain: queries already address the base".to_string(), None)
            }
        };
        MediationExplain { mode: plan.mode(), hops: self.chain.len(), why, cause }
    }

    /// Answer a top-level query by unfolding it hop by hop down the chain
    /// and evaluating the final expression on the base database.
    pub fn answer_chained(
        &self,
        query: &Expr,
        base_db: &Database,
    ) -> Result<Relation, EvalError> {
        eval(&self.unfold(query), self.base_schema, base_db)
    }

    /// Like [`Self::answer_chained`], but runs the algebraic optimizer
    /// (predicate pushdown + column pruning) on the collapsed expression
    /// before evaluating — the §4 "optimization opportunities".
    pub fn answer_chained_optimized(
        &self,
        query: &Expr,
        base_db: &Database,
    ) -> Result<Relation, EvalError> {
        let q = self.unfold(query);
        let optimized = mm_expr::optimize(&q, self.base_schema).map_err(EvalError::Static)?;
        eval(&optimized, self.base_schema, base_db)
    }

    /// Unfold a top-level query down to the base schema.
    pub fn unfold(&self, query: &Expr) -> Expr {
        let mut q = query.clone();
        for views in self.chain.iter().rev() {
            q = unfold_query(&q, views);
        }
        q
    }

    /// Collapse the chain into one direct mapping (design-time
    /// composition), returning the composed view set.
    pub fn collapse(&self) -> Option<ViewSet> {
        let mut iter = self.chain.iter();
        let first = (*iter.next()?).clone();
        Some(iter.fold(first, |acc, next| compose_views(&acc, next)))
    }

    /// Answer a top-level query through a pre-collapsed mapping.
    pub fn answer_collapsed(
        &self,
        collapsed: &ViewSet,
        query: &Expr,
        base_db: &Database,
    ) -> Result<Relation, EvalError> {
        let q = unfold_query(query, collapsed);
        eval(&q, self.base_schema, base_db)
    }

    /// Budgeted [`Self::collapse`]: the size of the composed view
    /// definitions accrues against the clause budget after each hop, so a
    /// chain whose composition blows up trips `BudgetExhausted` instead of
    /// materializing an enormous mapping.
    pub fn collapse_governed(&self, gov: &mut Governor) -> Result<Option<ViewSet>, ExecError> {
        let mut iter = self.chain.iter();
        let Some(first) = iter.next() else { return Ok(None) };
        let mut acc = (*first).clone();
        for next in iter {
            acc = compose_views(&acc, next);
            let nodes: usize = acc.views.iter().map(|v| v.expr.size()).sum();
            gov.clauses(nodes as u64)?;
            gov.steps_n(nodes as u64)?;
        }
        Ok(Some(acc))
    }

    /// Decide the mediation strategy once, under `gov`'s budget:
    /// collapse the chain (charging its composed size to the clause
    /// meter) or, when that trips `BudgetExhausted`, record a
    /// [`Degradation`] and plan to unfold hop by hop instead.
    /// Cancellation and non-budget errors propagate — there is nothing
    /// further to fall back to.
    pub fn plan_governed(&self, gov: &mut Governor) -> Result<MediationPlan, ExecError> {
        match self.collapse_governed(gov) {
            Ok(Some(collapsed)) => {
                Ok(MediationPlan { strategy: Strategy::Collapsed(collapsed), degradation: None })
            }
            // Empty chain: queries already address the base.
            Ok(None) => Ok(MediationPlan { strategy: Strategy::Chained, degradation: None }),
            Err(cause @ ExecError::BudgetExhausted { .. }) => {
                if self.tel.is_enabled() {
                    if let Some(m) = self.tel.metrics() {
                        m.degradation(DegradationSite::Mediator, cause.telemetry_cause());
                    }
                    self.tel.event(
                        "mediator.degraded",
                        "",
                        vec![
                            mm_telemetry::Field {
                                key: "kind",
                                value: DegradationKind::CollapsedToChained.to_string().into(),
                            },
                            mm_telemetry::Field { key: "cause", value: cause.to_string().into() },
                            mm_telemetry::Field { key: "hops", value: self.chain.len().into() },
                        ],
                    );

                }
                Ok(MediationPlan {
                    strategy: Strategy::Chained,
                    degradation: Some(Degradation {
                        kind: DegradationKind::CollapsedToChained,
                        cause,
                    }),
                })
            }
            Err(e) => Err(e),
        }
    }

    /// [`Self::plan_governed`] under a fresh governor for `budget`.
    pub fn plan(&self, budget: &ExecBudget) -> Result<MediationPlan, ExecError> {
        self.plan_governed(&mut Governor::new(budget))
    }

    /// Answer one query through a prepared plan. The per-chain work
    /// (composition, the degrade decision) was already paid by
    /// [`Self::plan`]; this only unfolds and evaluates `query`.
    pub fn answer_with_plan(
        &self,
        plan: &MediationPlan,
        query: &Expr,
        base_db: &Database,
        gov: &mut Governor,
    ) -> Result<MediationResult, EvalError> {
        let q = match &plan.strategy {
            Strategy::Collapsed(collapsed) => unfold_query(query, collapsed),
            Strategy::Chained => self.unfold(query),
        };
        let rows = eval_governed(&q, self.base_schema, base_db, gov)?;
        Ok(MediationResult { rows, mode: plan.mode(), degradation: plan.degradation.clone() })
    }

    /// Answer a top-level query under a budget, preferring the collapsed
    /// (pre-composed) mapping and degrading gracefully to hop-by-hop
    /// unfolding when composing the chain trips the budget.
    ///
    /// One-shot [`Self::plan_governed`] + [`Self::answer_with_plan`]:
    /// a degraded attempt restarts the step meter but shares the
    /// original wall-clock deadline and cancellation token, so the whole
    /// call stays bounded. Callers mediating many queries over one chain
    /// should plan once and reuse it.
    pub fn answer_governed(
        &self,
        query: &Expr,
        base_db: &Database,
        budget: &ExecBudget,
    ) -> Result<MediationResult, EvalError> {
        let mut gov = Governor::new(budget);
        let plan = self.plan_governed(&mut gov).map_err(EvalError::Exec)?;
        if plan.degradation.is_some() {
            gov = Governor::new(budget);
        }
        self.answer_with_plan(&plan, query, base_db, &mut gov)
    }

    /// Answer a batch of queries through one prepared plan, fanning the
    /// evaluations across up to `threads` workers.
    ///
    /// Per query, results are identical to calling
    /// [`Self::answer_with_plan`] in a sequential loop — same rows, same
    /// order, results in input order — except the whole batch meters
    /// against **one** budget: worker governors fork off a shared meter,
    /// so the step/row caps bound the batch's total work and a deadline
    /// or cancellation stops every worker. One query's failure does not
    /// abort the others. The plan-time degradation (if any) was recorded
    /// once by [`Self::plan_governed`]; workers copy it into their
    /// results without re-recording telemetry.
    ///
    /// **Multi-query sharing**: structurally identical queries in the
    /// batch are evaluated once; duplicate slots receive a clone of the
    /// representative's result. Evaluation is deterministic, so the
    /// clone matches a re-run row for row — the only observable
    /// difference is that shared slots do not re-consume the batch
    /// budget. Shared slots are counted in the `mqo_shared_plans`
    /// metric and the batch span's `mqo_shared` field.
    pub fn answer_batch(
        &self,
        plan: &MediationPlan,
        queries: &[Expr],
        base_db: &Database,
        budget: &ExecBudget,
        threads: usize,
    ) -> Vec<Result<MediationResult, EvalError>> {
        // map every query to the first structurally equal one (itself
        // when unique); batches are small, so the quadratic scan is fine
        let rep: Vec<usize> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| queries[..i].iter().position(|p| p == q).unwrap_or(i))
            .collect();
        let shared = rep.iter().enumerate().filter(|&(i, &r)| r != i).count() as u64;
        let lead = Governor::new(budget);
        let (_, govs) = lead.fork_shared(queries.len());
        let govs: Vec<parking_lot::Mutex<Governor>> =
            govs.into_iter().map(parking_lot::Mutex::new).collect();
        let (pooled, run) = mm_parallel::map_indexed(
            threads,
            queries.len(),
            |i, _ctx| -> Result<_, std::convert::Infallible> {
                if rep[i] != i {
                    // duplicate of an earlier identical query: its slot
                    // is filled by sharing after the pool joins
                    return Ok(None);
                }
                let mut gov = govs[i].lock();
                Ok(Some(self.answer_with_plan(plan, &queries[i], base_db, &mut gov)))
            },
        );
        if self.tel.is_enabled() {
            let mut span = mm_telemetry::Span::enter(
                &self.tel,
                "mediator.answer_batch",
                queries.len().to_string(),
            );
            span.field("threads", threads);
            if shared > 0 {
                span.field("mqo_shared", shared);
            }
            span.field("parallel.workers", run.workers);
            span.field("parallel.steals", run.steals);
            span.field("parallel.tasks", run.tasks);
            span.finish();
            if let Some(m) = self.tel.metrics() {
                if shared > 0 {
                    m.add(mm_telemetry::Counter::MqoSharedPlans, shared);
                }
                m.add(mm_telemetry::Counter::ParallelWorkers, run.workers as u64);
                m.add(mm_telemetry::Counter::ParallelSteals, run.steals);
                m.add(mm_telemetry::Counter::ParallelTasks, run.tasks);
            }
        }
        let pooled = match pooled {
            Ok(v) => v,
            Err(never) => match never {},
        };
        let mut out: Vec<Result<MediationResult, EvalError>> =
            Vec::with_capacity(queries.len());
        for (i, slot) in pooled.into_iter().enumerate() {
            match slot {
                Some(r) => out.push(r),
                // rep[i] < i by construction, so the representative's
                // slot is already in `out`
                None => out.push(out[rep[i]].clone()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_expr::{CmpOp, Predicate, Scalar, ViewDef};
    use mm_instance::{Tuple, Value};
    use mm_metamodel::{DataType, SchemaBuilder};

    fn base() -> (Schema, Database) {
        let s = SchemaBuilder::new("Base")
            .relation("People", &[
                ("id", DataType::Int),
                ("name", DataType::Text),
                ("age", DataType::Int),
                ("city", DataType::Text),
            ])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        for (id, name, age, city) in [
            (1, "ann", 31, "rome"),
            (2, "bob", 17, "oslo"),
            (3, "cyd", 45, "rome"),
        ] {
            db.insert(
                "People",
                Tuple::from([
                    Value::Int(id),
                    Value::text(name),
                    Value::Int(age),
                    Value::text(city),
                ]),
            );
        }
        (s, db)
    }

    /// Two-hop chain: Adults over People; RomanAdults over Adults.
    fn chain() -> (ViewSet, ViewSet) {
        let mut l1 = ViewSet::new("Base", "L1");
        l1.push(ViewDef::new(
            "Adults",
            Expr::base("People").select(Predicate::Cmp {
                op: mm_expr::CmpOp::Ge,
                left: mm_expr::Scalar::col("age"),
                right: mm_expr::Scalar::lit(18i64),
            }),
        ));
        let mut l2 = ViewSet::new("L1", "L2");
        l2.push(ViewDef::new(
            "RomanAdults",
            Expr::base("Adults")
                .select(Predicate::col_eq_lit("city", "rome"))
                .project(&["id", "name"]),
        ));
        (l1, l2)
    }

    #[test]
    fn chained_and_collapsed_agree() {
        let (s, db) = base();
        let (l1, l2) = chain();
        let m = Mediator::new(&s, vec![&l1, &l2]);
        let q = Expr::base("RomanAdults").project(&["name"]);
        let chained = m.answer_chained(&q, &db).unwrap();
        let collapsed = m.collapse().unwrap();
        let direct = m.answer_collapsed(&collapsed, &q, &db).unwrap();
        assert!(chained.set_eq(&direct));
        assert_eq!(chained.len(), 2); // ann, cyd
    }

    #[test]
    fn collapsed_mapping_reads_base_directly() {
        let (s, _) = base();
        let (l1, l2) = chain();
        let m = Mediator::new(&s, vec![&l1, &l2]);
        let collapsed = m.collapse().unwrap();
        let v = collapsed.view("RomanAdults").unwrap();
        assert_eq!(mm_expr::analyze::base_relations(&v.expr), ["People"]);
    }

    #[test]
    fn optimized_mediation_agrees_with_plain() {
        let (s, db) = base();
        let (l1, l2) = chain();
        let m = Mediator::new(&s, vec![&l1, &l2]);
        let q = Expr::base("RomanAdults").project(&["name"]);
        let plain = m.answer_chained(&q, &db).unwrap();
        let fast = m.answer_chained_optimized(&q, &db).unwrap();
        assert!(plain.set_eq(&fast));
        // the optimized unfolding pushes both filters down to People
        let opt = mm_expr::optimize(&m.unfold(&q), &s).unwrap();
        assert!(opt.to_string().contains("People) WHERE"), "{opt}");
    }

    #[test]
    fn governed_mediation_prefers_collapsed() {
        let (s, db) = base();
        let (l1, l2) = chain();
        let m = Mediator::new(&s, vec![&l1, &l2]);
        let q = Expr::base("RomanAdults").project(&["name"]);
        let r = m.answer_governed(&q, &db, &ExecBudget::unbounded()).unwrap();
        assert_eq!(r.mode, MediationMode::Collapsed);
        assert!(r.degradation.is_none());
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn governed_mediation_degrades_to_chained_on_clause_budget() {
        let (s, db) = base();
        let (l1, l2) = chain();
        let m = Mediator::new(&s, vec![&l1, &l2]);
        let q = Expr::base("RomanAdults").project(&["name"]);
        // clause budget far below the collapsed mapping's expression size
        let budget = ExecBudget::unbounded().with_clauses(1);
        let r = m.answer_governed(&q, &db, &budget).unwrap();
        assert_eq!(r.mode, MediationMode::Chained);
        let d = r.degradation.expect("collapse should have tripped the budget");
        assert_eq!(d.kind, DegradationKind::CollapsedToChained);
        assert!(matches!(d.cause, ExecError::BudgetExhausted { .. }));
        // the degraded answer still agrees with the ungoverned one
        let oracle = m.answer_chained(&q, &db).unwrap();
        assert!(r.rows.set_eq(&oracle));
    }

    #[test]
    fn governed_mediation_cancellation_propagates() {
        use mm_guard::CancelToken;
        let (s, db) = base();
        let (l1, l2) = chain();
        let m = Mediator::new(&s, vec![&l1, &l2]);
        let token = CancelToken::new();
        token.cancel();
        let q = Expr::base("RomanAdults");
        let err = m
            .answer_governed(&q, &db, &ExecBudget::unbounded().with_cancel(token))
            .unwrap_err();
        assert!(matches!(err, EvalError::Exec(ExecError::Cancelled { .. })), "{err:?}");
    }

    #[test]
    fn plan_is_reusable_across_queries_and_agrees_with_one_shot() {
        let (s, db) = base();
        let (l1, l2) = chain();
        let m = Mediator::new(&s, vec![&l1, &l2]);
        let budget = ExecBudget::unbounded();
        let plan = m.plan(&budget).unwrap();
        assert_eq!(plan.mode(), MediationMode::Collapsed);
        assert!(plan.degradation().is_none());
        assert!(plan.collapsed_views().is_some());
        for q in [
            Expr::base("RomanAdults").project(&["name"]),
            Expr::base("RomanAdults"),
            Expr::base("RomanAdults").project(&["id"]),
        ] {
            let planned =
                m.answer_with_plan(&plan, &q, &db, &mut Governor::new(&budget)).unwrap();
            let one_shot = m.answer_governed(&q, &db, &budget).unwrap();
            assert_eq!(planned.mode, one_shot.mode);
            assert!(planned.rows.set_eq(&one_shot.rows));
        }
    }

    #[test]
    fn degraded_plan_carries_its_degradation_into_every_answer() {
        let (s, db) = base();
        let (l1, l2) = chain();
        let m = Mediator::new(&s, vec![&l1, &l2]);
        let tight = ExecBudget::unbounded().with_clauses(1);
        let plan = m.plan(&tight).unwrap();
        assert_eq!(plan.mode(), MediationMode::Chained);
        assert!(plan.degradation().is_some());
        let q = Expr::base("RomanAdults").project(&["name"]);
        let r = m
            .answer_with_plan(&plan, &q, &db, &mut Governor::new(&ExecBudget::unbounded()))
            .unwrap();
        assert_eq!(r.mode, MediationMode::Chained);
        assert!(matches!(
            r.degradation,
            Some(Degradation { kind: DegradationKind::CollapsedToChained, .. })
        ));
        let oracle = m.answer_chained(&q, &db).unwrap();
        assert!(r.rows.set_eq(&oracle));
    }

    #[test]
    fn answer_batch_matches_sequential_answers() {
        let (s, db) = base();
        let (l1, l2) = chain();
        let m = Mediator::new(&s, vec![&l1, &l2]);
        let budget = ExecBudget::unbounded();
        let plan = m.plan(&budget).unwrap();
        let queries: Vec<Expr> = vec![
            Expr::base("RomanAdults").project(&["name"]),
            Expr::base("RomanAdults"),
            Expr::base("RomanAdults").project(&["id"]),
            Expr::base("RomanAdults").project(&["id", "name"]),
        ];
        let sequential: Vec<Relation> = queries
            .iter()
            .map(|q| m.answer_with_plan(&plan, q, &db, &mut Governor::new(&budget)).unwrap().rows)
            .collect();
        for threads in [1, 2, 4, 8] {
            let batch = m.answer_batch(&plan, &queries, &db, &budget, threads);
            assert_eq!(batch.len(), queries.len());
            for (i, (got, want)) in batch.into_iter().zip(&sequential).enumerate() {
                let got = got.unwrap();
                assert_eq!(got.mode, MediationMode::Collapsed);
                assert_eq!(&got.rows, want, "query {i} at threads={threads}");
            }
        }
    }

    #[test]
    fn answer_batch_shares_one_budget_across_queries() {
        // Each query must cross at least one governor safepoint (every
        // 1024 steps) for its consumption to reach the shared meter, so
        // the base holds a few thousand rows rather than three.
        let (s, _) = base();
        let mut db = Database::empty_of(&s);
        for i in 0..3000i64 {
            db.insert(
                "People",
                Tuple::from([
                    Value::Int(i),
                    Value::text(format!("p{i}")),
                    Value::Int(20 + (i % 50)),
                    Value::text(if i % 2 == 0 { "rome" } else { "oslo" }),
                ]),
            );
        }
        let (l1, l2) = chain();
        let m = Mediator::new(&s, vec![&l1, &l2]);
        let plan = m.plan(&ExecBudget::unbounded()).unwrap();
        let solo_steps = {
            let mut gov = Governor::new(&ExecBudget::unbounded());
            m.answer_with_plan(&plan, &Expr::base("RomanAdults"), &db, &mut gov).unwrap();
            gov.steps_consumed()
        };
        assert!(solo_steps > 2048, "query must span several safepoints: {solo_steps}");
        // a cap at 6x the per-query cost must trip somewhere in an
        // 8-query batch, even with up to one safepoint of per-worker lag.
        // Queries are structurally distinct (identical ones would be
        // answered once by multi-query sharing and never trip the cap).
        let budget = ExecBudget::unbounded().with_steps(solo_steps * 6);
        let queries: Vec<Expr> = (0..8)
            .map(|i| {
                Expr::base("RomanAdults").select(Predicate::Cmp {
                    op: CmpOp::Ge,
                    left: Scalar::col("id"),
                    right: Scalar::lit(i as i64),
                })
            })
            .collect();
        let batch = m.answer_batch(&plan, &queries, &db, &budget, 1);
        let trips = batch
            .iter()
            .filter(|r| matches!(r, Err(EvalError::Exec(ExecError::BudgetExhausted { .. }))))
            .count();
        assert!(trips >= 1, "shared step cap must trip");
        let oks = batch.iter().filter(|r| r.is_ok()).count();
        assert!(oks >= 1, "early queries should finish under the cap");
    }

    #[test]
    fn answer_batch_shares_identical_queries_bit_identically() {
        // four slots, two distinct queries: the two duplicates are
        // shared (counted in mqo_shared_plans) and still match their
        // sequential answers row for row.
        let (s, db) = base();
        let (l1, l2) = chain();
        let ring = mm_telemetry::RingCollector::with_capacity(64);
        let tel = mm_telemetry::Telemetry::new(ring);
        let m = Mediator::new(&s, vec![&l1, &l2]).with_telemetry(tel.clone());
        let budget = ExecBudget::unbounded();
        let plan = m.plan(&budget).unwrap();
        let q1 = Expr::base("RomanAdults");
        let q2 = Expr::base("RomanAdults").project(&["name"]);
        let queries = vec![q1.clone(), q2.clone(), q1.clone(), q2.clone()];
        let batch = m.answer_batch(&plan, &queries, &db, &budget, 2);
        assert_eq!(tel.metrics().unwrap().snapshot().value("mqo_shared_plans"), 2);
        let sequential: Vec<Relation> = queries
            .iter()
            .map(|q| m.answer_with_plan(&plan, q, &db, &mut Governor::new(&budget)).unwrap().rows)
            .collect();
        for (got, want) in batch.into_iter().zip(&sequential) {
            assert_eq!(&got.unwrap().rows, want);
        }
    }

    #[test]
    fn empty_chain_collapse_is_none() {
        let (s, _) = base();
        let m = Mediator::new(&s, vec![]);
        assert!(m.collapse().is_none());
    }

    #[test]
    fn deep_chain_mediation() {
        // 5 identity-ish hops on top of the filter chain
        let (s, db) = base();
        let (l1, l2) = chain();
        let mut hops: Vec<ViewSet> = vec![l1, l2];
        for i in 0..5 {
            let prev = if i == 0 { "RomanAdults".to_string() } else { format!("V{}", i - 1) };
            let mut vs = ViewSet::new(format!("L{}", i + 2), format!("L{}", i + 3));
            vs.push(ViewDef::new(format!("V{i}"), Expr::base(prev)));
            hops.push(vs);
        }
        let refs: Vec<&ViewSet> = hops.iter().collect();
        let m = Mediator::new(&s, refs);
        let q = Expr::base("V4");
        let r = m.answer_chained(&q, &db).unwrap();
        assert_eq!(r.len(), 2);
        let collapsed = m.collapse().unwrap();
        let r2 = m.answer_collapsed(&collapsed, &q, &db).unwrap();
        assert!(r.set_eq(&r2));
    }
}
