//! ModelGen: metamodel-to-metamodel schema translation with instance-level
//! mapping constraints (§3.2 of the paper).
//!
//! Following Atzeni & Torlone, translation is construct elimination over
//! the universal metamodel: a repertoire of rules rewrites the constructs
//! the target profile forbids. Unlike the original (schema-only) approach,
//! every rule here also emits *declarative mapping constraints* between
//! source and target — the capability the paper says generic ModelGen
//! still lacked ("it still falls short of the need for ModelGen to return
//! declarative mapping constraints") — plus a forward view set so the
//! translation is directly executable.
//!
//! Rules implemented:
//! * [`er_rel::er_to_relational`] — inheritance elimination with three
//!   strategies (vertical/TPT, horizontal/TPC, flat/TPH), association →
//!   link table, plus keys/FKs;
//! * [`rel_er::relational_to_er`] — tables to entity types, foreign keys
//!   to associations (wrapper generation direction);
//! * [`nested::shred_nested`] — XML-like nested collections to flat
//!   relations (shredding);
//! * [`three_copy`] — the generic three-data-copy instance translation
//!   (copy into a universal triple format, reshape, copy out), kept as the
//!   baseline the paper calls "rather inefficient for data exchange"
//!   (benchmark EQ2 quantifies this against the compiled views).

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod er_rel;
pub mod nest;
pub mod nested;
pub mod rel_er;
pub mod three_copy;

pub use er_rel::{er_to_relational, InheritanceStrategy, ModelGenError, ModelGenResult};
pub use nest::nest_relational;
pub use nested::shred_nested;
pub use rel_er::relational_to_er;
pub use three_copy::{decode_universal, encode_universal, three_copy_translate};
