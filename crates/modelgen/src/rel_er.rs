//! Relational → ER translation (the wrapper-generation direction: "given
//! only one of the two schemas, the other is derived along with a mapping"
//! — §3, with the derived schema an OO/ER wrapper).

use crate::er_rel::{ModelGenError, ModelGenResult};
use mm_expr::{entity_extent, Expr, Mapping, MappingConstraint, Scalar, ViewDef, ViewSet};
use mm_metamodel::{
    Cardinality, Constraint, Element, ElementKind, Metamodel, Schema, TYPE_ATTR,
};

/// The key column of a table: its key constraint's first attribute, or
/// its first column.
fn table_key(rel: &Schema, table: &str) -> Result<String, ModelGenError> {
    for c in &rel.constraints {
        if let Constraint::Key(k) = c {
            if k.element == table {
                return Ok(k.attributes[0].clone());
            }
        }
    }
    rel.element(table)
        .and_then(|e| e.attributes.first())
        .map(|a| a.name.clone())
        .ok_or_else(|| ModelGenError::NoKey(table.to_string()))
}

#[allow(clippy::expect_used)] // invariant-backed: see expect messages
/// Translate a flat relational schema into an ER schema: each table
/// becomes a root entity type; each single-column foreign key becomes an
/// association (the relational rendering of a reference). Multi-column
/// foreign keys are carried over as plain FK constraints on the ER side
/// (they remain checkable but have no association rendering).
pub fn relational_to_er(rel: &Schema) -> Result<ModelGenResult, ModelGenError> {
    let violations = Metamodel::Relational.violations(rel);
    if !violations.is_empty() {
        return Err(ModelGenError::WrongProfile {
            expected: Metamodel::Relational,
            violations: violations.iter().map(|v| v.to_string()).collect(),
        });
    }
    let er_name = format!("{}_er", rel.name);
    let mut er = Schema::new(er_name.clone());
    let mut mapping = Mapping::new(rel.name.clone(), er_name.clone());
    let mut views = ViewSet::new(rel.name.clone(), er_name.clone());

    for t in rel.elements() {
        er.add_element(Element {
            name: t.name.clone(),
            kind: ElementKind::EntityType { parent: None },
            attributes: t.attributes.clone(),
        })?;
        let attr_names: Vec<String> =
            t.attributes.iter().map(|a| a.name.clone()).collect();
        // ER entity set = table rows tagged with their entity type
        let mut layout: Vec<String> = vec![TYPE_ATTR.to_string()];
        layout.extend(attr_names.iter().cloned());
        let view = Expr::base(t.name.clone())
            .extend(TYPE_ATTR, Scalar::lit(t.name.as_str()))
            .project_owned(layout);
        views.push(ViewDef::new(t.name.clone(), view));
        // constraint: π_attrs(ext(E)) = T
        mapping.push(MappingConstraint::ExprEq {
            source: Expr::base(t.name.clone()),
            target: entity_extent(&er, &t.name)
                .expect("just added entity")
                .project_owned(attr_names),
        });
    }

    for c in &rel.constraints {
        match c {
            Constraint::ForeignKey(fk) if fk.from_attrs.len() == 1 => {
                let assoc = format!("{}_{}", fk.from, fk.to);
                if !er.contains(&assoc) {
                    er.add_element(Element {
                        name: assoc.clone(),
                        kind: ElementKind::Association {
                            from: fk.from.clone(),
                            to: fk.to.clone(),
                            from_card: Cardinality::Many,
                            to_card: Cardinality::One,
                        },
                        attributes: Vec::new(),
                    })?;
                    // association instances: ($from = referencing row's
                    // key, $to = the FK column's value, i.e. the
                    // referenced row's key)
                    let from_key = table_key(rel, &fk.from)?;
                    let fk_col = fk.from_attrs[0].as_str();
                    let view = if from_key == fk_col {
                        // self-identifying reference: key doubles as FK
                        Expr::base(fk.from.clone())
                            .project(&[from_key.as_str()])
                            .rename(&[(from_key.as_str(), "$from")])
                            .extend("$to", Scalar::col("$from"))
                    } else {
                        Expr::base(fk.from.clone())
                            .project(&[from_key.as_str(), fk_col])
                            .rename(&[(from_key.as_str(), "$from"), (fk_col, "$to")])
                    };
                    views.push(ViewDef::new(assoc, view));
                }
            }
            other => {
                // keys, not-null, multi-column FKs: carried over verbatim
                let _ = er.add_constraint(other.clone());
            }
        }
    }

    Ok(ModelGenResult { schema: er, mapping, views })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn rel() -> Schema {
        SchemaBuilder::new("DB")
            .relation("Orders", &[("oid", DataType::Int), ("cust", DataType::Int)])
            .relation("Customers", &[("cid", DataType::Int), ("name", DataType::Text)])
            .key("Customers", &["cid"])
            .foreign_key("Orders", &["cust"], "Customers", &["cid"])
            .build()
            .unwrap()
    }

    #[test]
    fn tables_become_entities_and_fk_becomes_association() {
        let r = relational_to_er(&rel()).unwrap();
        assert!(Metamodel::EntityRelationship.conforms(&r.schema));
        assert!(r.schema.element("Orders").unwrap().is_entity_type());
        assert!(matches!(
            r.schema.element("Orders_Customers").unwrap().kind,
            ElementKind::Association { .. }
        ));
    }

    #[test]
    fn keys_carried_over() {
        let r = relational_to_er(&rel()).unwrap();
        assert!(r
            .schema
            .constraints
            .iter()
            .any(|c| matches!(c, Constraint::Key(k) if k.element == "Customers")));
    }

    #[test]
    fn views_tag_rows_with_entity_type() {
        let r = relational_to_er(&rel()).unwrap();
        let v = r.views.view("Customers").unwrap();
        // shape: project([$type, cid, name]) over extend($type)
        match &v.expr {
            Expr::Project { columns, .. } => {
                assert_eq!(columns[0], TYPE_ATTR);
                assert_eq!(columns[1..], ["cid".to_string(), "name".to_string()]);
            }
            other => panic!("unexpected view shape: {other}"),
        }
    }

    #[test]
    fn er_input_rejected() {
        let er = SchemaBuilder::new("ER")
            .entity("E", &[("x", DataType::Int)])
            .build()
            .unwrap();
        assert!(matches!(
            relational_to_er(&er),
            Err(ModelGenError::WrongProfile { .. })
        ));
    }

    #[test]
    fn roundtrip_er_rel_er_preserves_attribute_sets() {
        use crate::er_rel::{er_to_relational, InheritanceStrategy};
        let er = SchemaBuilder::new("ER")
            .entity("P", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .build()
            .unwrap();
        let rel = er_to_relational(&er, InheritanceStrategy::Vertical).unwrap();
        let back = relational_to_er(&rel.schema).unwrap();
        let p = back.schema.element("P").unwrap();
        let names: Vec<&str> = p.attribute_names().collect();
        assert_eq!(names, ["Id", "Name"]);
    }
}
