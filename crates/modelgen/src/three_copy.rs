//! The generic three-data-copy instance translation baseline.
//!
//! §3.2: follow-ups to Atzeni & Torlone "generate instance translations
//! via three data-copy steps: (1) copy the source data into the universal
//! metamodel's format; (2) reshape the data using instance-level rules
//! that mimic the schema transformation rules; and (3) copy the reshaped
//! data into the target system. … It is rather inefficient for data
//! exchange." This module implements that pipeline faithfully — a triple
//! encoding as the universal format, per-entity reshaping rules, and a
//! decode — so benchmark EQ2 can quantify the inefficiency against the
//! directly compiled views of [`crate::er_rel`].

// Translator-internal lookups are guarded by construction (schemas and
// view sets built in this module); `expect` here documents invariants,
// not caller-facing failure modes (DESIGN.md §7).
#![allow(clippy::expect_used)]

use crate::er_rel::{hierarchy_key, InheritanceStrategy, ModelGenError};
use mm_instance::{Database, RelSchema, Relation, Tuple, Value};
use mm_metamodel::{DataType, ElementKind, Schema, TYPE_ATTR};
use std::collections::BTreeMap;

/// Column layout of the universal triple relation:
/// `(elem, tid, attr, vtype, value)`.
pub fn universal_layout() -> RelSchema {
    RelSchema::of(&[
        ("elem", DataType::Text),
        ("tid", DataType::Int),
        ("attr", DataType::Text),
        ("vtype", DataType::Text),
        ("value", DataType::Text),
    ])
}

fn encode_value(v: &Value) -> (Value, Value) {
    let (t, s) = match v {
        Value::Int(i) => ("int", i.to_string()),
        Value::Double(d) => ("double", format!("{:?}", d)),
        Value::Bool(b) => ("bool", b.to_string()),
        Value::Text(s) => ("text", s.clone()),
        Value::Sym(s) => ("text", s.as_str().to_string()),
        Value::Date(d) => ("date", d.to_string()),
        Value::Null => ("null", String::new()),
        Value::Labeled(l) => ("labeled", l.to_string()),
    };
    (Value::text(t), Value::text(s))
}

fn decode_value(vtype: &Value, value: &Value) -> Value {
    let (Some(t), Some(s)) = (vtype.as_text(), value.as_text()) else {
        return Value::Null;
    };
    match t {
        "int" => s.parse().map(Value::Int).unwrap_or(Value::Null),
        "double" => s.parse().map(Value::Double).unwrap_or(Value::Null),
        "bool" => s.parse().map(Value::Bool).unwrap_or(Value::Null),
        "text" => Value::text(s),
        "date" => s.parse().map(Value::Date).unwrap_or(Value::Null),
        "labeled" => s.parse().map(Value::Labeled).unwrap_or(Value::Null),
        _ => Value::Null,
    }
}

/// Copy 1: encode a database into the universal triple format.
pub fn encode_universal(schema: &Schema, db: &Database) -> Database {
    let mut out = Database::new(format!("{}_univ", db.name));
    let mut rel = Relation::new(universal_layout());
    let mut tid: i64 = 0;
    for e in schema.elements() {
        let Some(r) = db.relation(&e.name) else { continue };
        for t in r.iter() {
            for (attr, v) in r.schema.names().zip(t.values()) {
                let (vt, vs) = encode_value(v);
                rel.insert(Tuple::new(vec![
                    Value::text(e.name.clone()),
                    Value::Int(tid),
                    Value::text(attr),
                    vt,
                    vs,
                ]));
            }
            tid += 1;
        }
    }
    out.insert_relation("$univ", rel);
    out
}

/// Copy 3: decode universal triples into an instance of `target`.
pub fn decode_universal(target: &Schema, univ: &Database) -> Database {
    let mut out = Database::empty_of(target);
    let Some(rel) = univ.relation("$univ") else { return out };
    // group triples by (elem, tid) preserving first-seen order
    let mut groups: BTreeMap<(String, i64), BTreeMap<String, Value>> = BTreeMap::new();
    for t in rel.iter() {
        let [elem, tid, attr, vtype, value] = t.values() else { continue };
        let (Some(elem), &Value::Int(tid), Some(attr)) =
            (elem.as_text(), tid, attr.as_text())
        else {
            continue;
        };
        groups
            .entry((elem.to_string(), tid))
            .or_default()
            .insert(attr.to_string(), decode_value(vtype, value));
    }
    for ((elem, _tid), attrs) in groups {
        let Some(layout) = target.instance_layout(&elem) else { continue };
        let vals: Vec<Value> = layout
            .iter()
            .map(|a| attrs.get(&a.name).cloned().unwrap_or(Value::Null))
            .collect();
        out.insert(&elem, Tuple::new(vals));
    }
    out
}

/// Copy 2: reshape ER triples into relational triples per the inheritance
/// strategy — the instance-level twin of the schema rules in
/// [`crate::er_rel`].
pub fn reshape_er_to_rel(
    er: &Schema,
    univ: &Database,
    strategy: InheritanceStrategy,
) -> Result<Database, ModelGenError> {
    let mut out = Database::new(format!("{}_reshaped", univ.name));
    let mut rel = Relation::new(universal_layout());
    let src = univ.relation("$univ").expect("universal relation present");

    // regroup by (elem, tid)
    let mut groups: BTreeMap<(String, i64), BTreeMap<String, (Value, Value)>> =
        BTreeMap::new();
    for t in src.iter() {
        let [elem, tid, attr, vtype, value] = t.values() else { continue };
        let (Some(elem), &Value::Int(tid), Some(attr)) =
            (elem.as_text(), tid, attr.as_text())
        else {
            continue;
        };
        groups
            .entry((elem.to_string(), tid))
            .or_default()
            .insert(attr.to_string(), (vtype.clone(), value.clone()));
    }

    let mut fresh_tid: i64 = 0;
    let emit = |rel: &mut Relation,
                    elem: &str,
                    tid: i64,
                    attr: &str,
                    vv: &(Value, Value)| {
        rel.insert(Tuple::new(vec![
            Value::text(elem),
            Value::Int(tid),
            Value::text(attr),
            vv.0.clone(),
            vv.1.clone(),
        ]));
    };

    for ((elem, _tid), attrs) in &groups {
        let Some(src_elem) = er.element(elem) else { continue };
        match &src_elem.kind {
            ElementKind::EntityType { .. } => {
                // most-derived type from the encoded $type attribute
                let derived = attrs
                    .get(TYPE_ATTR)
                    .and_then(|(_, v)| v.as_text())
                    .map_or_else(|| elem.clone(), str::to_string);
                let chain = er.ancestry(&derived).map_err(ModelGenError::Construction)?;
                let root = *chain.last().expect("ancestry non-empty");
                let key = hierarchy_key(er, root)?;
                match strategy {
                    InheritanceStrategy::Vertical => {
                        for level in &chain {
                            let tid = fresh_tid;
                            fresh_tid += 1;
                            for k in &key {
                                if let Some(vv) = attrs.get(&k.name) {
                                    emit(&mut rel, level, tid, &k.name, vv);
                                }
                            }
                            for a in &er.element(level).expect("chain member").attributes {
                                if key.iter().any(|k| k.name == a.name) {
                                    continue;
                                }
                                if let Some(vv) = attrs.get(&a.name) {
                                    emit(&mut rel, level, tid, &a.name, vv);
                                }
                            }
                        }
                    }
                    InheritanceStrategy::Horizontal => {
                        let tid = fresh_tid;
                        fresh_tid += 1;
                        for (attr, vv) in attrs {
                            if attr != TYPE_ATTR {
                                emit(&mut rel, &derived, tid, attr, vv);
                            }
                        }
                    }
                    InheritanceStrategy::Flat => {
                        let tid = fresh_tid;
                        fresh_tid += 1;
                        emit(
                            &mut rel,
                            root,
                            tid,
                            "type",
                            &(Value::text("text"), Value::text(derived.clone())),
                        );
                        for (attr, vv) in attrs {
                            if attr != TYPE_ATTR {
                                emit(&mut rel, root, tid, attr, vv);
                            }
                        }
                    }
                }
            }
            ElementKind::Association { .. } => {
                let tid = fresh_tid;
                fresh_tid += 1;
                if let Some(vv) = attrs.get("$from") {
                    emit(&mut rel, elem, tid, "from_key", vv);
                }
                if let Some(vv) = attrs.get("$to") {
                    emit(&mut rel, elem, tid, "to_key", vv);
                }
            }
            _ => {}
        }
    }
    out.insert_relation("$univ", rel);
    Ok(out)
}

/// The full three-copy pipeline: ER instance → universal → reshaped →
/// relational instance of `target_schema` (which must be the schema
/// produced by [`crate::er_rel::er_to_relational`] with the same
/// strategy).
pub fn three_copy_translate(
    er: &Schema,
    er_db: &Database,
    target_schema: &Schema,
    strategy: InheritanceStrategy,
) -> Result<Database, ModelGenError> {
    let univ = encode_universal(er, er_db);
    let reshaped = reshape_er_to_rel(er, &univ, strategy)?;
    Ok(decode_universal(target_schema, &reshaped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er_rel::er_to_relational;
    use mm_eval::materialize_views;
    use mm_metamodel::SchemaBuilder;

    fn person_er() -> Schema {
        SchemaBuilder::new("ER")
            .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .entity_sub("Employee", "Person", &[("Dept", DataType::Text)])
            .entity_sub("Customer", "Person", &[
                ("CreditScore", DataType::Int),
                ("BillingAddr", DataType::Text),
            ])
            .key("Person", &["Id"])
            .build()
            .unwrap()
    }

    fn person_db(er: &Schema) -> Database {
        let mut db = Database::empty_of(er);
        db.insert_entity("Person", "Person", vec![Value::Int(1), Value::text("pat")]);
        db.insert_entity(
            "Employee",
            "Employee",
            vec![Value::Int(2), Value::text("eve"), Value::text("hr")],
        );
        db.insert_entity(
            "Customer",
            "Customer",
            vec![
                Value::Int(3),
                Value::text("carl"),
                Value::Int(700),
                Value::text("5 Rue"),
            ],
        );
        db
    }

    #[test]
    fn encode_decode_roundtrips_relational_data() {
        let s = SchemaBuilder::new("S")
            .relation("R", &[("a", DataType::Int), ("b", DataType::Text)])
            .build()
            .unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("R", Tuple::from([Value::Int(1), Value::text("x")]));
        db.insert("R", Tuple::from([Value::Int(2), Value::Null]));
        let univ = encode_universal(&s, &db);
        let back = decode_universal(&s, &univ);
        assert_eq!(back.relation("R").unwrap().len(), 2);
        assert!(back.relation("R").unwrap().set_eq(db.relation("R").unwrap()));
    }

    /// The headline property behind EQ2: the generic three-copy pipeline
    /// and the directly compiled views produce the same relational
    /// instance, for every strategy.
    #[test]
    fn three_copy_agrees_with_compiled_views_all_strategies() {
        let er = person_er();
        let db = person_db(&er);
        for strategy in [
            InheritanceStrategy::Vertical,
            InheritanceStrategy::Horizontal,
            InheritanceStrategy::Flat,
        ] {
            let gen = er_to_relational(&er, strategy).unwrap();
            let direct = materialize_views(&gen.views, &er, &db).unwrap();
            let generic = three_copy_translate(&er, &db, &gen.schema, strategy).unwrap();
            for (name, rel) in direct.relations() {
                let g = generic.relation(name).unwrap_or_else(|| {
                    panic!("{strategy}: relation {name} missing from generic output")
                });
                assert!(
                    rel.set_eq(g),
                    "{strategy}: mismatch in {name}\ndirect:\n{rel}\ngeneric:\n{g}"
                );
            }
        }
    }

    #[test]
    fn vertical_reshape_spreads_entity_over_ancestor_tables() {
        let er = person_er();
        let db = person_db(&er);
        let gen = er_to_relational(&er, InheritanceStrategy::Vertical).unwrap();
        let out = three_copy_translate(&er, &db, &gen.schema, InheritanceStrategy::Vertical)
            .unwrap();
        // eve (employee) appears in both Person and Employee tables
        assert_eq!(out.relation("Person").unwrap().len(), 3);
        assert_eq!(out.relation("Employee").unwrap().len(), 1);
        assert_eq!(out.relation("Customer").unwrap().len(), 1);
    }

    #[test]
    fn value_codec_covers_all_types() {
        for v in [
            Value::Int(-5),
            Value::Double(2.5),
            Value::Bool(true),
            Value::text("hello"),
            Value::Date(19000),
            Value::Null,
            Value::Labeled(9),
        ] {
            let (t, s) = encode_value(&v);
            assert_eq!(decode_value(&t, &s), v, "roundtrip of {v}");
        }
    }
}
