//! Nesting introduction: relational → XML-like translation (the reverse
//! of shredding), completing the ModelGen repertoire across the paper's
//! §2 metamodel list (SQL ↔ ER/OO and SQL ↔ XML in both directions).
//!
//! A table with exactly one single-column foreign key into another table
//! becomes a nested collection of that parent; everything else stays a
//! flat relation. The instance mapping routes the foreign-key column into
//! the nested layout's `$parent` surrogate; relational rows carry no
//! document order, so the ordinal is synthesized as 0 (documented
//! information loss — order is an XML-only notion).

use crate::er_rel::{ModelGenError, ModelGenResult};
use mm_expr::{Expr, Mapping, MappingConstraint, Scalar, ViewDef, ViewSet};
use mm_metamodel::{Constraint, Element, ElementKind, Metamodel, Schema};

#[allow(clippy::expect_used)] // invariant-backed: see expect messages
/// Translate a flat relational schema into an XML-like schema by turning
/// single-FK tables into nested collections.
pub fn nest_relational(rel: &Schema) -> Result<ModelGenResult, ModelGenError> {
    let violations = Metamodel::Relational.violations(rel);
    if !violations.is_empty() {
        return Err(ModelGenError::WrongProfile {
            expected: Metamodel::Relational,
            violations: violations.iter().map(|v| v.to_string()).collect(),
        });
    }
    let xml_name = format!("{}_xml", rel.name);
    let mut xml = Schema::new(xml_name.clone());
    let mut mapping = Mapping::new(rel.name.clone(), xml_name.clone());
    let mut views = ViewSet::new(rel.name.clone(), xml_name.clone());

    // candidate nestings: table -> (parent, fk column) for tables with
    // exactly one single-column outgoing FK
    let mut nest_under: Vec<(String, String, String)> = Vec::new();
    for t in rel.elements() {
        let fks: Vec<_> = rel
            .constraints
            .iter()
            .filter_map(|c| match c {
                Constraint::ForeignKey(fk)
                    if fk.from == t.name && fk.from_attrs.len() == 1 && fk.to != t.name =>
                {
                    Some((fk.to.clone(), fk.from_attrs[0].clone()))
                }
                _ => None,
            })
            .collect();
        if let [(parent, col)] = fks.as_slice() {
            nest_under.push((t.name.clone(), parent.clone(), col.clone()));
        }
    }

    // parents (and plain tables) first so Nested edges validate
    for t in rel.elements() {
        if nest_under.iter().any(|(child, ..)| child == &t.name) {
            continue;
        }
        xml.add_element(Element {
            name: t.name.clone(),
            kind: ElementKind::Relation,
            attributes: t.attributes.clone(),
        })?;
        mapping.push(MappingConstraint::ExprEq {
            source: Expr::base(t.name.clone()),
            target: Expr::base(t.name.clone()),
        });
        views.push(ViewDef::new(t.name.clone(), Expr::base(t.name.clone())));
    }
    for (child, parent, fk_col) in &nest_under {
        let elem = rel.element(child).expect("enumerated");
        let attrs: Vec<_> = elem
            .attributes
            .iter()
            .filter(|a| &a.name != fk_col)
            .cloned()
            .collect();
        let attr_names: Vec<String> = attrs.iter().map(|a| a.name.clone()).collect();
        xml.add_element(Element {
            name: child.clone(),
            kind: ElementKind::Nested { parent: parent.clone() },
            attributes: attrs,
        })?;
        // nested instance layout: [$parent, attrs..., $ord]
        let mut cols = vec!["$parent".to_string()];
        cols.extend(attr_names);
        cols.push("$ord".to_string());
        let view = Expr::base(child.clone())
            .rename(&[(fk_col.as_str(), "$parent")])
            .extend("$ord", Scalar::lit(0i64))
            .project_owned(cols);
        mapping.push(MappingConstraint::ExprEq {
            source: view.clone(),
            target: Expr::base(child.clone()),
        });
        views.push(ViewDef::new(child.clone(), view));
    }
    Ok(ModelGenResult { schema: xml, mapping, views })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested::shred_nested;
    use mm_eval::materialize_views;
    use mm_instance::{Database, Tuple, Value};
    use mm_metamodel::{DataType, SchemaBuilder};

    fn rel() -> Schema {
        SchemaBuilder::new("DB")
            .relation("Order", &[("oid", DataType::Int), ("cust", DataType::Text)])
            .relation("Line", &[
                ("lid", DataType::Int),
                ("order_ref", DataType::Int),
                ("sku", DataType::Text),
            ])
            .relation("Audit", &[("ts", DataType::Date)])
            .key("Order", &["oid"])
            .foreign_key("Line", &["order_ref"], "Order", &["oid"])
            .build()
            .unwrap()
    }

    #[test]
    fn single_fk_table_becomes_nested() {
        let r = nest_relational(&rel()).unwrap();
        assert!(Metamodel::XmlLike.conforms(&r.schema));
        assert!(matches!(
            r.schema.element("Line").unwrap().kind,
            ElementKind::Nested { ref parent } if parent == "Order"
        ));
        // the FK column is absorbed into $parent
        let names: Vec<&str> = r.schema.element("Line").unwrap().attribute_names().collect();
        assert_eq!(names, ["lid", "sku"]);
        // fk-less tables pass through
        assert!(r.schema.element("Audit").unwrap().is_relation());
    }

    #[test]
    fn instance_translation_routes_fk_to_parent_surrogate() {
        let schema = rel();
        let r = nest_relational(&schema).unwrap();
        let mut db = Database::empty_of(&schema);
        db.insert("Order", Tuple::from([Value::Int(1), Value::text("acme")]));
        db.insert(
            "Line",
            Tuple::from([Value::Int(10), Value::Int(1), Value::text("bolt")]),
        );
        let xml_db = materialize_views(&r.views, &schema, &db).unwrap();
        let line = xml_db.relation("Line").unwrap();
        let row = line.iter().next().unwrap();
        // layout [$parent, lid, sku, $ord]
        assert_eq!(row.values()[0], Value::Int(1));
        assert_eq!(row.values()[2], Value::text("bolt"));
        assert_eq!(row.values()[3], Value::Int(0));
    }

    #[test]
    fn nest_then_shred_restores_a_relational_profile() {
        let r = nest_relational(&rel()).unwrap();
        let back = shred_nested(&r.schema).unwrap();
        assert!(Metamodel::Relational.conforms(&back.schema));
        // the child's surrogate column reappears flat
        let names: Vec<&str> =
            back.schema.element("Line").unwrap().attribute_names().collect();
        assert_eq!(names, ["parent_ref", "lid", "sku", "ord"]);
    }

    #[test]
    fn multi_fk_tables_stay_flat() {
        let s = SchemaBuilder::new("DB")
            .relation("A", &[("aid", DataType::Int)])
            .relation("B", &[("bid", DataType::Int)])
            .relation("Link", &[("a", DataType::Int), ("b", DataType::Int)])
            .foreign_key("Link", &["a"], "A", &["aid"])
            .foreign_key("Link", &["b"], "B", &["bid"])
            .build()
            .unwrap();
        let r = nest_relational(&s).unwrap();
        assert!(r.schema.element("Link").unwrap().is_relation());
    }
}
