//! Shredding XML-like nested collections into flat relations.

use crate::er_rel::{ModelGenError, ModelGenResult};
use mm_expr::{Expr, Mapping, MappingConstraint, ViewDef, ViewSet};
use mm_metamodel::{Attribute, DataType, Element, ElementKind, Metamodel, Schema};

/// Shred an XML-like schema (relations/root entities + nested
/// collections) into a flat relational schema. Each nested collection
/// becomes a relation with its surrogate parent reference and ordinal
/// made into explicit columns — exactly its instance layout, so the
/// instance-level mapping is the identity on each element.
pub fn shred_nested(xml: &Schema) -> Result<ModelGenResult, ModelGenError> {
    let violations = Metamodel::XmlLike.violations(xml);
    if !violations.is_empty() {
        return Err(ModelGenError::WrongProfile {
            expected: Metamodel::XmlLike,
            violations: violations.iter().map(|v| v.to_string()).collect(),
        });
    }
    let rel_name = format!("{}_rel", xml.name);
    let mut rel = Schema::new(rel_name.clone());
    let mut mapping = Mapping::new(xml.name.clone(), rel_name.clone());
    let mut views = ViewSet::new(xml.name.clone(), rel_name.clone());

    for e in xml.elements() {
        let attrs: Vec<Attribute> = match &e.kind {
            ElementKind::Relation => e.attributes.clone(),
            ElementKind::Nested { .. } => {
                let mut v = vec![Attribute::new("parent_ref", DataType::Any)];
                v.extend(e.attributes.iter().cloned());
                v.push(Attribute::new("ord", DataType::Int));
                v
            }
            ElementKind::EntityType { .. } => {
                // root entity (no inheritance by profile): flatten with a
                // type column is unnecessary — treat as plain relation
                e.attributes.clone()
            }
            ElementKind::Association { .. } => unreachable!("outside XmlLike profile"),
        };
        rel.add_element(Element {
            name: e.name.clone(),
            kind: ElementKind::Relation,
            attributes: attrs,
        })?;
        // the instance layouts align; express the view as the renamed scan
        let view = match &e.kind {
            ElementKind::Nested { .. } => Expr::base(e.name.clone())
                .rename(&[("$parent", "parent_ref"), ("$ord", "ord")]),
            ElementKind::EntityType { .. } => {
                let cols: Vec<String> =
                    e.attributes.iter().map(|a| a.name.clone()).collect();
                Expr::base(e.name.clone()).project_owned(cols)
            }
            _ => Expr::base(e.name.clone()),
        };
        mapping.push(MappingConstraint::ExprEq {
            source: view.clone(),
            target: Expr::base(e.name.clone()),
        });
        views.push(ViewDef::new(e.name.clone(), view));
    }
    Ok(ModelGenResult { schema: rel, mapping, views })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::SchemaBuilder;

    fn xml() -> Schema {
        SchemaBuilder::new("Doc")
            .relation("Order", &[("oid", DataType::Int), ("cust", DataType::Text)])
            .nested("Line", "Order", &[("sku", DataType::Text), ("qty", DataType::Int)])
            .build()
            .unwrap()
    }

    #[test]
    fn nested_becomes_relation_with_parent_and_ordinal() {
        let r = shred_nested(&xml()).unwrap();
        assert!(Metamodel::Relational.conforms(&r.schema));
        let line = r.schema.element("Line").unwrap();
        let names: Vec<&str> = line.attribute_names().collect();
        assert_eq!(names, ["parent_ref", "sku", "qty", "ord"]);
    }

    #[test]
    fn plain_relations_pass_through() {
        let r = shred_nested(&xml()).unwrap();
        let order = r.schema.element("Order").unwrap();
        let names: Vec<&str> = order.attribute_names().collect();
        assert_eq!(names, ["oid", "cust"]);
    }

    #[test]
    fn er_subtypes_rejected() {
        let bad = SchemaBuilder::new("X")
            .entity("P", &[("a", DataType::Int)])
            .entity_sub("C", "P", &[])
            .build()
            .unwrap();
        assert!(matches!(shred_nested(&bad), Err(ModelGenError::WrongProfile { .. })));
    }
}
