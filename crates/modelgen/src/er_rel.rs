//! ER → relational translation: inheritance elimination.

// Translator-internal lookups are guarded by construction (schemas and
// view sets built in this module); `expect` here documents invariants,
// not caller-facing failure modes (DESIGN.md §7).
#![allow(clippy::expect_used)]

use mm_expr::{entity_extent, Expr, Mapping, MappingConstraint, Predicate, Scalar, ViewDef, ViewSet};
use mm_metamodel::{
    Attribute, Constraint, DataType, Element, ElementKind, ForeignKey, Key, Metamodel,
    MetamodelError, Schema, TYPE_ATTR,
};
use std::fmt;

/// How is-a hierarchies map to tables. The paper (§3.2) calls for "a
/// flexible mapping of inheritance hierarchies to tables, which is needed
/// for complex enterprise applications"; these are the three classical
/// strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InheritanceStrategy {
    /// Table per type holding the key plus the type's *own* attributes
    /// (TPT). Reconstructing an entity joins the chain — the shape of the
    /// paper's Figure 2/3 example.
    Vertical,
    /// Table per concrete type holding *all* (inherited + own) attributes
    /// (TPC). No joins to reconstruct, but supertype queries union.
    Horizontal,
    /// Single table per hierarchy with a type discriminator and nullable
    /// subtype columns (TPH).
    Flat,
}

impl fmt::Display for InheritanceStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InheritanceStrategy::Vertical => "vertical",
            InheritanceStrategy::Horizontal => "horizontal",
            InheritanceStrategy::Flat => "flat",
        })
    }
}

/// Errors from ModelGen rules.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelGenError {
    /// The input schema does not conform to the expected source profile.
    WrongProfile { expected: Metamodel, violations: Vec<String> },
    /// An entity hierarchy has no usable key (no key constraint and no
    /// attributes on the root).
    NoKey(String),
    /// Schema construction failed (e.g. generated name collision).
    Construction(MetamodelError),
    /// Attribute name collision while flattening a hierarchy.
    AttributeCollision { hierarchy: String, attribute: String },
}

impl fmt::Display for ModelGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelGenError::WrongProfile { expected, violations } => {
                write!(f, "schema outside {expected} profile: {}", violations.join("; "))
            }
            ModelGenError::NoKey(h) => write!(f, "hierarchy `{h}` has no key"),
            ModelGenError::Construction(e) => write!(f, "construction: {e}"),
            ModelGenError::AttributeCollision { hierarchy, attribute } => {
                write!(f, "attribute `{attribute}` collides in hierarchy `{hierarchy}`")
            }
        }
    }
}

impl std::error::Error for ModelGenError {}

impl From<MetamodelError> for ModelGenError {
    fn from(e: MetamodelError) -> Self {
        ModelGenError::Construction(e)
    }
}

/// The output of a ModelGen rule application: the translated schema, the
/// declarative mapping constraints between source and target, and the
/// forward transformation (target relations as queries over the source).
#[derive(Debug, Clone)]
pub struct ModelGenResult {
    pub schema: Schema,
    pub mapping: Mapping,
    pub views: ViewSet,
}

/// The key attributes of the hierarchy rooted at `root`: the root's key
/// constraint if present, otherwise its first attribute.
pub fn hierarchy_key(schema: &Schema, root: &str) -> Result<Vec<Attribute>, ModelGenError> {
    let attrs = schema.all_attributes(root).map_err(ModelGenError::Construction)?;
    for c in &schema.constraints {
        if let Constraint::Key(Key { element, attributes }) = c {
            if element == root {
                let key: Option<Vec<Attribute>> = attributes
                    .iter()
                    .map(|k| attrs.iter().find(|a| &a.name == k).cloned())
                    .collect();
                if let Some(k) = key {
                    return Ok(k);
                }
            }
        }
    }
    attrs
        .first()
        .cloned()
        .map(|a| vec![a])
        .ok_or_else(|| ModelGenError::NoKey(root.to_string()))
}

fn check_profile(schema: &Schema, expected: Metamodel) -> Result<(), ModelGenError> {
    let violations = expected.violations(schema);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(ModelGenError::WrongProfile {
            expected,
            violations: violations.iter().map(|v| v.to_string()).collect(),
        })
    }
}

/// Translate an ER schema (entity types + associations) into a flat
/// relational schema, with mapping constraints and forward views.
pub fn er_to_relational(
    er: &Schema,
    strategy: InheritanceStrategy,
) -> Result<ModelGenResult, ModelGenError> {
    check_profile(er, Metamodel::EntityRelationship)?;
    let rel_name = format!("{}_rel", er.name);
    let mut rel = Schema::new(rel_name.clone());
    let mut mapping = Mapping::new(er.name.clone(), rel_name.clone());
    let mut views = ViewSet::new(er.name.clone(), rel_name.clone());

    let roots: Vec<&Element> = er.roots().collect();
    for root in &roots {
        let key = hierarchy_key(er, &root.name)?;
        match strategy {
            InheritanceStrategy::Vertical => {
                translate_vertical(er, &root.name, &key, &mut rel, &mut mapping, &mut views)?
            }
            InheritanceStrategy::Horizontal => {
                translate_horizontal(er, &root.name, &mut rel, &mut mapping, &mut views)?
            }
            InheritanceStrategy::Flat => {
                translate_flat(er, &root.name, &key, &mut rel, &mut mapping, &mut views)?
            }
        }
    }

    // associations become link tables over the ends' keys
    for e in er.elements() {
        if let ElementKind::Association { from, to, .. } = &e.kind {
            let from_root = er.ancestry(from).map_err(ModelGenError::Construction)?;
            let to_root = er.ancestry(to).map_err(ModelGenError::Construction)?;
            let fk_ty = |root_chain: &[&str]| -> Result<DataType, ModelGenError> {
                let root = root_chain.last().expect("ancestry non-empty");
                Ok(hierarchy_key(er, root)?[0].ty)
            };
            rel.add_element(Element {
                name: e.name.clone(),
                kind: ElementKind::Relation,
                attributes: vec![
                    Attribute::new("from_key", fk_ty(&from_root)?),
                    Attribute::new("to_key", fk_ty(&to_root)?),
                ],
            })?;
            let link = Expr::base(e.name.clone())
                .rename(&[("$from", "from_key"), ("$to", "to_key")]);
            mapping.push(MappingConstraint::ExprEq {
                source: link.clone(),
                target: Expr::base(e.name.clone()),
            });
            views.push(ViewDef::new(e.name.clone(), link));
        }
    }

    Ok(ModelGenResult { schema: rel, mapping, views })
}

/// TPT: one table per type with the key + own attributes; subtype tables
/// foreign-key into their parent's table.
fn translate_vertical(
    er: &Schema,
    root: &str,
    key: &[Attribute],
    rel: &mut Schema,
    mapping: &mut Mapping,
    views: &mut ViewSet,
) -> Result<(), ModelGenError> {
    for ty in er.subtree(root) {
        let elem = er.element(ty).expect("subtree member exists");
        let mut cols: Vec<Attribute> = key.to_vec();
        for a in &elem.attributes {
            if cols.iter().any(|c| c.name == a.name) {
                // key attribute re-declared locally (root case) — skip dup
                if ty != root {
                    return Err(ModelGenError::AttributeCollision {
                        hierarchy: root.to_string(),
                        attribute: a.name.clone(),
                    });
                }
                continue;
            }
            cols.push(a.clone());
        }
        let col_names: Vec<String> = cols.iter().map(|c| c.name.clone()).collect();
        rel.add_element(Element {
            name: ty.to_string(),
            kind: ElementKind::Relation,
            attributes: cols,
        })?;
        rel.add_constraint(Constraint::Key(Key {
            element: ty.to_string(),
            attributes: key.iter().map(|k| k.name.clone()).collect(),
        }))?;
        if let Some(parent) = er.parent_of(ty) {
            rel.add_constraint(Constraint::ForeignKey(ForeignKey {
                from: ty.to_string(),
                from_attrs: key.iter().map(|k| k.name.clone()).collect(),
                to: parent.to_string(),
                to_attrs: key.iter().map(|k| k.name.clone()).collect(),
            }))?;
        }
        // π_{key ∪ own}(ext(ty)) = table ty
        let src = entity_extent(er, ty)
            .expect("entity type checked")
            .project_owned(col_names);
        mapping.push(MappingConstraint::ExprEq {
            source: src.clone(),
            target: Expr::base(ty),
        });
        views.push(ViewDef::new(ty, src));
    }
    Ok(())
}

/// TPC: one table per type with all flattened attributes; rows are the
/// entities whose most-derived type is exactly that type.
fn translate_horizontal(
    er: &Schema,
    root: &str,
    rel: &mut Schema,
    mapping: &mut Mapping,
    views: &mut ViewSet,
) -> Result<(), ModelGenError> {
    for ty in er.subtree(root) {
        let cols = er.all_attributes(ty).map_err(ModelGenError::Construction)?;
        let col_names: Vec<String> = cols.iter().map(|c| c.name.clone()).collect();
        rel.add_element(Element {
            name: ty.to_string(),
            kind: ElementKind::Relation,
            attributes: cols,
        })?;
        // π_attrs(σ_{IS OF ONLY ty}(ext(ty))) = table ty
        let src = entity_extent(er, ty)
            .expect("entity type checked")
            .select(Predicate::IsOf { ty: ty.to_string(), only: true })
            .project_owned(col_names);
        mapping.push(MappingConstraint::ExprEq {
            source: src.clone(),
            target: Expr::base(ty),
        });
        views.push(ViewDef::new(ty, src));
    }
    Ok(())
}

/// TPH: one table per hierarchy with a `type` discriminator column and
/// nullable columns for every subtype attribute.
fn translate_flat(
    er: &Schema,
    root: &str,
    key: &[Attribute],
    rel: &mut Schema,
    mapping: &mut Mapping,
    views: &mut ViewSet,
) -> Result<(), ModelGenError> {
    // collect all attributes of the subtree; root attrs stay mandatory,
    // subtype attrs become nullable
    let mut cols: Vec<Attribute> = vec![Attribute::new("type", DataType::Text)];
    let root_attrs = er.all_attributes(root).map_err(ModelGenError::Construction)?;
    cols.extend(root_attrs.iter().cloned());
    for ty in er.subtree(root) {
        if ty == root {
            continue;
        }
        for a in &er.element(ty).expect("subtree member").attributes {
            if cols.iter().any(|c| c.name == a.name) {
                return Err(ModelGenError::AttributeCollision {
                    hierarchy: root.to_string(),
                    attribute: a.name.clone(),
                });
            }
            cols.push(Attribute::nullable(a.name.clone(), a.ty));
        }
    }
    let all_names: Vec<String> = cols.iter().map(|c| c.name.clone()).collect();
    rel.add_element(Element {
        name: root.to_string(),
        kind: ElementKind::Relation,
        attributes: cols.clone(),
    })?;
    rel.add_constraint(Constraint::Key(Key {
        element: root.to_string(),
        attributes: key.iter().map(|k| k.name.clone()).collect(),
    }))?;

    // forward view: union over types of (σ ONLY ty (ext(ty))) padded with
    // NULLs for the columns the type lacks, with $type renamed to `type`
    let mut union: Option<Expr> = None;
    for ty in er.subtree(root) {
        let ty_attrs = er.all_attributes(ty).map_err(ModelGenError::Construction)?;
        let mut branch = entity_extent(er, ty)
            .expect("entity type checked")
            .select(Predicate::IsOf { ty: ty.to_string(), only: true })
            .rename(&[(TYPE_ATTR, "type")]);
        for c in &cols {
            if c.name != "type" && !ty_attrs.iter().any(|a| a.name == c.name) {
                branch = branch.extend(&c.name, Scalar::Lit(mm_expr::Lit::Null));
            }
        }
        let branch = branch.project_owned(all_names.clone());
        union = Some(match union {
            None => branch,
            Some(u) => u.union(branch),
        });

        // per-type mapping constraint: slice of the flat table equals the
        // type's exact extent
        let mut slice_cols: Vec<String> = key.iter().map(|k| k.name.clone()).collect();
        for a in &ty_attrs {
            if !slice_cols.contains(&a.name) {
                slice_cols.push(a.name.clone());
            }
        }
        mapping.push(MappingConstraint::ExprEq {
            source: entity_extent(er, ty)
                .expect("entity type checked")
                .select(Predicate::IsOf { ty: ty.to_string(), only: true })
                .project_owned(slice_cols.clone()),
            target: Expr::base(root)
                .select(Predicate::col_eq_lit("type", ty))
                .project_owned(slice_cols),
        });
    }
    views.push(ViewDef::new(root, union.expect("at least the root type")));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::SchemaBuilder;

    fn person_er() -> Schema {
        SchemaBuilder::new("ER")
            .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .entity_sub("Employee", "Person", &[("Dept", DataType::Text)])
            .entity_sub("Customer", "Person", &[
                ("CreditScore", DataType::Int),
                ("BillingAddr", DataType::Text),
            ])
            .key("Person", &["Id"])
            .build()
            .unwrap()
    }

    #[test]
    fn vertical_produces_table_per_type_with_own_attrs() {
        let r = er_to_relational(&person_er(), InheritanceStrategy::Vertical).unwrap();
        assert!(Metamodel::Relational.conforms(&r.schema));
        let person = r.schema.element("Person").unwrap();
        let names: Vec<&str> = person.attribute_names().collect();
        assert_eq!(names, ["Id", "Name"]);
        let emp = r.schema.element("Employee").unwrap();
        let names: Vec<&str> = emp.attribute_names().collect();
        assert_eq!(names, ["Id", "Dept"]);
        // subtype tables FK into parent
        assert!(r.schema.constraints.iter().any(|c| matches!(
            c,
            Constraint::ForeignKey(fk) if fk.from == "Employee" && fk.to == "Person"
        )));
        assert_eq!(r.mapping.len(), 3);
        assert_eq!(r.views.len(), 3);
    }

    #[test]
    fn horizontal_tables_carry_inherited_attrs() {
        let r = er_to_relational(&person_er(), InheritanceStrategy::Horizontal).unwrap();
        let emp = r.schema.element("Employee").unwrap();
        let names: Vec<&str> = emp.attribute_names().collect();
        assert_eq!(names, ["Id", "Name", "Dept"]);
    }

    #[test]
    fn flat_single_table_with_discriminator_and_nullable_subtype_cols() {
        let r = er_to_relational(&person_er(), InheritanceStrategy::Flat).unwrap();
        assert_eq!(r.schema.len(), 1);
        let t = r.schema.element("Person").unwrap();
        let names: Vec<&str> = t.attribute_names().collect();
        assert_eq!(names, ["type", "Id", "Name", "CreditScore", "BillingAddr", "Dept"]);
        assert!(t.attribute("Dept").unwrap().nullable);
        assert!(!t.attribute("Name").unwrap().nullable);
        // one view for the whole hierarchy, three per-type constraints
        assert_eq!(r.views.len(), 1);
        assert_eq!(r.mapping.len(), 3);
    }

    #[test]
    fn association_becomes_link_table() {
        let er = SchemaBuilder::new("ER")
            .entity("A", &[("aid", DataType::Int)])
            .entity("B", &[("bid", DataType::Text)])
            .association("AB", "A", "B", mm_metamodel::Cardinality::One, mm_metamodel::Cardinality::Many)
            .build()
            .unwrap();
        let r = er_to_relational(&er, InheritanceStrategy::Vertical).unwrap();
        let ab = r.schema.element("AB").unwrap();
        assert!(ab.is_relation());
        assert_eq!(ab.attribute("from_key").unwrap().ty, DataType::Int);
        assert_eq!(ab.attribute("to_key").unwrap().ty, DataType::Text);
    }

    #[test]
    fn non_er_input_rejected() {
        let s = SchemaBuilder::new("S")
            .relation("T", &[("a", DataType::Int)])
            .build()
            .unwrap();
        assert!(matches!(
            er_to_relational(&s, InheritanceStrategy::Vertical),
            Err(ModelGenError::WrongProfile { .. })
        ));
    }

    #[test]
    fn flat_attribute_collision_detected() {
        let er = SchemaBuilder::new("ER")
            .entity("P", &[("Id", DataType::Int)])
            .entity_sub("A", "P", &[("X", DataType::Int)])
            .entity_sub("B", "P", &[("X", DataType::Text)])
            .build()
            .unwrap();
        assert!(matches!(
            er_to_relational(&er, InheritanceStrategy::Flat),
            Err(ModelGenError::AttributeCollision { .. })
        ));
    }

    #[test]
    fn hierarchy_key_prefers_key_constraint() {
        let er = SchemaBuilder::new("ER")
            .entity("P", &[("A", DataType::Int), ("B", DataType::Text)])
            .key("P", &["B"])
            .build()
            .unwrap();
        let k = hierarchy_key(&er, "P").unwrap();
        assert_eq!(k[0].name, "B");
        let er2 = SchemaBuilder::new("ER")
            .entity("P", &[("A", DataType::Int), ("B", DataType::Text)])
            .build()
            .unwrap();
        assert_eq!(hierarchy_key(&er2, "P").unwrap()[0].name, "A");
    }

    #[test]
    fn mapping_constraints_shape_matches_fig2() {
        // vertical on the paper's example: constraints are equalities of
        // a projected/selected entity expression and a bare table
        let r = er_to_relational(&person_er(), InheritanceStrategy::Vertical).unwrap();
        for c in &r.mapping.constraints {
            match c {
                MappingConstraint::ExprEq { target, .. } => {
                    assert!(matches!(target, Expr::Base(_)));
                }
                other => panic!("unexpected constraint {other}"),
            }
        }
    }
}
