//! mm-parallel: a work-stealing worker pool with a deterministic merge
//! order.
//!
//! The pool runs `items` independent tasks across up to `threads` OS
//! threads (scoped — no detached workers, no global state) and hands the
//! results back **sorted by item index**, so callers observe exactly the
//! order a sequential `for` loop would have produced regardless of how
//! the items were distributed or stolen. That property is what lets the
//! parallel chase and parallel CQ evaluation promise bit-identical
//! output to their sequential oracles: parallelism here changes *when*
//! work happens, never *what* the caller sees.
//!
//! Scheduling is classic work stealing over the vendored
//! [`crossbeam::deque`]: each worker owns a FIFO deque seeded with a
//! contiguous block of item indexes (block assignment keeps neighbouring
//! items — usually neighbouring data — on one worker) and, when its own
//! deque drains, steals from the back of its peers' deques in a fixed
//! round-robin scan. Steal counts are recorded for telemetry.
//!
//! Failure model: the first task to return an error flips a shared abort
//! flag; in-flight tasks finish, queued tasks are dropped, and the error
//! with the smallest item index **among those encountered** is reported.
//! Which indexes ran before the abort landed is scheduling-dependent, so
//! callers must not key behaviour off *which* error surfaces — in this
//! workspace every parallel caller maps worker errors to the same
//! budget/cancel trip, so the distinction is invisible. Cooperative
//! cancellation from inside tasks goes through the same flag via
//! [`PoolCtx::abort`].

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crossbeam::deque::{Steal, Stealer, Worker};

/// Number of hardware threads available to this process, with a floor
/// of 1. The `EngineConfig::threads` default.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Shared state visible to every task in one [`map_indexed`] run.
pub struct PoolCtx {
    abort: AtomicBool,
    steals: AtomicU64,
    tasks: AtomicU64,
}

impl PoolCtx {
    fn new() -> Self {
        PoolCtx {
            abort: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
        }
    }

    /// Ask every worker to stop picking up new tasks. In-flight tasks
    /// run to completion; the pool still merges whatever finished.
    pub fn abort(&self) {
        self.abort.store(true, Ordering::Release);
    }

    /// Whether some task (or the caller) requested an abort. Long
    /// tasks may poll this to bail out early.
    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }
}

/// Post-run scheduling statistics, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolRun {
    /// Threads that participated (1 = degraded to the sequential path).
    pub workers: usize,
    /// Successful steals across all workers.
    pub steals: u64,
    /// Tasks actually executed (< items when aborted early).
    pub tasks: u64,
}

impl PoolRun {
    /// Fold another run's statistics into this one, keeping the widest
    /// worker count (used when one logical operation spans many pool
    /// invocations, e.g. one per chase round).
    pub fn absorb(&mut self, other: PoolRun) {
        self.workers = self.workers.max(other.workers);
        self.steals += other.steals;
        self.tasks += other.tasks;
    }
}

/// Run `f(0..items)` across up to `threads` workers and return the
/// successful results **sorted by item index**, plus scheduling stats.
///
/// * `threads <= 1` or `items <= 1` degrades to an inline sequential
///   loop on the calling thread — no spawns, identical semantics.
/// * On error, the smallest-index error among those encountered wins
///   and remaining queued items are dropped.
/// * On success the result vector has exactly `items` entries unless a
///   task called [`PoolCtx::abort`], in which case it holds the
///   completed prefix-by-index of whatever finished.
pub fn map_indexed<T, E, F>(threads: usize, items: usize, f: F) -> (Result<Vec<T>, E>, PoolRun)
where
    T: Send,
    E: Send,
    F: Fn(usize, &PoolCtx) -> Result<T, E> + Sync,
{
    let ctx = PoolCtx::new();
    if threads <= 1 || items <= 1 {
        return sequential(items, &f, &ctx);
    }
    let workers = threads.min(items);

    // Seed each worker's deque with a contiguous block of indexes.
    let queues: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = queues.iter().map(Worker::stealer).collect();
    for (w, q) in queues.iter().enumerate() {
        let lo = w * items / workers;
        let hi = (w + 1) * items / workers;
        for idx in lo..hi {
            q.push(idx);
        }
    }

    type WorkerOut<T, E> = (Vec<(usize, T)>, Option<(usize, E)>);
    let run_worker = |me: usize, own: Worker<usize>| -> WorkerOut<T, E> {
        let mut done: Vec<(usize, T)> = Vec::new();
        let mut first_err: Option<(usize, E)> = None;
        loop {
            if ctx.aborted() {
                break;
            }
            let idx = match own.pop() {
                Some(idx) => Some(idx),
                None => steal_one(me, workers, &stealers, &ctx),
            };
            let Some(idx) = idx else { break };
            ctx.tasks.fetch_add(1, Ordering::Relaxed);
            match f(idx, &ctx) {
                Ok(v) => done.push((idx, v)),
                Err(e) => {
                    first_err = Some((idx, e));
                    ctx.abort();
                    break;
                }
            }
        }
        (done, first_err)
    };

    let joined: Vec<WorkerOut<T, E>> = match crossbeam::scope(|s| {
        let mut queues = queues;
        // The calling thread doubles as worker 0; spawn the rest.
        let own0 = queues.remove(0);
        let handles: Vec<_> = queues
            .into_iter()
            .enumerate()
            .map(|(i, own)| {
                let run_worker = &run_worker;
                s.spawn(move |_| run_worker(i + 1, own))
            })
            .collect();
        let mut outs = vec![run_worker(0, own0)];
        for h in handles {
            match h.join() {
                Ok(out) => outs.push(out),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        outs
    }) {
        Ok(outs) => outs,
        Err(payload) => std::panic::resume_unwind(payload),
    };

    let run = PoolRun {
        workers,
        steals: ctx.steals.load(Ordering::Relaxed),
        tasks: ctx.tasks.load(Ordering::Relaxed),
    };

    // Deterministic merge: errors and results both resolve by item
    // index, so the outcome is independent of scheduling.
    let mut first_err: Option<(usize, E)> = None;
    let mut done: Vec<(usize, T)> = Vec::new();
    for (ok, err) in joined {
        done.extend(ok);
        if let Some((idx, e)) = err {
            match &first_err {
                Some((best, _)) if *best <= idx => {}
                _ => first_err = Some((idx, e)),
            }
        }
    }
    if let Some((_, e)) = first_err {
        return (Err(e), run);
    }
    done.sort_by_key(|(idx, _)| *idx);
    (Ok(done.into_iter().map(|(_, v)| v).collect()), run)
}

fn sequential<T, E, F>(items: usize, f: &F, ctx: &PoolCtx) -> (Result<Vec<T>, E>, PoolRun)
where
    F: Fn(usize, &PoolCtx) -> Result<T, E>,
{
    let mut out = Vec::with_capacity(items);
    let mut tasks = 0;
    let mut err = None;
    for idx in 0..items {
        if ctx.aborted() {
            break;
        }
        tasks += 1;
        match f(idx, ctx) {
            Ok(v) => out.push(v),
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    let run = PoolRun {
        workers: 1,
        steals: 0,
        tasks,
    };
    match err {
        Some(e) => (Err(e), run),
        None => (Ok(out), run),
    }
}

/// Scan peers in a fixed round-robin order starting after `me` and
/// steal one task. Returns `None` when every deque is empty.
fn steal_one(
    me: usize,
    workers: usize,
    stealers: &[Stealer<usize>],
    ctx: &PoolCtx,
) -> Option<usize> {
    loop {
        let mut retry = false;
        for off in 1..workers {
            let victim = (me + off) % workers;
            match stealers[victim].steal() {
                Steal::Success(idx) => {
                    ctx.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(idx);
                }
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        for threads in [1, 2, 4, 8] {
            let (out, run) = map_indexed::<_, (), _>(threads, 100, |i, _| {
                if i % 7 == 0 {
                    std::thread::yield_now();
                }
                Ok(i * i)
            });
            let out = match out {
                Ok(v) => v,
                Err(()) => unreachable!(),
            };
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(run.tasks, 100);
            assert!(run.workers <= threads.max(1));
        }
    }

    #[test]
    fn smallest_index_error_wins() {
        let (out, _run) = map_indexed::<u32, usize, _>(4, 64, |i, _| {
            if i >= 10 {
                Err(i)
            } else {
                Ok(0)
            }
        });
        match out {
            // The reported error is the smallest-index one *encountered*;
            // which ones ran before the abort landed is scheduling-
            // dependent, but every candidate is a real error site.
            Err(idx) => assert!(idx >= 10, "error index {idx} was never seeded"),
            Ok(_) => panic!("expected an error"),
        }
    }

    #[test]
    fn abort_stops_pickup_of_queued_items() {
        // Every task aborts, so each worker runs at most its first
        // pickup before the top-of-loop check stops it — a scheduling-
        // independent bound, unlike aborting from one designated item.
        let (out, run) = map_indexed::<usize, (), _>(2, 1000, |i, ctx| {
            ctx.abort();
            Ok(i)
        });
        let out = match out {
            Ok(v) => v,
            Err(()) => unreachable!(),
        };
        assert!(out.len() <= 2, "abort should drop queued work");
        assert!(run.tasks <= 2);
    }

    #[test]
    fn degrades_to_sequential_for_tiny_inputs() {
        let (out, run) = map_indexed::<_, (), _>(8, 1, |i, _| Ok(i));
        assert_eq!(out.ok(), Some(vec![0]));
        assert_eq!(run.workers, 1);
        assert_eq!(run.steals, 0);
    }
}
