//! Regenerate every experiment table (DESIGN.md per-experiment index).
//!
//! ```sh
//! cargo run --release -p mm-bench --bin report
//! ```
//!
//! Prints the EF (figure reproduction) statuses and the EQ (quantitative)
//! tables recorded in EXPERIMENTS.md. Shapes — who wins, by what factor,
//! where crossovers fall — are asserted inline; absolute numbers depend on
//! the machine.

use mm_bench::*;
use mm_engine::prelude::InheritanceStrategy;

fn main() {
    println!("# model-management experiment report\n");
    ef_status();
    eq1();
    eq2();
    eq3();
    eq4();
    eq5();
    eq6();
    eq7();
    eq8();
    eq9();
    eq10();
    println!("\nreport complete.");
}

/// EF1–EF6 are correctness reproductions; they are enforced by the test
/// suite (`cargo test`), so the report just names their witnesses.
fn ef_status() {
    println!("## EF1-EF6 — figure reproductions (verified by `cargo test`)\n");
    for (id, what, witness) in [
        ("EF1", "Figure 1 architecture / operator tour", "tests/architecture.rs"),
        ("EF2", "Figure 2 mapping constraints", "tests/fig2_fig3_inheritance.rs::ef2_*"),
        ("EF3", "Figure 3 generated query", "tests/fig2_fig3_inheritance.rs::ef3_*"),
        ("EF4", "Figure 4 correspondences as constraints", "tests/fig4_snowflake.rs"),
        ("EF5", "Figure 5 evolution script", "tests/fig5_fig6_evolution.rs::ef5_*"),
        ("EF6", "Figure 6 composition formula", "tests/fig5_fig6_evolution.rs::ef6_*"),
    ] {
        println!("  {id}  {what:<44} {witness}");
    }
    println!();
}

fn eq1() {
    println!("## EQ1 — SO-tgd composition blowup (Fagin et al. exponential lower bound)\n");
    println!("  producers  body_atoms  clauses  atoms  compose_ms  deskolemizable");
    for (p, b) in [(1, 2), (2, 2), (2, 4), (2, 6), (2, 8), (3, 4), (4, 4), (4, 6)] {
        let row = eq1_compose_point(p, b);
        println!(
            "  {:>9}  {:>10}  {:>7}  {:>5}  {:>10.3}  {}",
            row.producers, row.body_atoms, row.clauses, row.atoms, row.compose_ms,
            row.deskolemizable
        );
        assert_eq!(row.clauses, p.pow(b as u32), "splice must be exactly p^b");
    }
    println!("  shape: clauses = producers^body_atoms (exponential), as the paper cites.\n");
}

fn eq2() {
    println!("## EQ2 — compiled transformation vs generic three-copy translation\n");
    println!("  strategy    types  entities  direct_ms  three_copy_ms  slowdown  agree");
    for strategy in [
        InheritanceStrategy::Vertical,
        InheritanceStrategy::Horizontal,
        InheritanceStrategy::Flat,
    ] {
        for (depth, fanout, per_type) in [(2, 2, 200), (2, 3, 200), (3, 2, 200)] {
            let row = eq2_modelgen_point(depth, fanout, per_type, strategy);
            let slowdown = row.three_copy_ms / row.direct_ms.max(1e-9);
            println!(
                "  {:<10}  {:>5}  {:>8}  {:>9.2}  {:>13.2}  {:>7.1}x  {}",
                row.strategy.to_string(),
                row.types,
                row.entities,
                row.direct_ms,
                row.three_copy_ms,
                slowdown,
                row.agree
            );
            assert!(row.agree, "three-copy must agree with compiled views");
        }
    }
    println!("  shape: the generic pipeline pays a constant-factor penalty (the paper's");
    println!("  \"rather inefficient for data exchange\"); both produce identical instances.\n");
}

fn eq3() {
    println!("## EQ3 — matcher: top-1 accuracy vs top-k candidate lists\n");
    println!("  strength  flooding  pairs  top1_prec  top1_rec  hit@1  hit@3  hit@5  ms");
    for flooding in [false, true] {
        for strength in [0.2, 0.5, 0.8] {
            // average over seeds for stability
            let rows: Vec<_> =
                (0..5).map(|s| eq3_matcher_point(s, strength, flooding)).collect();
            let n = rows.len() as f64;
            let avg = |f: &dyn Fn(&Eq3Row) -> f64| rows.iter().map(f).sum::<f64>() / n;
            println!(
                "  {:>8.1}  {:>8}  {:>5.0}  {:>9.2}  {:>8.2}  {:>5.2}  {:>5.2}  {:>5.2}  {:>4.1}",
                strength,
                flooding,
                avg(&|r| r.truth_pairs as f64),
                avg(&|r| r.top1_precision),
                avg(&|r| r.top1_recall),
                avg(&|r| r.topk_hit[0]),
                avg(&|r| r.topk_hit[2]),
                avg(&|r| r.topk_hit[4]),
                avg(&|r| r.match_ms),
            );
        }
    }
    println!("  shape: hit@5 dominates hit@1 — presenting all viable candidates (§3.1.1)");
    println!("  recovers matches that top-1 ranking misses, more so as perturbation grows.\n");
}

fn eq4() {
    println!("## EQ4 — TransGen compile + roundtrip verification\n");
    println!("  types  fragments  compile_ms  verify_ms  roundtrips");
    for (depth, fanout) in [(1, 2), (2, 2), (2, 3), (3, 2)] {
        let row = eq4_transgen_point(depth, fanout, 50);
        println!(
            "  {:>5}  {:>9}  {:>10.2}  {:>9.2}  {}",
            row.types, row.fragments, row.compile_ms, row.verify_ms, row.roundtrips
        );
        assert!(row.roundtrips, "generated mappings must roundtrip");
    }
    println!("  shape: compilation is fast; dynamic verification scales with data and");
    println!("  dominates — the motivation for the static coverage check.\n");
}

fn eq5() {
    println!("## EQ5 — incremental maintenance vs recompute (notifications, §5)\n");
    println!("  base_rows  batch  incremental_ms  recompute_ms  winner");
    for base in [2_000usize, 10_000] {
        for batch in [1usize, 10, 100, 1_000] {
            let row = eq5_ivm_point(base, batch);
            assert!(row.agree, "IVM must agree with recompute");
            let winner = if row.incremental_ms < row.recompute_ms {
                "incremental"
            } else {
                "recompute"
            };
            println!(
                "  {:>9}  {:>5}  {:>14.2}  {:>12.2}  {winner}",
                row.base_rows, row.batch, row.incremental_ms, row.recompute_ms
            );
        }
    }
    println!("  shape: small deltas favor incremental maintenance; as the batch");
    println!("  approaches the base size the advantage shrinks toward recompute.\n");
}

fn eq6() {
    println!("## EQ6 — peer-to-peer mediation: chained vs collapsed (§5)\n");
    println!("  hops  rows  chained_ms  collapse_once_ms  collapsed_query_ms");
    for hops in [1usize, 4, 8, 16] {
        let row = eq6_mediation_point(hops, 20_000);
        assert!(row.agree);
        println!(
            "  {:>4}  {:>4}k  {:>10.2}  {:>16.3}  {:>18.2}",
            row.hops,
            row.rows / 1000,
            row.chained_ms,
            row.collapse_once_ms,
            row.collapsed_query_ms
        );
    }
    println!("  shape: per-query costs stay close because unfolding collapses the chain");
    println!("  syntactically either way; pre-composing (design time) moves the rewrite");
    println!("  cost out of the per-query path, so it pays off once amortized.\n");
}

fn eq7() {
    println!("## EQ7 — chase-based exchange vs compiled copy views\n");
    println!("  relations  rows  chase_ms  compiled_ms  certain_ms  agree");
    for (relations, rows) in [(2usize, 500usize), (4, 500), (4, 2_000), (8, 2_000)] {
        let row = eq7_exchange_point(relations, rows);
        println!(
            "  {:>9}  {:>4}  {:>8.2}  {:>11.2}  {:>10.2}  {}",
            row.relations,
            row.rows,
            row.chase_ms,
            row.compiled_ms,
            row.certain_ms,
            row.agree
        );
        assert!(row.agree, "chase must agree with compiled copies on full tgds");
    }
    println!("  shape: for functional mappings the compiled transformation wins by a");
    println!("  wide factor — generating transformations (TransGen, §4) beats chasing");
    println!("  when the mapping admits it; the chase remains the general fallback.\n");
}

fn eq8() {
    println!("## EQ8 — Merge scaling (§6.3)\n");
    println!("  elements  attributes  match_ms  merge_ms  merged_elements");
    for (relations, attrs) in [(4usize, 4usize), (8, 6), (16, 8), (32, 8)] {
        let row = eq8_merge_point(relations, attrs);
        println!(
            "  {:>8}  {:>10}  {:>8.1}  {:>8.2}  {:>15}",
            row.elements, row.attributes, row.match_ms, row.merge_ms, row.merged_elements
        );
        assert!(row.merged_elements >= row.elements);
    }
    println!("  shape: merge itself is near-linear; the quadratic pairwise match");
    println!("  dominates end-to-end schema integration time.\n");
}

fn eq9() {
    println!("## EQ9 — algebraic optimizer ablation (§4 \"optimization opportunities\")\n");
    println!("  rows  plain_ops  opt_ops  plain_ms  optimized_ms  speedup  agree");
    for rows in [5_000usize, 20_000, 80_000] {
        let row = eq9_optimizer_point(rows);
        assert!(row.agree, "optimizer must preserve semantics");
        println!(
            "  {:>4}k  {:>9}  {:>7}  {:>8.2}  {:>12.2}  {:>6.1}x  {}",
            row.rows / 1000,
            row.plain_size,
            row.optimized_size,
            row.plain_ms,
            row.optimized_ms,
            row.plain_ms / row.optimized_ms.max(1e-9),
            row.agree
        );
    }
    println!("  shape: predicate pushdown + column pruning shrink the join's inputs,");
    println!("  so the selective query speeds up by a growing factor with data size.\n");
}

fn eq10() {
    println!("## EQ10 — match memory across sequential projects (§3.1.1 \"previous matches\")\n");
    println!("  strength  top1_without  top1_with  gain");
    for strength in [0.3, 0.6, 0.9] {
        let rows: Vec<_> = (0..8).map(|s| eq10_memory_point(s, strength)).collect();
        let n = rows.len() as f64;
        let without = rows.iter().map(|r| r.top1_without).sum::<f64>() / n;
        let with_ = rows.iter().map(|r| r.top1_with).sum::<f64>() / n;
        println!(
            "  {:>8.1}  {:>12.2}  {:>9.2}  {:>+4.2}",
            strength, without, with_, with_ - without
        );
        assert!(with_ >= without - 0.02, "memory must not meaningfully hurt accuracy");
    }
    println!("  shape: confirmed pairs from earlier projects transfer to later ones;");
    println!("  the benefit grows with perturbation strength (harder lexical cases).\n");
}
