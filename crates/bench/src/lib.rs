//! Shared experiment drivers for the benchmark harness.
//!
//! Each `eqN_*` function implements one experiment from DESIGN.md's
//! per-experiment index; the `report` binary runs them all and prints the
//! tables recorded in EXPERIMENTS.md, while the Criterion benches under
//! `benches/` time the same drivers at fixed points.

// Experiment-harness crate, not an engine library: fixtures are static
// and a panic is a broken experiment, not library behavior, so the
// non-panicking lint gate (DESIGN.md §7) does not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mm_engine::prelude::*;
use mm_workload as wl;
use std::time::{Duration, Instant};

/// Time a closure, returning (result, wall time).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

// ---------------------------------------------------------------------------
// EQ1 — SO-tgd composition blowup

/// One grid point of the composition experiment.
#[derive(Debug, Clone)]
pub struct Eq1Row {
    pub producers: usize,
    pub body_atoms: usize,
    pub clauses: usize,
    pub atoms: usize,
    pub compose_ms: f64,
    pub deskolemizable: bool,
}

pub fn eq1_compose_point(producers: usize, body_atoms: usize) -> Eq1Row {
    let (_, _, _, m12, m23) = wl::composition_chain(producers, body_atoms);
    let (so, took) = timed(|| {
        compose_st_tgds(&m12, &m23, 1 << 22).expect("within bound")
    });
    let deskolemizable = try_deskolemize(&so).is_some();
    Eq1Row {
        producers,
        body_atoms,
        clauses: so.clauses.len(),
        atoms: so.size(),
        compose_ms: ms(took),
        deskolemizable,
    }
}

// ---------------------------------------------------------------------------
// EQ2 — compiled transformation vs generic three-copy ModelGen translation

#[derive(Debug, Clone)]
pub struct Eq2Row {
    pub strategy: InheritanceStrategy,
    pub types: usize,
    pub entities: usize,
    pub direct_ms: f64,
    pub three_copy_ms: f64,
    pub agree: bool,
}

pub fn eq2_modelgen_point(
    depth: usize,
    fanout: usize,
    per_type: usize,
    strategy: InheritanceStrategy,
) -> Eq2Row {
    let er = wl::er_hierarchy(17, depth, fanout, 3);
    let db = wl::populate_er(&er, 3, per_type);
    let gen = er_to_relational(&er, strategy).expect("modelgen");
    let (direct, direct_t) =
        timed(|| materialize_views(&gen.views, &er, &db).expect("compiled views"));
    let (generic, generic_t) = timed(|| {
        three_copy_translate(&er, &db, &gen.schema, strategy).expect("three-copy")
    });
    let agree = direct
        .relations()
        .all(|(n, r)| generic.relation(n).map(|g| r.set_eq(g)).unwrap_or(false));
    Eq2Row {
        strategy,
        types: er.len(),
        entities: db.total_tuples(),
        direct_ms: ms(direct_t),
        three_copy_ms: ms(generic_t),
        agree,
    }
}

// ---------------------------------------------------------------------------
// EQ3 — matcher quality: top-1 precision/recall vs top-k hit rate

#[derive(Debug, Clone)]
pub struct Eq3Row {
    pub strength: f64,
    pub truth_pairs: usize,
    pub top1_precision: f64,
    pub top1_recall: f64,
    /// hit rate of the correct target appearing among the top-k, k = 1..=5
    pub topk_hit: [f64; 5],
    pub match_ms: f64,
}

pub fn eq3_matcher_point(seed: u64, strength: f64, flooding: bool) -> Eq3Row {
    let source = wl::relational_schema(seed, 6, 6);
    let (target, truth) = wl::perturb_schema(&source, seed + 100, strength, 0.1, 0.2);
    let cfg = MatchConfig {
        top_k: 5,
        threshold: 0.0,
        flooding_iterations: if flooding { 2 } else { 0 },
        ..Default::default()
    };
    let (cs, took) = timed(|| match_schemas(&source, &target, &cfg));

    let attr_truth: Vec<_> = truth
        .pairs
        .iter()
        .filter(|(s, _)| s.attribute.is_some())
        .collect();
    let mut top1_correct = 0usize;
    let mut top1_emitted = 0usize;
    let mut hits = [0usize; 5];
    for (src, expected) in &attr_truth {
        let cands = cs.candidates_for(src);
        if let Some(best) = cands.first() {
            top1_emitted += 1;
            if &best.target == expected {
                top1_correct += 1;
            }
        }
        for (k, hit) in hits.iter_mut().enumerate() {
            if cands.iter().take(k + 1).any(|c| &c.target == expected) {
                *hit += 1;
            }
        }
    }
    let n = attr_truth.len().max(1) as f64;
    Eq3Row {
        strength,
        truth_pairs: attr_truth.len(),
        top1_precision: top1_correct as f64 / top1_emitted.max(1) as f64,
        top1_recall: top1_correct as f64 / n,
        topk_hit: hits.map(|h| h as f64 / n),
        match_ms: ms(took),
    }
}

// ---------------------------------------------------------------------------
// EQ4 — TransGen compile + roundtrip verification cost

#[derive(Debug, Clone)]
pub struct Eq4Row {
    pub types: usize,
    pub fragments: usize,
    pub compile_ms: f64,
    pub verify_ms: f64,
    pub roundtrips: bool,
}

pub fn eq4_transgen_point(depth: usize, fanout: usize, per_type: usize) -> Eq4Row {
    let er = wl::er_hierarchy(29, depth, fanout, 3);
    let gen = er_to_relational(&er, InheritanceStrategy::Vertical).expect("modelgen");
    let frags = parse_fragments(&er, &gen.schema, &gen.mapping).expect("fragments");
    let (views, compile_t) = timed(|| {
        let q = query_views(&er, &gen.schema, &frags).expect("qviews");
        let u = update_views(&er, &gen.schema, &frags).expect("uviews");
        (q, u)
    });
    let db = wl::populate_er(&er, 5, per_type);
    let (report, verify_t) =
        timed(|| verify_roundtrip(&er, &gen.schema, &frags, &db).expect("verify"));
    let _ = views;
    Eq4Row {
        types: er.len(),
        fragments: frags.len(),
        compile_ms: ms(compile_t),
        verify_ms: ms(verify_t),
        roundtrips: report.roundtrips(),
    }
}

// ---------------------------------------------------------------------------
// EQ5 — incremental view maintenance vs recompute

#[derive(Debug, Clone)]
pub struct Eq5Row {
    pub base_rows: usize,
    pub batch: usize,
    pub incremental_ms: f64,
    pub recompute_ms: f64,
    pub agree: bool,
}

fn eq5_setup(base_rows: usize) -> (Schema, Database, ViewSet) {
    let schema = SchemaBuilder::new("S")
        .relation("Orders", &[
            ("oid", DataType::Int),
            ("cust", DataType::Int),
            ("total", DataType::Int),
        ])
        .relation("Customers", &[("cid", DataType::Int), ("name", DataType::Text)])
        .build()
        .expect("eq5 schema");
    let mut db = Database::empty_of(&schema);
    let customers = (base_rows / 10).max(1);
    for c in 0..customers {
        db.insert(
            "Customers",
            Tuple::from([Value::Int(c as i64), Value::text(format!("c{c}"))]),
        );
    }
    for o in 0..base_rows {
        db.insert(
            "Orders",
            Tuple::from([
                Value::Int(o as i64),
                Value::Int((o % customers) as i64),
                Value::Int((o % 100) as i64),
            ]),
        );
    }
    let mut views = ViewSet::new("S", "V");
    views.push(ViewDef::new(
        "BigOrders",
        Expr::base("Orders")
            .select(Predicate::Cmp {
                op: CmpOp::Gt,
                left: Scalar::col("total"),
                right: Scalar::lit(50i64),
            })
            .join(Expr::base("Customers"), &[("cust", "cid")])
            .project(&["oid", "name"]),
    ));
    (schema, db, views)
}

pub fn eq5_ivm_point(base_rows: usize, batch: usize) -> Eq5Row {
    let (schema, db, views) = eq5_setup(base_rows);
    let mat0 = materialize_views(&views, &schema, &db).expect("initial materialization");

    let mut delta = Delta::new();
    for i in 0..batch {
        delta.insert(
            "Orders",
            Tuple::from([
                Value::Int((base_rows + i) as i64),
                Value::Int(0),
                Value::Int(99),
            ]),
        );
    }

    let mut mat_inc = mat0.clone();
    let (_, inc_t) = timed(|| {
        maintain_insertions(&views, &schema, &db, &delta, &mut mat_inc).expect("ivm")
    });

    let mut db2 = db.clone();
    delta.apply_to(&mut db2);
    let (mat_re, re_t) =
        timed(|| materialize_views(&views, &schema, &db2).expect("recompute"));

    let agree = mat_re
        .relations()
        .all(|(n, r)| mat_inc.relation(n).map(|m| r.set_eq(m)).unwrap_or(false));
    Eq5Row {
        base_rows,
        batch,
        incremental_ms: ms(inc_t),
        recompute_ms: ms(re_t),
        agree,
    }
}

// ---------------------------------------------------------------------------
// EQ6 — chained vs collapsed mediation

#[derive(Debug, Clone)]
pub struct Eq6Row {
    pub hops: usize,
    pub rows: usize,
    pub chained_ms: f64,
    pub collapse_once_ms: f64,
    pub collapsed_query_ms: f64,
    pub agree: bool,
}

pub fn eq6_mediation_point(hops: usize, rows: usize) -> Eq6Row {
    let schema = SchemaBuilder::new("Base")
        .relation("People", &[
            ("id", DataType::Int),
            ("name", DataType::Text),
            ("age", DataType::Int),
        ])
        .build()
        .expect("eq6 schema");
    let mut db = Database::empty_of(&schema);
    for i in 0..rows {
        db.insert(
            "People",
            Tuple::from([
                Value::Int(i as i64),
                Value::text(format!("p{i}")),
                Value::Int((i % 90) as i64),
            ]),
        );
    }
    // hop 0 filters; later hops project/rename through
    let mut chain: Vec<ViewSet> = Vec::with_capacity(hops);
    let mut l0 = ViewSet::new("Base", "L0");
    l0.push(ViewDef::new(
        "V0",
        Expr::base("People").select(Predicate::Cmp {
            op: CmpOp::Ge,
            left: Scalar::col("age"),
            right: Scalar::lit(18i64),
        }),
    ));
    chain.push(l0);
    for h in 1..hops {
        let mut vs = ViewSet::new(format!("L{}", h - 1), format!("L{h}"));
        vs.push(ViewDef::new(
            format!("V{h}"),
            Expr::base(format!("V{}", h - 1)).select(Predicate::True),
        ));
        chain.push(vs);
    }
    let refs: Vec<&ViewSet> = chain.iter().collect();
    let mediator = Mediator::new(&schema, refs);
    let query = Expr::base(format!("V{}", hops - 1)).project(&["name"]);

    let (chained, chained_t) =
        timed(|| mediator.answer_chained(&query, &db).expect("chained"));
    let (collapsed, collapse_t) = timed(|| mediator.collapse().expect("non-empty chain"));
    let (direct, direct_t) = timed(|| {
        mediator
            .answer_collapsed(&collapsed, &query, &db)
            .expect("collapsed answer")
    });
    Eq6Row {
        hops,
        rows,
        chained_ms: ms(chained_t),
        collapse_once_ms: ms(collapse_t),
        collapsed_query_ms: ms(direct_t),
        agree: chained.set_eq(&direct),
    }
}

// ---------------------------------------------------------------------------
// EQ7 — chase-based exchange vs compiled copy views

#[derive(Debug, Clone)]
pub struct Eq7Row {
    pub relations: usize,
    pub rows: usize,
    pub chase_ms: f64,
    pub compiled_ms: f64,
    pub certain_ms: f64,
    pub agree: bool,
}

pub fn eq7_exchange_point(relations: usize, rows_per: usize) -> Eq7Row {
    let src = wl::tgds::binary_schema("Src", "A", relations);
    let tgt = wl::tgds::binary_schema("Tgt", "B", relations);
    let tgds = wl::copy_tgds("A", "B", relations);
    let mut db = Database::empty_of(&src);
    for i in 0..relations {
        for r in 0..rows_per {
            db.insert(
                &format!("A{i}"),
                Tuple::from([Value::Int(r as i64), Value::Int((r + 1) as i64)]),
            );
        }
    }
    let ((chased, _), chase_t) = timed(|| chase_st(&tgt, &tgds, &db));
    // compiled alternative: copy views Bi = Ai (rename-free scan)
    let mut views = ViewSet::new("Src", "Tgt");
    for i in 0..relations {
        views.push(ViewDef::new(format!("B{i}"), Expr::base(format!("A{i}"))));
    }
    let (compiled, compiled_t) =
        timed(|| materialize_views(&views, &src, &db).expect("copy views"));
    let (certain, certain_t) = timed(|| {
        certain_answers(&Expr::base("B0").project(&["a"]), &tgt, &chased).expect("certain")
    });
    let _ = certain;
    let agree = (0..relations).all(|i| {
        let b = format!("B{i}");
        chased
            .relation(&b)
            .zip(compiled.relation(&b))
            .map(|(x, y)| x.set_eq(y))
            .unwrap_or(false)
    });
    Eq7Row {
        relations,
        rows: db.total_tuples(),
        chase_ms: ms(chase_t),
        compiled_ms: ms(compiled_t),
        certain_ms: ms(certain_t),
        agree,
    }
}

// ---------------------------------------------------------------------------
// EQ9 — algebraic optimizer ablation

#[derive(Debug, Clone)]
pub struct Eq9Row {
    pub rows: usize,
    pub plain_size: usize,
    pub optimized_size: usize,
    pub plain_ms: f64,
    pub optimized_ms: f64,
    pub agree: bool,
}

/// Evaluate a selective query over a wide join, unoptimized vs optimized
/// (predicate pushdown + column pruning).
pub fn eq9_optimizer_point(rows: usize) -> Eq9Row {
    let schema = SchemaBuilder::new("S")
        .relation("Empl", &[
            ("EID", DataType::Int),
            ("Name", DataType::Text),
            ("Tel", DataType::Text),
            ("Bio", DataType::Text),
            ("AID", DataType::Int),
        ])
        .relation("Addr", &[
            ("AID", DataType::Int),
            ("City", DataType::Text),
            ("Zip", DataType::Text),
            ("Notes", DataType::Text),
        ])
        .build()
        .expect("eq9 schema");
    let mut db = Database::empty_of(&schema);
    let cities = 50usize;
    for i in 0..rows {
        db.insert(
            "Empl",
            Tuple::from([
                Value::Int(i as i64),
                Value::text(format!("n{i}")),
                Value::text(format!("t{i}")),
                Value::text(format!("long biography text {i}")),
                Value::Int((i % (rows / 2).max(1)) as i64),
            ]),
        );
    }
    for a in 0..(rows / 2).max(1) {
        db.insert(
            "Addr",
            Tuple::from([
                Value::Int(a as i64),
                Value::text(format!("city{}", a % cities)),
                Value::text(format!("z{a}")),
                Value::text(format!("free-form notes {a}")),
            ]),
        );
    }
    // a mediator-shaped query: selective filter above a wide join
    let query = Expr::base("Empl")
        .join(Expr::base("Addr"), &[("AID", "AID")])
        .select(Predicate::col_eq_lit("City", "city7"))
        .project(&["Name", "City"]);
    let optimized = optimize(&query, &schema).expect("optimize");
    let (plain, plain_t) = timed(|| eval(&query, &schema, &db).expect("plain eval"));
    let (fast, fast_t) = timed(|| eval(&optimized, &schema, &db).expect("optimized eval"));
    Eq9Row {
        rows: db.total_tuples(),
        plain_size: query.size(),
        optimized_size: optimized.size(),
        plain_ms: ms(plain_t),
        optimized_ms: ms(fast_t),
        agree: plain.set_eq(&fast),
    }
}

// ---------------------------------------------------------------------------
// EQ10 — match memory across sequential integration projects

#[derive(Debug, Clone)]
pub struct Eq10Row {
    pub strength: f64,
    pub top1_without: f64,
    pub top1_with: f64,
}

/// Simulate two integration projects against perturbed copies of the same
/// source. Project 1's confirmed ground truth seeds the memory; measure
/// project 2's top-1 accuracy with and without the memory.
pub fn eq10_memory_point(seed: u64, strength: f64) -> Eq10Row {
    let source = wl::relational_schema(seed, 6, 6);
    let (_, truth1) = wl::perturb_schema(&source, seed + 1, strength, 0.0, 0.1);
    let (target2, truth2) = wl::perturb_schema(&source, seed + 2, strength, 0.1, 0.2);

    let cfg = MatchConfig { top_k: 5, threshold: 0.0, ..Default::default() };
    let accuracy = |cs: &CorrespondenceSet| -> f64 {
        let attr_truth: Vec<_> =
            truth2.pairs.iter().filter(|(s, _)| s.attribute.is_some()).collect();
        let correct = attr_truth
            .iter()
            .filter(|(src, expected)| {
                cs.candidates_for(src).first().map(|c| &c.target == expected).unwrap_or(false)
            })
            .count();
        correct as f64 / attr_truth.len().max(1) as f64
    };

    let plain = match_schemas(&source, &target2, &cfg);
    let top1_without = accuracy(&plain);

    // project 1's confirmations: original-name -> perturbed-name pairs;
    // the memory keys are name pairs, so confirmations transfer when the
    // second perturbation renamed a column the same way (synonym /
    // convention flips repeat across projects)
    let mut memory = MatchMemory::new();
    for (s, t) in &truth1.pairs {
        memory.remember(s, t);
    }
    let mut boosted = match_schemas(&source, &target2, &cfg);
    memory.apply(&mut boosted);
    let top1_with = accuracy(&boosted);

    Eq10Row { strength, top1_without, top1_with }
}

// ---------------------------------------------------------------------------
// EQ8 — Merge scaling

#[derive(Debug, Clone)]
pub struct Eq8Row {
    pub elements: usize,
    pub attributes: usize,
    pub match_ms: f64,
    pub merge_ms: f64,
    pub merged_elements: usize,
}

pub fn eq8_merge_point(relations: usize, attrs_per: usize) -> Eq8Row {
    let left = wl::relational_schema(41, relations, attrs_per);
    let (right, truth) = wl::perturb_schema(&left, 43, 0.3, 0.1, 0.2);
    let cfg = MatchConfig::default();
    let (_cs, match_t) = timed(|| match_schemas(&left, &right, &cfg));
    // merge on the ground-truth correspondences (the architect-confirmed set)
    let mut confirmed = CorrespondenceSet::new(left.name.clone(), right.name.clone());
    for (s, t) in &truth.pairs {
        confirmed.push(Correspondence::new(s.clone(), t.clone(), 1.0));
    }
    let (merged, merge_t) = timed(|| merge(&left, &right, &confirmed));
    Eq8Row {
        elements: left.len(),
        attributes: left.attribute_count(),
        match_ms: ms(match_t),
        merge_ms: ms(merge_t),
        merged_elements: merged.schema.len(),
    }
}
