//! EQ2 — Criterion timings: compiled transformation vs the generic
//! three-copy translation, per inheritance strategy (the ablation of
//! DESIGN.md §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_engine::prelude::*;
use mm_workload::{er_hierarchy, populate_er};

fn setup(strategy: InheritanceStrategy) -> (Schema, Database, ModelGenResult) {
    let er = er_hierarchy(17, 2, 2, 3);
    let db = populate_er(&er, 3, 300);
    let gen = er_to_relational(&er, strategy).expect("modelgen");
    (er, db, gen)
}

fn bench_schema_translation(c: &mut Criterion) {
    let er = er_hierarchy(17, 3, 2, 3);
    let mut group = c.benchmark_group("eq2_schema_translation");
    for strategy in [
        InheritanceStrategy::Vertical,
        InheritanceStrategy::Horizontal,
        InheritanceStrategy::Flat,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.to_string()),
            &strategy,
            |b, s| b.iter(|| er_to_relational(&er, *s).expect("modelgen")),
        );
    }
    group.finish();
}

fn bench_instance_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq2_instance_translation");
    group.sample_size(20);
    for strategy in [
        InheritanceStrategy::Vertical,
        InheritanceStrategy::Horizontal,
        InheritanceStrategy::Flat,
    ] {
        let (er, db, gen) = setup(strategy);
        group.bench_with_input(
            BenchmarkId::new("direct_views", strategy.to_string()),
            &(),
            |b, _| b.iter(|| materialize_views(&gen.views, &er, &db).expect("direct")),
        );
        group.bench_with_input(
            BenchmarkId::new("three_copy", strategy.to_string()),
            &(),
            |b, _| {
                b.iter(|| {
                    three_copy_translate(&er, &db, &gen.schema, strategy).expect("generic")
                })
            },
        );
    }
    group.finish();
}

fn bench_wrapper_direction(c: &mut Criterion) {
    use mm_workload::relational_schema;
    let rel = relational_schema(5, 12, 6);
    c.bench_function("eq2_relational_to_er", |b| {
        b.iter(|| relational_to_er(&rel).expect("wrapper"))
    });
}

criterion_group!(
    benches,
    bench_schema_translation,
    bench_instance_translation,
    bench_wrapper_direction
);
criterion_main!(benches);
