//! EQ1 — Criterion timings for SO-tgd composition (and the algebraic
//! composition used by Figure 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_engine::prelude::*;
use mm_workload::composition_chain;

fn bench_sotgd_composition(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq1_compose_st_tgds");
    group.sample_size(20);
    for (producers, body_atoms) in [(2usize, 2usize), (2, 4), (2, 6), (3, 4), (4, 4)] {
        let (_, _, _, m12, m23) = composition_chain(producers, body_atoms);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p{producers}_b{body_atoms}")),
            &(m12, m23),
            |b, (m12, m23)| {
                b.iter(|| compose_st_tgds(m12, m23, 1 << 22).expect("within bound"))
            },
        );
    }
    group.finish();
}

fn bench_deskolemize(c: &mut Criterion) {
    let (_, _, _, m12, m23) = composition_chain(2, 6);
    let so = compose_st_tgds(&m12, &m23, 1 << 22).expect("compose");
    c.bench_function("eq1_deskolemize_attempt", |b| b.iter(|| try_deskolemize(&so)));
}

fn bench_view_composition(c: &mut Criterion) {
    // Figure 6 algebraic composition over a deep chain
    let mut group = c.benchmark_group("eq1_compose_views");
    for hops in [4usize, 16, 64] {
        let mut chain: Vec<ViewSet> = Vec::new();
        for h in 0..hops {
            let prev = if h == 0 { "Base".to_string() } else { format!("V{}", h - 1) };
            let mut vs = ViewSet::new(format!("L{h}"), format!("L{}", h + 1));
            vs.push(ViewDef::new(
                format!("V{h}"),
                Expr::base(prev).select(Predicate::True),
            ));
            chain.push(vs);
        }
        group.bench_with_input(BenchmarkId::from_parameter(hops), &chain, |b, chain| {
            b.iter(|| {
                let mut iter = chain.iter();
                let first = iter.next().expect("non-empty").clone();
                iter.fold(first, |acc, next| compose_views(&acc, next))
            })
        });
    }
    group.finish();
}

fn bench_transport_oracle(c: &mut Criterion) {
    // the semantic oracle: chase through the intermediate schema
    let (s1, s2, s3, m12, m23) = composition_chain(2, 2);
    let mut d1 = Database::empty_of(&s1);
    for i in 0..50 {
        d1.insert("S0", Tuple::from([Value::Int(i), Value::Int(i + 1)]));
        d1.insert("S1", Tuple::from([Value::Int(i), Value::Int(i + 2)]));
    }
    c.bench_function("eq1_transport_via_chase", |b| {
        b.iter(|| transport_via(&s2, &m12, &s3, &m23, &d1))
    });
}

criterion_group!(
    benches,
    bench_sotgd_composition,
    bench_deskolemize,
    bench_view_composition,
    bench_transport_oracle
);
criterion_main!(benches);
