//! Indexed, semi-naive evaluation core (PR 2): index probes vs scans on
//! CQ evaluation, and the semi-naive indexed chase vs the naive
//! full-reevaluation reference.
//!
//! Besides the criterion groups, `main` re-measures each point once with
//! `mm_bench::timed`, asserts the fast and reference paths agree
//! bit-identically, and writes the `BENCH_eval.json` baseline at the
//! workspace root (the vendored criterion stub emits no files). The
//! committed baseline records the headline claim: ≥10× on the largest
//! exchange-chase workload.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mm_bench::timed;
use mm_engine::prelude::*;
use mm_workload::{copy_tgds, faults, tgds::binary_schema};
use std::io::Write as _;

/// The EQ7 exchange workload: `relations` copy tgds over `rows` tuples
/// each — the head-satisfaction check is the quadratic hot spot of the
/// naive chase.
fn exchange_setup(relations: usize, rows: usize) -> (Schema, Vec<Tgd>, Database) {
    let src = binary_schema("Src", "A", relations);
    let tgt = binary_schema("Tgt", "B", relations);
    let tgds = copy_tgds("A", "B", relations);
    let mut db = Database::empty_of(&src);
    for i in 0..relations {
        for r in 0..rows {
            db.insert(
                &format!("A{i}"),
                Tuple::from([Value::Int(r as i64), Value::Int((r + 1) as i64)]),
            );
        }
    }
    (tgt, tgds, db)
}

const CQ_SIZES: [usize; 3] = [200, 1_000, 4_000];
const CHASE_SIZES: [usize; 3] = [250, 1_000, 4_000];

/// Two-atom self-join `R0(x, y) ∧ R0(y, z)`: the compiled plan probes a
/// hash index on `R0.0` for the second atom; the naive path re-scans.
fn bench_cq_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_cq_self_join");
    group.sample_size(10);
    for rows in CQ_SIZES {
        let (_, _, db, tgds) = faults::quadratic_join(rows);
        let body = tgds[0].body.clone();
        let budget = ExecBudget::unbounded();
        let seed = std::collections::HashMap::new();
        group.bench_with_input(BenchmarkId::new("indexed", rows), &(), |b, _| {
            b.iter(|| {
                find_homomorphisms_governed(&body, &db, &seed, &mut Governor::new(&budget))
                    .expect("unbounded")
            })
        });
        group.bench_with_input(BenchmarkId::new("scan", rows), &(), |b, _| {
            b.iter(|| {
                find_homomorphisms_naive(&body, &db, &seed, &mut Governor::new(&budget))
                    .expect("unbounded")
            })
        });
    }
    group.finish();
}

/// The exchange chase, semi-naive + indexed vs the naive reference.
fn bench_chase_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_chase_exchange");
    group.sample_size(10);
    let budget = ExecBudget::unbounded();
    for rows in CHASE_SIZES {
        let (tgt, tgds, db) = exchange_setup(4, rows);
        group.bench_with_input(BenchmarkId::new("semi_naive_indexed", rows), &(), |b, _| {
            b.iter(|| chase_st_governed(&tgt, &tgds, &db, &budget).expect("unbounded"))
        });
        if rows <= 1_000 {
            // the reference is quadratic; keep criterion runs bounded
            group.bench_with_input(BenchmarkId::new("naive_reference", rows), &(), |b, _| {
                b.iter(|| chase_st_reference(&tgt, &tgds, &db, &budget).expect("unbounded"))
            });
        }
    }
    group.finish();
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One-shot measurements for the committed baseline: every point runs
/// both paths once, asserts bit-identical results, and records the
/// speedup.
fn emit_baseline() {
    let budget = ExecBudget::unbounded();
    let mut rows_json: Vec<String> = Vec::new();

    for rows in CQ_SIZES {
        let (_, _, db, tgds) = faults::quadratic_join(rows);
        let body = tgds[0].body.clone();
        let seed = std::collections::HashMap::new();
        let (fast, fast_t) = timed(|| {
            find_homomorphisms_governed(&body, &db, &seed, &mut Governor::new(&budget))
                .expect("unbounded")
        });
        let (naive, naive_t) = timed(|| {
            find_homomorphisms_naive(&body, &db, &seed, &mut Governor::new(&budget))
                .expect("unbounded")
        });
        assert_eq!(fast, naive, "indexed CQ eval diverged from the naive scan");
        rows_json.push(point_json("cq_self_join", rows, fast.len(), naive_t, fast_t));
    }

    for rows in CHASE_SIZES {
        let (tgt, tgds, db) = exchange_setup(4, rows);
        let (fast, fast_t) = timed(|| chase_st_governed(&tgt, &tgds, &db, &budget).expect("ok"));
        let (reference, naive_t) =
            timed(|| chase_st_reference(&tgt, &tgds, &db, &budget).expect("ok"));
        assert_eq!(fast, reference, "semi-naive chase diverged from the reference");
        rows_json.push(point_json("chase_exchange_4rel", rows, fast.1.fired, naive_t, fast_t));
    }

    let body = format!(
        "{{\n  \"experiment\": \"eval_core\",\n  \"description\": \"indexed, semi-naive evaluation core vs naive reference paths (bit-identical results asserted per point)\",\n  \"command\": \"cargo bench -p mm-bench --bench eval\",\n  \"points\": [\n{}\n  ]\n}}\n",
        rows_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_eval.json");
    f.write_all(body.as_bytes()).expect("write BENCH_eval.json");
    println!("\nwrote {path}");
}

fn point_json(
    workload: &str,
    size: usize,
    result_size: usize,
    naive: std::time::Duration,
    fast: std::time::Duration,
) -> String {
    let speedup = ms(naive) / ms(fast).max(1e-6);
    println!(
        "{workload:<22} size {size:>6}: naive {:>10.3} ms, indexed {:>9.3} ms, {speedup:>7.1}x",
        ms(naive),
        ms(fast),
    );
    format!(
        "    {{\"workload\": \"{workload}\", \"size\": {size}, \"result_size\": {result_size}, \"naive_ms\": {:.3}, \"indexed_ms\": {:.3}, \"speedup\": {:.1}}}",
        ms(naive),
        ms(fast),
        speedup,
    )
}

criterion_group!(benches, bench_cq_join, bench_chase_exchange);

fn main() {
    benches();
    emit_baseline();
}
