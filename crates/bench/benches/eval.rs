//! Indexed, semi-naive evaluation core (PR 2): index probes vs scans on
//! CQ evaluation, and the semi-naive indexed chase vs the naive
//! full-reevaluation reference.
//!
//! Besides the criterion groups, `main` re-measures each point once with
//! `mm_bench::timed`, asserts the fast and reference paths agree
//! bit-identically, and writes the `BENCH_eval.json` baseline at the
//! workspace root (the vendored criterion stub emits no files). The
//! committed baseline records the headline claim: ≥10× on the largest
//! exchange-chase workload.
//!
//! PR 7 adds the cost-based planner suite: on the skewed
//! `workload::skew` instances (whose relation sizes mislead the greedy
//! join-order heuristic) the statistics-driven planner must beat the
//! greedy order by a ≥2× geometric mean, while on the uniform CQ
//! workloads — where greedy already picks well — it must stay within
//! 10%. Both gates are asserted at emit time; `"attested": true` in the
//! baseline means the committed numbers passed them on the emitting
//! host. Bit-identity of the two planners' binding sequences is
//! asserted at every point.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mm_bench::timed;
use mm_engine::prelude::*;
use mm_workload::{copy_tgds, faults, skew, tgds::binary_schema};
use std::io::Write as _;

/// The EQ7 exchange workload: `relations` copy tgds over `rows` tuples
/// each — the head-satisfaction check is the quadratic hot spot of the
/// naive chase.
fn exchange_setup(relations: usize, rows: usize) -> (Schema, Vec<Tgd>, Database) {
    let src = binary_schema("Src", "A", relations);
    let tgt = binary_schema("Tgt", "B", relations);
    let tgds = copy_tgds("A", "B", relations);
    let mut db = Database::empty_of(&src);
    for i in 0..relations {
        for r in 0..rows {
            db.insert(
                &format!("A{i}"),
                Tuple::from([Value::Int(r as i64), Value::Int((r + 1) as i64)]),
            );
        }
    }
    (tgt, tgds, db)
}

const CQ_SIZES: [usize; 3] = [200, 1_000, 4_000];
const CHASE_SIZES: [usize; 3] = [250, 1_000, 4_000];
const SKEW_SIZES: [usize; 3] = [4_000, 16_000, 48_000];
/// Planner gates, asserted at emit time: geometric-mean speedup the
/// cost-based order must deliver on the skewed suite, and the worst
/// slowdown it may cost on the uniform suite where greedy already picks
/// well.
const MIN_SKEW_GEOMEAN: f64 = 2.0;
const MAX_UNIFORM_SLOWDOWN: f64 = 1.10;
/// Absolute slack (ms) for the uniform gate: sub-millisecond points are
/// dominated by timer noise, not planner overhead.
const UNIFORM_SLACK_MS: f64 = 0.25;

/// The three skewed planner workloads at a given size.
fn skew_workloads(rows: usize) -> [(&'static str, Database, Vec<Atom>); 3] {
    let (_, fat_db, fat_q) = skew::fat_hub_join(rows);
    let (_, zipf_db, zipf_q) = skew::zipf_join(rows, 11);
    let (_, corr_db, corr_q) = skew::correlated_join(rows, 11);
    [
        ("skew_fat_hub", fat_db, fat_q),
        ("skew_zipf", zipf_db, zipf_q),
        ("skew_correlated", corr_db, corr_q),
    ]
}

/// Two-atom self-join `R0(x, y) ∧ R0(y, z)`: the compiled plan probes a
/// hash index on `R0.0` for the second atom; the naive path re-scans.
fn bench_cq_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_cq_self_join");
    group.sample_size(10);
    for rows in CQ_SIZES {
        let (_, _, db, tgds) = faults::quadratic_join(rows);
        let body = tgds[0].body.clone();
        let budget = ExecBudget::unbounded();
        let seed = std::collections::HashMap::new();
        group.bench_with_input(BenchmarkId::new("indexed", rows), &(), |b, _| {
            b.iter(|| {
                find_homomorphisms_governed(&body, &db, &seed, &mut Governor::new(&budget))
                    .expect("unbounded")
            })
        });
        group.bench_with_input(BenchmarkId::new("scan", rows), &(), |b, _| {
            b.iter(|| {
                find_homomorphisms_naive(&body, &db, &seed, &mut Governor::new(&budget))
                    .expect("unbounded")
            })
        });
    }
    group.finish();
}

/// The skewed three-way joins: greedy (size-ordered) vs cost-based
/// (statistics-ordered) compiled plans, both index-probing.
fn bench_cq_skew(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_cq_skew_planner");
    group.sample_size(10);
    let budget = ExecBudget::unbounded();
    let seed = std::collections::HashMap::new();
    for (name, db, body) in skew_workloads(SKEW_SIZES[1]) {
        group.bench_with_input(BenchmarkId::new("greedy", name), &(), |b, _| {
            b.iter(|| {
                find_homomorphisms_governed(&body, &db, &seed, &mut Governor::new(&budget))
                    .expect("unbounded")
            })
        });
        group.bench_with_input(BenchmarkId::new("costed", name), &(), |b, _| {
            b.iter(|| {
                find_homomorphisms_costed(&body, &db, &seed, &mut Governor::new(&budget))
                    .expect("unbounded")
            })
        });
    }
    group.finish();
}

/// The exchange chase, semi-naive + indexed vs the naive reference.
fn bench_chase_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_chase_exchange");
    group.sample_size(10);
    let budget = ExecBudget::unbounded();
    for rows in CHASE_SIZES {
        let (tgt, tgds, db) = exchange_setup(4, rows);
        group.bench_with_input(BenchmarkId::new("semi_naive_indexed", rows), &(), |b, _| {
            b.iter(|| chase_st_governed(&tgt, &tgds, &db, &budget).expect("unbounded"))
        });
        if rows <= 1_000 {
            // the reference is quadratic; keep criterion runs bounded
            group.bench_with_input(BenchmarkId::new("naive_reference", rows), &(), |b, _| {
                b.iter(|| chase_st_reference(&tgt, &tgds, &db, &budget).expect("unbounded"))
            });
        }
    }
    group.finish();
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Paired measurement for the planner gates: warm both paths once
/// (paying the lazy index/statistics builds), then time them strictly
/// alternated for `reps` rounds — *flipping which path goes first each
/// round* — and keep each path's minimum. Alternation means ambient
/// load perturbs both paths the same way; flipping cancels the
/// first-in-slot advantage (allocator/frequency warmth measurably
/// favors whichever closure runs first on this class of host).
fn timed_pair<A, B>(
    mut fa: impl FnMut() -> A,
    mut fb: impl FnMut() -> B,
    reps: usize,
) -> (A, std::time::Duration, B, std::time::Duration) {
    // The warmup results are *kept alive* (and returned): every timed
    // call below then runs against the same resident heap, instead of
    // the very first call enjoying an empty one — an advantage the
    // min-taking below would otherwise lock in for whichever path
    // happened to measure first.
    let a = fa();
    let b = fb();
    let mut best_a = std::time::Duration::MAX;
    let mut best_b = std::time::Duration::MAX;
    for round in 0..(2 * reps.max(1)) {
        if round % 2 == 0 {
            best_a = best_a.min(timed(|| std::hint::black_box(fa())).1);
            best_b = best_b.min(timed(|| std::hint::black_box(fb())).1);
        } else {
            best_b = best_b.min(timed(|| std::hint::black_box(fb())).1);
            best_a = best_a.min(timed(|| std::hint::black_box(fa())).1);
        }
    }
    (a, best_a, b, best_b)
}

/// One-shot measurements for the committed baseline: every point runs
/// both paths once, asserts bit-identical results, and records the
/// speedup.
fn emit_baseline() {
    let budget = ExecBudget::unbounded();
    let mut rows_json: Vec<String> = Vec::new();

    for rows in CQ_SIZES {
        let (_, _, db, tgds) = faults::quadratic_join(rows);
        let body = tgds[0].body.clone();
        let seed = std::collections::HashMap::new();
        let (fast, fast_t) = timed(|| {
            find_homomorphisms_governed(&body, &db, &seed, &mut Governor::new(&budget))
                .expect("unbounded")
        });
        let (naive, naive_t) = timed(|| {
            find_homomorphisms_naive(&body, &db, &seed, &mut Governor::new(&budget))
                .expect("unbounded")
        });
        assert_eq!(fast, naive, "indexed CQ eval diverged from the naive scan");
        rows_json.push(point_json("cq_self_join", rows, fast.len(), naive_t, fast_t));
    }

    for rows in CHASE_SIZES {
        let (tgt, tgds, db) = exchange_setup(4, rows);
        let (fast, fast_t) = timed(|| chase_st_governed(&tgt, &tgds, &db, &budget).expect("ok"));
        let (reference, naive_t) =
            timed(|| chase_st_reference(&tgt, &tgds, &db, &budget).expect("ok"));
        assert_eq!(fast, reference, "semi-naive chase diverged from the reference");
        rows_json.push(point_json("chase_exchange_4rel", rows, fast.1.fired, naive_t, fast_t));
    }

    // -- cost-based planner suite (PR 7) ------------------------------------
    // Skewed instances: the greedy, size-ordered walk is the baseline;
    // the statistics-ordered walk must beat it ≥2× geomean while
    // enumerating the identical binding sequence.
    let mut planner_json: Vec<String> = Vec::new();
    let mut log_speedup_sum = 0.0;
    let mut skew_points = 0usize;
    let seed = std::collections::HashMap::new();
    for rows in SKEW_SIZES {
        for (name, db, body) in skew_workloads(rows) {
            let (greedy, greedy_t, costed, costed_t) = timed_pair(
                || {
                    find_homomorphisms_governed(&body, &db, &seed, &mut Governor::new(&budget))
                        .expect("unbounded")
                },
                || {
                    find_homomorphisms_costed(&body, &db, &seed, &mut Governor::new(&budget))
                        .expect("unbounded")
                },
                3,
            );
            assert_eq!(costed, greedy, "{name}: costed plan diverged from greedy at {rows} rows");
            let speedup = ms(greedy_t) / ms(costed_t).max(1e-6);
            log_speedup_sum += speedup.max(1e-6).ln();
            skew_points += 1;
            planner_json.push(planner_point_json(name, rows, greedy.len(), greedy_t, costed_t));
        }
    }
    let skew_geomean = (log_speedup_sum / skew_points as f64).exp();
    assert!(
        skew_geomean >= MIN_SKEW_GEOMEAN,
        "cost-based planner geomean on the skewed suite is {skew_geomean:.2}x \
         (need >= {MIN_SKEW_GEOMEAN}x)"
    );

    // Uniform workloads: greedy already picks well; the statistics pass
    // must not cost more than the slowdown gate.
    for rows in CQ_SIZES {
        let (_, _, db, tgds) = faults::quadratic_join(rows);
        let body = tgds[0].body.clone();
        let (greedy, greedy_t, costed, costed_t) = timed_pair(
            || {
                find_homomorphisms_governed(&body, &db, &seed, &mut Governor::new(&budget))
                    .expect("unbounded")
            },
            || {
                find_homomorphisms_costed(&body, &db, &seed, &mut Governor::new(&budget))
                    .expect("unbounded")
            },
            5,
        );
        assert_eq!(costed, greedy, "uniform: costed plan diverged from greedy at {rows} rows");
        assert!(
            ms(costed_t) <= ms(greedy_t) * MAX_UNIFORM_SLOWDOWN + UNIFORM_SLACK_MS,
            "uniform cq_self_join at {rows} rows: costed {:.3} ms vs greedy {:.3} ms \
             (gate: <= {MAX_UNIFORM_SLOWDOWN}x + {UNIFORM_SLACK_MS} ms)",
            ms(costed_t),
            ms(greedy_t),
        );
        planner_json.push(planner_point_json(
            "uniform_cq_self_join",
            rows,
            greedy.len(),
            greedy_t,
            costed_t,
        ));
    }

    let body = format!(
        "{{\n  \"experiment\": \"eval_core\",\n  \"description\": \"indexed, semi-naive evaluation core vs naive reference paths, plus the cost-based planner vs the greedy join order on skewed and uniform workloads (bit-identical results asserted per point; attested = the planner gates below passed on the emitting host)\",\n  \"command\": \"cargo bench -p mm-bench --bench eval\",\n  \"host_cpus\": {host_cpus},\n  \"attested\": true,\n  \"planner_gates\": {{\"min_skew_geomean_speedup\": {MIN_SKEW_GEOMEAN}, \"max_uniform_slowdown\": {MAX_UNIFORM_SLOWDOWN}, \"armed\": true}},\n  \"skew_geomean_speedup\": {skew_geomean:.2},\n  \"points\": [\n{}\n  ],\n  \"planner_points\": [\n{}\n  ]\n}}\n",
        rows_json.join(",\n"),
        planner_json.join(",\n"),
        host_cpus = mm_parallel::available_parallelism(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_eval.json");
    f.write_all(body.as_bytes()).expect("write BENCH_eval.json");
    println!("\nwrote {path}");
}

fn point_json(
    workload: &str,
    size: usize,
    result_size: usize,
    naive: std::time::Duration,
    fast: std::time::Duration,
) -> String {
    let speedup = ms(naive) / ms(fast).max(1e-6);
    println!(
        "{workload:<22} size {size:>6}: naive {:>10.3} ms, indexed {:>9.3} ms, {speedup:>7.1}x",
        ms(naive),
        ms(fast),
    );
    format!(
        "    {{\"workload\": \"{workload}\", \"size\": {size}, \"result_size\": {result_size}, \"naive_ms\": {:.3}, \"indexed_ms\": {:.3}, \"speedup\": {:.1}}}",
        ms(naive),
        ms(fast),
        speedup,
    )
}

fn planner_point_json(
    workload: &str,
    size: usize,
    result_size: usize,
    greedy: std::time::Duration,
    costed: std::time::Duration,
) -> String {
    let speedup = ms(greedy) / ms(costed).max(1e-6);
    println!(
        "{workload:<22} size {size:>6}: greedy {:>9.3} ms, costed {:>9.3} ms, {speedup:>7.1}x",
        ms(greedy),
        ms(costed),
    );
    format!(
        "    {{\"workload\": \"{workload}\", \"size\": {size}, \"result_size\": {result_size}, \"greedy_ms\": {:.3}, \"costed_ms\": {:.3}, \"speedup\": {:.1}}}",
        ms(greedy),
        ms(costed),
        speedup,
    )
}

criterion_group!(benches, bench_cq_join, bench_cq_skew, bench_chase_exchange);

fn main() {
    benches();
    emit_baseline();
}
