//! Compact data plane (PR 10): the million-tuple soak harness.
//!
//! Measures the chase and CQ hot paths over the `mm_workload::scale`
//! scenario families (snowflake / inheritance / evolution) at three
//! tiers (10^4, 10^5, 10^6 source tuples), each point run twice — once
//! under the compact plane (interned strings, inline tuples, cached
//! hashes; the default) and once with
//! `mm_instance::intern::with_compact(false, ..)`, the in-tree
//! pre-interning baseline (owned strings, spilled tuples, no cached
//! hashes). Every point asserts **bit-identity**: the canonical codec
//! bytes of the two results are equal, so the speedup is pure
//! representation, never semantics.
//!
//! Beyond the paired timings, the mid tier crosses scale with the
//! operational dimensions from earlier PRs — threads (1 vs host),
//! budgets (unbounded vs a tripping cap), durability
//! (put/exchange/checkpoint/recover round-trip incl. the v4 snapshot
//! pool section), faults (torn WAL tail recovery), and a live wire
//! cell scraping the server's own p99 and queue depth through the
//! introspection ops (DESIGN.md §15).
//!
//! `main` writes `BENCH_scale.json` at the workspace root. The
//! throughput gate — geomean speedup >= 1.5x over the baseline across
//! chase + CQ points at the top tier — arms only when the full
//! million-tuple tier ran (not under `SCALE_SMOKE=1`, the CI smoke
//! profile, which runs the 10^4 tier alone). `attested` follows the
//! PR 6 convention: timings from a host with < 4 cpus are recorded but
//! flagged as shape-only evidence.

use criterion::{criterion_group, Criterion};
use mm_bench::timed;
use mm_engine::prelude::*;
use mm_instance::intern::with_compact;
use mm_repository::codec::{Encode, Writer};
use mm_server::{Client, Server, ServerConfig};
use mm_workload::scale::{snowflake_scale, ScaleScenario};
use std::io::Write as _;

const FULL_TIERS: [usize; 3] = [10_000, 100_000, 1_000_000];
const SMOKE_TIERS: [usize; 1] = [10_000];
const SEED: u64 = 42;
/// Geomean speedup demanded of the compact plane over the baseline
/// across chase + CQ points at the top tier.
const MIN_GEOMEAN_SPEEDUP: f64 = 1.5;

fn tiers() -> &'static [usize] {
    if std::env::var("SCALE_SMOKE").is_ok_and(|v| v == "1") {
        &SMOKE_TIERS
    } else {
        &FULL_TIERS
    }
}

/// Canonical codec bytes of a database — the bit-identity witness.
/// Interned and owned text encode identically by construction.
fn db_bytes(db: &Database) -> bytes::Bytes {
    let mut w = Writer::new();
    db.encode(&mut w);
    w.finish()
}

/// Canonical bytes of a CQ result: bindings in result order, each
/// binding's entries sorted by variable name.
fn homs_bytes(homs: &[std::collections::HashMap<String, Value>]) -> bytes::Bytes {
    let mut w = Writer::new();
    w.u64(homs.len() as u64);
    for h in homs {
        let mut entries: Vec<(&String, &Value)> = h.iter().collect();
        entries.sort_by_key(|(k, _)| k.as_str());
        w.u64(entries.len() as u64);
        for (k, v) in entries {
            w.str(k);
            v.encode(&mut w);
        }
    }
    w.finish()
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One hot-path leg: generate the scenario and run the path under one
/// representation, returning (result bytes, wall ms). The scenario is
/// rebuilt inside the leg so the *data itself* carries the layout under
/// test — generation cost is excluded from the timing, and nothing from
/// the other leg's representation survives into this one.
fn run_leg(
    scenario: fn(usize, u64) -> ScaleScenario,
    tier: usize,
    path: &str,
    compact: bool,
) -> (bytes::Bytes, f64) {
    let body = || -> (bytes::Bytes, f64) {
        let sc = scenario(tier, SEED);
        match path {
            "chase" => {
                let ((out, _), t) = timed(|| chase_st(&sc.target, &sc.tgds, &sc.db));
                (db_bytes(&out), ms(t))
            }
            "cq" => {
                let (homs, t) = timed(|| find_homomorphisms(&sc.query, &sc.db));
                (homs_bytes(&homs), ms(t))
            }
            other => unreachable!("unknown path {other}"),
        }
    };
    if compact { body() } else { with_compact(false, body) }
}

fn scenario_fns() -> [(&'static str, fn(usize, u64) -> ScaleScenario); 3] {
    [
        ("snowflake", mm_workload::scale::snowflake_scale as fn(usize, u64) -> ScaleScenario),
        ("inheritance", mm_workload::scale::inheritance_scale),
        ("evolution", mm_workload::scale::evolution_scale),
    ]
}

// --- criterion groups (smoke tier only: the soak matrix lives in main) ----

fn bench_scale_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_chase_10k");
    group.sample_size(10);
    for (name, f) in scenario_fns() {
        let sc = f(10_000, SEED);
        group.bench_function(format!("{name}/compact"), |b| {
            b.iter(|| chase_st(&sc.target, &sc.tgds, &sc.db))
        });
        let base = with_compact(false, || f(10_000, SEED));
        group.bench_function(format!("{name}/baseline"), |b| {
            b.iter(|| with_compact(false, || chase_st(&base.target, &base.tgds, &base.db)))
        });
    }
    group.finish();
}

fn bench_scale_cq(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_cq_10k");
    group.sample_size(10);
    for (name, f) in scenario_fns() {
        let sc = f(10_000, SEED);
        group.bench_function(format!("{name}/compact"), |b| {
            b.iter(|| find_homomorphisms(&sc.query, &sc.db))
        });
    }
    group.finish();
}

// --- the soak matrix ------------------------------------------------------

struct Point {
    json: String,
}

fn hot_path_points(points: &mut Vec<Point>, speedups_top: &mut Vec<f64>) {
    let top = *tiers().last().expect("nonempty tiers");
    let mut flip = false;
    for &tier in tiers() {
        for (name, f) in scenario_fns() {
            for path in ["chase", "cq"] {
                // flip-ordered: alternate which representation runs
                // first so cache warmth and allocator state do not
                // systematically favor one leg
                let (fast, slow) = if flip {
                    let fast = run_leg(f, tier, path, true);
                    let slow = run_leg(f, tier, path, false);
                    (fast, slow)
                } else {
                    let slow = run_leg(f, tier, path, false);
                    let fast = run_leg(f, tier, path, true);
                    (fast, slow)
                };
                flip = !flip;
                assert_eq!(
                    fast.0, slow.0,
                    "{name}/{path} at {tier}: compact result diverged from baseline"
                );
                let speedup = slow.1 / fast.1.max(1e-6);
                if tier == top {
                    speedups_top.push(speedup);
                }
                println!(
                    "{name:<12} {path:<6} tier {tier:>9}: baseline {:>10.1} ms  compact {:>10.1} ms  ({speedup:>5.2}x)",
                    slow.1, fast.1
                );
                points.push(Point {
                    json: format!(
                        "    {{\"cell\": \"hot_path\", \"scenario\": \"{name}\", \"path\": \"{path}\", \"tuples\": {tier}, \"baseline_ms\": {:.1}, \"compact_ms\": {:.1}, \"speedup\": {speedup:.2}, \"bit_identical\": true}}",
                        slow.1, fast.1
                    ),
                });
            }
        }
    }
}

/// Mid tier for the operational matrix: the middle of whatever tiers
/// ran (the only tier under smoke).
fn mid_tier() -> usize {
    let t = tiers();
    t[t.len() / 2]
}

fn thread_cell(points: &mut Vec<Point>) {
    let sc = snowflake_scale(mid_tier(), SEED);
    let program = ChaseProgram::compile(&sc.tgds, &sc.db);
    let budget = ExecBudget::unbounded();
    let (seq, t1) = timed(|| {
        chase_st_parallel(&sc.target, &program, &sc.db, &budget, 1).expect("unbounded")
    });
    let host = mm_parallel::available_parallelism();
    let (par, tn) = timed(|| {
        chase_st_parallel(&sc.target, &program, &sc.db, &budget, host).expect("unbounded")
    });
    assert_eq!(db_bytes(&seq.0), db_bytes(&par.0), "parallel chase diverged at scale");
    println!(
        "matrix threads      tier {:>9}: 1 thread {:>10.1} ms  {host} threads {:>10.1} ms",
        mid_tier(), ms(t1), ms(tn)
    );
    points.push(Point {
        json: format!(
            "    {{\"cell\": \"threads\", \"scenario\": \"snowflake\", \"tuples\": {}, \"threads_1_ms\": {:.1}, \"threads_host_ms\": {:.1}, \"host_threads\": {host}, \"bit_identical\": true}}",
            mid_tier(), ms(t1), ms(tn)
        ),
    });
}

fn budget_cell(points: &mut Vec<Point>) {
    let sc = snowflake_scale(mid_tier(), SEED);
    // generous: completes identically to the unbudgeted run
    let generous = ExecBudget::unbounded().with_steps(u64::MAX / 2);
    let (full, t_ok) = timed(|| {
        chase_st_governed(&sc.target, &sc.tgds, &sc.db, &generous).expect("generous budget")
    });
    let (plain, _) = chase_st(&sc.target, &sc.tgds, &sc.db);
    assert_eq!(db_bytes(&full.0), db_bytes(&plain), "budgeted chase diverged");
    // tight: trips with a typed error, never a panic or partial commit
    let tight = ExecBudget::unbounded().with_steps(1_000);
    let (tripped, t_trip) =
        timed(|| chase_st_governed(&sc.target, &sc.tgds, &sc.db, &tight));
    assert!(tripped.is_err(), "a 1k-step budget must trip at the mid tier");
    println!(
        "matrix budgets      tier {:>9}: generous {:>10.1} ms  tight trips in {:>7.1} ms",
        mid_tier(), ms(t_ok), ms(t_trip)
    );
    points.push(Point {
        json: format!(
            "    {{\"cell\": \"budgets\", \"scenario\": \"snowflake\", \"tuples\": {}, \"generous_ms\": {:.1}, \"tight_trip_ms\": {:.1}, \"typed_trip\": true, \"bit_identical\": true}}",
            mid_tier(), ms(t_ok), ms(t_trip)
        ),
    });
}

fn durability_cell(points: &mut Vec<Point>) {
    let sc = snowflake_scale(mid_tier(), SEED);
    let storage = MemStorage::new();
    let engine =
        Engine::open_durable(storage.clone(), DurableOptions::default()).expect("open durable");
    engine.add_schema(sc.source.clone()).expect("schema");
    engine.add_schema(sc.target.clone()).expect("schema");
    let mut mapping = Mapping::new(sc.source.name.clone(), sc.target.name.clone());
    for t in sc.tgds.clone() {
        mapping.push_tgd(t);
    }
    engine.add_mapping("soak", mapping).expect("mapping");
    let (_, t_put) = timed(|| engine.put_instance("src", sc.db.clone()).expect("put"));
    let ((out, _), t_ex) =
        timed(|| engine.exchange("soak", &sc.target.name, &sc.db).expect("exchange"));
    let (_, t_ckpt) = timed(|| engine.checkpoint().expect("checkpoint"));
    let before = db_bytes(&engine.instance("src").expect("tracked instance"));
    drop(engine);
    // recovery loads the v4 snapshot (intern-pool section included)
    let (reopened, t_rec) = timed(|| {
        Engine::open_durable(MemStorage::from_files(storage.dump()), DurableOptions::default())
            .expect("recover")
    });
    let after = db_bytes(&reopened.instance("src").expect("recovered instance"));
    assert_eq!(before, after, "durable round-trip diverged at scale");
    let _ = out;
    println!(
        "matrix durability   tier {:>9}: put {:>7.1} ms  exchange {:>9.1} ms  checkpoint {:>7.1} ms  recover {:>7.1} ms",
        mid_tier(), ms(t_put), ms(t_ex), ms(t_ckpt), ms(t_rec)
    );
    points.push(Point {
        json: format!(
            "    {{\"cell\": \"durability\", \"scenario\": \"snowflake\", \"tuples\": {}, \"put_ms\": {:.1}, \"exchange_ms\": {:.1}, \"checkpoint_ms\": {:.1}, \"recover_ms\": {:.1}, \"bit_identical\": true}}",
            mid_tier(), ms(t_put), ms(t_ex), ms(t_ckpt), ms(t_rec)
        ),
    });
}

fn fault_cell(points: &mut Vec<Point>) {
    let sc = snowflake_scale(mid_tier(), SEED);
    let storage = MemStorage::new();
    let engine =
        Engine::open_durable(storage.clone(), DurableOptions::default()).expect("open durable");
    engine.put_instance("src", sc.db.clone()).expect("put");
    engine.checkpoint().expect("checkpoint");
    let committed = db_bytes(&engine.instance("src").expect("tracked"));
    // post-checkpoint writes land in the WAL; tear its tail mid-frame
    engine
        .insert_batch("src", vec![(
            "fact".to_string(),
            vec![Tuple::from([
                Value::Int(-1),
                Value::Int(0),
                Value::Int(0),
                Value::text("channel-0-direct-to-consumer"),
            ])],
        )])
        .expect("post-checkpoint batch");
    drop(engine);
    let mut files = storage.dump();
    let torn = files
        .get_mut(WAL_FILE)
        .expect("post-checkpoint batch must leave a WAL");
    let keep = torn.len() / 2;
    torn.truncate(keep);
    let (recovered, t_rec) = timed(|| {
        Engine::open_durable(MemStorage::from_files(files.clone()), DurableOptions::default())
            .expect("torn-tail recovery must succeed")
    });
    let after = db_bytes(&recovered.instance("src").expect("instance survives the tear"));
    assert_eq!(committed, after, "torn WAL tail must recover the committed prefix");
    println!(
        "matrix faults       tier {:>9}: torn WAL tail ({keep} bytes kept) recovered in {:>7.1} ms",
        mid_tier(), ms(t_rec)
    );
    points.push(Point {
        json: format!(
            "    {{\"cell\": \"faults\", \"scenario\": \"snowflake\", \"tuples\": {}, \"fault\": \"torn_wal_tail\", \"recover_ms\": {:.1}, \"committed_prefix_recovered\": true}}",
            mid_tier(), ms(t_rec)
        ),
    });
}

/// Live introspection scrape: serve mid-tier exchanges over the wire,
/// then read the server's own p99 and queue depth back through the
/// Metrics/Health ops — the soak evidence that the compact plane's
/// speedup survives the full request path.
fn server_cell(points: &mut Vec<Point>) {
    // a wire-sized slice of the scenario: frames round-trip the full
    // codec, so the payload exercises symbol encode/decode end to end
    let sc = snowflake_scale(mid_tier().min(20_000), SEED);
    let tel = Telemetry::new(RingCollector::with_capacity(4_096));
    let engine = Engine::with_config(EngineConfig { telemetry: tel, ..EngineConfig::default() })
        .expect("engine");
    engine.add_schema(sc.source.clone()).expect("schema");
    engine.add_schema(sc.target.clone()).expect("schema");
    let mut mapping = Mapping::new(sc.source.name.clone(), sc.target.name.clone());
    for t in sc.tgds.clone() {
        mapping.push_tgd(t);
    }
    engine.add_mapping("soak", mapping).expect("mapping");
    let handle = Server::start(engine, ServerConfig::default()).expect("start server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    const REQUESTS: usize = 8;
    let (_, t_all) = timed(|| {
        for _ in 0..REQUESTS {
            client.exchange("soak", &sc.target.name, &sc.db).expect("wire exchange");
        }
    });
    let entries = client.metrics().expect("metrics scrape");
    let read = |key: &str| entries.iter().find(|(k, _)| k == key).map_or(0, |(_, v)| *v);
    let p99 = read("server.service_us_p99");
    let alloc_tuples = read("alloc.tuples");
    let alloc_interned = read("alloc.interned");
    let health = client.health().expect("health scrape");
    println!(
        "matrix server       tier {:>9}: {REQUESTS} exchanges in {:>8.1} ms  service p99 {p99} us  queue depth {}  alloc.tuples {alloc_tuples}  alloc.interned {alloc_interned}",
        sc.tuples(), ms(t_all), health.queue_depth
    );
    assert!(p99 > 0, "served traffic must fill the service-time histogram");
    assert!(alloc_interned > 0, "scale exchanges must populate the alloc.interned gauge");
    points.push(Point {
        json: format!(
            "    {{\"cell\": \"server_scrape\", \"scenario\": \"snowflake\", \"tuples\": {}, \"requests\": {REQUESTS}, \"total_ms\": {:.1}, \"service_p99_us\": {p99}, \"queue_depth\": {}, \"alloc_tuples\": {alloc_tuples}, \"alloc_interned\": {alloc_interned}}}",
            sc.tuples(), ms(t_all), health.queue_depth
        ),
    });
    drop(client);
    handle.shutdown().expect("shutdown");
}

fn emit_baseline() {
    let host_cpus = mm_parallel::available_parallelism();
    let smoke = tiers().len() == 1;
    let mut points: Vec<Point> = Vec::new();
    let mut speedups_top: Vec<f64> = Vec::new();

    hot_path_points(&mut points, &mut speedups_top);
    thread_cell(&mut points);
    budget_cell(&mut points);
    durability_cell(&mut points);
    fault_cell(&mut points);
    server_cell(&mut points);

    let geomean = (speedups_top.iter().map(|s| s.ln()).sum::<f64>()
        / speedups_top.len().max(1) as f64)
        .exp();
    let gate_armed = !smoke;
    println!(
        "\ngeomean speedup at top tier ({} points): {geomean:.2}x (gate {} at >= {MIN_GEOMEAN_SPEEDUP}x)",
        speedups_top.len(),
        if gate_armed { "armed" } else { "off (smoke)" },
    );
    if gate_armed {
        assert!(
            geomean >= MIN_GEOMEAN_SPEEDUP,
            "compact plane geomean speedup {geomean:.2}x at the million-tuple tier \
             (need >= {MIN_GEOMEAN_SPEEDUP}x over the pre-interning baseline)"
        );
    }

    let body = format!(
        "{{\n  \"experiment\": \"scale_soak\",\n  \"description\": \"compact data plane soak: chase and CQ hot paths over snowflake/inheritance/evolution scenarios at 10^4..10^6 source tuples, compact (interned strings, inline tuples, cached hashes) vs the in-tree pre-interning baseline (owned strings, spilled tuples, uncached hashes), canonical-codec-bytes bit-identity asserted per point; the mid tier crosses scale with threads, budgets, durability (v4 snapshot with intern-pool section), torn-WAL faults, and a live server scrape via the Metrics/Health introspection ops; speedups are single-thread wall-clock\",\n  \"command\": \"cargo bench -p mm-bench --bench scale\",\n  \"host_cpus\": {host_cpus},\n  \"attested\": {attested},\n  \"smoke\": {smoke},\n  \"gate\": {{\"min_geomean_speedup_top_tier\": {MIN_GEOMEAN_SPEEDUP}, \"armed\": {gate_armed}, \"geomean\": {geomean:.2}}},\n  \"points\": [\n{}\n  ]\n}}\n",
        points.iter().map(|p| p.json.as_str()).collect::<Vec<_>>().join(",\n"),
        attested = host_cpus >= 4,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_scale.json");
    f.write_all(body.as_bytes()).expect("write BENCH_scale.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_scale_chase, bench_scale_cq);

fn main() {
    benches();
    emit_baseline();
}
