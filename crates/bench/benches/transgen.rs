//! EQ4 — Criterion timings for TransGen: fragment parsing, query/update
//! view compilation, and roundtrip verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_engine::prelude::*;
use mm_workload::{er_hierarchy, populate_er};

fn setup(depth: usize, fanout: usize) -> (Schema, Schema, Mapping) {
    let er = er_hierarchy(29, depth, fanout, 3);
    let gen = er_to_relational(&er, InheritanceStrategy::Vertical).expect("modelgen");
    (er, gen.schema, gen.mapping)
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq4_compile_views");
    for (depth, fanout) in [(1usize, 2usize), (2, 2), (2, 3)] {
        let (er, rel, mapping) = setup(depth, fanout);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{depth}_f{fanout}")),
            &(),
            |b, _| {
                b.iter(|| {
                    let frags = parse_fragments(&er, &rel, &mapping).expect("fragments");
                    let q = query_views(&er, &rel, &frags).expect("qviews");
                    let u = update_views(&er, &rel, &frags).expect("uviews");
                    (q, u)
                })
            },
        );
    }
    group.finish();
}

fn bench_roundtrip_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq4_verify_roundtrip");
    group.sample_size(10);
    for per_type in [20usize, 100] {
        let (er, rel, mapping) = setup(2, 2);
        let frags = parse_fragments(&er, &rel, &mapping).expect("fragments");
        let db = populate_er(&er, 5, per_type);
        group.bench_with_input(BenchmarkId::from_parameter(per_type), &(), |b, _| {
            b.iter(|| verify_roundtrip(&er, &rel, &frags, &db).expect("verify"))
        });
    }
    group.finish();
}

fn bench_clio_baseline(c: &mut Criterion) {
    // correspondence-direct generation (Clio'00) vs constraint compilation
    use mm_workload::{perturb_schema, relational_schema};
    let source = relational_schema(9, 6, 6);
    let (target, truth) = perturb_schema(&source, 10, 0.2, 0.0, 0.0);
    let mut corrs = CorrespondenceSet::new(source.name.clone(), target.name.clone());
    for (s, t) in &truth.pairs {
        corrs.push(Correspondence::new(s.clone(), t.clone(), 1.0));
    }
    c.bench_function("eq4_clio_baseline_generation", |b| {
        b.iter(|| correspondences_to_views(&source, &target, &corrs).expect("clio views"))
    });
}

criterion_group!(benches, bench_compile, bench_roundtrip_verification, bench_clio_baseline);
criterion_main!(benches);
