//! Crash-safe repository (PR 3): WAL append throughput and recovery
//! latency vs artifact count.
//!
//! Besides the criterion groups, `main` re-measures each point once with
//! `mm_bench::timed`, asserts every recovery path reproduces the
//! original repository bit-identically (`state_bytes`), and writes the
//! `BENCH_repo.json` baseline at the workspace root (the vendored
//! criterion stub emits no files). The committed baseline records the
//! durability costs: per-artifact journaling overhead, log replay
//! latency, and how much a snapshot checkpoint shrinks recovery.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mm_bench::timed;
use mm_engine::prelude::*;
use std::collections::BTreeMap;
use std::io::Write as _;

const SIZES: [usize; 3] = [64, 256, 1024];

fn sample_schema(i: usize) -> Schema {
    SchemaBuilder::new(format!("S{i}"))
        .relation("R", &[("a", DataType::Int), ("b", DataType::Text)])
        .build()
        .expect("static bench schema")
}

/// Store `n` schema versions through a durable repository and return
/// the resulting disk image plus the in-memory fingerprint.
fn journaled_image(n: usize) -> (BTreeMap<String, Vec<u8>>, bytes::Bytes) {
    let mem = MemStorage::new();
    let repo = Repository::open_durable(mem.clone(), DurableOptions::default())
        .expect("open durable");
    for i in 0..n {
        repo.store_schema(format!("S{}", i % 8), sample_schema(i)).expect("store");
    }
    (mem.dump(), repo.state_bytes())
}

/// Same `n` writes, but compacted into a snapshot (empty log).
fn checkpointed_image(n: usize) -> (BTreeMap<String, Vec<u8>>, bytes::Bytes) {
    let mem = MemStorage::new();
    let repo = Repository::open_durable(mem.clone(), DurableOptions::default())
        .expect("open durable");
    for i in 0..n {
        repo.store_schema(format!("S{}", i % 8), sample_schema(i)).expect("store");
    }
    repo.checkpoint().expect("checkpoint");
    (mem.dump(), repo.state_bytes())
}

/// Journaled writes: every `store_schema` appends one checksummed WAL
/// frame before touching memory. The ephemeral branch is the same write
/// with the log disabled — the difference is the durability tax.
fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("repo_wal_append");
    group.sample_size(10);
    for n in SIZES {
        group.bench_with_input(BenchmarkId::new("durable", n), &(), |b, _| {
            b.iter(|| {
                let repo = Repository::open_durable(MemStorage::new(), DurableOptions::default())
                    .expect("open");
                for i in 0..n {
                    repo.store_schema(format!("S{}", i % 8), sample_schema(i)).expect("store");
                }
                repo
            })
        });
        group.bench_with_input(BenchmarkId::new("ephemeral", n), &(), |b, _| {
            b.iter(|| {
                let repo = Repository::new();
                for i in 0..n {
                    repo.store_schema(format!("S{}", i % 8), sample_schema(i)).expect("store");
                }
                repo
            })
        });
    }
    group.finish();
}

/// Recovery latency: replaying an `n`-record log vs loading the
/// equivalent snapshot.
fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("repo_recovery");
    group.sample_size(10);
    for n in SIZES {
        let (log_image, _) = journaled_image(n);
        let (snap_image, _) = checkpointed_image(n);
        group.bench_with_input(BenchmarkId::new("replay_log", n), &(), |b, _| {
            b.iter(|| {
                Repository::open_durable(
                    MemStorage::from_files(log_image.clone()),
                    DurableOptions::default(),
                )
                .expect("recover")
            })
        });
        group.bench_with_input(BenchmarkId::new("load_snapshot", n), &(), |b, _| {
            b.iter(|| {
                Repository::open_durable(
                    MemStorage::from_files(snap_image.clone()),
                    DurableOptions::default(),
                )
                .expect("recover")
            })
        });
    }
    group.finish();
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One-shot measurements for the committed baseline: every recovery is
/// asserted bit-identical to the repository that produced the image.
fn emit_baseline() {
    let mut rows_json: Vec<String> = Vec::new();

    for n in SIZES {
        let (_, durable_t) = timed(|| {
            let repo = Repository::open_durable(MemStorage::new(), DurableOptions::default())
                .expect("open");
            for i in 0..n {
                repo.store_schema(format!("S{}", i % 8), sample_schema(i)).expect("store");
            }
        });
        let (_, ephemeral_t) = timed(|| {
            let repo = Repository::new();
            for i in 0..n {
                repo.store_schema(format!("S{}", i % 8), sample_schema(i)).expect("store");
            }
        });
        let (log_image, fingerprint) = journaled_image(n);
        let wal_bytes = log_image.get(WAL_FILE).map(Vec::len).unwrap_or(0);
        let (recovered, replay_t) = timed(|| {
            Repository::open_durable(
                MemStorage::from_files(log_image.clone()),
                DurableOptions::default(),
            )
            .expect("recover from log")
        });
        assert_eq!(recovered.state_bytes(), fingerprint, "log replay diverged");

        let (snap_image, snap_fp) = checkpointed_image(n);
        let snap_bytes = snap_image.get(SNAPSHOT_FILE).map(Vec::len).unwrap_or(0);
        let (recovered, snap_t) = timed(|| {
            Repository::open_durable(
                MemStorage::from_files(snap_image.clone()),
                DurableOptions::default(),
            )
            .expect("recover from snapshot")
        });
        assert_eq!(recovered.state_bytes(), snap_fp, "snapshot load diverged");
        assert_eq!(fingerprint, snap_fp, "checkpoint changed the state");

        println!(
            "artifacts {n:>5}: append durable {:>8.3} ms (ephemeral {:>7.3} ms), \
             replay {:>8.3} ms ({wal_bytes} B log), snapshot {:>7.3} ms ({snap_bytes} B)",
            ms(durable_t),
            ms(ephemeral_t),
            ms(replay_t),
            ms(snap_t),
        );
        rows_json.push(format!(
            "    {{\"artifacts\": {n}, \"append_durable_ms\": {:.3}, \"append_ephemeral_ms\": {:.3}, \"wal_bytes\": {wal_bytes}, \"replay_log_ms\": {:.3}, \"snapshot_bytes\": {snap_bytes}, \"load_snapshot_ms\": {:.3}}}",
            ms(durable_t),
            ms(ephemeral_t),
            ms(replay_t),
            ms(snap_t),
        ));
    }

    let host_cpus = mm_parallel::available_parallelism();
    let body = format!(
        "{{\n  \"experiment\": \"repo_durability\",\n  \"description\": \"WAL append overhead and recovery latency (log replay vs snapshot load); every recovery asserted bit-identical to the source repository (attested = those per-point assertions passed on the emitting host)\",\n  \"command\": \"cargo bench -p mm-bench --bench repo\",\n  \"host_cpus\": {host_cpus},\n  \"attested\": true,\n  \"points\": [\n{}\n  ]\n}}\n",
        rows_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repo.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_repo.json");
    f.write_all(body.as_bytes()).expect("write BENCH_repo.json");
    println!("\nwrote {path}");
}

criterion_group!(benches, bench_append, bench_recovery);

fn main() {
    benches();
    emit_baseline();
}
