//! EQ8 — Criterion timings for the evolution operators: Merge, Diff /
//! Extract, inverse computation, and end-to-end evolution chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_engine::prelude::*;
use mm_workload::{evolution_chain, perturb_schema, populate_relational, relational_schema};

fn bench_merge_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq8_merge");
    for size in [8usize, 16, 32] {
        let left = relational_schema(41, size, 6);
        let (right, truth) = perturb_schema(&left, 43, 0.3, 0.1, 0.2);
        let mut corrs = CorrespondenceSet::new(left.name.clone(), right.name.clone());
        for (s, t) in &truth.pairs {
            corrs.push(Correspondence::new(s.clone(), t.clone(), 1.0));
        }
        group.bench_with_input(BenchmarkId::from_parameter(size), &(), |b, _| {
            b.iter(|| merge(&left, &right, &corrs))
        });
    }
    group.finish();
}

fn bench_diff_extract(c: &mut Criterion) {
    let schema = relational_schema(11, 16, 8);
    // a mapping touching half the relations
    let mut constraints = Vec::new();
    for name in schema.element_names().take(8) {
        let cols: Vec<String> = schema
            .element(name)
            .expect("enumerated")
            .attributes
            .iter()
            .take(3)
            .map(|a| a.name.clone())
            .collect();
        constraints.push(MappingConstraint::ExprEq {
            source: Expr::base(name).project_owned(cols),
            target: Expr::base(format!("{name}_t")),
        });
    }
    let mapping = Mapping::with_constraints(schema.name.clone(), "T", constraints);
    c.bench_function("eq8_diff", |b| {
        b.iter(|| diff(&schema, &mapping, Side::Source))
    });
    c.bench_function("eq8_extract", |b| {
        b.iter(|| extract(&schema, &mapping, Side::Source))
    });
}

fn bench_evolution_chain_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq8_evolution_chain");
    group.sample_size(10);
    for steps in [2usize, 6] {
        let s0 = relational_schema(33, 4, 4);
        let db0 = populate_relational(&s0, 12, 100);
        let chain = evolution_chain(&s0, 8, steps);
        group.bench_with_input(BenchmarkId::from_parameter(steps), &(), |b, _| {
            b.iter(|| {
                let mut schema = s0.clone();
                let mut db = db0.clone();
                for step in &chain {
                    db = materialize_views(&step.migration, &schema, &db).expect("migrate");
                    schema = step.schema.clone();
                }
                db
            })
        });
    }
    group.finish();
}

fn bench_inverse(c: &mut Criterion) {
    let source = SchemaBuilder::new("S")
        .relation("R", &[
            ("id", DataType::Int),
            ("a", DataType::Text),
            ("b", DataType::Text),
            ("c", DataType::Text),
        ])
        .key("R", &["id"])
        .build()
        .expect("schema");
    let mut views = ViewSet::new("S", "T");
    views.push(ViewDef::new("R1", Expr::base("R").project(&["id", "a"])));
    views.push(ViewDef::new("R2", Expr::base("R").project(&["id", "b"])));
    views.push(ViewDef::new("R3", Expr::base("R").project(&["id", "c"])));
    c.bench_function("eq8_invert_views", |b| {
        b.iter(|| invert_views(&views, &source).expect("invertible"))
    });
}

criterion_group!(
    benches,
    bench_merge_scaling,
    bench_diff_extract,
    bench_evolution_chain_end_to_end,
    bench_inverse
);
criterion_main!(benches);
