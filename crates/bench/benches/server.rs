//! Wire front-end (PR 6): sustained round-trip throughput of the
//! `mm-server` protocol, plus the overload shed path — the latency of a
//! *typed rejection* while the worker pool is saturated, which is the
//! bound graceful shedding promises.
//!
//! Besides the criterion groups, `main` re-measures each point once and
//! writes the `BENCH_server.json` baseline at the workspace root. Like
//! `BENCH_parallel.json`, the baseline records `host_cpus` and an
//! `attested` flag: throughput measured with client and server threads
//! contending for fewer than 4 cpus is shape-only evidence, so the flag
//! is false on such hosts.
//!
//! The sustained-throughput server runs with telemetry enabled, and the
//! baseline additionally reports the server's own latency histograms —
//! service time and queue wait, p50/p99 — read back over the wire via
//! the `Metrics` introspection op (DESIGN.md §15).

use criterion::{criterion_group, Criterion};
use mm_bench::timed;
use mm_engine::prelude::*;
use mm_server::{protocol, Client, Server, ServerConfig, ServerHandle};
use mm_workload::{faults, tgds};
use std::io::Write as _;
use std::time::Duration;

const PING_REQUESTS: usize = 2_000;
const EXCHANGE_REQUESTS: usize = 300;
const SHED_SAMPLES: usize = 400;
/// Rows for the saturating exchange in the shed experiment — sized so
/// two of them keep a single release-mode worker busy well past the
/// rejection-latency measurement window.
const SATURATE_ROWS: usize = 60_000;

/// An engine with the copy mapping `copy: Src -> Dst` (2 relations) and
/// the quadratic self-join `quad: QSrc -> QTgt` for saturating requests.
fn wire_engine(telemetry: Telemetry) -> Engine {
    let engine = Engine::with_config(EngineConfig { telemetry, ..EngineConfig::default() })
        .expect("engine");
    engine.add_schema(tgds::binary_schema("Src", "A", 2)).expect("src");
    engine.add_schema(tgds::binary_schema("Dst", "B", 2)).expect("dst");
    let mut copy = Mapping::new("Src", "Dst");
    for t in tgds::copy_tgds("A", "B", 2) {
        copy.push_tgd(t);
    }
    engine.add_mapping("copy", copy).expect("copy");
    let (qsrc, qtgt, _, qtgds) = faults::quadratic_join(4);
    engine.add_schema(qsrc).expect("qsrc");
    engine.add_schema(qtgt).expect("qtgt");
    let mut quad = Mapping::new("QSrc", "QTgt");
    for t in qtgds {
        quad.push_tgd(t);
    }
    engine.add_mapping("quad", quad).expect("quad");
    engine
}

fn small_source() -> Database {
    let mut db = Database::new("S");
    let mut rel = Relation::new(RelSchema::of(&[("a", DataType::Int), ("b", DataType::Int)]));
    for i in 0..8i64 {
        rel.insert(Tuple::from([Value::Int(i), Value::Int(i + 1)]));
    }
    db.insert_relation("A0", rel.clone());
    db.insert_relation("A1", rel);
    db
}

fn boot(cfg: ServerConfig) -> (ServerHandle, Client) {
    let handle = Server::start(wire_engine(Telemetry::disabled()), cfg).expect("start server");
    let client = Client::connect(handle.addr()).expect("connect");
    (handle, client)
}

fn bench_wire_ping(c: &mut Criterion) {
    let (handle, mut client) = boot(ServerConfig::default());
    let mut group = c.benchmark_group("server_wire");
    group.bench_function("ping_round_trip", |b| {
        b.iter(|| client.ping().expect("ping"))
    });
    group.finish();
    drop(client);
    handle.shutdown().expect("shutdown");
}

fn bench_wire_exchange(c: &mut Criterion) {
    let (handle, mut client) = boot(ServerConfig::default());
    let src = small_source();
    let mut group = c.benchmark_group("server_wire");
    group.sample_size(30);
    group.bench_function("exchange_small_round_trip", |b| {
        b.iter(|| client.exchange("copy", "Dst", &src).expect("exchange"))
    });
    group.finish();
    drop(client);
    handle.shutdown().expect("shutdown");
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// Measure `n` round trips of `call`, returning (qps, p50_us, p99_us).
fn measure(n: usize, mut call: impl FnMut()) -> (f64, f64, f64) {
    let mut lat: Vec<f64> = Vec::with_capacity(n);
    let (_, total) = timed(|| {
        for _ in 0..n {
            let ((), d) = timed(&mut call);
            lat.push(us(d));
        }
    });
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (n as f64 / total.as_secs_f64(), percentile(&lat, 0.50), percentile(&lat, 0.99))
}

fn emit_baseline() {
    let host_cpus = mm_parallel::available_parallelism();
    let mut points: Vec<String> = Vec::new();

    // Sustained single-client round trips: the protocol floor (ping)
    // and a small end-to-end exchange. Telemetry is on so the server's
    // own histograms fill; afterwards the metrics introspection op
    // reads back service-time and queue-wait percentiles — the
    // server-side view of the same traffic the client timed.
    {
        let tel = Telemetry::new(RingCollector::with_capacity(4_096));
        let handle =
            Server::start(wire_engine(tel), ServerConfig::default()).expect("start server");
        let mut client = Client::connect(handle.addr()).expect("connect");
        for _ in 0..50 {
            client.ping().expect("warmup");
        }
        let (qps, p50, p99) = measure(PING_REQUESTS, || client.ping().expect("ping"));
        points.push(point_json("ping", PING_REQUESTS, qps, p50, p99));
        let src = small_source();
        let (qps, p50, p99) = measure(EXCHANGE_REQUESTS, || {
            client.exchange("copy", "Dst", &src).expect("exchange");
        });
        points.push(point_json("exchange_small", EXCHANGE_REQUESTS, qps, p50, p99));
        let entries = client.metrics().expect("metrics snapshot");
        let read = |key: &str| {
            entries.iter().find(|(k, _)| k == key).map_or(0, |(_, v)| *v)
        };
        points.push(hist_point_json(
            "service_us_hist",
            read("server.service_us_count") as usize,
            read("server.service_us_p50") as f64,
            read("server.service_us_p99") as f64,
        ));
        points.push(hist_point_json(
            "queue_wait_us_hist",
            read("server.queue_wait_us_count") as usize,
            read("server.queue_wait_us_p50") as f64,
            read("server.queue_wait_us_p99") as f64,
        ));
        drop(client);
        handle.shutdown().expect("shutdown");
    }

    // Typed rejection latency under overload: saturate a single worker
    // with two slow exchanges, then time how fast a second session's
    // requests are shed from the 22-byte prelude. Admission never
    // parses the body, so rejections must stay orders of magnitude
    // below request latency even while the engine is pinned.
    {
        let cfg = ServerConfig {
            workers: 1,
            queue_depth: 2,
            high_water: 2,
            low_water: 0,
            ..ServerConfig::default()
        };
        let handle =
            Server::start(wire_engine(Telemetry::disabled()), cfg).expect("start server");
        let mut saturator = Client::connect(handle.addr()).expect("connect");
        let (_, _, slow_db, _) = faults::quadratic_join(SATURATE_ROWS);
        let payload = protocol::encode_request(1, 0, 0, &protocol::Request::Exchange {
            mapping: "quad".into(),
            target_schema: "QTgt".into(),
            source_db: slow_db,
        });
        // Pipeline both saturating requests without waiting for replies
        // (one executing, one queued -> inflight hits the high-water).
        protocol::write_frame(saturator.stream_mut(), &payload).expect("saturate 1");
        protocol::write_frame(saturator.stream_mut(), &payload).expect("saturate 2");

        // Wait for both saturating requests to go inflight: the next
        // admitted request crosses the high-water mark and is shed.
        let admitted = std::time::Instant::now();
        while handle.inflight() < 2 {
            assert!(
                admitted.elapsed() < Duration::from_secs(10),
                "saturating requests never went inflight"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut probe = Client::connect(handle.addr()).expect("connect probe");
        let mut lat: Vec<f64> = Vec::with_capacity(SHED_SAMPLES);
        for _ in 0..SHED_SAMPLES {
            let (outcome, d) = timed(|| probe.ping());
            match outcome {
                Err(e) if e.is_overloaded() => lat.push(us(d)),
                // window closed early: report what we actually sampled
                Ok(()) => break,
                Err(e) => panic!("unexpected probe failure: {e}"),
            }
        }
        let samples = lat.len();
        if samples < SHED_SAMPLES {
            println!("shed window closed after {samples}/{SHED_SAMPLES} samples");
        }
        let total_s: f64 = lat.iter().sum::<f64>() / 1e6;
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        points.push(point_json(
            "shed_reject",
            samples,
            samples as f64 / total_s.max(1e-9),
            percentile(&lat, 0.50),
            percentile(&lat, 0.99),
        ));
        // Drain the saturating replies so shutdown is a clean drain,
        // not a drain-timeout.
        for _ in 0..2 {
            let frame = protocol::read_frame(saturator.stream_mut(), protocol::DEFAULT_MAX_FRAME_LEN)
                .expect("saturator reply");
            assert!(frame.crc_ok());
        }
        drop(saturator);
        drop(probe);
        handle.shutdown().expect("shutdown");
    }

    let body = format!(
        "{{\n  \"experiment\": \"server_wire\",\n  \"description\": \"sustained single-client round-trip throughput of the mm-server wire protocol (ping floor and a small end-to-end exchange) with telemetry enabled, the server's own service-time and queue-wait histogram percentiles read back via the Metrics introspection op, plus the typed-rejection latency of admission-control shedding while a single worker is saturated — rejections are issued from the 22-byte request prelude without parsing the body\",\n  \"command\": \"cargo bench -p mm-bench --bench server\",\n  \"host_cpus\": {host_cpus},\n  \"attested\": {attested},\n  \"points\": [\n{}\n  ]\n}}\n",
        points.join(",\n"),
        attested = host_cpus >= 4,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_server.json");
    f.write_all(body.as_bytes()).expect("write BENCH_server.json");
    println!("\nwrote {path}");
}

fn point_json(op: &str, requests: usize, qps: f64, p50_us: f64, p99_us: f64) -> String {
    println!("{op:<16} n={requests:<5} {qps:>10.0} req/s  p50 {p50_us:>8.1} us  p99 {p99_us:>8.1} us");
    format!(
        "    {{\"op\": \"{op}\", \"requests\": {requests}, \"qps\": {qps:.0}, \"p50_us\": {p50_us:.1}, \"p99_us\": {p99_us:.1}}}"
    )
}

/// A point derived from one of the server's own latency histograms
/// (log-bucketed: percentiles are bucket upper bounds, ~2x relative
/// error) rather than a client-side measurement — no qps, the
/// companion round-trip point already carries it.
fn hist_point_json(op: &str, count: usize, p50_us: f64, p99_us: f64) -> String {
    println!("{op:<16} n={count:<5} {:>10}  p50 {p50_us:>8.1} us  p99 {p99_us:>8.1} us", "server-side");
    format!(
        "    {{\"op\": \"{op}\", \"requests\": {count}, \"p50_us\": {p50_us:.1}, \"p99_us\": {p99_us:.1}}}"
    )
}

criterion_group!(benches, bench_wire_ping, bench_wire_exchange);

fn main() {
    benches();
    emit_baseline();
}
