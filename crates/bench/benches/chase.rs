//! EQ7 — Criterion timings for the chase: data exchange vs compiled
//! views, certain answers, and core minimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_engine::prelude::*;
use mm_workload::{copy_tgds, tgds::binary_schema};

fn exchange_setup(relations: usize, rows: usize) -> (Schema, Schema, Vec<Tgd>, Database) {
    let src = binary_schema("Src", "A", relations);
    let tgt = binary_schema("Tgt", "B", relations);
    let tgds = copy_tgds("A", "B", relations);
    let mut db = Database::empty_of(&src);
    for i in 0..relations {
        for r in 0..rows {
            db.insert(
                &format!("A{i}"),
                Tuple::from([Value::Int(r as i64), Value::Int((r + 1) as i64)]),
            );
        }
    }
    (src, tgt, tgds, db)
}

fn bench_chase_vs_compiled(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq7_exchange");
    group.sample_size(10);
    for rows in [200usize, 1_000] {
        let (src, tgt, tgds, db) = exchange_setup(4, rows);
        group.bench_with_input(BenchmarkId::new("chase", rows), &(), |b, _| {
            b.iter(|| chase_st(&tgt, &tgds, &db))
        });
        let mut views = ViewSet::new("Src", "Tgt");
        for i in 0..4 {
            views.push(ViewDef::new(format!("B{i}"), Expr::base(format!("A{i}"))));
        }
        group.bench_with_input(BenchmarkId::new("compiled", rows), &(), |b, _| {
            b.iter(|| materialize_views(&views, &src, &db).expect("copy views"))
        });
    }
    group.finish();
}

fn bench_certain_answers(c: &mut Criterion) {
    let (_, tgt, tgds, db) = exchange_setup(4, 1_000);
    let (universal, _) = chase_st(&tgt, &tgds, &db);
    let q = Expr::base("B0").project(&["a"]);
    c.bench_function("eq7_certain_answers", |b| {
        b.iter(|| certain_answers(&q, &tgt, &universal).expect("certain"))
    });
}

fn bench_existential_chase(c: &mut Criterion) {
    // chase with existentials: every firing mints a labeled null
    let src = SchemaBuilder::new("Src")
        .relation("Emp", &[("e", DataType::Int)])
        .build()
        .expect("src");
    let tgt = SchemaBuilder::new("Tgt")
        .relation("Mgr", &[("e", DataType::Int), ("m", DataType::Any)])
        .relation("Person", &[("p", DataType::Any)])
        .build()
        .expect("tgt");
    let tgds = vec![Tgd::new(
        vec![Atom::vars("Emp", &["e"])],
        vec![Atom::vars("Mgr", &["e", "m"]), Atom::vars("Person", &["m"])],
    )];
    let mut group = c.benchmark_group("eq7_existential_chase");
    group.sample_size(10);
    for rows in [100usize, 400] {
        let mut db = Database::empty_of(&src);
        for i in 0..rows {
            db.insert("Emp", Tuple::from([Value::Int(i as i64)]));
        }
        group.bench_with_input(BenchmarkId::from_parameter(rows), &db, |b, db| {
            b.iter(|| chase_st(&tgt, &tgds, db))
        });
    }
    group.finish();
}

fn bench_core_minimization(c: &mut Criterion) {
    // universal instance with redundant null tuples
    let mut db = Database::new("U");
    let mut rel = Relation::new(RelSchema::of(&[("a", DataType::Any), ("b", DataType::Any)]));
    for i in 0..20i64 {
        rel.insert(Tuple::from([Value::Int(i), Value::Int(i + 1)]));
        rel.insert(Tuple::from([Value::Int(i), Value::Labeled(i as u64)]));
    }
    db.insert_relation("R", rel);
    c.bench_function("eq7_core_minimization", |b| b.iter(|| core_of(&db)));
}

criterion_group!(
    benches,
    bench_chase_vs_compiled,
    bench_certain_answers,
    bench_existential_chase,
    bench_core_minimization
);
criterion_main!(benches);
