//! EQ3 — Criterion timings for the schema matcher: lexical-only vs
//! flooding, sequential vs parallel scoring, and schema-size scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_engine::prelude::*;
use mm_workload::{perturb_schema, relational_schema};

fn bench_matcher_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq3_match_scaling");
    group.sample_size(15);
    for size in [4usize, 8, 16] {
        let source = relational_schema(7, size, 6);
        let (target, _) = perturb_schema(&source, 8, 0.4, 0.1, 0.2);
        group.bench_with_input(BenchmarkId::from_parameter(size), &(), |b, _| {
            b.iter(|| match_schemas(&source, &target, &MatchConfig::default()))
        });
    }
    group.finish();
}

fn bench_flooding_ablation(c: &mut Criterion) {
    let source = relational_schema(7, 10, 6);
    let (target, _) = perturb_schema(&source, 8, 0.4, 0.1, 0.2);
    let mut group = c.benchmark_group("eq3_flooding_ablation");
    for iterations in [0usize, 2, 5] {
        let cfg = MatchConfig { flooding_iterations: iterations, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(iterations), &cfg, |b, cfg| {
            b.iter(|| match_schemas(&source, &target, cfg))
        });
    }
    group.finish();
}

fn bench_parallel_scoring(c: &mut Criterion) {
    let source = relational_schema(7, 24, 8);
    let (target, _) = perturb_schema(&source, 8, 0.4, 0.1, 0.2);
    let mut group = c.benchmark_group("eq3_parallel_scoring");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let cfg = MatchConfig { threads, flooding_iterations: 0, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &cfg, |b, cfg| {
            b.iter(|| match_schemas(&source, &target, cfg))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matcher_scaling,
    bench_flooding_ablation,
    bench_parallel_scoring
);
criterion_main!(benches);
