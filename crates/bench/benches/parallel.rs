//! Parallel execution core (PR 5): thread-scaling curves for the
//! work-stealing chase, parallel CQ evaluation, and batch mediation.
//!
//! Besides the criterion groups, `main` re-measures every (workload,
//! threads) point once with `mm_bench::timed`, asserts the parallel
//! result is **bit-identical** to the sequential oracle, and writes the
//! `BENCH_parallel.json` baseline at the workspace root. The baseline
//! records `host_cpus` alongside the curves: parallelism here is a pure
//! scheduling choice, so on a single-core host the honest expectation is
//! flat curves (all threads contend for one core) — the ≥2.5×-at-4
//! scaling gate only arms when the host actually has ≥ 4 cores.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mm_bench::timed;
use mm_engine::prelude::*;
use mm_workload::faults;
use std::io::Write as _;

const THREAD_CURVE: [usize; 4] = [1, 2, 4, 8];
/// Scaling demanded at 4 threads — asserted only on hosts with ≥ 4 cores.
const MIN_SPEEDUP_AT_4: f64 = 2.5;
const BATCH_QUERIES: usize = 64;

/// The s-t chase workload: the quadratic self-join over a dense graph,
/// big enough that body matching dominates and chunks across workers.
fn chase_setup() -> (Schema, Database, ChaseProgram) {
    let (_, tgt, db, tgds) = faults::quadratic_join(600);
    let program = ChaseProgram::compile(&tgds, &db);
    (tgt, db, program)
}

/// The CQ workload: the two-atom self-join body of the same graph.
fn cq_setup() -> (Database, Vec<Atom>) {
    let (_, _, db, tgds) = faults::quadratic_join(1_500);
    (db, tgds[0].body.clone())
}

/// The mediation workload: a two-hop view chain over a wide base, with
/// `BATCH_QUERIES` projections of the top view to answer as one batch.
fn mediation_setup() -> (Schema, Database, ViewSet, ViewSet, Vec<Expr>) {
    let s = SchemaBuilder::new("Base")
        .relation("People", &[
            ("id", DataType::Int),
            ("name", DataType::Text),
            ("age", DataType::Int),
            ("city", DataType::Text),
        ])
        .build()
        .expect("static schema");
    let mut db = Database::empty_of(&s);
    for i in 0..4_000i64 {
        db.insert(
            "People",
            Tuple::from([
                Value::Int(i),
                Value::text(format!("p{i}")),
                Value::Int(20 + (i % 50)),
                Value::text(if i % 2 == 0 { "rome" } else { "oslo" }),
            ]),
        );
    }
    let mut l1 = ViewSet::new("Base", "L1");
    l1.push(ViewDef::new(
        "Adults",
        Expr::base("People").select(Predicate::Cmp {
            op: CmpOp::Ge,
            left: Scalar::col("age"),
            right: Scalar::lit(18i64),
        }),
    ));
    let mut l2 = ViewSet::new("L1", "L2");
    l2.push(ViewDef::new(
        "RomanAdults",
        Expr::base("Adults").select(Predicate::col_eq_lit("city", "rome")).project(&["id", "name"]),
    ));
    let projections: [&[&str]; 4] = [&["id", "name"], &["id"], &["name"], &["name", "id"]];
    // every query is structurally distinct (a per-query id threshold):
    // the batch must exercise the parallel fan-out, not the mediator's
    // multi-query sharing, which would collapse repeated queries
    let queries: Vec<Expr> = (0..BATCH_QUERIES)
        .map(|i| {
            Expr::base("RomanAdults")
                .select(Predicate::Cmp {
                    op: CmpOp::Ge,
                    left: Scalar::col("id"),
                    right: Scalar::lit(i as i64),
                })
                .project(projections[i % projections.len()])
        })
        .collect();
    (s, db, l1, l2, queries)
}

fn bench_parallel_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_chase_st");
    group.sample_size(10);
    let (tgt, db, program) = chase_setup();
    let budget = ExecBudget::unbounded();
    for threads in THREAD_CURVE {
        group.bench_with_input(BenchmarkId::new("threads", threads), &(), |b, _| {
            b.iter(|| {
                chase_st_parallel(&tgt, &program, &db, &budget, threads).expect("unbounded")
            })
        });
    }
    group.finish();
}

fn bench_parallel_cq(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_cq_self_join");
    group.sample_size(10);
    let (db, body) = cq_setup();
    let budget = ExecBudget::unbounded();
    let seed = std::collections::HashMap::new();
    for threads in THREAD_CURVE {
        group.bench_with_input(BenchmarkId::new("threads", threads), &(), |b, _| {
            b.iter(|| {
                find_homomorphisms_parallel(
                    &body,
                    &db,
                    &seed,
                    threads,
                    &mut Governor::new(&budget),
                )
                .expect("unbounded")
            })
        });
    }
    group.finish();
}

fn bench_batch_mediation(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_batch_mediation");
    group.sample_size(10);
    let (s, db, l1, l2, queries) = mediation_setup();
    let m = Mediator::new(&s, vec![&l1, &l2]);
    let budget = ExecBudget::unbounded();
    let plan = m.plan(&budget).expect("unbounded");
    for threads in THREAD_CURVE {
        group.bench_with_input(BenchmarkId::new("threads", threads), &(), |b, _| {
            b.iter(|| m.answer_batch(&plan, &queries, &db, &budget, threads))
        });
    }
    group.finish();
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One-shot measurements for the committed baseline: per workload, the
/// sequential (threads = 1) run is the oracle; every other thread count
/// must reproduce it bit-identically while its wall time lands on the
/// scaling curve.
fn emit_baseline() {
    let host_cpus = mm_parallel::available_parallelism();
    let budget = ExecBudget::unbounded();
    let mut points: Vec<String> = Vec::new();
    // (workload, speedup at 4 threads) for the conditional scaling gate
    let mut at_4: Vec<(&str, f64)> = Vec::new();

    {
        let (tgt, db, program) = chase_setup();
        let (oracle, base_t) =
            timed(|| chase_st_parallel(&tgt, &program, &db, &budget, 1).expect("unbounded"));
        points.push(point_json("chase_st", 1, ms(base_t), 1.0));
        for threads in &THREAD_CURVE[1..] {
            let (par, t) = timed(|| {
                chase_st_parallel(&tgt, &program, &db, &budget, *threads).expect("unbounded")
            });
            assert_eq!(par, oracle, "parallel chase diverged at threads={threads}");
            let speedup = ms(base_t) / ms(t).max(1e-6);
            points.push(point_json("chase_st", *threads, ms(t), speedup));
            if *threads == 4 {
                at_4.push(("chase_st", speedup));
            }
        }
    }

    {
        let (db, body) = cq_setup();
        let seed = std::collections::HashMap::new();
        let (oracle, base_t) = timed(|| {
            find_homomorphisms_parallel(&body, &db, &seed, 1, &mut Governor::new(&budget))
                .expect("unbounded")
                .0
        });
        points.push(point_json("cq_self_join", 1, ms(base_t), 1.0));
        for threads in &THREAD_CURVE[1..] {
            let (par, t) = timed(|| {
                find_homomorphisms_parallel(&body, &db, &seed, *threads, &mut Governor::new(&budget))
                    .expect("unbounded")
                    .0
            });
            assert_eq!(par, oracle, "parallel CQ eval diverged at threads={threads}");
            let speedup = ms(base_t) / ms(t).max(1e-6);
            points.push(point_json("cq_self_join", *threads, ms(t), speedup));
            if *threads == 4 {
                at_4.push(("cq_self_join", speedup));
            }
        }
    }

    {
        let (s, db, l1, l2, queries) = mediation_setup();
        let m = Mediator::new(&s, vec![&l1, &l2]);
        let plan = m.plan(&budget).expect("unbounded");
        let unwrap_rows = |batch: Vec<Result<MediationResult, EvalError>>| -> Vec<Relation> {
            batch.into_iter().map(|r| r.expect("unbounded").rows).collect()
        };
        let (oracle, base_t) =
            timed(|| unwrap_rows(m.answer_batch(&plan, &queries, &db, &budget, 1)));
        points.push(point_json("batch_mediation_64q", 1, ms(base_t), 1.0));
        for threads in &THREAD_CURVE[1..] {
            let (par, t) =
                timed(|| unwrap_rows(m.answer_batch(&plan, &queries, &db, &budget, *threads)));
            assert_eq!(par, oracle, "batch mediation diverged at threads={threads}");
            let speedup = ms(base_t) / ms(t).max(1e-6);
            points.push(point_json("batch_mediation_64q", *threads, ms(t), speedup));
            if *threads == 4 {
                at_4.push(("batch_mediation_64q", speedup));
            }
        }
    }

    if host_cpus >= 4 {
        for (workload, speedup) in &at_4 {
            assert!(
                *speedup >= MIN_SPEEDUP_AT_4,
                "{workload}: {speedup:.2}x at 4 threads on a {host_cpus}-cpu host \
                 (need >= {MIN_SPEEDUP_AT_4}x)"
            );
        }
    } else {
        println!(
            "\nhost has {host_cpus} cpu(s): scaling gate (>= {MIN_SPEEDUP_AT_4}x at 4 threads) \
             skipped; bit-identity still asserted at every point"
        );
    }

    // Thread-scaling curves measured on a host with fewer than 4 cpus
    // are not evidence of scaling either way: attested=false marks them
    // as shape-only (timings recorded, speedups not certified).
    let body = format!(
        "{{\n  \"experiment\": \"parallel_core\",\n  \"description\": \"thread-scaling of the work-stealing chase, parallel CQ evaluation, and 64-query batch mediation (bit-identical to the sequential oracle asserted per point; speedups are wall-clock and depend on host_cpus — on a 1-cpu host flat curves are the honest expectation)\",\n  \"command\": \"cargo bench -p mm-bench --bench parallel\",\n  \"host_cpus\": {host_cpus},\n  \"attested\": {attested},\n  \"scaling_gate\": {{\"min_speedup_at_4_threads\": {MIN_SPEEDUP_AT_4}, \"armed\": {attested}}},\n  \"points\": [\n{}\n  ]\n}}\n",
        points.join(",\n"),
        attested = host_cpus >= 4,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_parallel.json");
    f.write_all(body.as_bytes()).expect("write BENCH_parallel.json");
    println!("\nwrote {path}");
}

fn point_json(workload: &str, threads: usize, ms: f64, speedup: f64) -> String {
    println!("{workload:<22} threads {threads}: {ms:>9.3} ms ({speedup:>5.2}x vs 1 thread)");
    format!(
        "    {{\"workload\": \"{workload}\", \"threads\": {threads}, \"ms\": {ms:.3}, \"speedup_vs_1\": {speedup:.2}}}"
    )
}

criterion_group!(benches, bench_parallel_chase, bench_parallel_cq, bench_batch_mediation);

fn main() {
    benches();
    emit_baseline();
}
