//! Telemetry overhead (PR 4): the instrumented hot paths with a
//! disabled handle vs the un-instrumented baseline, and the fully
//! enabled cost (ring collector + metrics), on the PR 2 eval workloads.
//!
//! The claim the committed `BENCH_telemetry.json` records: a disabled
//! `Telemetry` handle costs one `Option` branch per instrumentation
//! site, keeping the no-op overhead within ≤3% of the baseline (inside
//! run-to-run noise). `main` measures best-of-N per point, asserts the
//! instrumented paths return bit-identical results, and writes the
//! baseline at the workspace root (the vendored criterion stub emits no
//! files).

use criterion::{criterion_group, BenchmarkId, Criterion};
use mm_engine::prelude::*;
use mm_workload::{copy_tgds, faults, tgds::binary_schema};
use std::io::Write as _;

const CHASE_SIZES: [usize; 3] = [250, 1_000, 4_000];
const CQ_SIZES: [usize; 2] = [200, 1_000];

/// The EQ7 exchange workload of `BENCH_eval.json`: 4 copy tgds over
/// `rows` tuples each, chased through a precompiled program.
fn exchange_setup(rows: usize) -> (Schema, ChaseProgram, Database) {
    let relations = 4;
    let src = binary_schema("Src", "A", relations);
    let tgt = binary_schema("Tgt", "B", relations);
    let tgds = copy_tgds("A", "B", relations);
    let mut db = Database::empty_of(&src);
    for i in 0..relations {
        for r in 0..rows {
            db.insert(
                &format!("A{i}"),
                Tuple::from([Value::Int(r as i64), Value::Int((r + 1) as i64)]),
            );
        }
    }
    let program = ChaseProgram::compile(&tgds, &db);
    (tgt, program, db)
}

fn enabled_handle() -> Telemetry {
    Telemetry::new(RingCollector::with_capacity(1_024))
}

fn bench_chase_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_chase_exchange");
    group.sample_size(10);
    let budget = ExecBudget::unbounded();
    for rows in CHASE_SIZES {
        let (tgt, program, db) = exchange_setup(rows);
        group.bench_with_input(BenchmarkId::new("baseline", rows), &(), |b, _| {
            b.iter(|| chase_st_prepared(&tgt, &program, &db, &budget).expect("unbounded"))
        });
        let off = Telemetry::disabled();
        group.bench_with_input(BenchmarkId::new("disabled", rows), &(), |b, _| {
            b.iter(|| {
                chase_st_prepared_traced(&tgt, &program, &db, &budget, &off).expect("unbounded")
            })
        });
        let on = enabled_handle();
        group.bench_with_input(BenchmarkId::new("enabled", rows), &(), |b, _| {
            b.iter(|| {
                chase_st_prepared_traced(&tgt, &program, &db, &budget, &on).expect("unbounded")
            })
        });
    }
    group.finish();
}

fn bench_cq_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_cq_self_join");
    group.sample_size(10);
    let budget = ExecBudget::unbounded();
    for rows in CQ_SIZES {
        let (_, _, db, tgds) = faults::quadratic_join(rows);
        let body = tgds[0].body.clone();
        let seed = std::collections::HashMap::new();
        group.bench_with_input(BenchmarkId::new("baseline", rows), &(), |b, _| {
            b.iter(|| {
                find_homomorphisms_governed(&body, &db, &seed, &mut Governor::new(&budget))
                    .expect("unbounded")
            })
        });
        let off = Telemetry::disabled();
        group.bench_with_input(BenchmarkId::new("disabled", rows), &(), |b, _| {
            b.iter(|| {
                find_homomorphisms_traced(&body, &db, &seed, &mut Governor::new(&budget), &off)
                    .expect("unbounded")
            })
        });
    }
    group.finish();
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Paired interleaved estimator, built for a contended host where
/// absolute timings drift by tens of percent between reps. Every rep
/// measures all three variants back to back inside one short window, so
/// whatever contention is active hits them equally; the per-rep ratios
/// `noop/base` and `full/base` are therefore stable even when the
/// absolute numbers are not. The reported overhead is the median ratio
/// over the reps, anchored to the best (minimum) baseline time. Each
/// sample batches enough calls to span ~20 ms, riding out scheduler
/// jitter that dwarfs a single sub-millisecond call. The first rep also
/// asserts the three results are bit-identical.
fn interleaved<T: PartialEq>(
    reps: usize,
    mut base: impl FnMut() -> T,
    mut noop: impl FnMut() -> T,
    mut full: impl FnMut() -> T,
) -> (std::time::Duration, std::time::Duration, std::time::Duration) {
    let (b0, est) = mm_bench::timed(&mut base);
    let (n0, _) = mm_bench::timed(&mut noop);
    let (f0, _) = mm_bench::timed(&mut full);
    assert!(b0 == n0 && b0 == f0, "telemetry changed the result");
    let inner = (std::time::Duration::from_millis(20).as_nanos() / est.as_nanos().max(1))
        .clamp(1, 500) as u32;
    let sample = |f: &mut dyn FnMut() -> T| {
        let start = std::time::Instant::now();
        for _ in 0..inner {
            std::hint::black_box(f());
        }
        start.elapsed() / inner
    };
    let mut base_best = std::time::Duration::MAX;
    let mut noop_ratios = Vec::with_capacity(reps);
    let mut full_ratios = Vec::with_capacity(reps);
    for _ in 0..reps {
        let bt = sample(&mut base);
        let nt = sample(&mut noop);
        let ft = sample(&mut full);
        base_best = base_best.min(bt);
        let b = bt.as_secs_f64().max(1e-12);
        noop_ratios.push(nt.as_secs_f64() / b);
        full_ratios.push(ft.as_secs_f64() / b);
    }
    (base_best, base_best.mul_f64(median(&mut noop_ratios)), base_best.mul_f64(median(&mut full_ratios)))
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn overhead_pct(baseline: std::time::Duration, variant: std::time::Duration) -> f64 {
    (ms(variant) - ms(baseline)) / ms(baseline).max(1e-9) * 100.0
}

fn emit_baseline() {
    let budget = ExecBudget::unbounded();
    let mut points: Vec<String> = Vec::new();

    for rows in CHASE_SIZES {
        let (tgt, program, db) = exchange_setup(rows);
        let reps = 40;
        let off = Telemetry::disabled();
        let on = enabled_handle();
        let (base_t, noop_t, full_t) = interleaved(
            reps,
            || chase_st_prepared(&tgt, &program, &db, &budget).expect("ok"),
            || chase_st_prepared_traced(&tgt, &program, &db, &budget, &off).expect("ok"),
            || chase_st_prepared_traced(&tgt, &program, &db, &budget, &on).expect("ok"),
        );
        points.push(point_json("chase_exchange_4rel", rows, base_t, noop_t, full_t));
    }

    // PR 9 point: the same chase workload wrapped the way `mm-server`
    // wraps a request — a capturing trace scope around the call plus a
    // service-time histogram observation after it. The no-op gate
    // (<=3%) now also covers the histogram observe and the inert scope
    // on a disabled handle; the enabled column is the full price of
    // per-request tracing + live histograms.
    {
        let rows = 1_000;
        let (tgt, program, db) = exchange_setup(rows);
        let off = Telemetry::disabled();
        let on = enabled_handle();
        let wrapped = |tel: &Telemetry| {
            let mut scope = tel.trace_scope(0x517E_D00D, true);
            let (out, d) = mm_bench::timed(|| {
                chase_st_prepared_traced(&tgt, &program, &db, &budget, tel).expect("ok")
            });
            tel.observe_hist(Hist::ServerServiceUs, d.as_micros().min(u128::from(u64::MAX)) as u64);
            let _ = scope.take_captured();
            out
        };
        let (base_t, noop_t, full_t) = interleaved(
            40,
            || chase_st_prepared(&tgt, &program, &db, &budget).expect("ok"),
            || wrapped(&off),
            || wrapped(&on),
        );
        points.push(point_json("chase_exchange_hist_trace", rows, base_t, noop_t, full_t));
    }

    for rows in CQ_SIZES {
        let (_, _, db, tgds) = faults::quadratic_join(rows);
        let body = tgds[0].body.clone();
        let seed = std::collections::HashMap::new();
        let reps = 40;
        let off = Telemetry::disabled();
        let on = enabled_handle();
        let (base_t, noop_t, full_t) = interleaved(
            reps,
            || {
                find_homomorphisms_governed(&body, &db, &seed, &mut Governor::new(&budget))
                    .expect("ok")
            },
            || {
                find_homomorphisms_traced(&body, &db, &seed, &mut Governor::new(&budget), &off)
                    .expect("ok")
            },
            || {
                find_homomorphisms_traced(&body, &db, &seed, &mut Governor::new(&budget), &on)
                    .expect("ok")
            },
        );
        points.push(point_json("cq_self_join", rows, base_t, noop_t, full_t));
    }

    let (alloc_tuples, alloc_interned) = alloc_gauges();

    let host_cpus = mm_parallel::available_parallelism();
    let body = format!(
        "{{\n  \"experiment\": \"telemetry_overhead\",\n  \"description\": \"instrumented hot paths: un-instrumented baseline vs disabled Telemetry handle (no-op, target <=3%) vs enabled ring collector + metrics; the hist_trace point additionally wraps each call in a capturing trace scope plus a service-time histogram observation, the per-request shape mm-server uses; bit-identical results asserted per point (attested = those assertions passed on the emitting host); alloc holds the compact-data-plane gauges (PR 10) sampled off a text-heavy Engine exchange — process-wide monotone counts of tuple spills (arity > 4) and intern-pool entries, zero-elided on fresh registries\",\n  \"command\": \"cargo bench -p mm-bench --bench telemetry\",\n  \"host_cpus\": {host_cpus},\n  \"attested\": true,\n  \"alloc\": {{\"alloc.tuples\": {alloc_tuples}, \"alloc.interned\": {alloc_interned}}},\n  \"points\": [\n{}\n  ]\n}}\n",
        points.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_telemetry.json");
    f.write_all(body.as_bytes()).expect("write BENCH_telemetry.json");
    println!("\nwrote {path}");
}

/// The PR 10 allocation gauges, read back through the metrics registry
/// the way a soak driver would: run a text-heavy exchange (arity-5
/// tuples spill past the inline layout; repeated city names hit the
/// intern pool) on an enabled engine, then snapshot `alloc.*`. The
/// gauges are process-wide monotone counts sampled at op boundaries,
/// and they are zero-elided: a fresh registry must not render them.
fn alloc_gauges() -> (u64, u64) {
    let tel = enabled_handle();
    let src = SchemaBuilder::new("AllocSrc")
        .relation(
            "Wide",
            &[
                ("a", DataType::Text),
                ("b", DataType::Text),
                ("c", DataType::Int),
                ("d", DataType::Int),
                ("e", DataType::Int),
            ],
        )
        .build()
        .expect("static schema");
    let tgt = SchemaBuilder::new("AllocTgt")
        .relation(
            "WideCopy",
            &[
                ("a", DataType::Text),
                ("b", DataType::Text),
                ("c", DataType::Int),
                ("d", DataType::Int),
                ("e", DataType::Int),
            ],
        )
        .build()
        .expect("static schema");
    let mut m = Mapping::new("AllocSrc", "AllocTgt");
    m.push_tgd(Tgd::new(
        vec![Atom::vars("Wide", &["a", "b", "c", "d", "e"])],
        vec![Atom::vars("WideCopy", &["a", "b", "c", "d", "e"])],
    ));
    let engine = Engine::with_config(EngineConfig {
        telemetry: tel.clone(),
        ..Default::default()
    })
    .expect("engine");
    engine.add_schema(src.clone()).expect("src");
    engine.add_schema(tgt).expect("tgt");
    engine.add_mapping("alloc", m).expect("mapping");
    let mut db = Database::empty_of(&src);
    for i in 0..512i64 {
        db.insert(
            "Wide",
            Tuple::new(vec![
                Value::text(format!("alloc-city-{:02}", i % 16)),
                Value::text(format!("alloc-name-{i:05}")),
                Value::Int(i),
                Value::Int(i + 1),
                Value::Int(i + 2),
            ]),
        );
    }
    engine.exchange("alloc", "AllocTgt", &db).expect("exchange");

    let snap = tel.metrics().expect("enabled handle").snapshot();
    let tuples = snap.value("alloc.tuples");
    let interned = snap.value("alloc.interned");
    assert!(tuples > 0, "arity-5 workload must spill tuples");
    assert!(interned > 0, "text workload must intern symbols");
    let fresh = EngineMetrics::new().snapshot();
    assert!(
        !fresh.values.contains_key("alloc.tuples")
            && !fresh.values.contains_key("alloc.interned"),
        "alloc gauges must be zero-elided on fresh registries"
    );
    println!("alloc gauges: alloc.tuples {tuples}  alloc.interned {interned}");
    (tuples, interned)
}

fn point_json(
    workload: &str,
    size: usize,
    base: std::time::Duration,
    noop: std::time::Duration,
    full: std::time::Duration,
) -> String {
    let noop_pct = overhead_pct(base, noop);
    let full_pct = overhead_pct(base, full);
    println!(
        "{workload:<22} size {size:>6}: baseline {:>9.3} ms, disabled {:>9.3} ms ({noop_pct:>+6.2}%), enabled {:>9.3} ms ({full_pct:>+6.2}%)",
        ms(base),
        ms(noop),
        ms(full),
    );
    format!(
        "    {{\"workload\": \"{workload}\", \"size\": {size}, \"baseline_ms\": {:.3}, \"disabled_ms\": {:.3}, \"enabled_ms\": {:.3}, \"noop_overhead_pct\": {:.2}, \"enabled_overhead_pct\": {:.2}}}",
        ms(base),
        ms(noop),
        ms(full),
        noop_pct,
        full_pct,
    )
}

criterion_group!(benches, bench_chase_overhead, bench_cq_overhead);

fn main() {
    benches();
    emit_baseline();
}
