//! Governance overhead — cost of metering the hot paths and of the
//! degradation fallbacks (DESIGN.md §7).
//!
//! Two questions:
//! * what does running the chase under a `Governor` cost versus the
//!   ungoverned wrapper (target: <5% on the hot exchange path)?
//! * what does a mediation request pay when the collapse budget trips
//!   and the mediator degrades from collapsed to chained execution?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_engine::prelude::*;
use mm_workload::{copy_tgds, tgds::binary_schema};

fn exchange_setup(relations: usize, rows: usize) -> (Schema, Vec<Tgd>, Database) {
    let src = binary_schema("Src", "A", relations);
    let tgt = binary_schema("Tgt", "B", relations);
    let tgds = copy_tgds("A", "B", relations);
    let mut db = Database::empty_of(&src);
    for i in 0..relations {
        for r in 0..rows {
            db.insert(
                &format!("A{i}"),
                Tuple::from([Value::Int(r as i64), Value::Int((r + 1) as i64)]),
            );
        }
    }
    (tgt, tgds, db)
}

/// Governed (unbounded budget) vs legacy ungoverned chase on the same
/// exchange workload. The two paths are the same code — `chase_st` is a
/// wrapper over `chase_st_governed` — so the delta is purely the meter:
/// counter bumps plus an amortized cancel/deadline poll every 1024 steps.
fn bench_governed_chase_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("governance_chase_overhead");
    group.sample_size(10);
    for rows in [1_000usize, 5_000] {
        let (tgt, tgds, db) = exchange_setup(4, rows);
        group.bench_with_input(BenchmarkId::new("ungoverned", rows), &(), |b, _| {
            b.iter(|| chase_st(&tgt, &tgds, &db))
        });
        let budget = ExecBudget::unbounded();
        group.bench_with_input(BenchmarkId::new("governed", rows), &(), |b, _| {
            b.iter(|| chase_st_governed(&tgt, &tgds, &db, &budget).expect("unbounded"))
        });
        // A budget with live caps exercises the comparison branches too.
        let capped = ExecBudget::unbounded()
            .with_steps(u64::MAX)
            .with_rows(u64::MAX)
            .with_rounds(u64::MAX);
        group.bench_with_input(BenchmarkId::new("governed_capped", rows), &(), |b, _| {
            b.iter(|| chase_st_governed(&tgt, &tgds, &db, &capped).expect("loose caps"))
        });
    }
    group.finish();
}

fn mediation_setup(hops: usize, rows: usize) -> (Schema, Vec<ViewSet>, Database) {
    let schema = SchemaBuilder::new("Base")
        .relation("People", &[
            ("id", DataType::Int),
            ("name", DataType::Text),
            ("age", DataType::Int),
        ])
        .build()
        .expect("schema");
    let mut db = Database::empty_of(&schema);
    for i in 0..rows {
        db.insert(
            "People",
            Tuple::from([
                Value::Int(i as i64),
                Value::text(format!("p{i}")),
                Value::Int((i % 90) as i64),
            ]),
        );
    }
    let mut chain: Vec<ViewSet> = Vec::with_capacity(hops);
    let mut l0 = ViewSet::new("Base", "L0");
    l0.push(ViewDef::new(
        "V0",
        Expr::base("People").select(Predicate::Cmp {
            op: CmpOp::Ge,
            left: Scalar::col("age"),
            right: Scalar::lit(18i64),
        }),
    ));
    chain.push(l0);
    for h in 1..hops {
        let mut vs = ViewSet::new(format!("L{}", h - 1), format!("L{h}"));
        vs.push(ViewDef::new(
            format!("V{h}"),
            Expr::base(format!("V{}", h - 1)).select(Predicate::True),
        ));
        chain.push(vs);
    }
    (schema, chain, db)
}

/// Collapsed mediation vs the degraded (collapse budget trips → chained
/// fallback) path for the same query. The degraded run pays for the
/// partial collapse attempt plus a full chained evaluation.
fn bench_degraded_mediation(c: &mut Criterion) {
    let mut group = c.benchmark_group("governance_mediation_degraded");
    group.sample_size(10);
    for hops in [4usize, 8] {
        let (schema, chain, db) = mediation_setup(hops, 5_000);
        let refs: Vec<&ViewSet> = chain.iter().collect();
        let mediator = Mediator::new(&schema, refs);
        let query = Expr::base(format!("V{}", hops - 1)).project(&["name"]);

        let unbounded = ExecBudget::unbounded();
        group.bench_with_input(BenchmarkId::new("collapsed", hops), &(), |b, _| {
            b.iter(|| {
                let r = mediator
                    .answer_governed(&query, &db, &unbounded)
                    .expect("collapsed mediation");
                assert!(r.degradation.is_none());
                r.rows
            })
        });
        // One clause is below any collapsed viewset's node count, so the
        // collapse attempt trips immediately and every request falls back.
        let tight = ExecBudget::unbounded().with_clauses(1);
        group.bench_with_input(BenchmarkId::new("degraded_chained", hops), &(), |b, _| {
            b.iter(|| {
                let r = mediator
                    .answer_governed(&query, &db, &tight)
                    .expect("degraded mediation");
                assert!(r.degradation.is_some());
                r.rows
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_governed_chase_overhead, bench_degraded_mediation);
criterion_main!(benches);
