//! EQ5/EQ6 — Criterion timings for the mapping runtime: incremental view
//! maintenance vs recompute, and chained vs collapsed mediation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_bench::{eq5_ivm_point, eq6_mediation_point};
use mm_engine::prelude::*;

fn bench_ivm_vs_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq5_maintenance");
    group.sample_size(10);
    for batch in [1usize, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::new("point", batch),
            &batch,
            |b, batch| b.iter(|| eq5_ivm_point(5_000, *batch)),
        );
    }
    group.finish();
}

fn bench_mediation(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq6_mediation");
    group.sample_size(10);
    for hops in [2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("point", hops), &hops, |b, hops| {
            b.iter(|| eq6_mediation_point(*hops, 5_000))
        });
    }
    group.finish();
}

fn bench_provenance(c: &mut Criterion) {
    // witness extraction over a join view
    let schema = SchemaBuilder::new("S")
        .relation("Names", &[("SID", DataType::Int), ("Name", DataType::Text)])
        .relation("Addresses", &[("SID", DataType::Int), ("City", DataType::Text)])
        .build()
        .expect("schema");
    let mut db = Database::empty_of(&schema);
    for i in 0..2_000i64 {
        db.insert("Names", Tuple::from([Value::Int(i), Value::text(format!("n{i}"))]));
        db.insert(
            "Addresses",
            Tuple::from([Value::Int(i), Value::text(format!("c{}", i % 10))]),
        );
    }
    let view = Expr::base("Names")
        .join(Expr::base("Addresses"), &[("SID", "SID")])
        .project(&["Name", "City"]);
    let target = Tuple::from([Value::text("n7"), Value::text("c7")]);
    c.bench_function("eq5_provenance_explain", |b| {
        b.iter(|| explain(&view, &schema, &db, &target).expect("witnesses"))
    });
}

criterion_group!(benches, bench_ivm_vs_recompute, bench_mediation, bench_provenance);
criterion_main!(benches);
