//! The propagator: per-subscriber bounded queues over the change feed,
//! with recompute-and-resync degradation and resumable cursors.
//!
//! Writers call [`Propagator::publish_delta`] / [`Propagator::publish_load`]
//! after each commit; consumers call [`Propagator::poll`] at their own
//! pace. The writer-side cost per subscriber is bounded: the overflow
//! check runs *before* any delta computation, so a wedged consumer
//! costs the commit path a queue-length comparison and nothing more.

use mm_eval::{eval_governed, EvalError};
use mm_guard::{Degradation, DegradationKind, ExecBudget, ExecError, Governor, Resource};
use mm_instance::{Database, Tuple};
use mm_metamodel::Schema;
use mm_repository::Subscription;
use mm_runtime::{Delta, MaintenancePlan};
use mm_telemetry::{DegradationSite, Field, Hist, PropagateCounter, Telemetry};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::feed::{ChangeFeed, ChangeKind, FeedEvent};

/// Tuning knobs for the propagation pipeline.
#[derive(Debug, Clone)]
pub struct PropagateConfig {
    /// Hard bound on a subscriber's notification queue. An event that
    /// would push the queue past this flips the subscriber to
    /// resync-pending instead of growing the queue.
    pub queue_bound: usize,
    /// Queue depth at which the subscriber is flagged as lagging
    /// (reported by [`PollResponse::lagging`] so the client can slow
    /// its producers or poll harder).
    pub high_water: usize,
    /// Queue depth at which the lagging flag clears.
    pub low_water: usize,
    /// How many recent feed events to retain for cursor-resume checks.
    pub retain_events: usize,
    /// Step budget for computing one event's view deltas for one
    /// subscriber. `None` means unbounded; a trip degrades that
    /// subscriber to resync rather than failing the commit.
    pub delta_steps: Option<u64>,
}

impl Default for PropagateConfig {
    fn default() -> Self {
        PropagateConfig {
            queue_bound: 64,
            high_water: 48,
            low_water: 16,
            retain_events: 256,
            delta_steps: Some(200_000),
        }
    }
}

/// Why a subscriber was (or is about to be) handed a full snapshot
/// instead of incremental deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResyncCause {
    /// First delivery after subscribing: the bootstrap snapshot. Not a
    /// degradation — there is no incremental state to fall back from.
    Initial,
    /// The bounded queue overflowed (consumer too slow). Degradation.
    Overflow,
    /// The resume cursor points below what was already drained or off
    /// the retained feed. Degradation.
    CursorLost,
    /// The per-event delta budget tripped. Degradation.
    Budget,
    /// The instance was bulk-loaded/replaced wholesale; incremental
    /// state before the load is void. Not a degradation.
    Load,
    /// Delta computation failed outright (malformed view, missing
    /// relation). Degradation.
    Error,
}

impl ResyncCause {
    /// Is this resync a recorded degradation (vs. a semantic resync
    /// that is part of normal operation)?
    pub fn is_degradation(&self) -> bool {
        !matches!(self, ResyncCause::Initial | ResyncCause::Load)
    }
}

impl fmt::Display for ResyncCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResyncCause::Initial => "initial",
            ResyncCause::Overflow => "overflow",
            ResyncCause::CursorLost => "cursor-lost",
            ResyncCause::Budget => "budget",
            ResyncCause::Load => "load",
            ResyncCause::Error => "error",
        };
        f.write_str(s)
    }
}

/// One message on a subscriber's queue.
#[derive(Debug, Clone)]
pub enum Notification {
    /// Incremental view inserts for one committed event. Pushed even
    /// when every view's delta is empty, so the subscriber's cursor
    /// advances through every event and coverage reasoning stays exact.
    Delta {
        seq: u64,
        /// Inserted rows per view, in view-set order.
        view_inserts: Vec<(String, Vec<Tuple>)>,
    },
    /// A full snapshot of every subscribed view, replacing all prior
    /// state. `seq` is the commit sequence the snapshot reflects.
    Resync { seq: u64, cause: ResyncCause, views: Database },
}

impl Notification {
    /// The commit sequence this notification brings the subscriber to.
    pub fn seq(&self) -> u64 {
        match self {
            Notification::Delta { seq, .. } => *seq,
            Notification::Resync { seq, .. } => *seq,
        }
    }
}

/// What [`Propagator::poll`] hands back.
#[derive(Debug)]
pub struct PollResponse {
    pub notifications: Vec<Notification>,
    /// True while the subscriber's queue sits above the high-water
    /// mark (hysteresis: clears once it drains to the low-water mark).
    pub lagging: bool,
}

/// Introspection snapshot of one subscriber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriberStatus {
    pub id: u64,
    pub instance: String,
    /// Durable cursor: last commit sequence the client acknowledged.
    pub cursor: u64,
    /// Last commit sequence handed out by `poll`.
    pub drained_through: u64,
    pub queued: usize,
    pub lagging: bool,
    /// `Some` when the next poll will deliver a resync snapshot.
    pub resync_pending: Option<ResyncCause>,
}

/// Errors from the propagation API. Writer-side publishing never fails
/// on a per-subscriber basis — subscriber trouble degrades that
/// subscriber; these errors are caller mistakes.
#[derive(Debug)]
pub enum PropagateError {
    UnknownSubscriber(u64),
    UnknownInstance(String),
    /// Recomputing a resync snapshot failed; the subscriber stays
    /// resync-pending so a later poll can retry.
    Resync(EvalError),
}

impl fmt::Display for PropagateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropagateError::UnknownSubscriber(id) => write!(f, "unknown subscriber {id}"),
            PropagateError::UnknownInstance(name) => write!(f, "unknown instance '{name}'"),
            PropagateError::Resync(e) => write!(f, "resync recompute failed: {e}"),
        }
    }
}

impl std::error::Error for PropagateError {}

#[derive(Debug, Clone)]
enum Mode {
    Streaming,
    ResyncPending { cause: ResyncCause },
}

struct SubState {
    sub: Subscription,
    schema: Schema,
    plan: MaintenancePlan,
    queue: VecDeque<Notification>,
    mode: Mode,
    lagging: bool,
    /// Last commit sequence handed to the client by `poll` — events at
    /// or below this are gone from the queue, so a resume cursor below
    /// it cannot be served incrementally.
    drained_through: u64,
}

struct InstanceState {
    /// The propagator's replica of the tracked instance, advanced by
    /// every published event. Delta computation reads the *pre-event*
    /// replica; resync snapshots read the current one.
    base: Database,
    last_event_seq: u64,
}

struct State {
    feed: ChangeFeed,
    instances: BTreeMap<String, InstanceState>,
    subs: BTreeMap<u64, SubState>,
}

/// The propagation hub. One per engine; internally synchronized.
pub struct Propagator {
    cfg: PropagateConfig,
    tel: Telemetry,
    state: Mutex<State>,
}

impl Propagator {
    pub fn new(cfg: PropagateConfig, tel: Telemetry) -> Self {
        let retain = cfg.retain_events;
        Propagator {
            cfg,
            tel,
            state: Mutex::new(State {
                feed: ChangeFeed::new(retain),
                instances: BTreeMap::new(),
                subs: BTreeMap::new(),
            }),
        }
    }

    /// Start tracking `name` without publishing an event — used when
    /// re-attaching recovered state, where the instance's history is
    /// already in the WAL and must not re-notify.
    pub fn track_instance(&self, name: impl Into<String>, base: Database, seq: u64) {
        let mut st = self.state.lock();
        st.instances
            .insert(name.into(), InstanceState { base, last_event_seq: seq });
    }

    /// The instance was created or replaced wholesale at commit `seq`:
    /// one coalesced feed event, and every streaming subscriber on it
    /// flips to a (non-degradation) `Load` resync.
    pub fn publish_load(&self, seq: u64, name: &str, base: Database) {
        let mut st = self.state.lock();
        st.instances
            .insert(name.to_string(), InstanceState { base, last_event_seq: seq });
        for sub in st.subs.values_mut().filter(|s| s.sub.instance == name) {
            sub.queue.clear();
            sub.lagging = false;
            if matches!(sub.mode, Mode::Streaming) {
                sub.mode = Mode::ResyncPending { cause: ResyncCause::Load };
            }
        }
        if st
            .feed
            .publish(FeedEvent { seq, instance: name.to_string(), kind: ChangeKind::Loaded })
        {
            self.count(PropagateCounter::EventsPublished, 1);
        }
    }

    /// An insert-only delta committed against `name` at sequence `seq`
    /// (one call per commit — a bulk batch is one coalesced event).
    /// Per-subscriber work is bounded and failure-isolated: overflow is
    /// checked before any delta computation, and any per-subscriber
    /// trouble degrades that subscriber to resync-pending without
    /// failing the publish.
    pub fn publish_delta(
        &self,
        seq: u64,
        name: &str,
        delta: &Delta,
    ) -> Result<(), PropagateError> {
        let mut st = self.state.lock();
        if !st.instances.contains_key(name) {
            return Err(PropagateError::UnknownInstance(name.to_string()));
        }
        let State { instances, subs, feed } = &mut *st;
        // The borrow checker can't see that `inst` and `subs` are
        // disjoint through one `&mut st`, hence the destructure above.
        let inst = match instances.get_mut(name) {
            Some(i) => i,
            None => return Err(PropagateError::UnknownInstance(name.to_string())),
        };
        for (id, sub) in subs.iter_mut().filter(|(_, s)| s.sub.instance == name) {
            if !matches!(sub.mode, Mode::Streaming) {
                continue; // already resync-pending: zero per-event work
            }
            // Backpressure first: a full queue means the consumer is
            // wedged or slow — degrade it *before* paying for deltas.
            if sub.queue.len() >= self.cfg.queue_bound {
                let cause = ExecError::BudgetExhausted {
                    resource: Resource::Rows,
                    consumed: sub.queue.len() as u64,
                    limit: self.cfg.queue_bound as u64,
                };
                self.degrade(*id, sub, ResyncCause::Overflow, cause);
                continue;
            }
            let budget = match self.cfg.delta_steps {
                Some(n) => ExecBudget::unbounded().with_steps(n),
                None => ExecBudget::unbounded(),
            };
            let mut gov = Governor::new(&budget);
            let mut view_inserts = Vec::with_capacity(sub.plan.views().views.len());
            let mut failure: Option<(ResyncCause, ExecError)> = None;
            for v in &sub.plan.views().views {
                match mm_runtime::view_insert_delta_governed(
                    &v.expr,
                    &sub.schema,
                    &inst.base,
                    delta,
                    &mut gov,
                ) {
                    Ok(rel) => {
                        view_inserts.push((v.name.clone(), rel.tuples().to_vec()));
                    }
                    Err(EvalError::Exec(e @ ExecError::BudgetExhausted { .. })) => {
                        failure = Some((ResyncCause::Budget, e));
                        break;
                    }
                    Err(EvalError::Exec(e)) => {
                        failure = Some((ResyncCause::Error, e));
                        break;
                    }
                    Err(e) => {
                        failure =
                            Some((ResyncCause::Error, ExecError::internal(e.to_string())));
                        break;
                    }
                }
            }
            if let Some((resync, cause)) = failure {
                self.degrade(*id, sub, resync, cause);
                continue;
            }
            let delta_rows: usize = view_inserts.iter().map(|(_, t)| t.len()).sum();
            sub.queue.push_back(Notification::Delta { seq, view_inserts });
            self.count(PropagateCounter::DeltasPushed, 1);
            self.observe(Hist::PropagateDeltaRows, delta_rows as u64);
            self.raise(PropagateCounter::QueueHighWater, sub.queue.len() as u64);
            if sub.queue.len() >= self.cfg.high_water {
                sub.lagging = true;
            }
        }
        // Advance the replica *after* deltas were computed against the
        // pre-event state. Skip relations the replica lacks — replay
        // stays total.
        for (rel, tuples) in &delta.inserts {
            if inst.base.relation(rel).is_some() {
                for t in tuples {
                    inst.base.insert(rel, t.clone());
                }
            }
        }
        inst.last_event_seq = seq;
        if feed.publish(FeedEvent {
            seq,
            instance: name.to_string(),
            kind: ChangeKind::Delta(delta.clone()),
        }) {
            self.count(PropagateCounter::EventsPublished, 1);
        }
        Ok(())
    }

    /// Register a new subscriber. Its first poll delivers the bootstrap
    /// snapshot (`ResyncCause::Initial`).
    pub fn subscribe(&self, sub: Subscription, schema: Schema) -> Result<(), PropagateError> {
        let mut st = self.state.lock();
        let inst = st
            .instances
            .get(&sub.instance)
            .ok_or_else(|| PropagateError::UnknownInstance(sub.instance.clone()))?;
        let drained_through = inst.last_event_seq;
        let plan = MaintenancePlan::compile(&sub.views);
        st.subs.insert(
            sub.id,
            SubState {
                sub,
                schema,
                plan,
                queue: VecDeque::new(),
                mode: Mode::ResyncPending { cause: ResyncCause::Initial },
                lagging: false,
                drained_through,
            },
        );
        Ok(())
    }

    /// Re-attach a subscription recovered from the durable registry.
    /// The subscriber starts streaming from *now* (the replica is
    /// already at the latest committed state); whether its durable
    /// cursor is still serviceable is decided when the client calls
    /// [`Propagator::resume`].
    pub fn attach_recovered(
        &self,
        sub: Subscription,
        schema: Schema,
    ) -> Result<(), PropagateError> {
        let mut st = self.state.lock();
        let inst = st
            .instances
            .get(&sub.instance)
            .ok_or_else(|| PropagateError::UnknownInstance(sub.instance.clone()))?;
        let drained_through = inst.last_event_seq;
        let plan = MaintenancePlan::compile(&sub.views);
        st.subs.insert(
            sub.id,
            SubState {
                sub,
                schema,
                plan,
                queue: VecDeque::new(),
                mode: Mode::Streaming,
                lagging: false,
                drained_through,
            },
        );
        Ok(())
    }

    /// Remove a subscriber. Returns false if it was not registered.
    pub fn unsubscribe(&self, id: u64) -> bool {
        self.state.lock().subs.remove(&id).is_some()
    }

    /// A client reconnected claiming it has applied everything up to
    /// `cursor`. If the queue still covers everything past the cursor,
    /// streaming continues (already-acknowledged entries are pruned);
    /// otherwise the subscriber degrades to a `CursorLost` resync.
    pub fn resume(&self, id: u64, cursor: u64) -> Result<(), PropagateError> {
        let mut st = self.state.lock();
        let State { feed, subs, .. } = &mut *st;
        let sub = subs.get_mut(&id).ok_or(PropagateError::UnknownSubscriber(id))?;
        sub.sub.cursor = sub.sub.cursor.max(cursor);
        if !matches!(sub.mode, Mode::Streaming) {
            return Ok(()); // a resync is already on the way
        }
        if cursor < sub.drained_through || !feed.covers(cursor) {
            let cause = ExecError::internal(format!(
                "resume cursor {cursor} below drained sequence {} or off the retained feed",
                sub.drained_through
            ));
            self.degrade(id, sub, ResyncCause::CursorLost, cause);
            return Ok(());
        }
        while sub.queue.front().is_some_and(|n| n.seq() <= cursor) {
            sub.queue.pop_front();
        }
        if sub.queue.len() <= self.cfg.low_water {
            sub.lagging = false;
        }
        Ok(())
    }

    /// The client durably applied everything up to `cursor`. Cursor
    /// movement is monotone; persisting it is the caller's job (the
    /// engine journals it through the repository).
    pub fn ack(&self, id: u64, cursor: u64) -> Result<(), PropagateError> {
        let mut st = self.state.lock();
        let sub = st.subs.get_mut(&id).ok_or(PropagateError::UnknownSubscriber(id))?;
        sub.sub.cursor = sub.sub.cursor.max(cursor);
        Ok(())
    }

    /// Drain up to `max` notifications. A pending resync is delivered
    /// as a single snapshot notification computed *here*, at the
    /// consumer's pace — the recompute never runs on the commit path.
    pub fn poll(&self, id: u64, max: usize) -> Result<PollResponse, PropagateError> {
        let mut st = self.state.lock();
        let State { instances, subs, .. } = &mut *st;
        let sub = subs.get_mut(&id).ok_or(PropagateError::UnknownSubscriber(id))?;
        if let Mode::ResyncPending { cause } = sub.mode.clone() {
            let inst = instances
                .get(&sub.sub.instance)
                .ok_or_else(|| PropagateError::UnknownInstance(sub.sub.instance.clone()))?;
            let mut views = Database::new(sub.sub.views.view_schema.clone());
            let budget = ExecBudget::unbounded();
            for v in &sub.plan.views().views {
                let mut gov = Governor::new(&budget);
                let rel = eval_governed(&v.expr, &sub.schema, &inst.base, &mut gov)
                    .map_err(PropagateError::Resync)?;
                views.insert_relation(v.name.clone(), rel);
            }
            let seq = inst.last_event_seq;
            sub.mode = Mode::Streaming;
            sub.queue.clear();
            sub.lagging = false;
            sub.drained_through = seq;
            self.count(PropagateCounter::ResyncsDelivered, 1);
            self.observe(Hist::PropagatePollBatch, 1);
            return Ok(PollResponse {
                notifications: vec![Notification::Resync { seq, cause, views }],
                lagging: false,
            });
        }
        let n = max.min(sub.queue.len());
        let notifications: Vec<Notification> = sub.queue.drain(..n).collect();
        if let Some(last) = notifications.last() {
            sub.drained_through = last.seq();
        }
        if sub.queue.len() <= self.cfg.low_water {
            sub.lagging = false;
        }
        self.observe(Hist::PropagatePollBatch, notifications.len() as u64);
        Ok(PollResponse { notifications, lagging: sub.lagging })
    }

    /// Introspect one subscriber.
    pub fn status(&self, id: u64) -> Result<SubscriberStatus, PropagateError> {
        let st = self.state.lock();
        let sub = st.subs.get(&id).ok_or(PropagateError::UnknownSubscriber(id))?;
        Ok(SubscriberStatus {
            id,
            instance: sub.sub.instance.clone(),
            cursor: sub.sub.cursor,
            drained_through: sub.drained_through,
            queued: sub.queue.len(),
            lagging: sub.lagging,
            resync_pending: match &sub.mode {
                Mode::Streaming => None,
                Mode::ResyncPending { cause } => Some(*cause),
            },
        })
    }

    /// All registered subscriber ids.
    pub fn subscriber_ids(&self) -> Vec<u64> {
        self.state.lock().subs.keys().copied().collect()
    }

    /// Sequence of the newest published event (0 before any publish).
    pub fn last_seq(&self) -> u64 {
        self.state.lock().feed.last_seq()
    }

    /// Flip `sub` to resync-pending and record the degradation — the
    /// same discipline as the mediator and IVM fallbacks: counted by
    /// cause at the Propagate site and mirrored 1:1 as a
    /// `propagate.degraded` event.
    fn degrade(&self, id: u64, sub: &mut SubState, resync: ResyncCause, cause: ExecError) {
        sub.queue.clear();
        sub.lagging = false;
        sub.mode = Mode::ResyncPending { cause: resync };
        let counter = match resync {
            ResyncCause::Overflow => PropagateCounter::ResyncsOverflow,
            ResyncCause::CursorLost => PropagateCounter::ResyncsCursorLost,
            _ => PropagateCounter::ResyncsBudget,
        };
        self.count(counter, 1);
        let degradation = Degradation { kind: DegradationKind::PushToResync, cause };
        if let Some(m) = self.tel.metrics() {
            m.degradation(DegradationSite::Propagate, degradation.cause.telemetry_cause());
        }
        self.tel.event(
            "propagate.degraded",
            format!("subscriber:{id}"),
            vec![
                Field { key: "kind", value: degradation.kind.to_string().into() },
                Field { key: "cause", value: degradation.cause.to_string().into() },
                Field { key: "resync", value: resync.to_string().into() },
            ],
        );
    }

    fn count(&self, c: PropagateCounter, n: u64) {
        if let Some(m) = self.tel.metrics() {
            m.add_propagate(c, n);
        }
    }

    fn raise(&self, c: PropagateCounter, v: u64) {
        if let Some(m) = self.tel.metrics() {
            m.raise_propagate(c, v);
        }
    }

    fn observe(&self, h: Hist, v: u64) {
        if let Some(m) = self.tel.metrics() {
            m.observe_hist(h, v);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use mm_expr::{Expr, ViewDef, ViewSet};
    use mm_instance::Value;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("Base")
            .relation("R", &[("id", DataType::Int)])
            .build()
            .unwrap()
    }

    fn views() -> ViewSet {
        let mut vs = ViewSet::new("Base", "V");
        vs.push(ViewDef::new("VR", Expr::base("R")));
        vs
    }

    fn base_db() -> Database {
        let mut db = Database::empty_of(&schema());
        db.insert("R", Tuple::new(vec![Value::Int(1)]));
        db
    }

    fn delta(vals: &[i64]) -> Delta {
        let mut d = Delta::new();
        for v in vals {
            d.insert("R", Tuple::new(vec![Value::Int(*v)]));
        }
        d
    }

    fn sub(id: u64) -> Subscription {
        Subscription { id, instance: "I".into(), views: views(), cursor: 0 }
    }

    fn propagator(cfg: PropagateConfig) -> Propagator {
        let p = Propagator::new(cfg, Telemetry::disabled());
        p.track_instance("I", base_db(), 0);
        p
    }

    #[test]
    fn subscribe_bootstraps_then_streams_deltas() {
        let p = propagator(PropagateConfig::default());
        p.subscribe(sub(1), schema()).unwrap();
        let r = p.poll(1, 16).unwrap();
        assert_eq!(r.notifications.len(), 1);
        match &r.notifications[0] {
            Notification::Resync { cause, views, seq } => {
                assert_eq!(*cause, ResyncCause::Initial);
                assert_eq!(*seq, 0);
                assert_eq!(views.relation("VR").unwrap().tuples().len(), 1);
            }
            other => panic!("expected resync, got {other:?}"),
        }
        p.publish_delta(1, "I", &delta(&[2])).unwrap();
        p.publish_delta(2, "I", &delta(&[3])).unwrap();
        let r = p.poll(1, 16).unwrap();
        assert_eq!(r.notifications.len(), 2);
        match &r.notifications[1] {
            Notification::Delta { seq, view_inserts } => {
                assert_eq!(*seq, 2);
                assert_eq!(view_inserts[0].1, vec![Tuple::new(vec![Value::Int(3)])]);
            }
            other => panic!("expected delta, got {other:?}"),
        }
        assert_eq!(p.status(1).unwrap().drained_through, 2);
    }

    #[test]
    fn overflow_degrades_without_blocking_the_writer() {
        let cfg = PropagateConfig { queue_bound: 3, high_water: 2, low_water: 1, ..Default::default() };
        let p = propagator(cfg);
        p.subscribe(sub(1), schema()).unwrap();
        p.poll(1, 16).unwrap(); // clear the bootstrap resync
        for s in 1..=10 {
            p.publish_delta(s, "I", &delta(&[s as i64 + 10])).unwrap();
        }
        let st = p.status(1).unwrap();
        assert_eq!(st.resync_pending, Some(ResyncCause::Overflow));
        assert_eq!(st.queued, 0, "queue dropped at the flip");
        // The resync snapshot reflects everything, including events
        // published after the flip.
        let r = p.poll(1, 16).unwrap();
        match &r.notifications[0] {
            Notification::Resync { cause, views, seq } => {
                assert_eq!(*cause, ResyncCause::Overflow);
                assert_eq!(*seq, 10);
                assert_eq!(views.relation("VR").unwrap().tuples().len(), 11);
            }
            other => panic!("expected resync, got {other:?}"),
        }
        // Back to streaming afterwards.
        p.publish_delta(11, "I", &delta(&[99])).unwrap();
        let r = p.poll(1, 16).unwrap();
        assert!(matches!(r.notifications[0], Notification::Delta { seq: 11, .. }));
    }

    #[test]
    fn lagging_hysteresis_sets_and_clears() {
        let cfg = PropagateConfig {
            queue_bound: 100,
            high_water: 3,
            low_water: 1,
            ..Default::default()
        };
        let p = propagator(cfg);
        p.subscribe(sub(1), schema()).unwrap();
        p.poll(1, 16).unwrap();
        for s in 1..=4 {
            p.publish_delta(s, "I", &delta(&[s as i64 + 10])).unwrap();
        }
        assert!(p.status(1).unwrap().lagging);
        let r = p.poll(1, 2).unwrap();
        assert!(r.lagging, "still above low water after draining 2 of 4");
        let r = p.poll(1, 2).unwrap();
        assert!(!r.lagging, "drained to low water");
    }

    #[test]
    fn resume_prunes_acked_entries_or_degrades() {
        let p = propagator(PropagateConfig::default());
        p.subscribe(sub(1), schema()).unwrap();
        p.poll(1, 16).unwrap();
        for s in 1..=3 {
            p.publish_delta(s, "I", &delta(&[s as i64 + 10])).unwrap();
        }
        // Client saw nothing yet (drained_through == 0), resumes at 2:
        // wait — poll drained nothing, so drained_through is 0 and the
        // queue holds 1..=3; resuming at 2 prunes 1 and 2.
        p.resume(1, 2).unwrap();
        let r = p.poll(1, 16).unwrap();
        assert_eq!(r.notifications.len(), 1);
        assert_eq!(r.notifications[0].seq(), 3);
        // Now drained_through == 3; resuming below it loses the cursor.
        p.resume(1, 1).unwrap();
        let st = p.status(1).unwrap();
        assert_eq!(st.resync_pending, Some(ResyncCause::CursorLost));
    }

    #[test]
    fn load_flips_to_semantic_resync() {
        let p = propagator(PropagateConfig::default());
        p.subscribe(sub(1), schema()).unwrap();
        p.poll(1, 16).unwrap();
        let mut replacement = Database::empty_of(&schema());
        replacement.insert("R", Tuple::new(vec![Value::Int(7)]));
        replacement.insert("R", Tuple::new(vec![Value::Int(8)]));
        p.publish_load(5, "I", replacement);
        let st = p.status(1).unwrap();
        assert_eq!(st.resync_pending, Some(ResyncCause::Load));
        let r = p.poll(1, 16).unwrap();
        match &r.notifications[0] {
            Notification::Resync { cause, views, seq } => {
                assert_eq!(*cause, ResyncCause::Load);
                assert_eq!(*seq, 5);
                assert_eq!(views.relation("VR").unwrap().tuples().len(), 2);
            }
            other => panic!("expected resync, got {other:?}"),
        }
    }

    #[test]
    fn budget_trip_degrades_only_the_slow_subscriber() {
        let cfg = PropagateConfig { delta_steps: Some(1), ..Default::default() };
        let p = propagator(cfg);
        p.subscribe(sub(1), schema()).unwrap();
        p.poll(1, 16).unwrap();
        p.publish_delta(1, "I", &delta(&[2, 3, 4])).unwrap();
        let st = p.status(1).unwrap();
        assert_eq!(st.resync_pending, Some(ResyncCause::Budget));
        let r = p.poll(1, 16).unwrap();
        assert!(matches!(
            &r.notifications[0],
            Notification::Resync { cause: ResyncCause::Budget, .. }
        ));
    }

    #[test]
    fn degradations_are_counted_and_mirrored_as_events() {
        let ring = mm_telemetry::RingCollector::with_capacity(64);
        let tel = Telemetry::new(ring.clone());
        let p = Propagator::new(
            PropagateConfig { queue_bound: 1, ..Default::default() },
            tel.clone(),
        );
        p.track_instance("I", base_db(), 0);
        p.subscribe(sub(1), schema()).unwrap();
        p.poll(1, 16).unwrap();
        p.publish_delta(1, "I", &delta(&[2])).unwrap();
        p.publish_delta(2, "I", &delta(&[3])).unwrap(); // overflows the 1-slot queue
        let m = tel.metrics().unwrap();
        assert_eq!(m.get_propagate(PropagateCounter::ResyncsOverflow), 1);
        let degraded: Vec<_> = ring
            .drain()
            .into_iter()
            .filter(|e| e.op == "propagate.degraded")
            .collect();
        assert_eq!(degraded.len(), 1, "1:1 event mirroring");
    }

    #[test]
    fn publishing_to_untracked_instance_errors() {
        let p = propagator(PropagateConfig::default());
        assert!(matches!(
            p.publish_delta(1, "missing", &delta(&[1])),
            Err(PropagateError::UnknownInstance(_))
        ));
    }
}
