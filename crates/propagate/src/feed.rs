//! The retained change feed: every committed data batch, in commit
//! order, kept up to a bounded retention.
//!
//! The feed is *volatile* — it is an in-memory window over the durable
//! WAL, not a second log. What survives a restart is the subscription
//! registry and the instances themselves (journaled by
//! `mm-repository`); a cursor that points below the retained window
//! after a restart or a long disconnect is exactly the "fell off the
//! feed" case the propagator degrades to recompute-and-resync.

use mm_runtime::Delta;
use std::collections::VecDeque;

/// What a feed event carries.
#[derive(Debug, Clone)]
pub enum ChangeKind {
    /// An insert-only delta against the tracked instance. A bulk insert
    /// batch is one coalesced event no matter how many tuples it
    /// carries — loaders cannot flood subscribers with per-tuple
    /// events.
    Delta(Delta),
    /// The instance was created or replaced wholesale (bulk load): a
    /// single coalesced event; incremental state before it is void.
    Loaded,
}

/// One committed change, identified by its commit sequence — the same
/// sequence number the WAL frame carries in durable mode.
#[derive(Debug, Clone)]
pub struct FeedEvent {
    pub seq: u64,
    /// Name of the tracked instance the event touches.
    pub instance: String,
    pub kind: ChangeKind,
}

/// A bounded, ordered window of recent [`FeedEvent`]s.
#[derive(Debug)]
pub struct ChangeFeed {
    events: VecDeque<FeedEvent>,
    retain: usize,
    last_seq: u64,
}

impl ChangeFeed {
    /// An empty feed retaining at most `retain` events (at least 1).
    pub fn new(retain: usize) -> Self {
        ChangeFeed { events: VecDeque::new(), retain: retain.max(1), last_seq: 0 }
    }

    /// Append one event, evicting the oldest beyond the retention
    /// bound. Sequences must be strictly increasing; a stale or
    /// duplicate sequence is refused (returns false) rather than
    /// corrupting the window's ordering invariant.
    pub fn publish(&mut self, event: FeedEvent) -> bool {
        if self.last_seq != 0 && event.seq <= self.last_seq {
            return false;
        }
        self.last_seq = event.seq;
        self.events.push_back(event);
        while self.events.len() > self.retain {
            self.events.pop_front();
        }
        true
    }

    /// Sequence of the most recent event, 0 if none was ever published.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Sequence of the oldest retained event, if any.
    pub fn floor(&self) -> Option<u64> {
        self.events.front().map(|e| e.seq)
    }

    /// Is `cursor` still on the retained window — i.e. does the feed
    /// hold every event after it? A cursor at or past the newest event
    /// is trivially on the feed (nothing to replay).
    pub fn covers(&self, cursor: u64) -> bool {
        if cursor >= self.last_seq {
            return true;
        }
        match self.floor() {
            // every event after `cursor` is retained iff the window
            // starts at or before the first event past the cursor
            Some(floor) => cursor + 1 >= floor,
            None => false,
        }
    }

    /// Events strictly after `cursor`, oldest first.
    pub fn since(&self, cursor: u64) -> impl Iterator<Item = &FeedEvent> {
        self.events.iter().filter(move |e| e.seq > cursor)
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the window empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn ev(seq: u64) -> FeedEvent {
        FeedEvent { seq, instance: "I".into(), kind: ChangeKind::Loaded }
    }

    #[test]
    fn retention_evicts_oldest_and_floor_tracks() {
        let mut feed = ChangeFeed::new(3);
        assert!(feed.is_empty());
        for s in 1..=5 {
            assert!(feed.publish(ev(s)));
        }
        assert_eq!(feed.len(), 3);
        assert_eq!(feed.floor(), Some(3));
        assert_eq!(feed.last_seq(), 5);
    }

    #[test]
    fn covers_matches_retained_window() {
        let mut feed = ChangeFeed::new(3);
        for s in 1..=5 {
            feed.publish(ev(s));
        }
        // retained: 3, 4, 5
        assert!(feed.covers(5), "at the tip");
        assert!(feed.covers(9), "past the tip");
        assert!(feed.covers(2), "first missing event is 3, which is retained");
        assert!(!feed.covers(1), "event 2 fell off");
        assert!(!feed.covers(0));
        assert_eq!(feed.since(3).map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn stale_sequences_are_refused() {
        let mut feed = ChangeFeed::new(4);
        assert!(feed.publish(ev(7)));
        assert!(!feed.publish(ev(7)), "duplicate");
        assert!(!feed.publish(ev(3)), "regression");
        assert_eq!(feed.len(), 1);
    }
}
