//! Push-style update propagation — the paper's runtime services of
//! update propagation, notifications, and batch loading (§ mapping
//! runtime), built as a fault-tolerant pipeline rather than a
//! happy-path one.
//!
//! Clients register continuous queries (a `ViewSet`) over a tracked
//! instance; every committed repository batch becomes a [`FeedEvent`]
//! on the [`ChangeFeed`] (the seq-numbered WAL is the cursor space),
//! and view deltas are computed with the existing IVM machinery
//! (`MaintenancePlan` monotonicity analysis + delta rules) and queued
//! per subscriber as typed [`Notification`]s.
//!
//! Robustness discipline (DESIGN.md §14):
//!
//! * **Bounded queues, never blocked writers.** Each subscriber has a
//!   bounded notification queue with high/low-water hysteresis. A
//!   consumer that lags past the bound is flipped to *resync-pending*
//!   — its queue is dropped and the writer does zero per-event work
//!   for it from then on — so a wedged consumer cannot stall or slow
//!   the commit path.
//! * **Recompute-and-resync degradation.** Overflow, a delta budget
//!   trip, or a cursor that fell off the retained feed degrade the
//!   subscriber from incremental push to a full recompute delivered as
//!   one [`Notification::Resync`] snapshot — a recorded
//!   [`Degradation`] (`PushToResync`), same discipline as the mediator
//!   and IVM fallbacks, mirrored 1:1 as a telemetry event.
//! * **Resumable cursors.** A subscriber's cursor is the commit
//!   sequence of the last event it acknowledged; the registry is
//!   persisted WAL-first by `mm-repository`, so a reconnecting client
//!   resumes from its durable cursor — incrementally when its queue
//!   still covers everything past the cursor, by resync otherwise.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod feed;
pub mod propagator;

pub use feed::{ChangeFeed, ChangeKind, FeedEvent};
pub use propagator::{
    Notification, PollResponse, PropagateConfig, PropagateError, Propagator, ResyncCause,
    SubscriberStatus,
};
