//! Structural similarity propagation (similarity-flooding style).
//!
//! The idea of Melnik's similarity flooding: similarity between two nodes
//! flows to their neighbours. Here the graph is bipartite-pairs of
//! (source element, target element) and (source attribute, target
//! attribute), with edges between an element pair and each of its
//! attribute pairs, and between entity-type pairs and their parent pairs.
//! A few damped iterations propagate initial (lexical/type) scores.

use mm_metamodel::Schema;
use std::collections::HashMap;

/// Key for a pair node in the propagation graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PairNode {
    Element { source: String, target: String },
    Attribute { source: (String, String), target: (String, String) },
}

/// The propagation graph plus current scores.
pub struct Flooding {
    pub scores: HashMap<PairNode, f64>,
    edges: Vec<(PairNode, PairNode)>,
}

impl Flooding {
    /// Build the pair graph for all element pairs of `source` × `target`
    /// with the given initial scores.
    pub fn new(
        source: &Schema,
        target: &Schema,
        initial: HashMap<PairNode, f64>,
    ) -> Self {
        let mut edges = Vec::new();
        for se in source.elements() {
            for te in target.elements() {
                let elem_pair = PairNode::Element {
                    source: se.name.clone(),
                    target: te.name.clone(),
                };
                for sa in &se.attributes {
                    for ta in &te.attributes {
                        let attr_pair = PairNode::Attribute {
                            source: (se.name.clone(), sa.name.clone()),
                            target: (te.name.clone(), ta.name.clone()),
                        };
                        edges.push((elem_pair.clone(), attr_pair));
                    }
                }
                // parent pair edge: subtype similarity should flow from
                // supertype similarity and vice versa
                if let (Some(sp), Some(tp)) =
                    (source.parent_of(&se.name), target.parent_of(&te.name))
                {
                    edges.push((
                        elem_pair.clone(),
                        PairNode::Element { source: sp.to_string(), target: tp.to_string() },
                    ));
                }
            }
        }
        Flooding { scores: initial, edges }
    }

    /// Run `iterations` damped propagation steps:
    /// `s'(n) = (1-α)·s(n) + α·mean of neighbour scores`, then normalize
    /// by the global maximum (the classic flooding normalization).
    pub fn run(&mut self, iterations: usize, alpha: f64) {
        for _ in 0..iterations {
            let mut incoming: HashMap<&PairNode, (f64, usize)> = HashMap::new();
            for (a, b) in &self.edges {
                let sa = self.scores.get(a).copied().unwrap_or(0.0);
                let sb = self.scores.get(b).copied().unwrap_or(0.0);
                let ea = incoming.entry(a).or_insert((0.0, 0));
                ea.0 += sb;
                ea.1 += 1;
                let eb = incoming.entry(b).or_insert((0.0, 0));
                eb.0 += sa;
                eb.1 += 1;
            }
            let mut next: HashMap<PairNode, f64> = HashMap::with_capacity(self.scores.len());
            let mut maxv: f64 = 0.0;
            let keys: Vec<PairNode> = self
                .scores
                .keys()
                .cloned()
                .chain(incoming.keys().map(|k| (*k).clone()))
                .collect();
            for k in keys {
                if next.contains_key(&k) {
                    continue;
                }
                let own = self.scores.get(&k).copied().unwrap_or(0.0);
                let nb = incoming
                    .get(&k)
                    .map(|(sum, n)| if *n > 0 { sum / *n as f64 } else { 0.0 })
                    .unwrap_or(0.0);
                let v = (1.0 - alpha) * own + alpha * nb;
                maxv = maxv.max(v);
                next.insert(k, v);
            }
            if maxv > 0.0 {
                for v in next.values_mut() {
                    *v /= maxv;
                }
            }
            self.scores = next;
        }
    }

    pub fn attribute_score(&self, se: &str, sa: &str, te: &str, ta: &str) -> f64 {
        self.scores
            .get(&PairNode::Attribute {
                source: (se.to_string(), sa.to_string()),
                target: (te.to_string(), ta.to_string()),
            })
            .copied()
            .unwrap_or(0.0)
    }

    pub fn element_score(&self, se: &str, te: &str) -> f64 {
        self.scores
            .get(&PairNode::Element { source: se.to_string(), target: te.to_string() })
            .copied()
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn schemas() -> (Schema, Schema) {
        let s = SchemaBuilder::new("S")
            .relation("Empl", &[("EID", DataType::Int), ("Name", DataType::Text)])
            .relation("Proj", &[("PID", DataType::Int), ("Title", DataType::Text)])
            .build()
            .unwrap();
        let t = SchemaBuilder::new("T")
            .relation("Staff", &[("SID", DataType::Int), ("Name", DataType::Text)])
            .relation("Project", &[("Id", DataType::Int), ("Title", DataType::Text)])
            .build()
            .unwrap();
        (s, t)
    }

    #[test]
    fn strong_attribute_pairs_lift_their_element_pair() {
        let (s, t) = schemas();
        let mut initial = HashMap::new();
        // only seed exact-name attribute pairs
        initial.insert(
            PairNode::Attribute {
                source: ("Empl".into(), "Name".into()),
                target: ("Staff".into(), "Name".into()),
            },
            1.0,
        );
        initial.insert(
            PairNode::Attribute {
                source: ("Proj".into(), "Title".into()),
                target: ("Project".into(), "Title".into()),
            },
            1.0,
        );
        let mut fl = Flooding::new(&s, &t, initial);
        fl.run(3, 0.5);
        // element pairs with a strong attribute pair beat cross pairs
        assert!(fl.element_score("Empl", "Staff") > fl.element_score("Empl", "Project"));
        assert!(fl.element_score("Proj", "Project") > fl.element_score("Proj", "Staff"));
    }

    #[test]
    fn element_similarity_flows_down_to_attributes() {
        let (s, t) = schemas();
        let mut initial = HashMap::new();
        initial.insert(
            PairNode::Element { source: "Empl".into(), target: "Staff".into() },
            1.0,
        );
        let mut fl = Flooding::new(&s, &t, initial);
        fl.run(2, 0.5);
        // attribute pairs under the strong element pair get a boost over
        // attribute pairs under unrelated element pairs
        assert!(
            fl.attribute_score("Empl", "EID", "Staff", "SID")
                > fl.attribute_score("Proj", "PID", "Staff", "SID")
        );
    }

    #[test]
    fn scores_stay_normalized() {
        let (s, t) = schemas();
        let mut initial = HashMap::new();
        initial.insert(
            PairNode::Element { source: "Empl".into(), target: "Staff".into() },
            1.0,
        );
        let mut fl = Flooding::new(&s, &t, initial);
        fl.run(5, 0.7);
        for v in fl.scores.values() {
            assert!((0.0..=1.0).contains(v), "score out of range: {v}");
        }
        assert!(fl.scores.values().any(|v| (*v - 1.0).abs() < 1e-9));
    }
}
