//! Data-type compatibility scoring for attribute pairs.

use mm_metamodel::Attribute;

/// Similarity contribution of the attribute types: the metamodel's type
/// similarity scaled to leave head-room for a nullability-agreement bonus
/// (two nullable or two mandatory attributes are slightly more alike).
pub fn type_similarity(a: &Attribute, b: &Attribute) -> f64 {
    let base = 0.95 * a.ty.similarity(b.ty);
    let null_bonus = if a.nullable == b.nullable { 0.05 } else { 0.0 };
    base + null_bonus
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::DataType;

    #[test]
    fn same_type_scores_high() {
        let a = Attribute::new("x", DataType::Int);
        let b = Attribute::new("y", DataType::Int);
        assert!(type_similarity(&a, &b) >= 1.0);
    }

    #[test]
    fn numeric_widening_scores_mid() {
        let a = Attribute::new("x", DataType::Int);
        let b = Attribute::new("y", DataType::Double);
        let s = type_similarity(&a, &b);
        assert!(s > 0.7 && s < 1.0);
    }

    #[test]
    fn incompatible_types_score_low() {
        let a = Attribute::new("x", DataType::Text);
        let b = Attribute::new("y", DataType::Bool);
        assert!(type_similarity(&a, &b) < 0.3);
    }

    #[test]
    fn nullability_mismatch_loses_bonus() {
        let a = Attribute::new("x", DataType::Int);
        let b = Attribute::nullable("y", DataType::Int);
        let c = Attribute::new("z", DataType::Int);
        assert!(type_similarity(&a, &c) > type_similarity(&a, &b));
    }
}
