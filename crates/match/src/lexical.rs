//! Lexical name similarity.

use std::collections::{HashMap, HashSet};

/// Split an identifier into lowercase word tokens: `camelCase`,
/// `PascalCase`, `snake_case`, `kebab-case`, and digit boundaries all
/// split.
pub fn tokenize(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut prev_lower = false;
    for ch in name.chars() {
        if ch == '_' || ch == '-' || ch == ' ' || ch == '.' || ch == '$' {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            prev_lower = false;
            continue;
        }
        if ch.is_uppercase() && prev_lower
            && !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
        prev_lower = ch.is_lowercase() || ch.is_ascii_digit();
        cur.extend(ch.to_lowercase());
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Jaccard similarity of two token sets.
pub fn token_jaccard(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: HashSet<&str> = a.iter().map(String::as_str).collect();
    let sb: HashSet<&str> = b.iter().map(String::as_str).collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Dice coefficient over character trigrams of the lowercased names —
/// robust to abbreviation and truncation.
pub fn trigram_dice(a: &str, b: &str) -> f64 {
    let ta = trigrams(a);
    let tb = trigrams(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let sa: HashSet<&[char; 3]> = ta.iter().collect();
    let sb: HashSet<&[char; 3]> = tb.iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    2.0 * inter / (sa.len() + sb.len()) as f64
}

fn trigrams(s: &str) -> Vec<[char; 3]> {
    let lower: Vec<char> = s.to_lowercase().chars().collect();
    if lower.len() < 3 {
        return Vec::new();
    }
    lower.windows(3).map(|w| [w[0], w[1], w[2]]).collect()
}

/// Levenshtein distance, normalized into a similarity in `[0, 1]`.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.to_lowercase().chars().collect();
    let b: Vec<char> = b.to_lowercase().chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let dist = levenshtein(&a, &b) as f64;
    1.0 - dist / a.len().max(b.len()) as f64
}

fn levenshtein(a: &[char], b: &[char]) -> usize {
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// A symmetric, transitively closed synonym thesaurus over word tokens:
/// `add("cust", "customer")` and `add("client", "customer")` make
/// `cust`/`client` synonyms too (synonym groups, union-find style).
#[derive(Debug, Clone, Default)]
pub struct Thesaurus {
    /// token → group id
    group: HashMap<String, usize>,
    next_group: usize,
}

impl Thesaurus {
    pub fn new() -> Self {
        Self::default()
    }

    /// A thesaurus seeded with common database naming synonyms.
    pub fn with_defaults() -> Self {
        let mut t = Self::new();
        for (a, b) in [
            ("id", "identifier"),
            ("id", "key"),
            ("id", "no"),
            ("id", "num"),
            ("name", "title"),
            ("emp", "employee"),
            ("empl", "employee"),
            ("dept", "department"),
            ("cust", "customer"),
            ("client", "customer"),
            ("addr", "address"),
            ("qty", "quantity"),
            ("amt", "amount"),
            ("dob", "birthdate"),
            ("tel", "phone"),
            ("zip", "postcode"),
            ("staff", "employee"),
        ] {
            t.add(a, b);
        }
        t
    }

    pub fn add(&mut self, a: &str, b: &str) {
        let a = a.to_lowercase();
        let b = b.to_lowercase();
        match (self.group.get(&a).copied(), self.group.get(&b).copied()) {
            (None, None) => {
                let g = self.next_group;
                self.next_group += 1;
                self.group.insert(a, g);
                self.group.insert(b, g);
            }
            (Some(g), None) => {
                self.group.insert(b, g);
            }
            (None, Some(g)) => {
                self.group.insert(a, g);
            }
            (Some(ga), Some(gb)) if ga != gb => {
                // merge gb into ga
                for v in self.group.values_mut() {
                    if *v == gb {
                        *v = ga;
                    }
                }
            }
            _ => {}
        }
    }

    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        a == b
            || matches!(
                (self.group.get(a), self.group.get(b)),
                (Some(x), Some(y)) if x == y
            )
    }

    /// Jaccard over tokens where synonym pairs count as intersecting.
    pub fn synonym_jaccard(&self, a: &[String], b: &[String]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let mut matched_b = vec![false; b.len()];
        let mut inter = 0usize;
        for ta in a {
            if let Some(j) = b
                .iter()
                .enumerate()
                .position(|(j, tb)| !matched_b[j] && self.are_synonyms(ta, tb))
            {
                matched_b[j] = true;
                inter += 1;
            }
        }
        let union = a.len() + b.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

/// Combined lexical similarity: the maximum of synonym-aware token
/// Jaccard, trigram Dice, and edit similarity. Max (not mean) because each
/// signal covers a different failure mode of the others.
pub fn name_similarity(a: &str, b: &str, thesaurus: &Thesaurus) -> f64 {
    let ta = tokenize(a);
    let tb = tokenize(b);
    let tok = thesaurus.synonym_jaccard(&ta, &tb);
    let tri = trigram_dice(a, b);
    let edit = edit_similarity(a, b);
    tok.max(tri).max(edit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_splits_conventions() {
        assert_eq!(tokenize("customerName"), ["customer", "name"]);
        assert_eq!(tokenize("Customer_NAME"), ["customer", "name"]);
        assert_eq!(tokenize("cust-name"), ["cust", "name"]);
        assert_eq!(tokenize("BillingAddr2"), ["billing", "addr2"]);
        assert_eq!(tokenize("$type"), ["type"]);
    }

    #[test]
    fn identical_names_score_one() {
        let t = Thesaurus::with_defaults();
        assert!((name_similarity("EmployeeId", "employee_id", &t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn synonyms_raise_similarity() {
        let t = Thesaurus::with_defaults();
        let with = name_similarity("CustName", "ClientName", &t);
        let without = name_similarity("CustName", "ClientName", &Thesaurus::new());
        assert!(with > without);
        assert!(with >= 0.99);
    }

    #[test]
    fn unrelated_names_score_low() {
        let t = Thesaurus::with_defaults();
        assert!(name_similarity("Temperature", "InvoiceId", &t) < 0.35);
    }

    #[test]
    fn edit_similarity_bounds() {
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("", ""), 1.0);
        assert!(edit_similarity("abc", "xyz") <= 0.0 + 1e-9);
    }

    #[test]
    fn trigram_dice_handles_short_strings() {
        assert_eq!(trigram_dice("ab", "ab"), 1.0); // both empty trigram sets
        assert_eq!(trigram_dice("ab", "abcdef"), 0.0);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein(&['a', 'b'], &['a', 'c']), 1);
        assert_eq!(levenshtein(&[], &['a']), 1);
        assert_eq!(levenshtein(&['k', 'i', 't', 't', 'e', 'n'], &['s', 'i', 't', 't', 'i', 'n', 'g']), 3);
    }

    #[test]
    fn jaccard_symmetry() {
        let a = tokenize("order_line_item");
        let b = tokenize("LineItem");
        assert_eq!(token_jaccard(&a, &b), token_jaccard(&b, &a));
        assert!(token_jaccard(&a, &b) > 0.5);
    }
}
