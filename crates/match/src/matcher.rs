//! The combining matcher and the incremental (human-in-the-loop) session.

// `expect` here re-raises worker-thread panics from scoped joins and
// documents enumerated-key invariants — not caller-facing failure modes
// (DESIGN.md §7).
#![allow(clippy::expect_used)]

use crate::lexical::{name_similarity, Thesaurus};
use crate::structural::{Flooding, PairNode};
use crate::typing::type_similarity;
use mm_expr::{Correspondence, CorrespondenceSet, PathRef};
use mm_metamodel::Schema;
use std::collections::HashMap;

/// Matcher configuration.
#[derive(Debug, Clone)]
pub struct MatchConfig {
    /// Weight of lexical name similarity in the initial attribute score.
    pub w_lexical: f64,
    /// Weight of data-type similarity in the initial attribute score.
    pub w_type: f64,
    /// Similarity-flooding iterations (0 disables structural propagation).
    pub flooding_iterations: usize,
    /// Flooding damping factor.
    pub flooding_alpha: f64,
    /// How much of the final score comes from flooding vs the initial
    /// (lexical+type) score.
    pub w_structural: f64,
    /// Minimum final score for a correspondence to be emitted.
    pub threshold: f64,
    /// Candidates kept per source attribute (the paper's "all viable
    /// candidates" point — keep k > 1 for engineered-mapping use).
    pub top_k: usize,
    /// Synonym thesaurus.
    pub thesaurus: Thesaurus,
    /// Number of worker threads for the pairwise scoring pass (1 =
    /// sequential). Scoring is embarrassingly parallel over source
    /// elements.
    pub threads: usize,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            w_lexical: 0.75,
            w_type: 0.25,
            flooding_iterations: 2,
            flooding_alpha: 0.4,
            w_structural: 0.35,
            threshold: 0.45,
            top_k: 3,
            thesaurus: Thesaurus::with_defaults(),
            threads: 1,
        }
    }
}

type AttrScore = ((String, String), (String, String), f64);

/// Compute the initial (lexical + type) scores for every attribute pair.
/// Parallelized over source elements with scoped threads when
/// `cfg.threads > 1`.
fn initial_attribute_scores(
    source: &Schema,
    target: &Schema,
    cfg: &MatchConfig,
) -> Vec<AttrScore> {
    let sources: Vec<_> = source.elements().collect();
    let score_one = |se: &mm_metamodel::Element| {
        let mut out = Vec::new();
        for te in target.elements() {
            for sa in &se.attributes {
                for ta in &te.attributes {
                    let lex = name_similarity(&sa.name, &ta.name, &cfg.thesaurus);
                    let typ = type_similarity(sa, ta);
                    let score = cfg.w_lexical * lex + cfg.w_type * typ;
                    out.push((
                        (se.name.clone(), sa.name.clone()),
                        (te.name.clone(), ta.name.clone()),
                        score,
                    ));
                }
            }
        }
        out
    };
    if cfg.threads <= 1 || sources.len() < 2 {
        sources.into_iter().flat_map(score_one).collect()
    } else {
        let chunks: Vec<&[&mm_metamodel::Element]> =
            sources.chunks(sources.len().div_ceil(cfg.threads)).collect();
        let mut results: Vec<Vec<AttrScore>> = Vec::new();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move |_| {
                    chunk.iter().flat_map(|e| score_one(e)).collect::<Vec<_>>()
                }))
                .collect();
            for h in handles {
                results.push(h.join().expect("matcher worker panicked"));
            }
        })
        .expect("crossbeam scope");
        results.into_iter().flatten().collect()
    }
}

/// Match two schemas, producing a ranked correspondence set containing
/// attribute-level correspondences (top-k per source attribute) and
/// element-level correspondences (best target element per source element).
pub fn match_schemas(source: &Schema, target: &Schema, cfg: &MatchConfig) -> CorrespondenceSet {
    let initial = initial_attribute_scores(source, target, cfg);

    // element-level initial score: lexical on element names
    let mut elem_initial: HashMap<(String, String), f64> = HashMap::new();
    for se in source.elements() {
        for te in target.elements() {
            elem_initial.insert(
                (se.name.clone(), te.name.clone()),
                name_similarity(&se.name, &te.name, &cfg.thesaurus),
            );
        }
    }

    // structural pass
    let flooded = if cfg.flooding_iterations > 0 {
        let mut seeds: HashMap<PairNode, f64> = HashMap::new();
        for (s, t, score) in &initial {
            seeds.insert(
                PairNode::Attribute { source: s.clone(), target: t.clone() },
                *score,
            );
        }
        for ((s, t), score) in &elem_initial {
            seeds.insert(
                PairNode::Element { source: s.clone(), target: t.clone() },
                *score,
            );
        }
        let mut fl = Flooding::new(source, target, seeds);
        fl.run(cfg.flooding_iterations, cfg.flooding_alpha);
        Some(fl)
    } else {
        None
    };

    let mut out = CorrespondenceSet::new(source.name.clone(), target.name.clone());

    // attribute correspondences
    let mut per_source: HashMap<(String, String), Vec<(PathRef, f64)>> = HashMap::new();
    for (s, t, init_score) in &initial {
        let structural = flooded
            .as_ref()
            .map(|fl| fl.attribute_score(&s.0, &s.1, &t.0, &t.1))
            .unwrap_or(0.0);
        let score =
            (1.0 - cfg.w_structural) * init_score + cfg.w_structural * structural;
        if score >= cfg.threshold {
            per_source
                .entry(s.clone())
                .or_default()
                .push((PathRef::attr(t.0.clone(), t.1.clone()), score));
        }
    }
    let mut sources: Vec<(String, String)> = per_source.keys().cloned().collect();
    sources.sort();
    for skey in sources {
        let mut cands = per_source.remove(&skey).expect("key enumerated");
        cands.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (target_ref, score) in cands.into_iter().take(cfg.top_k) {
            out.push(Correspondence::new(
                PathRef::attr(skey.0.clone(), skey.1.clone()),
                target_ref,
                score,
            ));
        }
    }

    // element correspondences: best target for each source element
    for se in source.elements() {
        let mut best: Option<(String, f64)> = None;
        for te in target.elements() {
            let init = elem_initial[&(se.name.clone(), te.name.clone())];
            let structural = flooded
                .as_ref()
                .map(|fl| fl.element_score(&se.name, &te.name))
                .unwrap_or(0.0);
            let score = (1.0 - cfg.w_structural) * init + cfg.w_structural * structural;
            if best.as_ref().map(|(_, b)| score > *b).unwrap_or(true) {
                best = Some((te.name.clone(), score));
            }
        }
        if let Some((t, score)) = best {
            if score >= cfg.threshold {
                out.push(Correspondence::new(
                    PathRef::element(se.name.clone()),
                    PathRef::element(t),
                    score,
                ));
            }
        }
    }
    out
}

/// An incremental matching session (the paper's "Incremental Schema
/// Matching", §3.1.1): the data architect confirms or rejects candidates
/// and the session re-ranks the rest.
#[derive(Debug, Clone)]
pub struct IncrementalSession {
    pub candidates: CorrespondenceSet,
    accepted: Vec<(PathRef, PathRef)>,
    rejected: Vec<(PathRef, PathRef)>,
}

impl IncrementalSession {
    pub fn new(candidates: CorrespondenceSet) -> Self {
        IncrementalSession { candidates, accepted: Vec::new(), rejected: Vec::new() }
    }

    /// Confirm a correspondence. Confirming `(s, t)`:
    /// * pins it at confidence 1.0;
    /// * removes other candidates for `s` and for `t` (1:1 assumption at
    ///   the attribute level);
    /// * boosts candidates whose elements agree with the confirmed pair's
    ///   elements (structural feedback).
    pub fn accept(&mut self, source: &PathRef, target: &PathRef) {
        self.accepted.push((source.clone(), target.clone()));
        let (se, te) = (source.element.clone(), target.element.clone());
        self.candidates.correspondences.retain(|c| {
            (&c.source != source && &c.target != target)
                || (&c.source == source && &c.target == target)
        });
        for c in &mut self.candidates.correspondences {
            if &c.source == source && &c.target == target {
                c.confidence = 1.0;
            } else if c.source.element == se && c.target.element == te {
                c.confidence = (c.confidence + 0.15).min(0.99);
            }
        }
        self.sort();
    }

    /// Reject a correspondence: it is removed and candidates crossing the
    /// same pair of elements are *not* penalized (a single bad attribute
    /// pair says little about its element pair).
    pub fn reject(&mut self, source: &PathRef, target: &PathRef) {
        self.rejected.push((source.clone(), target.clone()));
        self.candidates
            .correspondences
            .retain(|c| !(&c.source == source && &c.target == target));
    }

    /// Remaining undecided candidates for a source path, best first.
    pub fn undecided(&self, source: &PathRef) -> Vec<&Correspondence> {
        self.candidates
            .candidates_for(source)
            .into_iter()
            .filter(|c| {
                !self
                    .accepted
                    .iter()
                    .any(|(s, t)| s == &c.source && t == &c.target)
            })
            .collect()
    }

    pub fn accepted(&self) -> &[(PathRef, PathRef)] {
        &self.accepted
    }

    fn sort(&mut self) {
        self.candidates
            .correspondences
            .sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn schemas() -> (Schema, Schema) {
        let s = SchemaBuilder::new("S")
            .relation("Empl", &[
                ("EID", DataType::Int),
                ("Name", DataType::Text),
                ("Tel", DataType::Text),
                ("AID", DataType::Int),
            ])
            .relation("Addr", &[("AID", DataType::Int), ("City", DataType::Text), ("Zip", DataType::Text)])
            .build()
            .unwrap();
        let t = SchemaBuilder::new("T")
            .relation("Staff", &[
                ("SID", DataType::Int),
                ("Name", DataType::Text),
                ("BirthDate", DataType::Date),
                ("City", DataType::Text),
            ])
            .build()
            .unwrap();
        (s, t)
    }

    #[test]
    fn exact_name_matches_rank_first() {
        let (s, t) = schemas();
        let cs = match_schemas(&s, &t, &MatchConfig::default());
        let name_c = cs.candidates_for(&PathRef::attr("Empl", "Name"));
        assert!(!name_c.is_empty());
        assert_eq!(name_c[0].target, PathRef::attr("Staff", "Name"));
        let city_c = cs.candidates_for(&PathRef::attr("Addr", "City"));
        assert_eq!(city_c[0].target, PathRef::attr("Staff", "City"));
    }

    #[test]
    fn element_correspondence_emitted_for_synonymous_relations() {
        let (s, t) = schemas();
        let cs = match_schemas(&s, &t, &MatchConfig::default());
        // Empl ~ Staff via the thesaurus (empl ↔ employee ↔ staff needs
        // two hops; direct empl↔staff is not seeded, but flooding +
        // shared Name/City attributes should still pick Staff)
        let elem = cs.candidates_for(&PathRef::element("Empl"));
        assert!(!elem.is_empty());
        assert_eq!(elem[0].target, PathRef::element("Staff"));
    }

    #[test]
    fn top_k_respected() {
        let (s, t) = schemas();
        let cfg = MatchConfig { top_k: 1, threshold: 0.0, ..Default::default() };
        let cs = match_schemas(&s, &t, &cfg);
        for se in s.elements() {
            for sa in &se.attributes {
                let c = cs.candidates_for(&PathRef::attr(se.name.clone(), sa.name.clone()));
                assert!(c.len() <= 1, "{}.{} has {} candidates", se.name, sa.name, c.len());
            }
        }
    }

    #[test]
    fn threshold_filters_noise() {
        let (s, t) = schemas();
        let strict = MatchConfig { threshold: 0.9, ..Default::default() };
        let cs = match_schemas(&s, &t, &strict);
        // only near-perfect pairs survive
        for c in &cs.correspondences {
            assert!(c.confidence >= 0.9 * 0.99, "{c}");
        }
    }

    #[test]
    fn parallel_scoring_matches_sequential() {
        let (s, t) = schemas();
        let seq = match_schemas(&s, &t, &MatchConfig { threads: 1, ..Default::default() });
        let par = match_schemas(&s, &t, &MatchConfig { threads: 4, ..Default::default() });
        // same sets (order within equal confidence may differ)
        assert_eq!(seq.len(), par.len());
        for c in &seq.correspondences {
            assert!(par
                .correspondences
                .iter()
                .any(|d| d.source == c.source && d.target == c.target));
        }
    }

    #[test]
    fn incremental_accept_prunes_competitors() {
        let (s, t) = schemas();
        let cs = match_schemas(&s, &t, &MatchConfig { threshold: 0.1, ..Default::default() });
        let mut sess = IncrementalSession::new(cs);
        let src = PathRef::attr("Empl", "Name");
        let tgt = PathRef::attr("Staff", "Name");
        sess.accept(&src, &tgt);
        // no other candidate for Empl.Name remains; the accepted one is 1.0
        let remaining = sess.candidates.candidates_for(&src);
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].confidence, 1.0);
        // nothing else targets Staff.Name
        assert!(!sess
            .candidates
            .correspondences
            .iter()
            .any(|c| c.target == tgt && c.source != src));
    }

    #[test]
    fn incremental_reject_removes_candidate() {
        let (s, t) = schemas();
        let cs = match_schemas(&s, &t, &MatchConfig { threshold: 0.1, ..Default::default() });
        let mut sess = IncrementalSession::new(cs);
        let src = PathRef::attr("Empl", "Tel");
        if let Some(first) = sess.undecided(&src).first().map(|c| c.target.clone()) {
            sess.reject(&src, &first);
            assert!(!sess
                .candidates
                .correspondences
                .iter()
                .any(|c| c.source == src && c.target == first));
        }
    }
}
