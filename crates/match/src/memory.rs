//! Match memory: reusing previous matches (§3.1.1 lists "previous
//! matches" among the evidence a matcher can exploit; reuse is exactly
//! what makes repeated integration projects cheaper than the first one).
//!
//! The memory stores *confirmed* correspondences as normalized
//! token-sequence pairs, independent of which schemas they came from. A
//! later match run consults the memory to boost candidates whose names
//! were confirmed before — including across different schema pairs.

use crate::lexical::tokenize;
use mm_expr::{CorrespondenceSet, PathRef};
#[cfg(test)]
use mm_expr::Correspondence;
use std::collections::HashSet;

/// Normalized name pair: token sequences of the two sides.
type NamePair = (Vec<String>, Vec<String>);

/// A store of confirmed name pairs learned from past matching sessions.
#[derive(Debug, Clone, Default)]
pub struct MatchMemory {
    attribute_pairs: HashSet<NamePair>,
    element_pairs: HashSet<NamePair>,
}

/// How strongly memory evidence pulls a candidate's confidence toward
/// certainty: `c' = c + (1 - c) · MEMORY_WEIGHT`. A blend (rather than an
/// override) keeps strong *current* evidence in charge — a remembered
/// pair never outranks a near-exact live match.
pub const MEMORY_WEIGHT: f64 = 0.6;

impl MatchMemory {
    pub fn new() -> Self {
        Self::default()
    }

    fn key(path: &PathRef) -> (Vec<String>, Option<Vec<String>>) {
        (
            tokenize(&path.element),
            path.attribute.as_deref().map(tokenize),
        )
    }

    /// Record one confirmed correspondence.
    pub fn remember(&mut self, source: &PathRef, target: &PathRef) {
        let (se, sa) = Self::key(source);
        let (te, ta) = Self::key(target);
        match (sa, ta) {
            (Some(sa), Some(ta)) => {
                self.attribute_pairs.insert((sa, ta));
            }
            (None, None) => {
                self.element_pairs.insert((se, te));
            }
            _ => {}
        }
    }

    /// Record every correspondence of a confirmed set (e.g. one stored in
    /// the repository after the data architect signed it off).
    pub fn remember_all(&mut self, confirmed: &CorrespondenceSet) {
        for c in &confirmed.correspondences {
            self.remember(&c.source, &c.target);
        }
    }

    /// Whether this (source, target) pair matches remembered history.
    pub fn knows(&self, source: &PathRef, target: &PathRef) -> bool {
        let (se, sa) = Self::key(source);
        let (te, ta) = Self::key(target);
        match (sa, ta) {
            (Some(sa), Some(ta)) => self.attribute_pairs.contains(&(sa, ta)),
            (None, None) => self.element_pairs.contains(&(se, te)),
            _ => false,
        }
    }

    /// Boost remembered candidates in a fresh match result and re-rank.
    /// Candidates absent from the result are *not* invented — memory is
    /// evidence, not an oracle (the schemas must still exhibit the pair) —
    /// and it *blends* with the live score rather than overriding it.
    pub fn apply(&self, candidates: &mut CorrespondenceSet) {
        for c in &mut candidates.correspondences {
            if self.knows(&c.source, &c.target) {
                c.confidence += (1.0 - c.confidence) * MEMORY_WEIGHT;
            }
        }
        candidates
            .correspondences
            .sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
    }

    pub fn len(&self) -> usize {
        self.attribute_pairs.len() + self.element_pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.attribute_pairs.is_empty() && self.element_pairs.is_empty()
    }
}

/// Convenience: remember only the pairs the architect explicitly accepted
/// in an incremental session.
pub fn remember_session(memory: &mut MatchMemory, accepted: &[(PathRef, PathRef)]) {
    for (s, t) in accepted {
        memory.remember(s, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{match_schemas, MatchConfig};
    use mm_metamodel::{DataType, SchemaBuilder};

    #[test]
    fn memory_is_schema_independent_and_case_insensitive() {
        let mut m = MatchMemory::new();
        m.remember(
            &PathRef::attr("Empl", "cust_no"),
            &PathRef::attr("Staff", "ClientNumber"),
        );
        // same names, different elements and case conventions
        assert!(m.knows(
            &PathRef::attr("Workers", "CustNo"),
            &PathRef::attr("People", "client_number"),
        ));
        assert!(!m.knows(
            &PathRef::attr("Workers", "CustNo"),
            &PathRef::attr("People", "phone"),
        ));
    }

    #[test]
    fn boost_reranks_a_remembered_pair_to_the_top() {
        // a source attribute whose correct target is lexically distant:
        // without memory the matcher ranks it low; with memory it wins
        let s = SchemaBuilder::new("S")
            .relation("Empl", &[("dob", DataType::Date)])
            .build()
            .unwrap();
        let t = SchemaBuilder::new("T")
            .relation("Staff", &[
                ("document", DataType::Date), // lexically closer to "dob"? no—distractor
                ("geboortedatum", DataType::Date),
            ])
            .build()
            .unwrap();
        let cfg = MatchConfig { threshold: 0.0, top_k: 5, ..Default::default() };
        let mut cs = match_schemas(&s, &t, &cfg);
        let src = PathRef::attr("Empl", "dob");
        let before: Vec<_> =
            cs.candidates_for(&src).into_iter().cloned().collect();
        // sanity: the foreign-language target is not the top candidate
        assert_ne!(before[0].target, PathRef::attr("Staff", "geboortedatum"));

        let mut memory = MatchMemory::new();
        memory.remember(
            &PathRef::attr("AnyOldSchema", "dob"),
            &PathRef::attr("Whatever", "geboortedatum"),
        );
        memory.apply(&mut cs);
        let after = cs.candidates_for(&src);
        assert_eq!(after[0].target, PathRef::attr("Staff", "geboortedatum"));
        assert!(after[0].confidence > before[0].confidence);
    }

    #[test]
    fn memory_never_invents_candidates() {
        let mut cs = CorrespondenceSet::new("S", "T");
        cs.push(Correspondence::new(
            PathRef::attr("A", "x"),
            PathRef::attr("B", "y"),
            0.5,
        ));
        let mut memory = MatchMemory::new();
        memory.remember(&PathRef::attr("A", "z"), &PathRef::attr("B", "w"));
        memory.apply(&mut cs);
        assert_eq!(cs.len(), 1); // nothing added
        assert_eq!(cs.correspondences[0].confidence, 0.5); // nothing boosted
    }

    #[test]
    fn remember_all_ingests_a_confirmed_set() {
        let mut confirmed = CorrespondenceSet::new("S", "T");
        confirmed.push(Correspondence::new(
            PathRef::attr("A", "x"),
            PathRef::attr("B", "y"),
            1.0,
        ));
        confirmed.push(Correspondence::new(
            PathRef::element("A"),
            PathRef::element("B"),
            1.0,
        ));
        let mut m = MatchMemory::new();
        m.remember_all(&confirmed);
        assert_eq!(m.len(), 2);
        assert!(m.knows(&PathRef::element("A"), &PathRef::element("B")));
    }
}
