//! Schema matching: computing correspondences between two schemas.
//!
//! §3.1.1 of the paper surveys matchers that "exploit lexical analysis of
//! element names, schema structure, data types, value distributions,
//! thesauri, ontologies, and previous matches", and argues that for
//! engineered mappings the matcher's job is to "return all viable
//! candidates for a given element, rather than only the best one". This
//! crate implements that stack:
//!
//! * [`lexical`] — tokenized name similarity (token Jaccard, trigram Dice,
//!   normalized edit distance) with a synonym thesaurus;
//! * [`typing`] — data-type compatibility scoring;
//! * [`structural`] — a similarity-flooding-style fixpoint that propagates
//!   similarity between elements and their attributes;
//! * [`matcher`] — the combiner producing ranked, top-k
//!   [`mm_expr::CorrespondenceSet`]s, plus an incremental session that
//!   re-ranks under user accept/reject feedback (the paper's "incremental
//!   schema matching").

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod lexical;
pub mod matcher;
pub mod memory;
pub mod structural;
pub mod typing;

pub use matcher::{match_schemas, IncrementalSession, MatchConfig};
pub use memory::{remember_session, MatchMemory, MEMORY_WEIGHT};
