//! The engine: repository-backed operator invocations.

use mm_chase::{ChaseExplain, ChaseProgram};
use mm_expr::{CorrespondenceSet, Expr, Mapping, SoTgd, Tgd, ViewSet};
use mm_guard::{ExecBudget, Governor};
use mm_instance::{Database, Tuple};
use mm_match::MatchConfig;
use mm_metamodel::Schema;
use mm_modelgen::InheritanceStrategy;
use mm_propagate::{PollResponse, PropagateConfig, PropagateError, Propagator, SubscriberStatus};
use mm_repository::{
    ArtifactId, DurableOptions, Repository, RepositoryError, Storage, Subscription,
};
use mm_runtime::Delta;
use mm_telemetry::{Counter, Span, Telemetry};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

use crate::plan_cache::{PlanCache, PLAN_CACHE_SHARDS};

/// Default round cap for the general chase. The general chase may not
/// terminate (composition of non-s-t tgds is undecidable, §6.1), so the
/// engine always runs it under a cap; exceeding the cap surfaces as
/// [`mm_guard::ExecError::Diverged`] rather than a silent stop.
pub const DEFAULT_CHASE_ROUNDS: u64 = 256;

/// Where the engine's repository lives.
#[derive(Clone, Default)]
pub enum Durability {
    /// In-memory only — the historical behavior. A crash loses
    /// everything since startup.
    #[default]
    Ephemeral,
    /// Journal every repository write through a write-ahead log on this
    /// storage, running crash recovery on open (DESIGN.md §9).
    Durable {
        storage: Arc<dyn Storage>,
        options: DurableOptions,
    },
}

impl fmt::Debug for Durability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Durability::Ephemeral => f.write_str("Ephemeral"),
            Durability::Durable { options, .. } => f
                .debug_struct("Durable")
                .field("options", options)
                .finish_non_exhaustive(),
        }
    }
}

/// Resource-governance knobs for engine operators.
///
/// The engine threads these through every operator that can run away:
/// data exchange (chase), general chase, and mapping composition. The
/// default configuration is permissive — an unbounded [`ExecBudget`],
/// [`DEFAULT_CHASE_ROUNDS`] rounds for the general chase, and
/// [`mm_compose::DEFAULT_CLAUSE_BOUND`] clauses for SO-tgd composition —
/// so ungoverned callers see the historical behavior.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Round cap for general-chase invocations whose budget does not set
    /// one. Defaults to [`DEFAULT_CHASE_ROUNDS`].
    pub chase_max_rounds: u64,
    /// Clause cap for SO-tgd composition. Defaults to
    /// [`mm_compose::DEFAULT_CLAUSE_BOUND`].
    pub compose_clause_bound: usize,
    /// Baseline execution budget (steps, rows, wall clock, cancellation)
    /// applied to every governed operator. Defaults to unbounded.
    pub budget: ExecBudget,
    /// Reuse compiled [`ChaseProgram`]s across calls. The cache is
    /// sharded ([`PLAN_CACHE_SHARDS`] lock stripes) and keyed by mapping
    /// *name*, with each entry remembering the [`ArtifactId`] it was
    /// compiled from: storing a new version under the same name evicts
    /// the stale plan on the next lookup, so a replaced mapping can
    /// never serve its predecessor's plan. Defaults to `true`; disable
    /// to force per-call compilation (e.g. when benchmarking compile
    /// cost).
    pub cache_plans: bool,
    /// Compile chase programs with the cost-based planner
    /// ([`mm_chase::ChaseProgram::compile_costed`]): tgd-body join orders
    /// are chosen by cardinality/selectivity estimates from per-relation
    /// statistics instead of the greedy size heuristic, and cached plans
    /// whose compile-time statistics have drifted beyond
    /// [`EngineConfig::replan_ratio`] are invalidated and recompiled on
    /// their next use. Results are bit-identical either way — cost-based
    /// plans re-emit matches in the canonical enumeration order — so this
    /// only changes how much work a chase does. Defaults to `true`.
    pub cost_based_plans: bool,
    /// Drift threshold for adaptive re-optimization, as a ratio between a
    /// plan's compile-time body-relation cardinalities and the live ones
    /// (either direction, +1 smoothed). A cached or mid-run plan past the
    /// threshold is re-planned against current statistics. Defaults to
    /// `8.0`; only consulted when [`EngineConfig::cost_based_plans`] is
    /// on.
    pub replan_ratio: f64,
    /// Degree of parallelism for chase and batch operators: the worker
    /// count for [`Engine::exchange_batch`] and for the within-round
    /// body-matching fan-out of `exchange` / `chase_general`. `1` runs
    /// everything sequentially (the reference oracle — parallel runs
    /// are bit-identical to it). Defaults to the machine's available
    /// parallelism.
    pub threads: usize,
    /// Repository durability mode. Defaults to [`Durability::Ephemeral`].
    pub durability: Durability,
    /// Update-propagation knobs: subscriber queue bounds, feed
    /// retention, and the per-event delta budget (DESIGN.md §14).
    pub propagate: PropagateConfig,
    /// Telemetry handle threaded through every operator and the
    /// repository: operator spans, engine metrics, and degradation
    /// events all flow through it. Defaults to
    /// [`Telemetry::disabled`], which costs one branch per
    /// instrumentation site.
    pub telemetry: Telemetry,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            chase_max_rounds: DEFAULT_CHASE_ROUNDS,
            compose_clause_bound: mm_compose::DEFAULT_CLAUSE_BOUND,
            budget: ExecBudget::unbounded(),
            cache_plans: true,
            cost_based_plans: true,
            replan_ratio: 8.0,
            threads: mm_parallel::available_parallelism(),
            durability: Durability::Ephemeral,
            propagate: PropagateConfig::default(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Engine errors: repository misses plus operator failures, flattened for
/// tool consumption.
#[derive(Debug)]
pub enum EngineError {
    Repository(RepositoryError),
    ModelGen(mm_modelgen::ModelGenError),
    TransGen(mm_transgen::TransGenError),
    Compose(mm_compose::ComposeError),
    Eval(mm_eval::EvalError),
    Corr(mm_transgen::CorrError),
    Inverse(mm_evolution::InverseError),
    /// Resource governance: budget exhaustion, cancellation, divergence,
    /// or malformed caller-supplied data caught by a governed operator.
    Exec(mm_guard::ExecError),
    /// Update propagation: unknown subscriber/instance or a failed
    /// resync recompute.
    Propagate(PropagateError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Repository(e) => write!(f, "repository: {e}"),
            EngineError::ModelGen(e) => write!(f, "modelgen: {e}"),
            EngineError::TransGen(e) => write!(f, "transgen: {e}"),
            EngineError::Compose(e) => write!(f, "compose: {e}"),
            EngineError::Eval(e) => write!(f, "eval: {e}"),
            EngineError::Corr(e) => write!(f, "correspondence: {e}"),
            EngineError::Inverse(e) => write!(f, "inverse: {e}"),
            EngineError::Exec(e) => write!(f, "execution: {e}"),
            EngineError::Propagate(e) => write!(f, "propagation: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for EngineError {
            fn from(e: $ty) -> Self {
                EngineError::$variant(e)
            }
        }
    };
}

from_err!(Repository, RepositoryError);
from_err!(ModelGen, mm_modelgen::ModelGenError);
from_err!(TransGen, mm_transgen::TransGenError);
from_err!(Compose, mm_compose::ComposeError);
from_err!(Eval, mm_eval::EvalError);
from_err!(Corr, mm_transgen::CorrError);
from_err!(Inverse, mm_evolution::InverseError);
from_err!(Exec, mm_guard::ExecError);
from_err!(Propagate, PropagateError);

/// The model management engine: operators over a metadata repository.
///
/// Every operator method loads its inputs from the repository by name,
/// stores its outputs, and records a lineage edge — the Rondo-style
/// scripting surface: a "script" is simply a sequence of engine calls.
pub struct Engine {
    pub repo: Repository,
    pub config: EngineConfig,
    /// Compiled chase programs: a sharded, lock-striped cache keyed by
    /// mapping name (see [`PlanCache`]). Interior mutability because
    /// every operator takes `&self`.
    chase_plans: PlanCache,
    /// The update-propagation hub (DESIGN.md §14): change feed,
    /// subscriber queues, resync machinery.
    propagator: Propagator,
    /// Orders the (repository write → feed publish) pair across
    /// concurrent writers: without it two commits could publish out of
    /// sequence and the feed would refuse the stale one. Data-path
    /// writes only — metadata operators never take it.
    feed_order: Mutex<()>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    pub fn new() -> Self {
        let config = EngineConfig::default();
        Engine {
            repo: Repository::new(),
            propagator: Propagator::new(config.propagate.clone(), config.telemetry.clone()),
            config,
            chase_plans: PlanCache::default(),
            feed_order: Mutex::new(()),
        }
    }

    /// An engine with explicit governance knobs (round caps, clause
    /// bounds, execution budget, durability). Fallible because a
    /// [`Durability::Durable`] configuration opens the storage and runs
    /// crash recovery.
    pub fn with_config(config: EngineConfig) -> Result<Self, EngineError> {
        let repo = match &config.durability {
            Durability::Ephemeral => {
                let mut repo = Repository::new();
                repo.set_telemetry(config.telemetry.clone());
                repo
            }
            Durability::Durable { storage, options } => Repository::open_durable_with_telemetry(
                Arc::clone(storage),
                options.clone(),
                config.telemetry.clone(),
            )?,
        };
        let propagator = Propagator::new(config.propagate.clone(), config.telemetry.clone());
        // Re-attach recovered propagation state: every tracked instance
        // becomes a replica at its own last feed-event sequence (not the
        // global WAL sequence — registry writes don't count against a
        // subscriber), and every registered subscription comes back
        // streaming-from-now. A client that resumes with a cursor behind
        // real events is degraded to a resync at `resume` time, never
        // silently skipped ahead; a fully caught-up client keeps
        // streaming.
        for name in repo.instance_names() {
            if let Some(db) = repo.instance(&name) {
                let seq = repo.instance_seq(&name);
                propagator.track_instance(name, db, seq);
            }
        }
        for sub in repo.subscriptions() {
            if let Ok((schema, _)) = repo.latest_schema(&sub.views.base_schema) {
                // A subscription whose base schema is gone cannot be
                // served; leave it in the registry for inspection but
                // do not attach it.
                let _ = propagator.attach_recovered(sub, schema);
            }
        }
        Ok(Engine {
            repo,
            config,
            chase_plans: PlanCache::default(),
            propagator,
            feed_order: Mutex::new(()),
        })
    }

    /// The engine's telemetry handle — disabled unless
    /// [`EngineConfig::telemetry`] was set. Inspect metrics via
    /// `engine.telemetry().metrics()`.
    pub fn telemetry(&self) -> &Telemetry {
        &self.config.telemetry
    }

    /// Open (or recover) a durable engine over `storage` with otherwise
    /// default configuration — shorthand for [`Engine::with_config`]
    /// with [`Durability::Durable`].
    pub fn open_durable(
        storage: Arc<dyn Storage>,
        options: DurableOptions,
    ) -> Result<Self, EngineError> {
        Engine::with_config(EngineConfig {
            durability: Durability::Durable { storage, options },
            ..EngineConfig::default()
        })
    }

    /// The compiled chase program for mapping `name` at version `id`,
    /// compiling (and caching, unless [`EngineConfig::cache_plans`] is
    /// off) on first use. A cached plan compiled from an *older* version
    /// of the same name is treated as a miss and replaced, and — under
    /// [`EngineConfig::cost_based_plans`] — a cached plan whose
    /// compile-time statistics have drifted from `db` beyond
    /// [`EngineConfig::replan_ratio`] is invalidated and recompiled
    /// against current cardinalities (counted as a plan misestimate plus
    /// a re-plan). `db` only supplies cardinality statistics for the
    /// compile; plan order never affects result sets.
    fn chase_program(
        &self,
        name: &str,
        id: &ArtifactId,
        tgds: &[Tgd],
        db: &Database,
    ) -> Arc<ChaseProgram> {
        let tel = &self.config.telemetry;
        let compile = |tgds: &[Tgd], db: &Database| {
            if self.config.cost_based_plans {
                Arc::new(ChaseProgram::compile_costed(tgds, db))
            } else {
                Arc::new(ChaseProgram::compile(tgds, db))
            }
        };
        if !self.config.cache_plans {
            tel.count(Counter::PlanCacheMisses, 1);
            return compile(tgds, db);
        }
        if let Some(program) = self.chase_plans.get(name, id) {
            if self.config.cost_based_plans
                && program.misestimated(db, self.config.replan_ratio)
            {
                tel.count(Counter::PlanMisestimates, 1);
                self.chase_plans.invalidate(name);
                let fresh = compile(tgds, db);
                self.chase_plans.insert(name, id.clone(), Arc::clone(&fresh));
                tel.count(Counter::PlanReplans, 1);
                return fresh;
            }
            tel.count(Counter::PlanCacheHits, 1);
            return program;
        }
        tel.count(Counter::PlanCacheMisses, 1);
        let program = compile(tgds, db);
        self.chase_plans.insert(name, id.clone(), Arc::clone(&program));
        program
    }

    /// How many compiled chase programs the engine currently holds —
    /// observability for tests and tools.
    pub fn cached_chase_plans(&self) -> usize {
        self.chase_plans.len()
    }

    /// Per-shard plan counts of the sharded cache, in stripe order
    /// (length [`PLAN_CACHE_SHARDS`]). Sums to
    /// [`Self::cached_chase_plans`].
    pub fn cached_chase_plan_shards(&self) -> [usize; PLAN_CACHE_SHARDS] {
        self.chase_plans.shard_sizes()
    }

    /// Sample the instance layer's process-wide allocation totals into
    /// the `alloc.*` telemetry gauges. Called at operation boundaries so
    /// `BENCH_telemetry.json` (and live `metrics` requests) expose
    /// tuple-spill and intern-pool pressure without the hot path paying
    /// for more than two relaxed atomic reads per op.
    fn sample_alloc(&self) {
        let (tuples, interned) = mm_instance::intern::alloc_counts();
        self.config.telemetry.sample_alloc(tuples, interned);
    }

    /// The budget chase-based operators run under: the configured
    /// baseline, with the configured round cap filled in when the
    /// baseline does not set one.
    fn chase_budget(&self) -> ExecBudget {
        let b = self.config.budget.clone();
        if b.max_rounds().is_none() {
            b.with_rounds(self.config.chase_max_rounds)
        } else {
            b
        }
    }

    fn tgds_of(m: &Mapping) -> Result<Vec<Tgd>, EngineError> {
        Ok(m.as_tgds()
            .ok_or_else(|| {
                EngineError::TransGen(mm_transgen::TransGenError::Unrecognized(
                    "operator requires a tgd mapping".into(),
                ))
            })?
            .into_iter()
            .cloned()
            .collect())
    }

    /// Register a schema under its own name.
    pub fn add_schema(&self, schema: Schema) -> Result<ArtifactId, EngineError> {
        Ok(self.repo.store_schema(schema.name.clone(), schema)?)
    }

    fn schema(&self, name: &str) -> Result<(Schema, ArtifactId), EngineError> {
        Ok(self.repo.latest_schema(name)?)
    }

    /// Match: compute correspondences between two registered schemas and
    /// store them as `<source>~<target>`.
    pub fn match_schemas(
        &self,
        source: &str,
        target: &str,
        cfg: &MatchConfig,
    ) -> Result<(CorrespondenceSet, ArtifactId), EngineError> {
        let (s, sid) = self.schema(source)?;
        let (t, tid) = self.schema(target)?;
        let cs = mm_match::match_schemas(&s, &t, cfg);
        let out = self.repo.store_correspondences(format!("{source}~{target}"), cs.clone())?;
        self.repo.record("match", vec![sid, tid], out.clone())?;
        Ok((cs, out))
    }

    /// Match with memory: like [`Self::match_schemas`], but first replays
    /// every *confirmed* correspondence set stored in the repository
    /// (confidence 1.0 entries) into a [`mm_match::MatchMemory`] and
    /// boosts remembered pairs — the paper's "previous matches" evidence.
    pub fn match_schemas_with_memory(
        &self,
        source: &str,
        target: &str,
        cfg: &MatchConfig,
    ) -> Result<(CorrespondenceSet, ArtifactId), EngineError> {
        let (s, sid) = self.schema(source)?;
        let (t, tid) = self.schema(target)?;
        let mut memory = mm_match::MatchMemory::new();
        for name in self.repo.correspondence_names() {
            if let Ok((cs, _)) = self.repo.latest_correspondences(&name) {
                for c in &cs.correspondences {
                    if c.confidence >= 1.0 {
                        memory.remember(&c.source, &c.target);
                    }
                }
            }
        }
        let mut cs = mm_match::match_schemas(&s, &t, cfg);
        memory.apply(&mut cs);
        let out = self
            .repo
            .store_correspondences(format!("{source}~{target}"), cs.clone())?;
        self.repo.record("match+memory", vec![sid, tid], out.clone())?;
        Ok((cs, out))
    }

    /// ModelGen: translate a registered ER schema to a relational one;
    /// stores the generated schema, the mapping, and the forward views.
    pub fn modelgen_er_to_relational(
        &self,
        er: &str,
        strategy: InheritanceStrategy,
    ) -> Result<mm_modelgen::ModelGenResult, EngineError> {
        let (s, sid) = self.schema(er)?;
        let result = mm_modelgen::er_to_relational(&s, strategy)?;
        let out_schema =
            self.repo.store_schema(result.schema.name.clone(), result.schema.clone())?;
        let mapping_name = format!("{}->{}", er, result.schema.name);
        let out_mapping = self.repo.store_mapping(mapping_name.clone(), result.mapping.clone())?;
        let out_views =
            self.repo.store_viewset(format!("{mapping_name}.views"), result.views.clone())?;
        self.repo.record(
            format!("modelgen[{strategy}]"),
            vec![sid],
            out_schema.clone(),
        )?;
        self.repo.record(format!("modelgen[{strategy}]"), vec![out_schema], out_mapping.clone())?;
        self.repo.record("modelgen.views", vec![out_mapping], out_views)?;
        Ok(result)
    }

    /// ModelGen in the wrapper direction: relational to ER.
    pub fn modelgen_relational_to_er(
        &self,
        rel: &str,
    ) -> Result<mm_modelgen::ModelGenResult, EngineError> {
        let (s, sid) = self.schema(rel)?;
        let result = mm_modelgen::relational_to_er(&s)?;
        let out_schema =
            self.repo.store_schema(result.schema.name.clone(), result.schema.clone())?;
        self.repo.record("modelgen[rel->er]", vec![sid], out_schema)?;
        Ok(result)
    }

    /// TransGen: compile a stored constraint mapping into query and update
    /// views (stored as `<name>.qviews` / `<name>.uviews`).
    pub fn transgen(
        &self,
        er: &str,
        rel: &str,
        mapping_name: &str,
    ) -> Result<(ViewSet, ViewSet), EngineError> {
        let (er_schema, erid) = self.schema(er)?;
        let (rel_schema, relid) = self.schema(rel)?;
        let (mapping, mid) = self.repo.latest_mapping(mapping_name)?;
        let frags = mm_transgen::parse_fragments(&er_schema, &rel_schema, &mapping)?;
        let qv = mm_transgen::query_views(&er_schema, &rel_schema, &frags)?;
        let uv = mm_transgen::update_views(&er_schema, &rel_schema, &frags)?;
        let qid = self.repo.store_viewset(format!("{mapping_name}.qviews"), qv.clone())?;
        let uid = self.repo.store_viewset(format!("{mapping_name}.uviews"), uv.clone())?;
        self.repo.record("transgen.query", vec![erid.clone(), relid.clone(), mid.clone()], qid)?;
        self.repo.record("transgen.update", vec![erid, relid, mid], uid)?;
        Ok((qv, uv))
    }

    /// Store a hand-written mapping.
    pub fn add_mapping(&self, name: &str, mapping: Mapping) -> Result<ArtifactId, EngineError> {
        Ok(self.repo.store_mapping(name, mapping)?)
    }

    /// Store a hand-written view set.
    pub fn add_viewset(&self, name: &str, views: ViewSet) -> Result<ArtifactId, EngineError> {
        Ok(self.repo.store_viewset(name, views)?)
    }

    /// Compose two stored view sets (`first` base→mid, `second` mid→top),
    /// storing the collapsed result. The size of the composed definitions
    /// is checked against the configured budget's clause cap, so a
    /// blowing-up chain trips `BudgetExhausted` instead of storing an
    /// enormous mapping.
    pub fn compose(
        &self,
        first: &str,
        second: &str,
        out_name: &str,
    ) -> Result<ViewSet, EngineError> {
        let (a, aid) = self.repo.latest_viewset(first)?;
        let (b, bid) = self.repo.latest_viewset(second)?;
        let composed = mm_compose::compose_views(&a, &b);
        let mut gov = Governor::new(&self.config.budget);
        let nodes: usize = composed.views.iter().map(|v| v.expr.size()).sum();
        gov.clauses(nodes as u64)?;
        gov.steps_n(nodes as u64)?;
        let out = self.repo.store_viewset(out_name, composed.clone())?;
        self.repo.record("compose", vec![aid, bid], out)?;
        Ok(composed)
    }

    /// Compose two stored *tgd* mappings (§6.1): Skolemize into an
    /// SO-tgd under the configured clause bound and budget, then try to
    /// fold the result back into first-order st-tgds. When folding
    /// succeeds the first-order mapping is stored under `out_name`.
    pub fn compose_tgd_mappings(
        &self,
        first: &str,
        second: &str,
        out_name: &str,
    ) -> Result<(SoTgd, Option<Mapping>), EngineError> {
        let (m12, aid) = self.repo.latest_mapping(first)?;
        let (m23, bid) = self.repo.latest_mapping(second)?;
        let t12 = Self::tgds_of(&m12)?;
        let t23 = Self::tgds_of(&m23)?;
        let tel = &self.config.telemetry;
        let mut span = Span::enter(tel, "engine.compose.tgd", format!("{aid} * {bid}"));
        let so = match mm_compose::compose_st_tgds_traced(
            &t12,
            &t23,
            self.config.compose_clause_bound,
            &self.config.budget,
            tel,
        ) {
            Ok(so) => {
                span.field("clauses", so.clauses.len());
                so
            }
            Err(e) => {
                span.field("error", e.to_string());
                return Err(e.into());
            }
        };
        let mut gov = Governor::new(&self.config.budget);
        let folded = match mm_compose::try_deskolemize_governed(&so, &mut gov)? {
            Some(tgds) => {
                let mut m = Mapping::new(m12.source_schema.clone(), m23.target_schema.clone());
                for t in tgds {
                    m.push_tgd(t);
                }
                let out = self.repo.store_mapping(out_name, m.clone())?;
                self.repo.record("compose.tgd", vec![aid, bid], out)?;
                Some(m)
            }
            None => None,
        };
        span.field("folded", folded.is_some());
        span.finish();
        Ok((so, folded))
    }

    /// Diff a stored schema against a stored mapping (§6.2).
    pub fn diff(
        &self,
        schema: &str,
        mapping: &str,
    ) -> Result<mm_evolution::ExtractResult, EngineError> {
        let (s, sid) = self.schema(schema)?;
        let (m, mid) = self.repo.latest_mapping(mapping)?;
        let result = mm_evolution::diff(&s, &m, mm_evolution::diff::Side::Source);
        let out = self.repo.store_schema(result.schema.name.clone(), result.schema.clone())?;
        self.repo.record("diff", vec![sid, mid], out)?;
        Ok(result)
    }

    /// Extract the participating sub-schema (§6.2).
    pub fn extract(
        &self,
        schema: &str,
        mapping: &str,
    ) -> Result<mm_evolution::ExtractResult, EngineError> {
        let (s, sid) = self.schema(schema)?;
        let (m, mid) = self.repo.latest_mapping(mapping)?;
        let result = mm_evolution::extract(&s, &m, mm_evolution::diff::Side::Source);
        let out = self.repo.store_schema(result.schema.name.clone(), result.schema.clone())?;
        self.repo.record("extract", vec![sid, mid], out)?;
        Ok(result)
    }

    /// Invert (§6.2): the *syntactic* inverse — swap the source/target
    /// roles of a stored mapping (not the semantic Inverse of §6.4, which
    /// is `mm_evolution::invert_views`).
    pub fn invert(&self, mapping: &str, out_name: &str) -> Result<Mapping, EngineError> {
        let (m, mid) = self.repo.latest_mapping(mapping)?;
        let inverted = m.inverted();
        let out = self.repo.store_mapping(out_name, inverted.clone())?;
        self.repo.record("invert", vec![mid], out)?;
        Ok(inverted)
    }

    /// Merge two stored schemas modulo stored correspondences (§6.3).
    pub fn merge(
        &self,
        left: &str,
        right: &str,
        corrs: &str,
    ) -> Result<mm_evolution::MergeResult, EngineError> {
        let (l, lid) = self.schema(left)?;
        let (r, rid) = self.schema(right)?;
        let (cs, cid) = self.repo.latest_correspondences(corrs)?;
        let result = mm_evolution::merge(&l, &r, &cs);
        let out = self.repo.store_schema(result.schema.name.clone(), result.schema.clone())?;
        self.repo.record("merge", vec![lid, rid, cid], out)?;
        Ok(result)
    }

    /// Data exchange: chase a source instance through a stored tgd mapping
    /// into the (stored) target schema; returns the universal instance.
    ///
    /// Runs under the engine's configured [`ExecBudget`]; a budget trip or
    /// cancellation surfaces as [`EngineError::Exec`]. The s-t chase
    /// always terminates, so no round cap applies here — see
    /// [`Self::chase_general`] for the capped general chase.
    pub fn exchange(
        &self,
        mapping: &str,
        target_schema: &str,
        source_db: &Database,
    ) -> Result<(Database, mm_chase::ChaseStats), EngineError> {
        let (m, mid) = self.repo.latest_mapping(mapping)?;
        let (t, _) = self.schema(target_schema)?;
        let tgds = Self::tgds_of(&m)?;
        let tel = &self.config.telemetry;
        let mut span = Span::enter(tel, "engine.exchange", mid.to_string());
        let program = self.chase_program(mapping, &mid, &tgds, source_db);
        let result = mm_chase::chase_st_parallel_traced(
            &t,
            &program,
            source_db,
            &self.config.budget,
            self.config.threads,
            tel,
        )
        .map_err(|f| EngineError::Exec(f.into()));
        match &result {
            Ok((db, stats)) => {
                span.field("fired", stats.fired);
                span.field("target_tuples", db.total_tuples());
            }
            Err(e) => span.field("error", e.to_string()),
        }
        self.sample_alloc();
        span.finish();
        result
    }

    /// [`Self::exchange`] metered through a caller-supplied [`Governor`]
    /// instead of the engine's configured budget. This is the server's
    /// entry point: the governor carries the request's hard deadline and
    /// publishes into the session's shared meter, so one tenant's
    /// requests are bounded collectively while the engine itself stays
    /// budget-agnostic. Plan caching, telemetry spans, and results are
    /// identical to [`Self::exchange`].
    pub fn exchange_governed(
        &self,
        mapping: &str,
        target_schema: &str,
        source_db: &Database,
        gov: &mut Governor,
    ) -> Result<(Database, mm_chase::ChaseStats), EngineError> {
        let (m, mid) = self.repo.latest_mapping(mapping)?;
        let (t, _) = self.schema(target_schema)?;
        let tgds = Self::tgds_of(&m)?;
        let tel = &self.config.telemetry;
        let mut span = Span::enter(tel, "engine.exchange", mid.to_string());
        let program = self.chase_program(mapping, &mid, &tgds, source_db);
        let result =
            mm_chase::chase_st_prepared_governed(&t, &program, source_db, gov, 1, tel)
                .map_err(|f| EngineError::Exec(f.into()));
        match &result {
            Ok((db, stats)) => {
                span.field("fired", stats.fired);
                span.field("target_tuples", db.total_tuples());
            }
            Err(e) => span.field("error", e.to_string()),
        }
        self.sample_alloc();
        span.finish();
        result
    }

    /// Answer a conjunctive query against a stored base schema through a
    /// chain of stored view sets, metered through a caller-supplied
    /// [`Governor`] (the same server-facing contract as
    /// [`Self::exchange_governed`]). Builds the mediator over the chain,
    /// plans under the governor (degrading to chained unfolding on a
    /// budget trip, never on a deadline), and evaluates the query.
    pub fn mediate_governed(
        &self,
        base_schema: &str,
        chain: &[String],
        query: &Expr,
        base_db: &Database,
        gov: &mut Governor,
    ) -> Result<mm_runtime::MediationResult, EngineError> {
        let (base, _) = self.schema(base_schema)?;
        let viewsets: Vec<ViewSet> = chain
            .iter()
            .map(|name| Ok(self.repo.latest_viewset(name)?.0))
            .collect::<Result<_, EngineError>>()?;
        let mediator = mm_runtime::Mediator::new(&base, viewsets.iter().collect())
            .with_telemetry(self.config.telemetry.clone());
        let plan = mediator.plan_governed(gov).map_err(EngineError::Exec)?;
        let result = mediator
            .answer_with_plan(&plan, query, base_db, gov)
            .map_err(EngineError::from);
        self.sample_alloc();
        result
    }

    /// Checkpoint the repository if it is durable (no-op otherwise) —
    /// the server's drain hook: called after inflight work completes so
    /// a restart recovers from the snapshot instead of replaying the
    /// session's whole WAL.
    pub fn checkpoint(&self) -> Result<(), EngineError> {
        if self.repo.is_durable() {
            self.repo.checkpoint()?;
        }
        Ok(())
    }

    // --- update propagation (DESIGN.md §14) --------------------------------

    /// Create or replace a tracked instance wholesale — the bulk-load
    /// path. However many tuples `value` carries, the write is one
    /// amortized WAL frame and one coalesced feed event; streaming
    /// subscribers on the instance flip to a (non-degradation) load
    /// resync. Returns the commit sequence.
    pub fn put_instance(&self, name: &str, value: Database) -> Result<u64, EngineError> {
        let _order = self.feed_order.lock();
        let seq = self.repo.put_instance(name, value.clone())?;
        self.propagator.publish_load(seq, name, value);
        Ok(seq)
    }

    /// Apply an insert-only batch to a tracked instance: validated and
    /// journaled as a single WAL record by the repository, then
    /// published as one coalesced feed event — subscribers see one
    /// notification per batch, not per tuple. Returns the commit
    /// sequence.
    pub fn insert_batch(
        &self,
        instance: &str,
        inserts: Vec<(String, Vec<Tuple>)>,
    ) -> Result<u64, EngineError> {
        let _order = self.feed_order.lock();
        let seq = self.repo.apply_instance_delta(instance, inserts.clone())?;
        let mut delta = Delta::new();
        for (rel, tuples) in inserts {
            for t in tuples {
                delta.insert(rel.clone(), t);
            }
        }
        self.propagator.publish_delta(seq, instance, &delta)?;
        Ok(seq)
    }

    /// A clone of a tracked instance's current committed state.
    pub fn instance(&self, name: &str) -> Option<Database> {
        self.repo.instance(name)
    }

    /// Register a continuous query over a tracked instance: the
    /// subscription is journaled WAL-first (it survives a crash), then
    /// attached to the propagator. The subscriber's first poll delivers
    /// the bootstrap snapshot. Returns the subscription id.
    pub fn subscribe(&self, instance: &str, views: ViewSet) -> Result<u64, EngineError> {
        if self.repo.instance(instance).is_none() {
            return Err(EngineError::Repository(RepositoryError::NotFound(format!(
                "instance `{instance}`"
            ))));
        }
        let (schema, _) = self.repo.latest_schema(&views.base_schema)?;
        let _order = self.feed_order.lock();
        let id = self
            .repo
            .subscriptions()
            .iter()
            .map(|s| s.id)
            .max()
            .unwrap_or(0)
            + 1;
        let sub = Subscription { id, instance: instance.to_string(), views, cursor: 0 };
        self.repo.register_subscription(sub.clone())?;
        self.propagator.subscribe(sub, schema)?;
        Ok(id)
    }

    /// Drain up to `max` pending notifications for subscriber `id` —
    /// incremental view deltas, or a single resync snapshot when the
    /// subscriber was degraded (or just subscribed/resumed off the
    /// feed).
    pub fn poll(&self, id: u64, max: usize) -> Result<PollResponse, EngineError> {
        Ok(self.propagator.poll(id, max)?)
    }

    /// Durably acknowledge everything up to `cursor` for subscriber
    /// `id`: the cursor advance is journaled (monotone), so a
    /// reconnecting client resumes from it after a crash.
    pub fn ack(&self, id: u64, cursor: u64) -> Result<(), EngineError> {
        self.repo.advance_cursor(id, cursor)?;
        self.propagator.ack(id, cursor)?;
        Ok(())
    }

    /// A client reconnected claiming it has applied everything up to
    /// `cursor` (normally its last durable ack). Streaming continues if
    /// the subscriber's queue still covers everything past the cursor;
    /// otherwise the next poll delivers a cursor-lost resync.
    pub fn resume(&self, id: u64, cursor: u64) -> Result<(), EngineError> {
        self.repo.advance_cursor(id, cursor)?;
        self.propagator.resume(id, cursor)?;
        Ok(())
    }

    /// Drop subscription `id` from the durable registry and the
    /// propagator.
    pub fn unsubscribe(&self, id: u64) -> Result<(), EngineError> {
        self.repo.drop_subscription(id)?;
        self.propagator.unsubscribe(id);
        Ok(())
    }

    /// Introspect one subscriber (queue depth, cursor, pending resync).
    pub fn subscriber_status(&self, id: u64) -> Result<SubscriberStatus, EngineError> {
        Ok(self.propagator.status(id)?)
    }

    /// [`Self::exchange`] with an EXPLAIN report: alongside the universal
    /// instance, a [`ChaseExplain`] carrying the compiled join order and
    /// per-atom selectivities of every tgd body plus the per-round chase
    /// deltas. The report is computed against the *source* instance, so
    /// two identical invocations render byte-identical text.
    pub fn explain_exchange(
        &self,
        mapping: &str,
        target_schema: &str,
        source_db: &Database,
    ) -> Result<(Database, mm_chase::ChaseStats, ChaseExplain), EngineError> {
        let (m, mid) = self.repo.latest_mapping(mapping)?;
        let (t, _) = self.schema(target_schema)?;
        let tgds = Self::tgds_of(&m)?;
        let program = self.chase_program(mapping, &mid, &tgds, source_db);
        mm_chase::chase_st_explained(
            &t,
            &program,
            source_db,
            &self.config.budget,
            self.config.threads,
            &self.config.telemetry,
        )
        .map_err(|f| EngineError::Exec(f.into()))
    }

    /// A plan-only EXPLAIN of the exchange `mapping` would run over
    /// `source_db`: the compiled (cached) join orders and per-atom
    /// cardinalities of every tgd body, with no rounds — nothing
    /// executes, so this stays cheap even when the exchange itself was
    /// pathological. The server's slow-query log attaches this to
    /// exchange-shaped requests after the fact (DESIGN.md §15);
    /// `mode=plan` distinguishes it from the executed `st`/`general`
    /// reports.
    pub fn plan_explain(&self, mapping: &str, source_db: &Database) -> Result<String, EngineError> {
        let (m, mid) = self.repo.latest_mapping(mapping)?;
        let tgds = Self::tgds_of(&m)?;
        let program = self.chase_program(mapping, &mid, &tgds, source_db);
        let explain = ChaseExplain {
            mode: "plan",
            stats: mm_chase::ChaseStats::default(),
            tgds: program.explain(source_db),
            rounds: Vec::new(),
            threads: self.config.threads.max(1),
            replans: 0,
        };
        Ok(explain.to_string())
    }

    /// Run the bounded general chase of `source_db` with a stored tgd
    /// mapping's constraints plus the key egds of `schema`. The chase may
    /// diverge, so it runs under the configured round cap
    /// ([`EngineConfig::chase_max_rounds`], default
    /// [`DEFAULT_CHASE_ROUNDS`]) and budget; divergence surfaces as
    /// [`EngineError::Exec`] with [`mm_guard::ExecError::Diverged`].
    pub fn chase_general(
        &self,
        mapping: &str,
        schema: &str,
        source_db: &Database,
    ) -> Result<(Database, mm_chase::ChaseOutcome), EngineError> {
        let (m, mid) = self.repo.latest_mapping(mapping)?;
        let (s, _) = self.schema(schema)?;
        let tgds = Self::tgds_of(&m)?;
        let egds = mm_chase::egds_from_keys(&s);
        let mut db = source_db.clone();
        let tel = &self.config.telemetry;
        let mut span = Span::enter(tel, "engine.chase_general", mid.to_string());
        let program = self.chase_program(mapping, &mid, &tgds, &db);
        let result = if self.config.cost_based_plans {
            // adaptive: at each round boundary, plans whose statistics
            // drifted past the configured ratio are re-planned mid-run
            mm_chase::chase_general_adaptive(
                &mut db,
                &program,
                &egds,
                &self.chase_budget(),
                self.config.threads,
                tel,
                self.config.replan_ratio,
            )
            .map(|(o, _)| o)
        } else {
            mm_chase::chase_general_parallel_traced(
                &mut db,
                &program,
                &egds,
                &self.chase_budget(),
                self.config.threads,
                tel,
            )
        }
        .map_err(|f| EngineError::Exec(f.into()));
        match &result {
            Ok(outcome) => span.field("outcome", outcome.to_string()),
            Err(e) => span.field("error", e.to_string()),
        }
        self.sample_alloc();
        span.finish();
        Ok((db, result?))
    }

    /// [`Self::chase_general`] with an EXPLAIN report: per-round deltas
    /// of the general-chase fixpoint plus the compiled body plans, with
    /// selectivities computed against the *pre-chase* instance so two
    /// identical invocations render byte-identical text.
    pub fn explain_chase_general(
        &self,
        mapping: &str,
        schema: &str,
        source_db: &Database,
    ) -> Result<(Database, mm_chase::ChaseOutcome, ChaseExplain), EngineError> {
        let (m, mid) = self.repo.latest_mapping(mapping)?;
        let (s, _) = self.schema(schema)?;
        let tgds = Self::tgds_of(&m)?;
        let egds = mm_chase::egds_from_keys(&s);
        let mut db = source_db.clone();
        let program = self.chase_program(mapping, &mid, &tgds, &db);
        let (outcome, explain) = if self.config.cost_based_plans {
            mm_chase::chase_general_adaptive_explained(
                &mut db,
                &program,
                &egds,
                &self.chase_budget(),
                self.config.threads,
                &self.config.telemetry,
                self.config.replan_ratio,
            )
        } else {
            mm_chase::chase_general_explained(
                &mut db,
                &program,
                &egds,
                &self.chase_budget(),
                self.config.threads,
                &self.config.telemetry,
            )
        }
        .map_err(|f| EngineError::Exec(f.into()))?;
        Ok((db, outcome, explain))
    }

    /// Serve a batch of data-exchange requests, fanning the chases
    /// across up to [`EngineConfig::threads`] workers.
    ///
    /// Semantics, request by request, are identical to calling
    /// [`Self::exchange`] sequentially with `threads = 1` — same
    /// universal instances, same labeled-null ids, same stats, results
    /// in input order — except that the whole batch is metered against
    /// **one** budget: every worker's governor is forked off a shared
    /// meter, so the configured step/row caps bound the batch's *total*
    /// work and a wall-clock deadline or [`mm_guard::CancelToken`] trip
    /// stops all workers. One request's failure (unresolvable name,
    /// budget trip) does not abort the others; each slot carries its own
    /// result.
    ///
    /// **Multi-query sharing**: requests that are *identical* — same
    /// mapping name, same target schema, same source instance (by
    /// identity) — are chased once; duplicate slots receive a clone of
    /// the representative's universal instance. The chase is
    /// deterministic, so the clone is bit-identical (same tuples, same
    /// labeled-null ids, same stats) to re-running it; the only
    /// observable difference is that shared slots do not re-consume the
    /// batch budget. Shared slots are counted in the
    /// `mqo_shared_plans` metric and the batch span's `mqo_shared`
    /// field.
    pub fn exchange_batch(
        &self,
        requests: &[ExchangeRequest<'_>],
    ) -> Vec<Result<(Database, mm_chase::ChaseStats), EngineError>> {
        let tel = &self.config.telemetry;
        let mut span = Span::enter(tel, "engine.exchange_batch", requests.len().to_string());
        // multi-query sharing: map every request to the first identical
        // one (itself when unique). Source instances compare by identity
        // — a pointer, not a deep compare — so the dedup scan is O(n).
        let rep: Vec<usize> = {
            let mut seen: std::collections::HashMap<(usize, &str, &str), usize> =
                std::collections::HashMap::new();
            requests
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let key =
                        (r.source_db as *const Database as usize, r.mapping, r.target_schema);
                    *seen.entry(key).or_insert(i)
                })
                .collect()
        };
        let shared = rep.iter().enumerate().filter(|&(i, &r)| r != i).count() as u64;
        // Resolve names and compile/fetch plans up front on the calling
        // thread: repository and plan-cache access stays out of the
        // workers, which then run pure chases over shared-`Arc` plans.
        let resolved: Vec<Result<(Schema, Arc<ChaseProgram>), EngineError>> = requests
            .iter()
            .map(|r| {
                let (m, mid) = self.repo.latest_mapping(r.mapping)?;
                let (t, _) = self.schema(r.target_schema)?;
                let tgds = Self::tgds_of(&m)?;
                let program = self.chase_program(r.mapping, &mid, &tgds, r.source_db);
                Ok((t, program))
            })
            .collect();
        let lead = Governor::new(&self.config.budget);
        let (_, govs) = lead.fork_shared(requests.len());
        let govs: Vec<Mutex<Governor>> = govs.into_iter().map(Mutex::new).collect();
        let (pooled, run) = mm_parallel::map_indexed(
            self.config.threads,
            requests.len(),
            |i, _ctx| -> Result<_, std::convert::Infallible> {
                if rep[i] != i {
                    // duplicate of an earlier identical request: its slot
                    // is filled by sharing after the pool joins
                    return Ok(None);
                }
                let Ok((schema, program)) = &resolved[i] else {
                    // resolve error: the slot is filled from `resolved`
                    // after the pool joins
                    return Ok(None);
                };
                let mut gov = govs[i].lock();
                Ok(Some(
                    mm_chase::chase_st_prepared_governed(
                        schema,
                        program,
                        requests[i].source_db,
                        &mut gov,
                        1,
                        tel,
                    )
                    .map_err(|f| EngineError::Exec(f.into())),
                ))
            },
        );
        span.field("threads", self.config.threads);
        if shared > 0 {
            span.field("mqo_shared", shared);
            tel.count(Counter::MqoSharedPlans, shared);
        }
        span.field("parallel.workers", run.workers);
        span.field("parallel.steals", run.steals);
        span.field("parallel.tasks", run.tasks);
        if let Some(m) = tel.metrics() {
            m.add(Counter::ParallelWorkers, run.workers as u64);
            m.add(Counter::ParallelSteals, run.steals);
            m.add(Counter::ParallelTasks, run.tasks);
        }
        self.sample_alloc();
        span.finish();
        let pooled = match pooled {
            Ok(v) => v,
            Err(never) => match never {},
        };
        let mut out: Vec<Result<(Database, mm_chase::ChaseStats), EngineError>> =
            Vec::with_capacity(requests.len());
        for (i, (slot, res)) in pooled.into_iter().zip(resolved).enumerate() {
            if rep[i] != i {
                // shared slot: resolve errors stay the slot's own; a
                // resolved duplicate clones its representative's result
                // (chase failures are Exec and clone; the representative
                // cannot have failed resolution when the duplicate — the
                // same inputs — resolved)
                out.push(match res {
                    Err(e) => Err(e),
                    Ok(_) => match &out[rep[i]] {
                        Ok((db, stats)) => Ok((db.clone(), *stats)),
                        Err(EngineError::Exec(e)) => Err(EngineError::Exec(e.clone())),
                        Err(_) => Err(EngineError::Exec(mm_guard::ExecError::internal(
                            "exchange_batch shared slot lost its representative's result",
                        ))),
                    },
                });
                continue;
            }
            out.push(match (slot, res) {
                (Some(outcome), Ok(_)) => outcome,
                (None, Err(e)) => Err(e),
                // a resolved request always produces Some, and a failed
                // resolve always produces None — unreachable by
                // construction, surfaced as an internal error not a panic
                (Some(_), Err(e)) => Err(e),
                (None, Ok(_)) => Err(EngineError::Exec(mm_guard::ExecError::internal(
                    "exchange_batch worker produced no result for a resolved request",
                ))),
            });
        }
        out
    }
}

/// One request in an [`Engine::exchange_batch`] call: the same triple
/// [`Engine::exchange`] takes.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeRequest<'a> {
    /// Stored mapping name (latest version is used).
    pub mapping: &'a str,
    /// Stored target-schema name.
    pub target_schema: &'a str,
    /// Source instance to chase.
    pub source_db: &'a Database,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_expr::{Expr, MappingConstraint};
    use mm_instance::Value;
    use mm_metamodel::{DataType, SchemaBuilder};

    fn er() -> Schema {
        SchemaBuilder::new("ER")
            .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .entity_sub("Employee", "Person", &[("Dept", DataType::Text)])
            .key("Person", &["Id"])
            .build()
            .unwrap()
    }

    #[test]
    fn modelgen_then_transgen_end_to_end() {
        let engine = Engine::new();
        engine.add_schema(er()).unwrap();
        let gen = engine
            .modelgen_er_to_relational("ER", InheritanceStrategy::Vertical)
            .unwrap();
        assert_eq!(gen.schema.name, "ER_rel");
        let (qv, uv) = engine.transgen("ER", "ER_rel", "ER->ER_rel").unwrap();
        assert_eq!(qv.len(), 2); // Person + Employee entity sets
        assert_eq!(uv.len(), 2); // Person + Employee tables

        // lineage: the qviews trace back to the ER schema
        let (_, qid) = engine.repo.latest_viewset("ER->ER_rel.qviews").unwrap();
        let up = engine.repo.upstream(&qid);
        assert!(up.iter().any(|a| a.name.name == "ER"));
    }

    #[test]
    fn match_records_lineage() {
        let engine = Engine::new();
        engine.add_schema(er()).unwrap();
        let rel = SchemaBuilder::new("SQL")
            .relation("HR", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .build()
            .unwrap();
        engine.add_schema(rel).unwrap();
        let (cs, cid) = engine
            .match_schemas("ER", "SQL", &MatchConfig::default())
            .unwrap();
        assert!(!cs.is_empty());
        let up = engine.repo.upstream(&cid);
        assert_eq!(up.len(), 2);
    }

    #[test]
    fn match_with_memory_boosts_confirmed_history() {
        use mm_expr::{Correspondence, PathRef};
        let engine = Engine::new();
        let s = SchemaBuilder::new("S")
            .relation("Empl", &[("dob", DataType::Date)])
            .build()
            .unwrap();
        let t = SchemaBuilder::new("T")
            .relation("Staff", &[("document", DataType::Date), ("geboortedatum", DataType::Date)])
            .build()
            .unwrap();
        engine.add_schema(s).unwrap();
        engine.add_schema(t).unwrap();
        // a previously confirmed (confidence 1.0) pair from another project
        let mut history = CorrespondenceSet::new("Old1", "Old2");
        history.push(Correspondence::new(
            PathRef::attr("X", "dob"),
            PathRef::attr("Y", "geboortedatum"),
            1.0,
        ));
        engine.repo.store_correspondences("history", history).unwrap();
        let cfg = MatchConfig { threshold: 0.0, top_k: 5, ..Default::default() };
        let (cs, _) = engine.match_schemas_with_memory("S", "T", &cfg).unwrap();
        let top = cs.candidates_for(&PathRef::attr("Empl", "dob"));
        assert_eq!(top[0].target, PathRef::attr("Staff", "geboortedatum"));
    }

    #[test]
    fn exchange_requires_tgds() {
        let engine = Engine::new();
        let s = SchemaBuilder::new("S")
            .relation("R", &[("a", DataType::Int)])
            .build()
            .unwrap();
        let t = SchemaBuilder::new("T")
            .relation("U", &[("a", DataType::Int)])
            .build()
            .unwrap();
        engine.add_schema(s.clone()).unwrap();
        engine.add_schema(t).unwrap();
        engine.add_mapping(
            "bad",
            Mapping::with_constraints("S", "T", vec![MappingConstraint::ExprEq {
                source: Expr::base("R"),
                target: Expr::base("U"),
            }]),
        )
        .unwrap();
        let db = Database::empty_of(&s);
        assert!(engine.exchange("bad", "T", &db).is_err());

        let mut good = Mapping::new("S", "T");
        good.push_tgd(mm_expr::Tgd::new(
            vec![mm_expr::Atom::vars("R", &["x"])],
            vec![mm_expr::Atom::vars("U", &["x"])],
        ));
        engine.add_mapping("good", good).unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("R", mm_instance::Tuple::from([Value::Int(1)]));
        let (out, stats) = engine.exchange("good", "T", &db).unwrap();
        assert_eq!(out.relation("U").unwrap().len(), 1);
        assert_eq!(stats.fired, 1);
    }

    #[test]
    fn plan_cache_reuses_per_mapping_version_and_can_be_disabled() {
        let copy_mapping = || {
            let mut m = Mapping::new("S", "T");
            m.push_tgd(mm_expr::Tgd::new(
                vec![mm_expr::Atom::vars("R", &["x"])],
                vec![mm_expr::Atom::vars("U", &["x"])],
            ));
            m
        };
        let schemas = |engine: &Engine| {
            let s = SchemaBuilder::new("S")
                .relation("R", &[("a", DataType::Int)])
                .build()
                .unwrap();
            let t = SchemaBuilder::new("T")
                .relation("U", &[("a", DataType::Int)])
                .build()
                .unwrap();
            engine.add_schema(s.clone()).unwrap();
            engine.add_schema(t).unwrap();
            s
        };

        let engine = Engine::new();
        let s = schemas(&engine);
        engine.add_mapping("m", copy_mapping()).unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("R", mm_instance::Tuple::from([Value::Int(1)]));

        let (out1, _) = engine.exchange("m", "T", &db).unwrap();
        assert_eq!(engine.cached_chase_plans(), 1);
        let (out2, _) = engine.exchange("m", "T", &db).unwrap();
        assert_eq!(engine.cached_chase_plans(), 1); // reused, not recompiled
        assert_eq!(out1, out2);

        // a new stored version under the same name *replaces* the cached
        // plan (stale-entry eviction), it does not accumulate
        engine.add_mapping("m", copy_mapping()).unwrap();
        engine.exchange("m", "T", &db).unwrap();
        assert_eq!(engine.cached_chase_plans(), 1);

        // the general chase shares the same cache keyspace (it chases
        // in place, so its db carries both source and target relations)
        let both = SchemaBuilder::new("ST")
            .relation("R", &[("a", DataType::Int)])
            .relation("U", &[("a", DataType::Int)])
            .build()
            .unwrap();
        let mut gdb = Database::empty_of(&both);
        gdb.insert("R", mm_instance::Tuple::from([Value::Int(1)]));
        engine.chase_general("m", "T", &gdb).unwrap();
        assert_eq!(engine.cached_chase_plans(), 1);
        assert_eq!(
            engine.cached_chase_plan_shards().iter().sum::<usize>(),
            engine.cached_chase_plans()
        );

        // and the knob disables caching entirely
        let uncached =
            Engine::with_config(EngineConfig { cache_plans: false, ..Default::default() })
                .unwrap();
        let s = schemas(&uncached);
        uncached.add_mapping("m", copy_mapping()).unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("R", mm_instance::Tuple::from([Value::Int(1)]));
        let (out3, _) = uncached.exchange("m", "T", &db).unwrap();
        assert_eq!(uncached.cached_chase_plans(), 0);
        assert_eq!(out1, out3);
    }

    #[test]
    fn stale_statistics_invalidate_and_replan_the_cached_plan() {
        // A plan compiled while Tiny was tiny and Big was big must be
        // detected as misestimated once the instance drifts the other
        // way: the cached entry is invalidated, recompiled against live
        // statistics (counted as one misestimate + one re-plan), and the
        // corrected join order shows up in EXPLAIN — with results
        // bit-identical throughout.
        let tel = Telemetry::new(mm_telemetry::RingCollector::with_capacity(256));
        let engine = Engine::with_config(EngineConfig {
            telemetry: tel.clone(),
            threads: 1,
            ..Default::default()
        })
        .unwrap();
        let s = SchemaBuilder::new("S")
            .relation("Big", &[("a", DataType::Int), ("b", DataType::Int)])
            .relation("Tiny", &[("a", DataType::Int)])
            .build()
            .unwrap();
        let t = SchemaBuilder::new("T")
            .relation("U", &[("a", DataType::Int), ("b", DataType::Int)])
            .build()
            .unwrap();
        engine.add_schema(s.clone()).unwrap();
        engine.add_schema(t).unwrap();
        let mut m = Mapping::new("S", "T");
        m.push_tgd(mm_expr::Tgd::new(
            vec![mm_expr::Atom::vars("Big", &["x", "y"]), mm_expr::Atom::vars("Tiny", &["x"])],
            vec![mm_expr::Atom::vars("U", &["x", "y"])],
        ));
        engine.add_mapping("m", m).unwrap();

        let mut db1 = Database::empty_of(&s);
        for i in 0..40 {
            db1.insert("Big", mm_instance::Tuple::from([Value::Int(i), Value::Int(i)]));
        }
        for i in 0..2 {
            db1.insert("Tiny", mm_instance::Tuple::from([Value::Int(i)]));
        }
        engine.exchange("m", "T", &db1).unwrap();
        assert_eq!(engine.cached_chase_plans(), 1);
        let (_, _, ex1) = engine.explain_exchange("m", "T", &db1).unwrap();
        assert_eq!(ex1.tgds[0].body.join_order, ["Tiny", "Big"]);
        assert_eq!(tel.metrics().unwrap().snapshot().value("plan_replans"), 0);

        // drifted instance: Big shrank, Tiny grew — both past the ratio
        let mut db2 = Database::empty_of(&s);
        for i in 0..2 {
            db2.insert("Big", mm_instance::Tuple::from([Value::Int(i), Value::Int(i)]));
        }
        for i in 0..100 {
            db2.insert("Tiny", mm_instance::Tuple::from([Value::Int(i)]));
        }
        let (out, _) = engine.exchange("m", "T", &db2).unwrap();
        let snap = tel.metrics().unwrap().snapshot();
        assert_eq!(snap.value("plan_misestimates"), 1);
        assert_eq!(snap.value("plan_replans"), 1);
        assert_eq!(engine.cached_chase_plans(), 1, "invalidate then reinsert, no growth");
        let (_, _, ex2) = engine.explain_exchange("m", "T", &db2).unwrap();
        assert_eq!(ex2.tgds[0].body.join_order, ["Big", "Tiny"], "order corrected");
        // the corrected plan fits current statistics: no further re-plan
        assert_eq!(tel.metrics().unwrap().snapshot().value("plan_replans"), 1);

        // bit-identity against a greedy (non-cost-based) engine
        let greedy = Engine::with_config(EngineConfig {
            cost_based_plans: false,
            threads: 1,
            ..Default::default()
        })
        .unwrap();
        greedy.add_schema(s).unwrap();
        greedy.add_schema(
            SchemaBuilder::new("T")
                .relation("U", &[("a", DataType::Int), ("b", DataType::Int)])
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut m2 = Mapping::new("S", "T");
        m2.push_tgd(mm_expr::Tgd::new(
            vec![mm_expr::Atom::vars("Big", &["x", "y"]), mm_expr::Atom::vars("Tiny", &["x"])],
            vec![mm_expr::Atom::vars("U", &["x", "y"])],
        ));
        greedy.add_mapping("m", m2).unwrap();
        let (ref_out, _) = greedy.exchange("m", "T", &db2).unwrap();
        assert_eq!(out, ref_out);
    }

    #[test]
    fn replacing_a_mapping_never_serves_the_stale_plan() {
        // v1 copies R into U; v2 copies R into V. After the replacement
        // an exchange must produce v2's output — a stale cached plan for
        // the name "m" would silently keep filling U.
        let engine = Engine::new();
        let s = SchemaBuilder::new("S")
            .relation("R", &[("a", DataType::Int)])
            .build()
            .unwrap();
        let t = SchemaBuilder::new("T")
            .relation("U", &[("a", DataType::Int)])
            .relation("V", &[("a", DataType::Int)])
            .build()
            .unwrap();
        engine.add_schema(s.clone()).unwrap();
        engine.add_schema(t).unwrap();
        let mapping_to = |rel: &str| {
            let mut m = Mapping::new("S", "T");
            m.push_tgd(mm_expr::Tgd::new(
                vec![mm_expr::Atom::vars("R", &["x"])],
                vec![mm_expr::Atom::vars(rel, &["x"])],
            ));
            m
        };
        let mut db = Database::empty_of(&s);
        db.insert("R", mm_instance::Tuple::from([Value::Int(7)]));

        engine.add_mapping("m", mapping_to("U")).unwrap();
        let (out1, _) = engine.exchange("m", "T", &db).unwrap();
        assert_eq!(out1.relation("U").unwrap().len(), 1);

        engine.add_mapping("m", mapping_to("V")).unwrap();
        let (out2, _) = engine.exchange("m", "T", &db).unwrap();
        assert_eq!(out2.relation("U").unwrap().len(), 0, "stale v1 plan served");
        assert_eq!(out2.relation("V").unwrap().len(), 1);
        assert_eq!(engine.cached_chase_plans(), 1);
    }

    #[test]
    fn exchange_batch_shares_identical_requests_bit_identically() {
        // three identical requests plus one distinct: the identical ones
        // chase once (two shared slots counted), and every slot still
        // matches its sequential exchange — tuples and labeled-null ids.
        let tel = Telemetry::new(mm_telemetry::RingCollector::with_capacity(256));
        let engine = Engine::with_config(EngineConfig {
            telemetry: tel.clone(),
            ..Default::default()
        })
        .unwrap();
        let s = SchemaBuilder::new("S")
            .relation("R", &[("a", DataType::Int)])
            .build()
            .unwrap();
        let t = SchemaBuilder::new("T")
            .relation("U", &[("a", DataType::Int), ("w", DataType::Any)])
            .build()
            .unwrap();
        engine.add_schema(s.clone()).unwrap();
        engine.add_schema(t).unwrap();
        let mut m = Mapping::new("S", "T");
        // existential head: shared slots must reproduce null ids exactly
        m.push_tgd(mm_expr::Tgd::new(
            vec![mm_expr::Atom::vars("R", &["x"])],
            vec![mm_expr::Atom::vars("U", &["x", "w"])],
        ));
        engine.add_mapping("m", m).unwrap();
        let mut db_a = Database::empty_of(&s);
        let mut db_b = Database::empty_of(&s);
        for i in 0..5 {
            db_a.insert("R", mm_instance::Tuple::from([Value::Int(i)]));
            db_b.insert("R", mm_instance::Tuple::from([Value::Int(100 + i)]));
        }
        let req = |db| ExchangeRequest { mapping: "m", target_schema: "T", source_db: db };
        let results =
            engine.exchange_batch(&[req(&db_a), req(&db_a), req(&db_b), req(&db_a)]);
        assert_eq!(tel.metrics().unwrap().snapshot().value("mqo_shared_plans"), 2);
        let (seq_a, stats_a) = engine.exchange("m", "T", &db_a).unwrap();
        let (seq_b, stats_b) = engine.exchange("m", "T", &db_b).unwrap();
        let expect = [(&seq_a, stats_a), (&seq_a, stats_a), (&seq_b, stats_b), (&seq_a, stats_a)];
        for (got, (db, stats)) in results.iter().zip(expect) {
            let (gdb, gstats) = got.as_ref().unwrap();
            assert_eq!(gdb, db);
            assert_eq!(*gstats, stats);
        }
    }

    #[test]
    fn exchange_batch_matches_sequential_exchange() {
        let engine = Engine::new();
        let s = SchemaBuilder::new("S")
            .relation("R", &[("a", DataType::Int)])
            .build()
            .unwrap();
        let t = SchemaBuilder::new("T")
            .relation("U", &[("a", DataType::Int), ("w", DataType::Any)])
            .build()
            .unwrap();
        engine.add_schema(s.clone()).unwrap();
        engine.add_schema(t).unwrap();
        let mut m = Mapping::new("S", "T");
        // existential head: null ids must match the sequential runs too
        m.push_tgd(mm_expr::Tgd::new(
            vec![mm_expr::Atom::vars("R", &["x"])],
            vec![mm_expr::Atom::vars("U", &["x", "w"])],
        ));
        engine.add_mapping("m", m).unwrap();
        let dbs: Vec<Database> = (0..6)
            .map(|k| {
                let mut db = Database::empty_of(&s);
                for i in 0..=k {
                    db.insert("R", mm_instance::Tuple::from([Value::Int(i as i64)]));
                }
                db
            })
            .collect();
        let sequential: Vec<_> =
            dbs.iter().map(|db| engine.exchange("m", "T", db).unwrap()).collect();
        for threads in [1, 2, 4, 8] {
            let batch_engine = Engine::with_config(EngineConfig {
                threads,
                ..EngineConfig::default()
            })
            .unwrap();
            batch_engine.add_schema(s.clone()).unwrap();
            batch_engine
                .add_schema(engine.repo.latest_schema("T").unwrap().0)
                .unwrap();
            let mut m = Mapping::new("S", "T");
            m.push_tgd(mm_expr::Tgd::new(
                vec![mm_expr::Atom::vars("R", &["x"])],
                vec![mm_expr::Atom::vars("U", &["x", "w"])],
            ));
            batch_engine.add_mapping("m", m).unwrap();
            let requests: Vec<ExchangeRequest<'_>> = dbs
                .iter()
                .map(|db| ExchangeRequest { mapping: "m", target_schema: "T", source_db: db })
                .collect();
            let results = batch_engine.exchange_batch(&requests);
            assert_eq!(results.len(), sequential.len());
            for (i, (got, want)) in results.into_iter().zip(&sequential).enumerate() {
                let got = got.unwrap();
                assert_eq!(&got, want, "request {i} at threads={threads}");
            }
        }
    }

    #[test]
    fn exchange_batch_reports_per_request_errors() {
        let engine = Engine::new();
        let s = SchemaBuilder::new("S")
            .relation("R", &[("a", DataType::Int)])
            .build()
            .unwrap();
        let t = SchemaBuilder::new("T")
            .relation("U", &[("a", DataType::Int)])
            .build()
            .unwrap();
        engine.add_schema(s.clone()).unwrap();
        engine.add_schema(t).unwrap();
        let mut m = Mapping::new("S", "T");
        m.push_tgd(mm_expr::Tgd::new(
            vec![mm_expr::Atom::vars("R", &["x"])],
            vec![mm_expr::Atom::vars("U", &["x"])],
        ));
        engine.add_mapping("m", m).unwrap();
        let mut db = Database::empty_of(&s);
        db.insert("R", mm_instance::Tuple::from([Value::Int(1)]));
        let requests = [
            ExchangeRequest { mapping: "m", target_schema: "T", source_db: &db },
            ExchangeRequest { mapping: "no_such_mapping", target_schema: "T", source_db: &db },
            ExchangeRequest { mapping: "m", target_schema: "T", source_db: &db },
        ];
        let results = engine.exchange_batch(&requests);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(EngineError::Repository(_))), "{:?}", results[1]);
        assert!(results[2].is_ok(), "one bad request must not poison the rest");
    }

    #[test]
    fn invert_swaps_roles_and_records_lineage() {
        let engine = Engine::new();
        engine.add_mapping(
            "m",
            Mapping::with_constraints("S", "T", vec![MappingConstraint::ExprEq {
                source: Expr::base("A"),
                target: Expr::base("B"),
            }]),
        )
        .unwrap();
        let inv = engine.invert("m", "m_inv").unwrap();
        assert_eq!(inv.source_schema, "T");
        assert_eq!(inv.target_schema, "S");
        let (_, id) = engine.repo.latest_mapping("m_inv").unwrap();
        assert_eq!(engine.repo.upstream(&id).len(), 1);
    }

    #[test]
    fn compose_stored_viewsets() {
        use mm_expr::ViewDef;
        let engine = Engine::new();
        let mut ab = ViewSet::new("A", "B");
        ab.push(ViewDef::new("B1", Expr::base("A1").project(&["x", "y"])));
        let mut bc = ViewSet::new("B", "C");
        bc.push(ViewDef::new("C1", Expr::base("B1").project(&["x"])));
        engine.add_viewset("ab", ab).unwrap();
        engine.add_viewset("bc", bc).unwrap();
        let composed = engine.compose("ab", "bc", "ac").unwrap();
        assert_eq!(composed.view("C1").unwrap().expr, Expr::base("A1").project(&["x"]));
        assert_eq!(engine.repo.viewset_versions("ac"), 1);
    }

    #[test]
    fn diff_extract_merge_via_engine() {
        let engine = Engine::new();
        let s = SchemaBuilder::new("S")
            .relation("Empl", &[("EID", DataType::Int), ("Name", DataType::Text), ("Tel", DataType::Text)])
            .key("Empl", &["EID"])
            .build()
            .unwrap();
        engine.add_schema(s).unwrap();
        engine.add_mapping(
            "m",
            Mapping::with_constraints("S", "T", vec![MappingConstraint::ExprEq {
                source: Expr::base("Empl").project(&["EID", "Name"]),
                target: Expr::base("Staff"),
            }]),
        )
        .unwrap();
        let e = engine.extract("S", "m").unwrap();
        assert_eq!(
            e.schema.element("Empl").unwrap().attributes.len(),
            2 // EID, Name
        );
        let d = engine.diff("S", "m").unwrap();
        let names: Vec<&str> = d.schema.element("Empl").unwrap().attribute_names().collect();
        assert_eq!(names, ["EID", "Tel"]);

        // merge the diff back with the extract: full coverage again
        let mut cs = CorrespondenceSet::new(e.schema.name.clone(), d.schema.name.clone());
        cs.push(mm_expr::Correspondence::new(
            mm_expr::PathRef::element("Empl"),
            mm_expr::PathRef::element("Empl"),
            1.0,
        ));
        cs.push(mm_expr::Correspondence::new(
            mm_expr::PathRef::attr("Empl", "EID"),
            mm_expr::PathRef::attr("Empl", "EID"),
            1.0,
        ));
        engine.add_schema(e.schema.clone()).unwrap();
        engine.add_schema(d.schema.clone()).unwrap();
        let cid = engine.repo.store_correspondences("ed", cs).unwrap();
        let _ = cid;
        let m = engine.merge(&e.schema.name, &d.schema.name, "ed").unwrap();
        let names: Vec<&str> = m.schema.element("Empl").unwrap().attribute_names().collect();
        assert_eq!(names, ["EID", "Name", "Tel"]);
    }

    #[test]
    fn fragments_parse_from_engine_generated_mapping() {
        // the modelgen-produced mapping is in TransGen's language — the
        // "common metamodel and expressive mapping language" the paper's
        // conclusion calls for
        let engine = Engine::new();
        engine.add_schema(er()).unwrap();
        let gen = engine
            .modelgen_er_to_relational("ER", InheritanceStrategy::Horizontal)
            .unwrap();
        let er_schema = engine.repo.latest_schema("ER").unwrap().0;
        let frags =
            mm_transgen::parse_fragments(&er_schema, &gen.schema, &gen.mapping).unwrap();
        assert_eq!(frags.len(), 2);
        let gaps = mm_transgen::check_coverage(&er_schema, &frags);
        assert!(gaps.is_empty(), "{gaps:?}");
    }
}
