//! A Rondo-style scripting language over the engine.
//!
//! The original model-management implementation, Rondo, was "a
//! programming platform for generic model management" (§1.3): operator
//! invocations composed into scripts. This module gives the engine that
//! surface — a small line-oriented language whose statements are operator
//! calls against the repository, so a whole evolution or integration
//! scenario is a text file:
//!
//! ```text
//! schema ER {
//!   entity Person(Id: int, Name: text)
//!   entity Employee : Person(Dept: text)
//!   key Person(Id)
//! }
//! modelgen vertical ER
//! transgen ER ER_rel ER->ER_rel
//! match ER ER_rel
//! extract ER ER->ER_rel
//! diff ER ER->ER_rel
//! show lineage
//! ```
//!
//! Every statement records lineage via the engine; `run_script` returns
//! the printable log.

use crate::engine::{Engine, EngineError};
use mm_metamodel::parse_schema;
use mm_modelgen::InheritanceStrategy;
use std::fmt;

/// A script failure with its (1-based) line number.
#[derive(Debug)]
pub struct ScriptError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "script line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

fn err(line: usize, message: impl Into<String>) -> ScriptError {
    ScriptError { line, message: message.into() }
}

fn op_err(line: usize, e: EngineError) -> ScriptError {
    err(line, e.to_string())
}

/// Execute a script against `engine`, returning one log line per
/// statement.
///
/// The whole script runs as **one repository transaction**: a failure at
/// any statement (parse error, unknown command, operator error) rolls
/// the repository back to its pre-script state — no partial artifacts,
/// no partial lineage — and a successful script commits exactly its
/// writes. On a durable repository the commit lands as a single WAL
/// batch frame, so a crash mid-script is indistinguishable from the
/// script never having run.
pub fn run_script(engine: &Engine, script: &str) -> Result<Vec<String>, ScriptError> {
    engine
        .repo
        .begin()
        .map_err(|e| err(0, format!("begin transaction: {e}")))?;
    match run_statements(engine, script) {
        Ok(log) => {
            engine
                .repo
                .commit()
                .map_err(|e| err(0, format!("commit transaction: {e}")))?;
            Ok(log)
        }
        Err(e) => {
            // rollback can only fail if no transaction is open, and ours is
            let _ = engine.repo.rollback();
            Err(e)
        }
    }
}

fn run_statements(engine: &Engine, script: &str) -> Result<Vec<String>, ScriptError> {
    let mut log = Vec::new();
    let lines: Vec<(usize, &str)> =
        script.lines().enumerate().map(|(i, l)| (i + 1, l)).collect();
    let mut i = 0usize;
    while i < lines.len() {
        let (no, raw) = lines[i];
        let line = raw.trim();
        i += 1;
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        if line.starts_with("schema ") && line.ends_with('{') {
            // collect the block through the closing brace
            let mut block = String::from(line);
            block.push('\n');
            let mut closed = false;
            while i < lines.len() {
                let (_, braw) = lines[i];
                block.push_str(braw);
                block.push('\n');
                i += 1;
                if braw.trim() == "}" {
                    closed = true;
                    break;
                }
            }
            if !closed {
                return Err(err(no, "unterminated schema block"));
            }
            let schema =
                parse_schema(&block).map_err(|e| err(no + e.line - 1, e.message))?;
            let id = engine.add_schema(schema).map_err(|e| op_err(no, e))?;
            log.push(format!("schema {id}"));
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else { continue };
        let args: Vec<&str> = parts.collect();
        match (cmd, args.as_slice()) {
            ("match", [source, target]) => {
                let (cs, id) = engine
                    .match_schemas(source, target, &mm_match::MatchConfig::default())
                    .map_err(|e| op_err(no, e))?;
                log.push(format!("match {id}: {} correspondences", cs.len()));
            }
            ("match+memory", [source, target]) => {
                let (cs, id) = engine
                    .match_schemas_with_memory(
                        source,
                        target,
                        &mm_match::MatchConfig::default(),
                    )
                    .map_err(|e| op_err(no, e))?;
                log.push(format!("match+memory {id}: {} correspondences", cs.len()));
            }
            ("modelgen", [strategy, er]) => {
                let strategy = match *strategy {
                    "vertical" => InheritanceStrategy::Vertical,
                    "horizontal" => InheritanceStrategy::Horizontal,
                    "flat" => InheritanceStrategy::Flat,
                    other => return Err(err(no, format!("unknown strategy `{other}`"))),
                };
                let gen = engine
                    .modelgen_er_to_relational(er, strategy)
                    .map_err(|e| op_err(no, e))?;
                log.push(format!(
                    "modelgen[{strategy}] {er} -> {} ({} constraints)",
                    gen.schema.name,
                    gen.mapping.len()
                ));
            }
            ("transgen", [er, rel, mapping]) => {
                let (qv, uv) =
                    engine.transgen(er, rel, mapping).map_err(|e| op_err(no, e))?;
                log.push(format!(
                    "transgen {mapping}: {} query views, {} update views",
                    qv.len(),
                    uv.len()
                ));
            }
            ("compose", [first, second, out]) => {
                let composed =
                    engine.compose(first, second, out).map_err(|e| op_err(no, e))?;
                log.push(format!("compose {first} . {second} -> {out} ({} views)", composed.len()));
            }
            ("extract", [schema, mapping]) => {
                let r = engine.extract(schema, mapping).map_err(|e| op_err(no, e))?;
                log.push(format!(
                    "extract {schema} via {mapping} -> {} ({} elements)",
                    r.schema.name,
                    r.schema.len()
                ));
            }
            ("diff", [schema, mapping]) => {
                let r = engine.diff(schema, mapping).map_err(|e| op_err(no, e))?;
                log.push(format!(
                    "diff {schema} via {mapping} -> {} ({} elements)",
                    r.schema.name,
                    r.schema.len()
                ));
            }
            ("invert", [mapping, out]) => {
                let inv = engine.invert(mapping, out).map_err(|e| op_err(no, e))?;
                log.push(format!(
                    "invert {mapping} -> {out} ({} -> {})",
                    inv.source_schema, inv.target_schema
                ));
            }
            ("merge", [left, right, corrs]) => {
                let r = engine.merge(left, right, corrs).map_err(|e| op_err(no, e))?;
                log.push(format!(
                    "merge {left} + {right} -> {} ({} elements)",
                    r.schema.name,
                    r.schema.len()
                ));
            }
            ("show", ["lineage"]) => {
                for edge in engine.repo.lineage() {
                    let ins: Vec<String> =
                        edge.inputs.iter().map(|a| a.to_string()).collect();
                    log.push(format!(
                        "  {}({}) -> {}",
                        edge.operator,
                        ins.join(", "),
                        edge.output
                    ));
                }
            }
            ("show", [kind, name]) if *kind == "schema" => {
                let (s, _) = engine
                    .repo
                    .latest_schema(name)
                    .map_err(|e| op_err(no, EngineError::Repository(e)))?;
                log.push(s.to_string());
            }
            (cmd, _) => {
                return Err(err(no, format!("unknown or malformed statement `{cmd}`")))
            }
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = r#"
// the paper's running example, as a Rondo-style script
schema ER {
  entity Person(Id: int, Name: text)
  entity Employee : Person(Dept: text)
  entity Customer : Person(CreditScore: int)
  key Person(Id)
}
modelgen vertical ER
transgen ER ER_rel ER->ER_rel
match ER ER_rel
extract ER ER->ER_rel
diff ER ER->ER_rel
show lineage
"#;

    #[test]
    fn full_script_runs_and_logs_each_operator() {
        let engine = Engine::new();
        let log = run_script(&engine, SCRIPT).unwrap();
        assert!(log.iter().any(|l| l.starts_with("schema ")));
        assert!(log.iter().any(|l| l.contains("modelgen[vertical]")));
        assert!(log.iter().any(|l| l.contains("query views")));
        assert!(log.iter().any(|l| l.starts_with("match ")));
        // lineage shows the transgen edges
        assert!(log.iter().any(|l| l.contains("transgen.query")));
        // repository now holds the artifacts
        assert_eq!(engine.repo.schema_versions("ER"), 1);
        assert_eq!(engine.repo.mapping_versions("ER->ER_rel"), 1);
    }

    #[test]
    fn schema_block_errors_carry_absolute_line_numbers() {
        let bad = "\nschema X {\n  table T(a: varchar)\n}\n";
        let engine = Engine::new();
        let e = run_script(&engine, bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown type"));
    }

    #[test]
    fn unknown_statement_reports_line() {
        let engine = Engine::new();
        let e = run_script(&engine, "frobnicate A B").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn missing_artifact_is_an_operator_error() {
        let engine = Engine::new();
        let e = run_script(&engine, "transgen A B C").unwrap_err();
        assert!(e.message.contains("not found"));
    }

    #[test]
    fn unterminated_schema_block_rejected() {
        let engine = Engine::new();
        let e = run_script(&engine, "schema X {\n  table T(a: int)\n").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn merge_via_script() {
        let engine = Engine::new();
        let script = r#"
schema L {
  table Empl(EID: int, Name: text)
}
schema R {
  table Staff(SID: int, Name: text)
}
match L R
merge L R L~R
"#;
        let log = run_script(&engine, script).unwrap();
        assert!(log.iter().any(|l| l.starts_with("merge ")));
        assert!(engine.repo.latest_schema("L+R").is_ok());
    }

    #[test]
    fn failing_script_rolls_back_completely() {
        let engine = Engine::new();
        run_script(&engine, "schema Base {\n  table T(a: int)\n}").unwrap();
        let schemas = engine.repo.schema_names();
        let mappings = engine.repo.mapping_names();
        let lineage = engine.repo.lineage().len();
        let state = engine.repo.state_bytes();

        // several statements succeed, then operator k fails
        let bad = r#"
schema ER {
  entity Person(Id: int, Name: text)
  key Person(Id)
}
modelgen vertical ER
frobnicate X Y
"#;
        let e = run_script(&engine, bad).unwrap_err();
        assert!(e.message.contains("frobnicate"));
        // pre-script state, exactly: names, version counts, lineage, bytes
        assert_eq!(engine.repo.schema_names(), schemas);
        assert_eq!(engine.repo.mapping_names(), mappings);
        assert_eq!(engine.repo.schema_versions("ER"), 0);
        assert_eq!(engine.repo.schema_versions("ER_rel"), 0);
        assert_eq!(engine.repo.lineage().len(), lineage);
        assert_eq!(engine.repo.state_bytes(), state);
        assert!(!engine.repo.in_transaction());
    }

    #[test]
    fn successful_script_commits_exactly_its_writes() {
        let engine = Engine::new();
        run_script(&engine, SCRIPT).unwrap();
        assert!(!engine.repo.in_transaction());
        assert_eq!(engine.repo.schema_versions("ER"), 1);
        assert_eq!(engine.repo.mapping_versions("ER->ER_rel"), 1);
        // re-running the same script commits a second round of versions —
        // exactly one more of each, nothing phantom
        run_script(&engine, SCRIPT).unwrap();
        assert_eq!(engine.repo.schema_versions("ER"), 2);
        assert_eq!(engine.repo.mapping_versions("ER->ER_rel"), 2);
    }

    #[test]
    fn failing_script_on_durable_repository_leaves_no_trace_in_the_log() {
        use mm_repository::{DurableOptions, MemStorage};
        let mem = MemStorage::new();
        let engine = Engine::open_durable(mem.clone(), DurableOptions::default()).unwrap();
        run_script(&engine, "schema Base {\n  table T(a: int)\n}").unwrap();
        let state = engine.repo.state_bytes();

        let e = run_script(&engine, "schema X {\n  table U(a: int)\n}\nfrobnicate")
            .unwrap_err();
        assert!(e.message.contains("frobnicate"));
        assert_eq!(engine.repo.state_bytes(), state);

        // a recovered repository agrees: the failed script never happened
        drop(engine);
        let reopened = Engine::open_durable(mem, DurableOptions::default()).unwrap();
        assert_eq!(reopened.repo.state_bytes(), state);
        assert_eq!(reopened.repo.schema_versions("Base"), 1);
        assert_eq!(reopened.repo.schema_versions("X"), 0);
    }

    #[test]
    fn show_schema_prints_definition() {
        let engine = Engine::new();
        let log = run_script(
            &engine,
            "schema S {\n  table T(a: int)\n}\nshow schema S",
        )
        .unwrap();
        assert!(log.iter().any(|l| l.contains("table T(a: int)")));
    }
}
