//! The model management engine: the reusable component of Figure 1.
//!
//! "A model management system is a component that supports the creation,
//! compilation, reuse, evolution, and execution of mappings between
//! schemas represented in a wide range of metamodels. … it is a reusable
//! component that can be embedded, with relatively modest customization,
//! into user-oriented tools" (§2). [`Engine`] is that component: a
//! metadata repository plus every operator, each invocation recorded as
//! lineage so tools get impact analysis for free.
//!
//! The operator sub-crates remain directly usable; the engine is the
//! convenience layer gluing them to the repository. All public types of
//! the sub-crates are re-exported under [`prelude`].

pub mod engine;
pub mod script;

pub use engine::{Engine, EngineError};
pub use script::{run_script, ScriptError};

/// One-stop imports for applications embedding the engine.
pub mod prelude {
    pub use crate::engine::{Engine, EngineError};
    pub use crate::script::{run_script, ScriptError};
    pub use mm_chase::{
        certain_answers, chase_general, chase_st, core_of, egds_from_keys, exists_hom,
        hom_equivalent, ChaseOutcome, ChaseStats, Egd,
    };
    pub use mm_compose::{
        apply_sotgd, compose_expr_mappings, compose_st_tgds, compose_views, transport_via,
        try_deskolemize, ComposeError,
    };
    pub use mm_eval::{eval, find_homomorphisms, materialize_views, unfold_query, EvalError};
    pub use mm_evolution::{
        diff, evolve_view, extract, invert_views, merge, verify_inverse, EvolutionOutcome,
        ExtractResult, InverseError, InverseKind, MergeResult, Side,
    };
    pub use mm_expr::{
        entity_extent, optimize, output_schema, AggFunc, AggSpec, Atom, CmpOp, Correspondence, CorrespondenceSet, Expr,
        ExprError, Func, Lit, Mapping, MappingConstraint, PathRef, Predicate, Scalar, SoClause,
        SoTgd, Term, Tgd, ViewDef, ViewSet,
    };
    pub use mm_instance::{validate, Database, RelSchema, Relation, Tuple, Value};
    pub use mm_match::{
        match_schemas, remember_session, IncrementalSession, MatchConfig, MatchMemory,
    };
    pub use mm_metamodel::{
        parse_schema, Attribute, Cardinality, Constraint, DataType, Element, ElementKind, Key,
        Metamodel, ParseError, Schema, SchemaBuilder, TYPE_ATTR,
    };
    pub use mm_modelgen::{
        er_to_relational, nest_relational, relational_to_er, shred_nested, three_copy_translate,
        InheritanceStrategy, ModelGenError, ModelGenResult,
    };
    pub use mm_repository::{ArtifactId, ArtifactKind, LineageEdge, Repository};
    pub use mm_runtime::{
        advise_indexes, batch_load, check_query, compile_policy, compile_triggers, explain,
        fire_triggers, maintain_insertions, propagate, run_sync, trace, translate_rules,
        translate_violations, view_insert_delta, AccessPolicy, AccessRule, AccessViolation,
        Delta, Firing, IndexRecommendation, IndexUse, MaintenanceStrategy, Mediator, SyncRule,
        SyncStats, Trace, TraceStep, Trigger, Witness,
    };
    pub use mm_transgen::{
        check_coverage, check_implication, correspondences_to_views, parse_fragments,
        propagate_to_tables, query_views, snowflake_constraints, unexpressible_constraints,
        update_views, verify_roundtrip, Fragment, PropagatedConstraint, RoundtripReport,
        TransGenError, Unexpressible,
    };
}
