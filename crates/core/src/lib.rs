//! The model management engine: the reusable component of Figure 1.
//!
//! "A model management system is a component that supports the creation,
//! compilation, reuse, evolution, and execution of mappings between
//! schemas represented in a wide range of metamodels. … it is a reusable
//! component that can be embedded, with relatively modest customization,
//! into user-oriented tools" (§2). [`Engine`] is that component: a
//! metadata repository plus every operator, each invocation recorded as
//! lineage so tools get impact analysis for free.
//!
//! The operator sub-crates remain directly usable; the engine is the
//! convenience layer gluing them to the repository. All public types of
//! the sub-crates are re-exported under [`prelude`].

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod engine;
pub mod plan_cache;
pub mod script;

pub use engine::{
    Durability, Engine, EngineConfig, EngineError, ExchangeRequest, DEFAULT_CHASE_ROUNDS,
};
pub use plan_cache::{PlanCache, PLAN_CACHE_SHARDS};
pub use script::{run_script, ScriptError};

/// One-stop imports for applications embedding the engine.
pub mod prelude {
    pub use crate::engine::{
        Durability, Engine, EngineConfig, EngineError, ExchangeRequest, DEFAULT_CHASE_ROUNDS,
    };
    pub use crate::plan_cache::{PlanCache, PLAN_CACHE_SHARDS};
    pub use crate::script::{run_script, ScriptError};
    pub use mm_chase::{
        certain_answers, chase_general, chase_general_adaptive, chase_general_adaptive_explained,
        chase_general_explained, chase_general_governed,
        chase_general_parallel, chase_general_parallel_traced, chase_general_prepared,
        chase_general_prepared_traced, chase_general_reference, chase_st, chase_st_explained,
        chase_st_governed, chase_st_parallel, chase_st_parallel_traced, chase_st_prepared,
        chase_st_prepared_governed, chase_st_prepared_traced, chase_st_reference, core_of,
        egds_from_keys, exists_hom, hom_equivalent, ChaseExplain, ChaseFailure, ChaseOutcome,
        ChaseProgram, ChaseStats, Egd, RoundExplain, TgdExplain,
    };
    pub use mm_compose::{
        apply_sotgd, apply_sotgd_governed, compose_expr_mappings, compose_st_tgds,
        compose_st_tgds_governed, compose_st_tgds_traced, compose_views, transport_via,
        try_deskolemize, try_deskolemize_governed, ComposeError, DEFAULT_CLAUSE_BOUND,
    };
    pub use mm_eval::{
        eval, eval_governed, find_homomorphisms, find_homomorphisms_costed,
        find_homomorphisms_governed,
        find_homomorphisms_naive, find_homomorphisms_parallel, find_homomorphisms_traced,
        materialize_views,
        materialize_views_governed, unfold_query, AtomExplain, CqPlan, EvalError, PlanExplain,
        VarTable,
    };
    pub use mm_guard::{
        CancelToken, Consumption, Degradation, DegradationKind, ExecBudget, ExecError, Governor,
        Resource,
    };
    pub use mm_telemetry::{
        Cause, Collector, Counter, DegradationSite, EngineMetrics, Event, EventKind, ExplainNode,
        Field, FieldValue, Hist, Histogram, HistogramSummary, JsonLinesCollector, LineSink,
        MetricsSnapshot, RingCollector, ServerOp, Span, Telemetry, Timer, TraceScope,
    };
    pub use mm_evolution::{
        diff, evolve_view, extract, invert_views, merge, verify_inverse, EvolutionOutcome,
        ExtractResult, InverseError, InverseKind, MergeResult, Side,
    };
    pub use mm_expr::{
        entity_extent, optimize, output_schema, AggFunc, AggSpec, Atom, CmpOp, Correspondence, CorrespondenceSet, Expr,
        ExprError, Func, Lit, Mapping, MappingConstraint, PathRef, Predicate, Scalar, SoClause,
        SoTgd, Term, Tgd, ViewDef, ViewSet,
    };
    pub use mm_instance::{validate, Database, RelSchema, Relation, Tuple, Value};
    pub use mm_match::{
        match_schemas, remember_session, IncrementalSession, MatchConfig, MatchMemory,
    };
    pub use mm_metamodel::{
        parse_schema, Attribute, Cardinality, Constraint, DataType, Element, ElementKind, Key,
        Metamodel, ParseError, Schema, SchemaBuilder, TYPE_ATTR,
    };
    pub use mm_modelgen::{
        er_to_relational, nest_relational, relational_to_er, shred_nested, three_copy_translate,
        InheritanceStrategy, ModelGenError, ModelGenResult,
    };
    pub use mm_propagate::{
        ChangeFeed, ChangeKind, FeedEvent, Notification, PollResponse, PropagateConfig,
        PropagateError, Propagator, ResyncCause, SubscriberStatus,
    };
    pub use mm_repository::{
        ArtifactId, ArtifactKind, DurableOptions, FaultOp, FaultPlan, FaultStorage, LineageEdge,
        MemStorage, Repository, RepositoryError, Storage, StorageError, StorageLineSink,
        Subscription, SNAPSHOT_FILE, SNAPSHOT_TMP_FILE, WAL_FILE,
    };
    pub use mm_runtime::{
        advise_indexes, batch_load, batch_load_governed, check_query, compile_policy,
        compile_triggers, explain, explain_traced, fire_triggers, maintain_insertions,
        maintain_insertions_governed, maintain_insertions_traced, maintain_insertions_with_plan,
        propagate, run_sync, trace, translate_rules, translate_violations, view_insert_delta,
        view_insert_delta_governed, AccessPolicy, AccessRule, AccessViolation, Delta, Firing,
        IndexRecommendation, IndexUse, MaintenancePlan, MaintenanceReport, MaintenanceStrategy,
        MediationExplain, MediationMode, MediationPlan, MediationResult, Mediator, SyncRule,
        SyncStats, Trace, TraceStep, Trigger, Witness,
    };
    pub use mm_transgen::{
        check_coverage, check_implication, correspondences_to_views, parse_fragments,
        propagate_to_tables, query_views, snowflake_constraints, unexpressible_constraints,
        update_views, verify_roundtrip, Fragment, PropagatedConstraint, RoundtripReport,
        TransGenError, Unexpressible,
    };
}
