//! Sharded, lock-striped cache of compiled chase programs.
//!
//! PR 5 replaces the engine's single-mutex plan cache with sixteen
//! independently locked shards so concurrent batch workers resolving
//! different mappings never serialize on one lock. Entries are keyed by
//! the mapping's *name* and remember which [`ArtifactId`] (i.e. which
//! stored version) they were compiled from: storing a new version under
//! the same name makes the next lookup miss, recompile, and **replace**
//! the stale entry — a replaced mapping can never serve its
//! predecessor's plan, and dead versions do not accumulate.

use mm_chase::ChaseProgram;
use mm_repository::ArtifactId;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Number of lock stripes. A fixed power of two: batch fan-out in this
/// workspace is capped well below the point where more stripes would
/// measurably reduce contention.
pub const PLAN_CACHE_SHARDS: usize = 16;

struct CachedPlan {
    /// The exact stored version this plan was compiled from.
    id: ArtifactId,
    program: Arc<ChaseProgram>,
}

/// The cache: `name → (version, compiled program)`, striped by name hash.
#[derive(Default)]
pub struct PlanCache {
    shards: [Mutex<HashMap<String, CachedPlan>>; PLAN_CACHE_SHARDS],
}

impl PlanCache {
    fn shard(&self, name: &str) -> &Mutex<HashMap<String, CachedPlan>> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) % PLAN_CACHE_SHARDS]
    }

    /// The plan cached for `name`, but only if it was compiled from
    /// exactly the artifact version `id` — a stale entry is a miss.
    pub fn get(&self, name: &str, id: &ArtifactId) -> Option<Arc<ChaseProgram>> {
        let shard = self.shard(name).lock();
        shard.get(name).filter(|e| &e.id == id).map(|e| Arc::clone(&e.program))
    }

    /// Cache `program` as the plan for `name` at version `id`, replacing
    /// (and thereby invalidating) any entry for an older version.
    pub fn insert(&self, name: &str, id: ArtifactId, program: Arc<ChaseProgram>) {
        self.shard(name).lock().insert(name.to_owned(), CachedPlan { id, program });
    }

    /// Drop the entry for `name` (any version). Returns whether an entry
    /// was present. This is the adaptive re-optimization hook: when the
    /// engine detects that a cached plan's compile-time statistics have
    /// drifted from the live instance, it invalidates here and recompiles
    /// against current cardinalities.
    pub fn invalidate(&self, name: &str) -> bool {
        self.shard(name).lock().remove(name).is_some()
    }

    /// Total cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard entry counts, in stripe order — observability for the
    /// striping itself (tests assert entries actually spread out).
    pub fn shard_sizes(&self) -> [usize; PLAN_CACHE_SHARDS] {
        let mut out = [0; PLAN_CACHE_SHARDS];
        for (o, s) in out.iter_mut().zip(&self.shards) {
            *o = s.lock().len();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_expr::{Atom, Tgd};
    use mm_instance::Database;
    use mm_metamodel::{DataType, SchemaBuilder};
    use mm_repository::Repository;

    fn program() -> Arc<ChaseProgram> {
        let s = SchemaBuilder::new("S")
            .relation("R", &[("a", DataType::Int)])
            .build()
            .expect("schema");
        let db = Database::empty_of(&s);
        let tgd = Tgd::new(vec![Atom::vars("R", &["x"])], vec![Atom::vars("U", &["x"])]);
        Arc::new(ChaseProgram::compile(&[tgd], &db))
    }

    #[test]
    fn same_name_new_version_replaces_the_entry() {
        let repo = Repository::new();
        let v1 = repo.store_mapping("m", mm_expr::Mapping::new("S", "T")).expect("v1");
        let v2 = repo.store_mapping("m", mm_expr::Mapping::new("S", "T")).expect("v2");
        assert_ne!(v1, v2);
        let cache = PlanCache::default();
        cache.insert("m", v1.clone(), program());
        assert!(cache.get("m", &v1).is_some());
        assert!(cache.get("m", &v2).is_none(), "stale version must miss");
        cache.insert("m", v2.clone(), program());
        assert_eq!(cache.len(), 1, "replacement, not accumulation");
        assert!(cache.get("m", &v1).is_none(), "old version evicted");
        assert!(cache.get("m", &v2).is_some());
    }

    #[test]
    fn entries_stripe_across_shards() {
        let repo = Repository::new();
        let cache = PlanCache::default();
        let p = program();
        for i in 0..64 {
            let name = format!("m{i}");
            let id = repo.store_mapping(&name, mm_expr::Mapping::new("S", "T")).expect("store");
            cache.insert(&name, id, Arc::clone(&p));
        }
        assert_eq!(cache.len(), 64);
        let sizes = cache.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 64);
        let occupied = sizes.iter().filter(|&&n| n > 0).count();
        assert!(occupied > PLAN_CACHE_SHARDS / 2, "64 names must spread: {sizes:?}");
    }
}
