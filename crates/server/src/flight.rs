//! The flight recorder: a bounded ring of per-request summaries plus a
//! slow-query log, feeding the introspection ops (DESIGN.md §15).
//!
//! Every request the server finishes — served, errored, shed, or
//! refused — lands here as a [`RequestSummary`]: op, trace id, latency,
//! queue wait, budget consumption, outcome. Requests that cross the
//! configured latency threshold or end degraded/rejected additionally
//! keep a [`SlowEntry`] with their captured span tree and (when the op
//! has one) an EXPLAIN of the plan that ran — the "why was this slow"
//! record, available after the fact without re-running anything.
//!
//! Both rings are bounded and lock-striped the simple way (one mutex
//! each, held for push/clone only); recording is off the response
//! critical path — the worker records after the reply bytes are on the
//! socket. Everything renders as stable hand-rolled JSON lines (key
//! order fixed, RFC 8259 escaping via `mm_telemetry`'s event renderer),
//! dumpable through any [`LineSink`].

use mm_telemetry::collector::LineSink;
use mm_telemetry::Event;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// How a recorded request ended. Stable wire-facing names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served with a success body.
    Ok,
    /// Served with a typed error body (code in [`RequestSummary::code`]).
    Error,
    /// Refused by admission control (shed, queue full, or draining —
    /// the code distinguishes).
    Rejected,
}

impl Outcome {
    fn name(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Error => "error",
            Outcome::Rejected => "rejected",
        }
    }
}

/// One finished request, as the flight ring remembers it.
#[derive(Debug, Clone)]
pub struct RequestSummary {
    /// Monotone admission sequence, assigned by the recorder.
    pub seq: u64,
    /// Stable op name (`"exchange"`, `"poll"`, …; `"op_<n>"` for bytes
    /// this build does not know).
    pub op: &'static str,
    pub req_id: u64,
    /// Client trace id (0 = untraced).
    pub trace_id: u64,
    /// Service time: decode through response write, µs. 0 for
    /// rejections (they never start service).
    pub latency_us: u64,
    /// Time spent in the executor queue, µs.
    pub queue_wait_us: u64,
    /// Governed steps the request consumed.
    pub steps: u64,
    /// Governed rows the request consumed.
    pub rows: u64,
    /// Wire error code (0 on success).
    pub code: u32,
    /// Did the request record a degradation (mediator fallback,
    /// propagation resync, …)?
    pub degraded: bool,
    pub outcome: Outcome,
}

impl RequestSummary {
    /// Render as one stable JSON line (fixed key order; numbers only,
    /// except the op/outcome names, which are static identifiers).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"seq\":{},\"op\":\"{}\",\"req_id\":{},\"trace\":{},\"latency_us\":{},\
             \"queue_wait_us\":{},\"steps\":{},\"rows\":{},\"code\":{},\"degraded\":{},\
             \"outcome\":\"{}\"}}",
            self.seq,
            self.op,
            self.req_id,
            self.trace_id,
            self.latency_us,
            self.queue_wait_us,
            self.steps,
            self.rows,
            self.code,
            self.degraded,
            self.outcome.name(),
        );
        s
    }
}

/// A slow-log entry: the summary plus the request's captured span tree
/// and optional EXPLAIN text.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    pub summary: RequestSummary,
    /// The spans and point events the request produced, in completion
    /// order (bounded by the trace capture cap).
    pub events: Vec<Event>,
    /// Plan EXPLAIN for ops that have one (exchange-shaped requests).
    pub explain: Option<String>,
}

impl SlowEntry {
    /// Render as one stable JSON line: the summary's fields plus
    /// `spans` (each an event object) and, when present, `explain`.
    pub fn to_json(&self) -> String {
        let mut s = self.summary.to_json();
        s.truncate(s.len() - 1); // reopen the summary object
        s.push_str(",\"spans\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&e.to_json());
        }
        s.push(']');
        if let Some(explain) = &self.explain {
            s.push_str(",\"explain\":\"");
            json_escape_into(&mut s, explain);
            s.push('"');
        }
        s.push('}');
        s
    }
}

fn json_escape_into(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// The recorder. One per server; shared by session and worker threads.
pub struct FlightRecorder {
    recent_cap: usize,
    slow_cap: usize,
    /// Latency threshold (µs) past which a request keeps a slow entry.
    slow_threshold_us: u64,
    next_seq: AtomicU64,
    recent: Mutex<VecDeque<RequestSummary>>,
    slow: Mutex<VecDeque<SlowEntry>>,
}

impl FlightRecorder {
    pub fn new(recent_cap: usize, slow_cap: usize, slow_threshold_us: u64) -> FlightRecorder {
        FlightRecorder {
            recent_cap: recent_cap.max(1),
            slow_cap: slow_cap.max(1),
            slow_threshold_us,
            next_seq: AtomicU64::new(1),
            recent: Mutex::new(VecDeque::new()),
            slow: Mutex::new(VecDeque::new()),
        }
    }

    /// Should a request with this summary keep its full detail? True
    /// past the latency threshold and for every degraded, errored, or
    /// rejected request — the paths worth a postmortem.
    pub fn qualifies(&self, s: &RequestSummary) -> bool {
        s.latency_us >= self.slow_threshold_us
            || s.degraded
            || !matches!(s.outcome, Outcome::Ok)
    }

    /// Record one finished request. `detail` carries the captured span
    /// tree and EXPLAIN for requests that [`Self::qualifies`]; pass
    /// `None` when the caller captured nothing (rejections, fast
    /// requests). Returns the summary's assigned sequence.
    pub fn record(
        &self,
        mut summary: RequestSummary,
        detail: Option<(Vec<Event>, Option<String>)>,
    ) -> u64 {
        summary.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let seq = summary.seq;
        if self.qualifies(&summary) {
            let (events, explain) = detail.unwrap_or((Vec::new(), None));
            let mut slow = lock_ignoring_poison(&self.slow);
            if slow.len() == self.slow_cap {
                slow.pop_front();
            }
            slow.push_back(SlowEntry { summary: summary.clone(), events, explain });
        }
        let mut recent = lock_ignoring_poison(&self.recent);
        if recent.len() == self.recent_cap {
            recent.pop_front();
        }
        recent.push_back(summary);
        seq
    }

    /// The most recent summaries, oldest first, capped at `max`.
    pub fn recent(&self, max: usize) -> Vec<RequestSummary> {
        let buf = lock_ignoring_poison(&self.recent);
        let skip = buf.len().saturating_sub(max);
        buf.iter().skip(skip).cloned().collect()
    }

    /// Slow-log entries as stable JSON lines, oldest first, capped at
    /// `max` (0 = everything retained).
    pub fn slow_lines(&self, max: usize) -> Vec<String> {
        let buf = lock_ignoring_poison(&self.slow);
        let max = if max == 0 { buf.len() } else { max };
        let skip = buf.len().saturating_sub(max);
        buf.iter().skip(skip).map(SlowEntry::to_json).collect()
    }

    /// Entries currently held by the slow log.
    pub fn slow_len(&self) -> u64 {
        lock_ignoring_poison(&self.slow).len() as u64
    }

    /// Everything the recorder holds for `trace_id`: full slow entries
    /// when the trace kept one, bare summaries from the recent ring
    /// otherwise. Oldest first.
    pub fn trace_lines(&self, trace_id: u64) -> Vec<String> {
        if trace_id == 0 {
            return Vec::new();
        }
        let slow: Vec<String> = lock_ignoring_poison(&self.slow)
            .iter()
            .filter(|e| e.summary.trace_id == trace_id)
            .map(SlowEntry::to_json)
            .collect();
        if !slow.is_empty() {
            return slow;
        }
        lock_ignoring_poison(&self.recent)
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .map(RequestSummary::to_json)
            .collect()
    }

    /// Dump the slow log through `sink`, one JSON line per entry.
    /// Returns how many lines were written successfully.
    pub fn dump(&self, sink: &dyn LineSink) -> usize {
        self.slow_lines(0)
            .iter()
            .filter(|line| sink.append_line(line).is_ok())
            .count()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use mm_telemetry::VecSink;

    fn summary(op: &'static str, latency_us: u64, trace_id: u64) -> RequestSummary {
        RequestSummary {
            seq: 0,
            op,
            req_id: 1,
            trace_id,
            latency_us,
            queue_wait_us: 5,
            steps: 10,
            rows: 2,
            code: 0,
            degraded: false,
            outcome: Outcome::Ok,
        }
    }

    #[test]
    fn fast_clean_requests_stay_out_of_the_slow_log() {
        let fr = FlightRecorder::new(4, 4, 1_000);
        fr.record(summary("ping", 10, 0), None);
        assert_eq!(fr.recent(16).len(), 1);
        assert_eq!(fr.slow_len(), 0);
    }

    #[test]
    fn slow_degraded_and_failed_requests_qualify() {
        let fr = FlightRecorder::new(8, 8, 1_000);
        fr.record(summary("exchange", 5_000, 0), None);
        let mut degraded = summary("mediate", 10, 0);
        degraded.degraded = true;
        fr.record(degraded, None);
        let mut failed = summary("script", 10, 0);
        failed.code = 30;
        failed.outcome = Outcome::Error;
        fr.record(failed, None);
        let mut shed = summary("exchange", 0, 0);
        shed.code = 50;
        shed.outcome = Outcome::Rejected;
        fr.record(shed, None);
        assert_eq!(fr.slow_len(), 4);
        assert_eq!(fr.recent(16).len(), 4);
    }

    #[test]
    fn rings_are_bounded_and_keep_the_newest() {
        let fr = FlightRecorder::new(2, 2, 0); // threshold 0: everything slow
        for i in 0..5u64 {
            fr.record(summary("ping", i, 0), None);
        }
        let recent = fr.recent(16);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].seq, 4);
        assert_eq!(recent[1].seq, 5);
        assert_eq!(fr.slow_lines(0).len(), 2);
        assert_eq!(fr.slow_lines(1).len(), 1);
    }

    #[test]
    fn json_lines_are_stable_and_parseable_shape() {
        let fr = FlightRecorder::new(4, 4, 0);
        fr.record(summary("exchange", 9, 77), Some((Vec::new(), Some("chase [mode=plan]".into()))));
        let lines = fr.slow_lines(0);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"seq\":1,\"op\":\"exchange\","));
        assert!(lines[0].contains("\"trace\":77"));
        assert!(lines[0].contains("\"spans\":[]"));
        assert!(lines[0].contains("\"explain\":\"chase [mode=plan]\""));
        assert!(lines[0].ends_with('}'));
        // byte-stable across reads
        assert_eq!(fr.slow_lines(0), lines);
    }

    #[test]
    fn trace_lookup_prefers_slow_entries_then_summaries() {
        let fr = FlightRecorder::new(4, 4, 1_000);
        fr.record(summary("ping", 1, 42), None);
        let by_summary = fr.trace_lines(42);
        assert_eq!(by_summary.len(), 1);
        assert!(!by_summary[0].contains("spans"));
        fr.record(summary("exchange", 5_000, 42), Some((Vec::new(), None)));
        let by_slow = fr.trace_lines(42);
        assert_eq!(by_slow.len(), 1);
        assert!(by_slow[0].contains("spans"));
        assert!(fr.trace_lines(0).is_empty());
        assert!(fr.trace_lines(4242).is_empty());
    }

    #[test]
    fn dump_streams_through_a_line_sink() {
        let fr = FlightRecorder::new(4, 4, 0);
        fr.record(summary("ping", 1, 0), None);
        fr.record(summary("ping", 2, 0), None);
        let sink = VecSink::new();
        assert_eq!(fr.dump(sink.as_ref()), 2);
        assert_eq!(sink.lines().len(), 2);
    }
}
