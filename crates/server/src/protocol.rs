//! The wire protocol: length-prefixed, CRC32-framed request/response
//! messages over a byte stream.
//!
//! The framing reuses the WAL codec discipline from `mm-repository`
//! (little-endian [`Writer`]/[`Reader`], [`crc32`] over the payload,
//! allocation bounded by the declared length): a frame is
//!
//! ```text
//! magic u32 | len u32 | crc u32 | payload[len]
//! ```
//!
//! and a request payload opens with a fixed 22-byte versioned prelude —
//!
//! ```text
//! version u8 | req_id u64 | trace_id u64 | deadline_ms u32 | op u8 | body…
//! ```
//!
//! — so admission control can identify and reject a request from the
//! prelude alone, without checksumming or decoding the body.
//! `trace_id` is the client-generated distributed trace id stamped on
//! every span the request produces (0 = untraced); `version` is checked
//! against [`WireVersion`] with an exhaustive `match`, so bumping the
//! protocol is a compile-time event, not a runtime surprise. Response
//! payloads are `req_id u64 | status u8 | …` where status 0 carries an
//! op-tagged result body and status 1 carries `code u32 | message str`.
//!
//! Every error a client can receive has a stable numeric code; the
//! [`exec_error_code`]/[`engine_error_code`] maps are exhaustive
//! `match`es with no wildcard arm, so adding an error variant anywhere
//! in the engine fails to compile until the protocol assigns it a code.

use bytes::Bytes;
use mm_engine::EngineError;
use mm_expr::{Expr, ViewSet};
use mm_guard::ExecError;
use mm_instance::{Database, Relation, Tuple};
use mm_propagate::{Notification, PropagateError, ResyncCause};
use mm_repository::codec::{crc32, Decode, DecodeError, DecodeResult, Encode, Reader, Writer};
use std::fmt;
use std::io::{Read, Write};

/// Frame magic: `"MM20"` little-endian — Model Management 2.0.
pub const MAGIC: u32 = 0x3032_4D4D;

/// Frame header length: magic, payload length, payload CRC32.
pub const HEADER_LEN: usize = 12;

/// Request prelude length: version, req_id, trace_id, deadline_ms, op.
pub const PRELUDE_LEN: usize = 22;

/// Wire protocol versions this build knows. The prelude's leading byte
/// names one; every site that touches the prelude matches exhaustively
/// on [`CURRENT_VERSION`], so adding a variant here refuses to compile
/// until encoder, parser, and client all handle it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireVersion {
    /// The first versioned prelude (PR 9): adds the version byte itself
    /// and the 8-byte trace id to the original 13-byte layout.
    V2 = 2,
}

/// The version this build speaks (and emits).
pub const CURRENT_VERSION: WireVersion = WireVersion::V2;

/// Default cap on a single frame's payload (16 MiB).
pub const DEFAULT_MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

// ---------------------------------------------------------------------
// Stable wire error codes.
// ---------------------------------------------------------------------

pub const ERR_BUDGET_EXHAUSTED: u32 = 1;
pub const ERR_CANCELLED: u32 = 2;
pub const ERR_DIVERGED: u32 = 3;
pub const ERR_UNSUPPORTED: u32 = 4;
pub const ERR_MALFORMED: u32 = 5;
pub const ERR_INTERNAL: u32 = 6;
pub const ERR_IO: u32 = 7;
pub const ERR_DEADLINE_EXCEEDED: u32 = 8;

pub const ERR_REPOSITORY: u32 = 20;
pub const ERR_MODELGEN: u32 = 21;
pub const ERR_TRANSGEN: u32 = 22;
pub const ERR_COMPOSE: u32 = 23;
pub const ERR_EVAL: u32 = 24;
pub const ERR_CORR: u32 = 25;
pub const ERR_INVERSE: u32 = 26;

pub const ERR_SCRIPT: u32 = 30;

pub const ERR_BAD_MAGIC: u32 = 40;
pub const ERR_BAD_CRC: u32 = 41;
pub const ERR_FRAME_TOO_LARGE: u32 = 42;
pub const ERR_DECODE: u32 = 43;
pub const ERR_UNKNOWN_OP: u32 = 44;
pub const ERR_BAD_VERSION: u32 = 45;

pub const ERR_OVERLOADED: u32 = 50;
pub const ERR_QUEUE_FULL: u32 = 51;
pub const ERR_SHUTTING_DOWN: u32 = 52;

pub const ERR_UNKNOWN_SUBSCRIBER: u32 = 60;
pub const ERR_UNKNOWN_INSTANCE: u32 = 61;
pub const ERR_RESYNC_FAILED: u32 = 62;

/// The wire code for a governance error. Exhaustive on purpose: a new
/// [`ExecError`] variant is a compile error here until it gets a code.
pub fn exec_error_code(e: &ExecError) -> u32 {
    match e {
        ExecError::BudgetExhausted { .. } => ERR_BUDGET_EXHAUSTED,
        ExecError::Cancelled { .. } => ERR_CANCELLED,
        ExecError::Diverged { .. } => ERR_DIVERGED,
        ExecError::Unsupported { .. } => ERR_UNSUPPORTED,
        ExecError::Malformed { .. } => ERR_MALFORMED,
        ExecError::Internal { .. } => ERR_INTERNAL,
        ExecError::Io { .. } => ERR_IO,
        ExecError::DeadlineExceeded { .. } => ERR_DEADLINE_EXCEEDED,
    }
}

/// The wire code for a propagation error. Exhaustive on purpose, like
/// [`exec_error_code`].
pub fn propagate_error_code(e: &PropagateError) -> u32 {
    match e {
        PropagateError::UnknownSubscriber(_) => ERR_UNKNOWN_SUBSCRIBER,
        PropagateError::UnknownInstance(_) => ERR_UNKNOWN_INSTANCE,
        PropagateError::Resync(_) => ERR_RESYNC_FAILED,
    }
}

/// The wire code for an engine error. Execution errors keep their
/// [`exec_error_code`] so a client sees the same code whether a budget
/// tripped inside `exchange` or a bare governed operator.
pub fn engine_error_code(e: &EngineError) -> u32 {
    match e {
        EngineError::Repository(_) => ERR_REPOSITORY,
        EngineError::ModelGen(_) => ERR_MODELGEN,
        EngineError::TransGen(_) => ERR_TRANSGEN,
        EngineError::Compose(_) => ERR_COMPOSE,
        EngineError::Eval(mm_engine::prelude::EvalError::Exec(exec)) => exec_error_code(exec),
        EngineError::Eval(_) => ERR_EVAL,
        EngineError::Corr(_) => ERR_CORR,
        EngineError::Inverse(_) => ERR_INVERSE,
        EngineError::Exec(exec) => exec_error_code(exec),
        EngineError::Propagate(e) => propagate_error_code(e),
    }
}

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

/// A received frame: the raw payload plus its declared CRC. The CRC is
/// *not* verified on receipt — admission control sheds load from the
/// prelude alone, and only requests that reach a worker pay for the
/// checksum ([`RawFrame::crc_ok`]) and body decode.
#[derive(Debug, Clone)]
pub struct RawFrame {
    pub payload: Bytes,
    pub crc: u32,
}

impl RawFrame {
    pub fn crc_ok(&self) -> bool {
        crc32(&self.payload) == self.crc
    }
}

/// Why a frame could not be read off the stream.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying read failed or timed out (torn frame, slow
    /// writer, disconnect). The stream is unusable.
    Io(std::io::Error),
    /// The magic word did not match: the stream is out of sync (or the
    /// peer speaks another protocol). Unrecoverable for this stream.
    BadMagic(u32),
    /// The declared payload length exceeds the negotiated cap; reading
    /// it would be an unbounded allocation, so the stream is dropped.
    TooLarge { len: u32, max: u32 },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload {len} exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Write one frame: header then payload, flushed.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let mut head = [0u8; HEADER_LEN];
    head[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    head[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[8..12].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Allocation is bounded by `max_len` *before* any
/// payload byte is read, so an adversarial length prefix cannot balloon
/// memory (the same discipline as `Reader::seq_len`).
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<RawFrame, FrameError> {
    let mut head = [0u8; HEADER_LEN];
    r.read_exact(&mut head).map_err(FrameError::Io)?;
    let magic = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if len > max_len {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let crc = u32::from_le_bytes([head[8], head[9], head[10], head[11]]);
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(RawFrame { payload: Bytes::from(payload), crc })
}

// ---------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------

/// Operation selectors (the prelude's `op` byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    Ping = 1,
    Exchange = 2,
    ExchangeBatch = 3,
    Mediate = 4,
    ExplainExchange = 5,
    Script = 6,
    // Update propagation (DESIGN.md §14).
    PutInstance = 7,
    InsertBatch = 8,
    Subscribe = 9,
    Poll = 10,
    Ack = 11,
    Resume = 12,
    Unsubscribe = 13,
    // Read-only introspection (DESIGN.md §15). Answered inline on the
    // session thread, bypassing admission control: they must stay
    // answerable while the server sheds or drains.
    Metrics = 14,
    Health = 15,
    SlowLog = 16,
    TraceGet = 17,
}

/// Is `op` one of the read-only introspection selectors the server
/// answers inline, even while shedding or draining?
pub fn is_introspection_op(op: u8) -> bool {
    op == Op::Metrics as u8
        || op == Op::Health as u8
        || op == Op::SlowLog as u8
        || op == Op::TraceGet as u8
}

/// The parsed request prelude. `deadline_ms` is the client's requested
/// deadline relative to admission (0 = server default); `trace_id` is
/// the client-generated trace id (0 = untraced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestHead {
    pub req_id: u64,
    pub trace_id: u64,
    pub deadline_ms: u32,
    pub op: u8,
}

/// Why a prelude failed to parse. Both are answerable with the frame
/// already consumed, so the session survives: `Runt` under req_id 0
/// (there is no id to echo), `Version` under the client's own req_id —
/// that field sits at a fixed offset in every version, so the server
/// can send a typed [`ERR_BAD_VERSION`] even for versions it does not
/// speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreludeError {
    /// Payload shorter than the prelude.
    Runt,
    /// Unknown leading version byte.
    Version { got: u8, req_id: u64 },
}

/// Parse the prelude without touching the body (or the CRC).
pub fn parse_head(payload: &[u8]) -> Result<RequestHead, PreludeError> {
    if payload.len() < PRELUDE_LEN {
        return Err(PreludeError::Runt);
    }
    let req_id = u64::from_le_bytes([
        payload[1], payload[2], payload[3], payload[4], payload[5], payload[6], payload[7],
        payload[8],
    ]);
    // Exhaustive over the enum: a new WireVersion variant is a compile
    // error here until the parser decides how to accept it.
    let supported = match CURRENT_VERSION {
        WireVersion::V2 => payload[0] == WireVersion::V2 as u8,
    };
    if !supported {
        return Err(PreludeError::Version { got: payload[0], req_id });
    }
    let trace_id = u64::from_le_bytes([
        payload[9], payload[10], payload[11], payload[12], payload[13], payload[14],
        payload[15], payload[16],
    ]);
    let deadline_ms =
        u32::from_le_bytes([payload[17], payload[18], payload[19], payload[20]]);
    Ok(RequestHead { req_id, trace_id, deadline_ms, op: payload[21] })
}

/// A fully decoded request body.
#[derive(Debug, Clone)]
pub enum Request {
    Ping,
    Exchange { mapping: String, target_schema: String, source_db: Database },
    ExchangeBatch { items: Vec<(String, String, Database)> },
    Mediate { base_schema: String, chain: Vec<String>, query: Expr, base_db: Database },
    ExplainExchange { mapping: String, target_schema: String, source_db: Database },
    Script { text: String },
    /// Create or replace a tracked instance wholesale (bulk load).
    PutInstance { name: String, db: Database },
    /// Insert-only batch against a tracked instance: one WAL frame, one
    /// coalesced feed event.
    InsertBatch { instance: String, inserts: Vec<(String, Vec<Tuple>)> },
    /// Register a continuous query over a tracked instance.
    Subscribe { instance: String, views: ViewSet },
    /// Drain up to `max` pending notifications for a subscription.
    Poll { id: u64, max: u32 },
    /// Durably acknowledge everything up to `cursor`.
    Ack { id: u64, cursor: u64 },
    /// Reconnect claiming everything up to `cursor` is applied.
    Resume { id: u64, cursor: u64 },
    /// Drop a subscription.
    Unsubscribe { id: u64 },
    /// Read-only: a point-in-time metrics snapshot (empty when the
    /// server runs without telemetry).
    Metrics,
    /// Read-only: liveness, queue depth, shed/drain state.
    Health,
    /// Read-only: up to `max` slow-query log entries, newest last.
    SlowLog { max: u32 },
    /// Read-only: everything the flight recorder holds for a trace id.
    TraceGet { trace_id: u64 },
}

/// Why a request body failed to decode (after the frame itself was
/// sound). Both map to typed error responses; the session stays usable.
#[derive(Debug)]
pub enum BodyError {
    UnknownOp(u8),
    Decode(DecodeError),
}

impl BodyError {
    pub fn code(&self) -> u32 {
        match self {
            BodyError::UnknownOp(_) => ERR_UNKNOWN_OP,
            BodyError::Decode(_) => ERR_DECODE,
        }
    }
}

impl fmt::Display for BodyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyError::UnknownOp(op) => write!(f, "unknown op {op}"),
            BodyError::Decode(e) => write!(f, "{e}"),
        }
    }
}

fn decode_exchange_triple(r: &mut Reader) -> DecodeResult<(String, String, Database)> {
    let mapping = r.str()?;
    let target = r.str()?;
    let db = decode_database(r)?;
    Ok((mapping, target, db))
}

/// Decode a request body for `op` (the bytes after the prelude).
pub fn decode_request(op: u8, r: &mut Reader) -> Result<Request, BodyError> {
    let decoded = match op {
        x if x == Op::Ping as u8 => Ok(Request::Ping),
        x if x == Op::Exchange as u8 => decode_exchange_triple(r).map(
            |(mapping, target_schema, source_db)| Request::Exchange {
                mapping,
                target_schema,
                source_db,
            },
        ),
        x if x == Op::ExchangeBatch as u8 => r
            .seq(decode_exchange_triple)
            .map(|items| Request::ExchangeBatch { items }),
        x if x == Op::Mediate as u8 => (|| {
            let base_schema = r.str()?;
            let chain = r.seq(|r| r.str())?;
            let query = Expr::decode(r)?;
            let base_db = decode_database(r)?;
            Ok(Request::Mediate { base_schema, chain, query, base_db })
        })(),
        x if x == Op::ExplainExchange as u8 => decode_exchange_triple(r).map(
            |(mapping, target_schema, source_db)| Request::ExplainExchange {
                mapping,
                target_schema,
                source_db,
            },
        ),
        x if x == Op::Script as u8 => r.str().map(|text| Request::Script { text }),
        x if x == Op::PutInstance as u8 => (|| {
            let name = r.str()?;
            let db = decode_database(r)?;
            Ok(Request::PutInstance { name, db })
        })(),
        x if x == Op::InsertBatch as u8 => (|| {
            let instance = r.str()?;
            let inserts = r.seq(|r| {
                let rel = r.str()?;
                let tuples = r.seq(Tuple::decode)?;
                Ok((rel, tuples))
            })?;
            Ok(Request::InsertBatch { instance, inserts })
        })(),
        x if x == Op::Subscribe as u8 => (|| {
            let instance = r.str()?;
            let views = ViewSet::decode(r)?;
            Ok(Request::Subscribe { instance, views })
        })(),
        x if x == Op::Poll as u8 => (|| {
            let id = r.u64()?;
            let max = r.u32()?;
            Ok(Request::Poll { id, max })
        })(),
        x if x == Op::Ack as u8 => (|| {
            let id = r.u64()?;
            let cursor = r.u64()?;
            Ok(Request::Ack { id, cursor })
        })(),
        x if x == Op::Resume as u8 => (|| {
            let id = r.u64()?;
            let cursor = r.u64()?;
            Ok(Request::Resume { id, cursor })
        })(),
        x if x == Op::Unsubscribe as u8 => r.u64().map(|id| Request::Unsubscribe { id }),
        x if x == Op::Metrics as u8 => Ok(Request::Metrics),
        x if x == Op::Health as u8 => Ok(Request::Health),
        x if x == Op::SlowLog as u8 => r.u32().map(|max| Request::SlowLog { max }),
        x if x == Op::TraceGet as u8 => r.u64().map(|trace_id| Request::TraceGet { trace_id }),
        other => return Err(BodyError::UnknownOp(other)),
    };
    decoded.map_err(BodyError::Decode)
}

/// Encode a request payload (versioned prelude + body) ready for
/// [`write_frame`].
pub fn encode_request(req_id: u64, deadline_ms: u32, trace_id: u64, req: &Request) -> Bytes {
    let mut w = Writer::new();
    // Exhaustive on purpose: bumping CURRENT_VERSION forces this site
    // to decide what the new prelude looks like.
    match CURRENT_VERSION {
        WireVersion::V2 => w.u8(WireVersion::V2 as u8),
    }
    w.u64(req_id);
    w.u64(trace_id);
    w.u32(deadline_ms);
    match req {
        Request::Ping => w.u8(Op::Ping as u8),
        Request::Exchange { mapping, target_schema, source_db } => {
            w.u8(Op::Exchange as u8);
            w.str(mapping);
            w.str(target_schema);
            encode_database(&mut w, source_db);
        }
        Request::ExchangeBatch { items } => {
            w.u8(Op::ExchangeBatch as u8);
            w.seq(items, |w, (mapping, target, db)| {
                w.str(mapping);
                w.str(target);
                encode_database(w, db);
            });
        }
        Request::Mediate { base_schema, chain, query, base_db } => {
            w.u8(Op::Mediate as u8);
            w.str(base_schema);
            w.seq(chain, |w, name| w.str(name));
            query.encode(&mut w);
            encode_database(&mut w, base_db);
        }
        Request::ExplainExchange { mapping, target_schema, source_db } => {
            w.u8(Op::ExplainExchange as u8);
            w.str(mapping);
            w.str(target_schema);
            encode_database(&mut w, source_db);
        }
        Request::Script { text } => {
            w.u8(Op::Script as u8);
            w.str(text);
        }
        Request::PutInstance { name, db } => {
            w.u8(Op::PutInstance as u8);
            w.str(name);
            encode_database(&mut w, db);
        }
        Request::InsertBatch { instance, inserts } => {
            w.u8(Op::InsertBatch as u8);
            w.str(instance);
            w.seq(inserts, |w, (rel, tuples)| {
                w.str(rel);
                w.seq(tuples, |w, t| t.encode(w));
            });
        }
        Request::Subscribe { instance, views } => {
            w.u8(Op::Subscribe as u8);
            w.str(instance);
            views.encode(&mut w);
        }
        Request::Poll { id, max } => {
            w.u8(Op::Poll as u8);
            w.u64(*id);
            w.u32(*max);
        }
        Request::Ack { id, cursor } => {
            w.u8(Op::Ack as u8);
            w.u64(*id);
            w.u64(*cursor);
        }
        Request::Resume { id, cursor } => {
            w.u8(Op::Resume as u8);
            w.u64(*id);
            w.u64(*cursor);
        }
        Request::Unsubscribe { id } => {
            w.u8(Op::Unsubscribe as u8);
            w.u64(*id);
        }
        Request::Metrics => w.u8(Op::Metrics as u8),
        Request::Health => w.u8(Op::Health as u8),
        Request::SlowLog { max } => {
            w.u8(Op::SlowLog as u8);
            w.u32(*max);
        }
        Request::TraceGet { trace_id } => {
            w.u8(Op::TraceGet as u8);
            w.u64(*trace_id);
        }
    }
    w.finish()
}

// ---------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------

/// Chase statistics on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireStats {
    pub fired: u64,
    pub rounds: u64,
    pub nulls: u64,
}

impl From<mm_chase::ChaseStats> for WireStats {
    fn from(s: mm_chase::ChaseStats) -> Self {
        WireStats { fired: s.fired as u64, rounds: s.rounds as u64, nulls: s.nulls as u64 }
    }
}

/// A successful response body, tagged with its op byte on the wire so
/// responses are self-describing.
#[derive(Debug, Clone)]
pub enum OkBody {
    Pong,
    Exchange { db: Database, stats: WireStats },
    Batch { slots: Vec<Result<(Database, WireStats), (u32, String)>> },
    Mediate { rows: Relation, chained: bool, degraded: bool },
    Explain { db: Database, stats: WireStats, text: String },
    Script { outputs: Vec<String> },
    /// A committed data-path write (`PutInstance`/`InsertBatch`): the
    /// commit sequence, which is also the feed event's position.
    Committed { seq: u64 },
    /// A registered subscription id.
    Subscribed { id: u64 },
    /// Drained notifications plus the lagging flag.
    Notifications { notifications: Vec<Notification>, lagging: bool },
    /// Acknowledged (`Ack`/`Resume`/`Unsubscribe`).
    Done,
    /// A metrics snapshot: stable sorted `(key, value)` rows.
    Metrics { entries: Vec<(String, u64)> },
    /// A health report.
    Health(HealthReport),
    /// Slow-query log entries as stable JSON lines, oldest first.
    SlowLog { lines: Vec<String> },
    /// Flight-recorder data for one trace id as stable JSON lines:
    /// the request summary, then its captured span tree if the request
    /// was slow enough to keep one.
    Trace { lines: Vec<String> },
}

/// What the health op reports: enough to drive a scrape/alert loop
/// without parsing metrics. All point-in-time reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Drain in progress: new work is refused with code 52.
    pub draining: bool,
    /// Hysteresis shed latch is on: new work is refused with code 50.
    pub shedding: bool,
    /// Requests admitted but not yet completed.
    pub inflight: u64,
    /// Jobs waiting in the executor queue.
    pub queue_depth: u64,
    /// The executor queue's capacity.
    pub queue_capacity: u64,
    /// Live sessions.
    pub sessions: u64,
    /// Requests completed since boot (0 without telemetry).
    pub completed: u64,
    /// Requests shed since boot, all causes (0 without telemetry).
    pub shed: u64,
    /// Telemetry events lost to ring eviction or sink failures.
    pub events_dropped: u64,
    /// Entries currently held by the slow-query log.
    pub slow_entries: u64,
}

fn encode_health(w: &mut Writer, h: &HealthReport) {
    w.bool(h.draining);
    w.bool(h.shedding);
    w.u64(h.inflight);
    w.u64(h.queue_depth);
    w.u64(h.queue_capacity);
    w.u64(h.sessions);
    w.u64(h.completed);
    w.u64(h.shed);
    w.u64(h.events_dropped);
    w.u64(h.slow_entries);
}

fn decode_health(r: &mut Reader) -> DecodeResult<HealthReport> {
    Ok(HealthReport {
        draining: r.bool()?,
        shedding: r.bool()?,
        inflight: r.u64()?,
        queue_depth: r.u64()?,
        queue_capacity: r.u64()?,
        sessions: r.u64()?,
        completed: r.u64()?,
        shed: r.u64()?,
        events_dropped: r.u64()?,
        slow_entries: r.u64()?,
    })
}

/// Wire tag for a [`ResyncCause`] (stable: clients key retry/alert
/// logic on it).
fn resync_cause_code(c: ResyncCause) -> u8 {
    match c {
        ResyncCause::Initial => 0,
        ResyncCause::Overflow => 1,
        ResyncCause::CursorLost => 2,
        ResyncCause::Budget => 3,
        ResyncCause::Load => 4,
        ResyncCause::Error => 5,
    }
}

fn decode_resync_cause(tag: u8) -> DecodeResult<ResyncCause> {
    Ok(match tag {
        0 => ResyncCause::Initial,
        1 => ResyncCause::Overflow,
        2 => ResyncCause::CursorLost,
        3 => ResyncCause::Budget,
        4 => ResyncCause::Load,
        5 => ResyncCause::Error,
        other => return Err(DecodeError(format!("unknown resync cause tag {other}"))),
    })
}

/// Encode one notification (the typed push frame's body).
pub fn encode_notification(w: &mut Writer, n: &Notification) {
    match n {
        Notification::Delta { seq, view_inserts } => {
            w.u8(0);
            w.u64(*seq);
            w.seq(view_inserts, |w, (view, tuples)| {
                w.str(view);
                w.seq(tuples, |w, t| t.encode(w));
            });
        }
        Notification::Resync { seq, cause, views } => {
            w.u8(1);
            w.u64(*seq);
            w.u8(resync_cause_code(*cause));
            encode_database(w, views);
        }
    }
}

/// Decode one notification.
pub fn decode_notification(r: &mut Reader) -> DecodeResult<Notification> {
    Ok(match r.u8()? {
        0 => {
            let seq = r.u64()?;
            let view_inserts = r.seq(|r| {
                let view = r.str()?;
                let tuples = r.seq(Tuple::decode)?;
                Ok((view, tuples))
            })?;
            Notification::Delta { seq, view_inserts }
        }
        1 => {
            let seq = r.u64()?;
            let cause = decode_resync_cause(r.u8()?)?;
            let views = decode_database(r)?;
            Notification::Resync { seq, cause, views }
        }
        other => return Err(DecodeError(format!("unknown notification tag {other}"))),
    })
}

fn encode_exchange_ok(w: &mut Writer, db: &Database, stats: &WireStats) {
    encode_database(w, db);
    w.u64(stats.fired);
    w.u64(stats.rounds);
    w.u64(stats.nulls);
}

fn decode_exchange_ok(r: &mut Reader) -> DecodeResult<(Database, WireStats)> {
    let db = decode_database(r)?;
    let fired = r.u64()?;
    let rounds = r.u64()?;
    let nulls = r.u64()?;
    Ok((db, WireStats { fired, rounds, nulls }))
}

/// Encode a success response payload.
pub fn encode_ok(req_id: u64, body: &OkBody) -> Bytes {
    let mut w = Writer::new();
    w.u64(req_id);
    w.u8(0);
    match body {
        OkBody::Pong => w.u8(Op::Ping as u8),
        OkBody::Exchange { db, stats } => {
            w.u8(Op::Exchange as u8);
            encode_exchange_ok(&mut w, db, stats);
        }
        OkBody::Batch { slots } => {
            w.u8(Op::ExchangeBatch as u8);
            w.seq(slots, |w, slot| match slot {
                Ok((db, stats)) => {
                    w.u8(0);
                    encode_exchange_ok(w, db, stats);
                }
                Err((code, message)) => {
                    w.u8(1);
                    w.u32(*code);
                    w.str(message);
                }
            });
        }
        OkBody::Mediate { rows, chained, degraded } => {
            w.u8(Op::Mediate as u8);
            encode_relation(&mut w, rows);
            w.bool(*chained);
            w.bool(*degraded);
        }
        OkBody::Explain { db, stats, text } => {
            w.u8(Op::ExplainExchange as u8);
            encode_exchange_ok(&mut w, db, stats);
            w.str(text);
        }
        OkBody::Script { outputs } => {
            w.u8(Op::Script as u8);
            w.seq(outputs, |w, line| w.str(line));
        }
        OkBody::Committed { seq } => {
            w.u8(Op::PutInstance as u8);
            w.u64(*seq);
        }
        OkBody::Subscribed { id } => {
            w.u8(Op::Subscribe as u8);
            w.u64(*id);
        }
        OkBody::Notifications { notifications, lagging } => {
            w.u8(Op::Poll as u8);
            w.seq(notifications, encode_notification);
            w.bool(*lagging);
        }
        OkBody::Done => w.u8(Op::Ack as u8),
        OkBody::Metrics { entries } => {
            w.u8(Op::Metrics as u8);
            w.seq(entries, |w, (k, v)| {
                w.str(k);
                w.u64(*v);
            });
        }
        OkBody::Health(h) => {
            w.u8(Op::Health as u8);
            encode_health(&mut w, h);
        }
        OkBody::SlowLog { lines } => {
            w.u8(Op::SlowLog as u8);
            w.seq(lines, |w, line| w.str(line));
        }
        OkBody::Trace { lines } => {
            w.u8(Op::TraceGet as u8);
            w.seq(lines, |w, line| w.str(line));
        }
    }
    w.finish()
}

/// Encode an error response payload.
pub fn encode_err(req_id: u64, code: u32, message: &str) -> Bytes {
    let mut w = Writer::new();
    w.u64(req_id);
    w.u8(1);
    w.u32(code);
    w.str(message);
    w.finish()
}

/// A decoded response: the request id it answers and either a result
/// body or a typed `(code, message)` rejection.
pub type DecodedResponse = (u64, Result<OkBody, (u32, String)>);

/// Decode a response payload (the client side of [`encode_ok`]/
/// [`encode_err`]).
pub fn decode_response(payload: Bytes) -> DecodeResult<DecodedResponse> {
    let mut r = Reader::new(payload);
    let req_id = r.u64()?;
    let status = r.u8()?;
    if status == 1 {
        let code = r.u32()?;
        let message = r.str()?;
        return Ok((req_id, Err((code, message))));
    }
    let op = r.u8()?;
    let body = match op {
        x if x == Op::Ping as u8 => OkBody::Pong,
        x if x == Op::Exchange as u8 => {
            let (db, stats) = decode_exchange_ok(&mut r)?;
            OkBody::Exchange { db, stats }
        }
        x if x == Op::ExchangeBatch as u8 => {
            let slots = r.seq(|r| {
                if r.u8()? == 0 {
                    decode_exchange_ok(r).map(Ok)
                } else {
                    let code = r.u32()?;
                    let message = r.str()?;
                    Ok(Err((code, message)))
                }
            })?;
            OkBody::Batch { slots }
        }
        x if x == Op::Mediate as u8 => {
            let rows = decode_relation(&mut r)?;
            let chained = r.bool()?;
            let degraded = r.bool()?;
            OkBody::Mediate { rows, chained, degraded }
        }
        x if x == Op::ExplainExchange as u8 => {
            let (db, stats) = decode_exchange_ok(&mut r)?;
            let text = r.str()?;
            OkBody::Explain { db, stats, text }
        }
        x if x == Op::Script as u8 => OkBody::Script { outputs: r.seq(|r| r.str())? },
        x if x == Op::PutInstance as u8 => OkBody::Committed { seq: r.u64()? },
        x if x == Op::Subscribe as u8 => OkBody::Subscribed { id: r.u64()? },
        x if x == Op::Poll as u8 => {
            let notifications = r.seq(decode_notification)?;
            let lagging = r.bool()?;
            OkBody::Notifications { notifications, lagging }
        }
        x if x == Op::Ack as u8 => OkBody::Done,
        x if x == Op::Metrics as u8 => {
            let entries = r.seq(|r| {
                let k = r.str()?;
                let v = r.u64()?;
                Ok((k, v))
            })?;
            OkBody::Metrics { entries }
        }
        x if x == Op::Health as u8 => OkBody::Health(decode_health(&mut r)?),
        x if x == Op::SlowLog as u8 => OkBody::SlowLog { lines: r.seq(|r| r.str())? },
        x if x == Op::TraceGet as u8 => OkBody::Trace { lines: r.seq(|r| r.str())? },
        other => return Err(DecodeError(format!("unknown response op tag {other}"))),
    };
    Ok((req_id, Ok(body)))
}

// ---------------------------------------------------------------------
// Instance codec.
//
// Since the repository journals tracked instances (v3 snapshots and
// the `InstancePut`/`InstanceDelta` WAL records), the `Value`/`Tuple`/
// `Relation`/`Database` codecs live in `mm_repository::codec`; the
// wire delegates to them, so a database is byte-identical on the wire
// and in the WAL. These wrappers survive as the protocol's public
// names for them.
// ---------------------------------------------------------------------

/// Encode a relation: attribute list then tuple list.
pub fn encode_relation(w: &mut Writer, rel: &Relation) {
    rel.encode(w);
}

/// Decode a relation (tuples are deduplicated on insert, the same
/// set semantics [`Relation::insert`] maintains).
pub fn decode_relation(r: &mut Reader) -> DecodeResult<Relation> {
    Relation::decode(r)
}

/// Encode a database: name, labeled-null watermark, relations.
pub fn encode_database(w: &mut Writer, db: &Database) {
    db.encode(w);
}

/// Decode a database.
pub fn decode_database(r: &mut Reader) -> DecodeResult<Database> {
    Database::decode(r)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use mm_instance::{RelSchema, Value};
    use mm_metamodel::DataType;

    fn sample_db() -> Database {
        let mut db = Database::new("S");
        let mut rel = Relation::new(RelSchema::of(&[
            ("Id", DataType::Int),
            ("Name", DataType::Text),
            ("Score", DataType::Double),
        ]));
        rel.insert(Tuple::new(vec![
            Value::Int(1),
            Value::text("ada"),
            Value::Double(0.5),
        ]));
        rel.insert(Tuple::new(vec![Value::Int(2), Value::Null, Value::Labeled(7)]));
        db.insert_relation("Person", rel);
        db.set_label_watermark(8);
        db
    }

    #[test]
    fn database_round_trips() {
        let db = sample_db();
        let mut w = Writer::new();
        encode_database(&mut w, &db);
        let mut r = Reader::new(w.finish());
        let back = decode_database(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.name, db.name);
        assert_eq!(back.label_watermark(), 8);
        assert!(back.relation("Person").unwrap().set_eq(db.relation("Person").unwrap()));
    }

    #[test]
    fn frame_round_trips_and_crc_detects_flips() {
        let payload = encode_request(
            9,
            250,
            0xDEAD_BEEF,
            &Request::Exchange {
                mapping: "M".into(),
                target_schema: "T".into(),
                source_db: sample_db(),
            },
        );
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let frame = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_LEN).unwrap();
        assert!(frame.crc_ok());
        let head = parse_head(&frame.payload).unwrap();
        assert_eq!(
            (head.req_id, head.trace_id, head.deadline_ms, head.op),
            (9, 0xDEAD_BEEF, 250, Op::Exchange as u8)
        );

        // Flip one payload bit (header intact): CRC must catch it.
        let mut torn = buf.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0x10;
        let frame = read_frame(&mut torn.as_slice(), DEFAULT_MAX_FRAME_LEN).unwrap();
        assert!(!frame.crc_ok());
    }

    #[test]
    fn oversized_and_desynced_frames_are_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"x").unwrap();
        buf[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::BadMagic(_))
        ));

        let mut buf = Vec::new();
        write_frame(&mut buf, &vec![0u8; 64]).unwrap();
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 16),
            Err(FrameError::TooLarge { len: 64, max: 16 })
        ));
    }

    #[test]
    fn propagation_frames_round_trip() {
        // Requests.
        let mut views = ViewSet::new("S", "V");
        views.push(mm_expr::ViewDef::new("All", Expr::base("Person")));
        let reqs = vec![
            Request::PutInstance { name: "I".into(), db: sample_db() },
            Request::InsertBatch {
                instance: "I".into(),
                inserts: vec![("Person".into(), vec![Tuple::new(vec![Value::Int(3)])])],
            },
            Request::Subscribe { instance: "I".into(), views },
            Request::Poll { id: 7, max: 16 },
            Request::Ack { id: 7, cursor: 42 },
            Request::Resume { id: 7, cursor: 42 },
            Request::Unsubscribe { id: 7 },
        ];
        for req in &reqs {
            let payload = encode_request(1, 0, 7, req);
            let head = parse_head(&payload).unwrap();
            let body = payload.slice(PRELUDE_LEN..payload.len());
            let back = decode_request(head.op, &mut Reader::new(body)).unwrap();
            // Decode-then-re-encode must be bit-identical (Debug output
            // is unstable for hash-backed dedup state).
            assert_eq!(encode_request(1, 0, 7, &back), payload);
        }

        // Responses: a delta and a resync notification.
        let ok = encode_ok(
            2,
            &OkBody::Notifications {
                notifications: vec![
                    Notification::Delta {
                        seq: 5,
                        view_inserts: vec![(
                            "All".into(),
                            vec![Tuple::new(vec![Value::Int(1)])],
                        )],
                    },
                    Notification::Resync {
                        seq: 6,
                        cause: ResyncCause::Overflow,
                        views: sample_db(),
                    },
                ],
                lagging: true,
            },
        );
        let (id, body) = decode_response(ok).unwrap();
        assert_eq!(id, 2);
        match body.unwrap() {
            OkBody::Notifications { notifications, lagging } => {
                assert!(lagging);
                assert_eq!(notifications.len(), 2);
                assert_eq!(notifications[0].seq(), 5);
                match &notifications[1] {
                    Notification::Resync { cause, views, .. } => {
                        assert_eq!(*cause, ResyncCause::Overflow);
                        assert!(views
                            .relation("Person")
                            .unwrap()
                            .set_eq(sample_db().relation("Person").unwrap()));
                    }
                    other => panic!("expected resync, got {other:?}"),
                }
            }
            other => panic!("wrong body: {other:?}"),
        }

        let (_, committed) = decode_response(encode_ok(3, &OkBody::Committed { seq: 9 })).unwrap();
        assert!(matches!(committed.unwrap(), OkBody::Committed { seq: 9 }));
        let (_, done) = decode_response(encode_ok(4, &OkBody::Done)).unwrap();
        assert!(matches!(done.unwrap(), OkBody::Done));
    }

    #[test]
    fn unknown_prelude_version_is_typed_and_keeps_the_req_id() {
        let mut payload = encode_request(77, 0, 0, &Request::Ping).to_vec();
        payload[0] = 99;
        match parse_head(&payload) {
            Err(PreludeError::Version { got: 99, req_id: 77 }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
        assert_eq!(parse_head(&payload[..PRELUDE_LEN - 1]), Err(PreludeError::Runt));
    }

    #[test]
    fn introspection_frames_round_trip() {
        let reqs = vec![
            Request::Metrics,
            Request::Health,
            Request::SlowLog { max: 32 },
            Request::TraceGet { trace_id: 0xFEED },
        ];
        for req in &reqs {
            let payload = encode_request(1, 0, 0, req);
            let head = parse_head(&payload).unwrap();
            assert!(is_introspection_op(head.op));
            let body = payload.slice(PRELUDE_LEN..payload.len());
            let back = decode_request(head.op, &mut Reader::new(body)).unwrap();
            assert_eq!(encode_request(1, 0, 0, &back), payload);
        }
        assert!(!is_introspection_op(Op::Exchange as u8));

        let entries = vec![("chase_rounds".to_string(), 4u64), ("server.completed".into(), 9)];
        let (_, body) =
            decode_response(encode_ok(6, &OkBody::Metrics { entries: entries.clone() })).unwrap();
        match body.unwrap() {
            OkBody::Metrics { entries: back } => assert_eq!(back, entries),
            other => panic!("wrong body: {other:?}"),
        }

        let health = HealthReport {
            draining: false,
            shedding: true,
            inflight: 2,
            queue_depth: 4,
            queue_capacity: 64,
            sessions: 3,
            completed: 100,
            shed: 5,
            events_dropped: 1,
            slow_entries: 2,
        };
        let (_, body) = decode_response(encode_ok(7, &OkBody::Health(health))).unwrap();
        match body.unwrap() {
            OkBody::Health(back) => assert_eq!(back, health),
            other => panic!("wrong body: {other:?}"),
        }

        let lines = vec!["{\"seq\":1}".to_string(), "{\"seq\":2}".to_string()];
        let (_, body) =
            decode_response(encode_ok(8, &OkBody::SlowLog { lines: lines.clone() })).unwrap();
        match body.unwrap() {
            OkBody::SlowLog { lines: back } => assert_eq!(back, lines),
            other => panic!("wrong body: {other:?}"),
        }
        let (_, body) =
            decode_response(encode_ok(9, &OkBody::Trace { lines: lines.clone() })).unwrap();
        match body.unwrap() {
            OkBody::Trace { lines: back } => assert_eq!(back, lines),
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let ok = encode_ok(
            4,
            &OkBody::Exchange { db: sample_db(), stats: WireStats { fired: 3, rounds: 1, nulls: 2 } },
        );
        let (id, body) = decode_response(ok).unwrap();
        assert_eq!(id, 4);
        match body.unwrap() {
            OkBody::Exchange { stats, .. } => {
                assert_eq!(stats, WireStats { fired: 3, rounds: 1, nulls: 2 });
            }
            other => panic!("wrong body: {other:?}"),
        }

        let err = encode_err(5, ERR_OVERLOADED, "shed");
        let (id, body) = decode_response(err).unwrap();
        assert_eq!(id, 5);
        assert_eq!(body.unwrap_err(), (ERR_OVERLOADED, "shed".to_string()));
    }
}
