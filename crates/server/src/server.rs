//! The threaded wire server: accept loop, per-session reader threads,
//! a bounded worker pool, admission control, and graceful drain.
//!
//! Robustness invariants (the point of this module, tested in
//! `tests/server.rs` at the workspace root):
//!
//! * **Everything is bounded.** Sessions are capped ([`ServerConfig::max_sessions`],
//!   over-cap connects get a typed `Overloaded` frame), the request
//!   queue is capped ([`ServerConfig::queue_depth`], full pushes get
//!   `QueueFull`), and frame payloads are capped
//!   ([`ServerConfig::max_frame_len`]) before any allocation.
//! * **Shed before decode.** When inflight requests cross
//!   [`ServerConfig::high_water`] the server enters shedding and
//!   rejects from the 22-byte prelude alone — no CRC, no body decode —
//!   until inflight falls back to [`ServerConfig::low_water`]
//!   (hysteresis, so admission does not flap at the boundary).
//! * **Deadlines are enforced in the engine.** Every admitted request
//!   runs under an [`ExecBudget`] carrying a hard deadline
//!   (client-requested, clamped to [`ServerConfig::max_deadline`]);
//!   the governor surfaces `ExecError::DeadlineExceeded` mid-chase at
//!   its safepoints, not just at request boundaries.
//! * **Sessions meter collectively.** Each session owns a
//!   [`SharedMeter`]; request governors attach to it
//!   ([`Governor::attach_shared`]) so [`ServerConfig::session_budget`]
//!   caps a tenant's *total* work across requests.
//! * **Client faults never leak.** Torn frames, garbage bytes, slow
//!   writers (per-IO timeouts) and mid-request disconnects release the
//!   session slot and return the inflight gauge to zero; workers never
//!   panic on hostile input (typed errors all the way down, plus a
//!   `catch_unwind` backstop).
//! * **Shutdown drains.** [`ServerHandle::shutdown`] refuses new work
//!   with typed `ShuttingDown` frames, drains the queue and inflight
//!   requests, then checkpoints a durable repository so restart
//!   recovers from the snapshot.

use crate::flight::{FlightRecorder, Outcome, RequestSummary};
use crate::protocol::{
    self, encode_err, encode_ok, parse_head, read_frame, write_frame, HealthReport, OkBody,
    PreludeError, RawFrame, Request, RequestHead, WireStats, ERR_BAD_CRC, ERR_BAD_MAGIC,
    ERR_BAD_VERSION, ERR_DEADLINE_EXCEEDED, ERR_FRAME_TOO_LARGE, ERR_OVERLOADED,
    ERR_QUEUE_FULL, ERR_SCRIPT, ERR_SHUTTING_DOWN,
};
use mm_engine::{run_script, Engine, EngineError};
use mm_guard::{ExecBudget, ExecError, Governor, SharedMeter};
use mm_instance::Database;
use mm_telemetry::{clock, Field, Hist, ServerCounter, ServerOp, Span, Telemetry};
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads and the accept loop wake to re-check
/// shutdown and session liveness.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Tuning knobs. The defaults are sized for tests and small
/// deployments; every limit exists so no resource is unbounded.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Concurrent session cap; further connects are refused with a
    /// typed `Overloaded` frame.
    pub max_sessions: usize,
    /// Executor queue capacity; full pushes are refused with `QueueFull`.
    pub queue_depth: usize,
    /// Inflight count at which admission starts shedding.
    pub high_water: usize,
    /// Inflight count at which shedding stops (must be ≤ `high_water`).
    pub low_water: usize,
    /// Frame payload cap, enforced before allocation.
    pub max_frame_len: u32,
    /// Per-IO timeout for socket reads/writes once a frame has started
    /// (slow-writer defense).
    pub io_timeout: Duration,
    /// Deadline applied when a request asks for none (`deadline_ms` 0).
    pub default_deadline: Duration,
    /// Upper clamp on client-requested deadlines.
    pub max_deadline: Duration,
    /// Budget caps shared by all requests of one session (metered
    /// through the session's [`SharedMeter`]).
    pub session_budget: ExecBudget,
    /// How long [`ServerHandle::shutdown`] waits for inflight work.
    pub drain_timeout: Duration,
    /// Service time past which a finished request keeps a full
    /// slow-log entry (span tree + EXPLAIN) in the flight recorder.
    pub slow_threshold: Duration,
    /// Flight-recorder recent ring capacity (per-request summaries).
    pub flight_recent: usize,
    /// Slow-query log capacity (full entries).
    pub flight_slow: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_sessions: 32,
            queue_depth: 64,
            high_water: 32,
            low_water: 16,
            max_frame_len: protocol::DEFAULT_MAX_FRAME_LEN,
            io_timeout: Duration::from_secs(2),
            default_deadline: Duration::from_secs(10),
            max_deadline: Duration::from_secs(60),
            session_budget: ExecBudget::unbounded(),
            drain_timeout: Duration::from_secs(5),
            slow_threshold: Duration::from_millis(250),
            flight_recent: 256,
            flight_slow: 64,
        }
    }
}

/// Poison-proof lock: a panicking holder must not wedge the server, so
/// a poisoned mutex yields its inner guard (the protected state is a
/// queue/stream, valid under any interleaving of completed writes).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Bounded executor queue.
// ---------------------------------------------------------------------

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct JobQueue {
    inner: Mutex<QueueInner>,
    cond: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner { jobs: VecDeque::new(), closed: false }),
            cond: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking push; hands the job back when the queue is full or
    /// closed (the caller turns that into a typed rejection).
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut inner = lock(&self.inner);
        if inner.closed || inner.jobs.len() >= self.capacity {
            return Err(job);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocking pop. Returns `None` only when the queue is closed *and*
    /// empty, so a closing server still drains queued work.
    fn pop(&self) -> Option<Job> {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .cond
                .wait_timeout(inner, POLL_INTERVAL)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    fn close(&self) {
        lock(&self.inner).closed = true;
        self.cond.notify_all();
    }

    fn len(&self) -> usize {
        lock(&self.inner).jobs.len()
    }
}

// ---------------------------------------------------------------------
// Sessions and jobs.
// ---------------------------------------------------------------------

/// Per-connection state shared between the session reader thread and
/// the workers answering its requests.
struct Session {
    /// Response writes serialize through this lock so concurrent
    /// workers (pipelined requests) cannot interleave frames.
    writer: Mutex<TcpStream>,
    /// The session-wide consumption pool request governors attach to.
    meter: Arc<SharedMeter>,
    /// Cleared on any write failure or client EOF; the reader thread
    /// exits on the next poll.
    alive: AtomicBool,
    /// Requests admitted on this session and not yet answered. An EOF
    /// with `pending > 0` is a mid-request disconnect, not a clean
    /// close — the distinction feeds the `server.disconnects` counter.
    pending: AtomicUsize,
}

impl Session {
    /// Write one response frame; on failure mark the session dead and
    /// count a disconnect (exactly once, on the transition).
    fn send(&self, shared: &Shared, payload: &[u8]) -> bool {
        let mut stream = lock(&self.writer);
        let _ = stream.set_write_timeout(Some(shared.cfg.io_timeout));
        match write_frame(&mut *stream, payload) {
            Ok(()) => true,
            Err(_) => {
                drop(stream);
                if self.alive.swap(false, Ordering::AcqRel) {
                    shared.tel.count_server(ServerCounter::Disconnects, 1);
                }
                false
            }
        }
    }
}

/// Decrements the inflight gauge (and the owning session's pending
/// count) when dropped — on the response path, on queue teardown, and
/// on worker panic alike, so neither gauge can leak whatever happens
/// to the request.
struct InflightGuard {
    shared: Arc<Shared>,
    session: Arc<Session>,
}

impl InflightGuard {
    fn new(shared: &Arc<Shared>, session: &Arc<Session>) -> Self {
        shared.inflight.fetch_add(1, Ordering::AcqRel);
        session.pending.fetch_add(1, Ordering::AcqRel);
        InflightGuard { shared: Arc::clone(shared), session: Arc::clone(session) }
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
        self.session.pending.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One admitted request, queued for a worker. Carries the raw frame:
/// CRC verification and body decode happen on the worker, after
/// admission control has already had its chance to shed.
struct Job {
    session: Arc<Session>,
    req_id: u64,
    op: u8,
    /// Client trace id from the prelude (0 = untraced).
    trace_id: u64,
    frame: RawFrame,
    deadline: Instant,
    /// When admission queued the job — the worker's pop time minus this
    /// is the queue-wait the latency histograms report.
    enqueued: Instant,
    _inflight: InflightGuard,
}

// ---------------------------------------------------------------------
// Shared server state.
// ---------------------------------------------------------------------

struct Shared {
    engine: Engine,
    cfg: ServerConfig,
    tel: Telemetry,
    queue: JobQueue,
    /// Requests admitted but not yet answered.
    inflight: AtomicUsize,
    /// Admission hysteresis state (high/low-water).
    shedding: AtomicBool,
    /// Set by [`ServerHandle::shutdown`]: refuse new work, drain.
    draining: AtomicBool,
    /// Set after drain: session/accept threads exit.
    stopped: AtomicBool,
    /// Live session count (the slot gauge).
    sessions: AtomicUsize,
    /// Per-request summaries and the slow-query log (DESIGN.md §15).
    flight: FlightRecorder,
}

/// The server: start with [`Server::start`], stop with
/// [`ServerHandle::shutdown`].
pub struct Server;

impl Server {
    /// Bind, spawn the accept loop and worker pool, and return a handle.
    /// The engine's telemetry handle (if any) receives all `server.*`
    /// counters, spans, and shed events.
    pub fn start(engine: Engine, cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let tel = engine.telemetry().clone();
        let workers = cfg.workers.max(1);
        let flight = FlightRecorder::new(
            cfg.flight_recent,
            cfg.flight_slow,
            cfg.slow_threshold.as_micros().min(u128::from(u64::MAX)) as u64,
        );
        let shared = Arc::new(Shared {
            engine,
            queue: JobQueue::new(cfg.queue_depth),
            cfg,
            tel,
            inflight: AtomicUsize::new(0),
            shedding: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            sessions: AtomicUsize::new(0),
            flight,
        });
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&accept_shared, &listener));
        Ok(ServerHandle { shared, addr, accept: Some(accept), workers: worker_handles })
    }
}

/// Handle to a running server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests admitted but not yet answered.
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::Acquire)
    }

    /// Live sessions holding a slot.
    pub fn active_sessions(&self) -> usize {
        self.shared.sessions.load(Ordering::Acquire)
    }

    /// The telemetry handle the server meters into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.tel
    }

    /// The flight recorder: recent-request summaries and the slow-query
    /// log, also reachable over the wire via the introspection ops.
    pub fn flight(&self) -> &FlightRecorder {
        &self.shared.flight
    }

    /// Graceful shutdown: refuse new requests with `ShuttingDown`,
    /// drain queued and inflight work (bounded by
    /// [`ServerConfig::drain_timeout`]), close sessions, join all
    /// threads, and checkpoint a durable repository so a restart
    /// recovers from the snapshot instead of replaying the WAL.
    pub fn shutdown(mut self) -> Result<(), EngineError> {
        let shared = &self.shared;
        shared.draining.store(true, Ordering::Release);
        let drain_until = Instant::now() + shared.cfg.drain_timeout;
        while (shared.inflight.load(Ordering::Acquire) > 0 || shared.queue.len() > 0)
            && Instant::now() < drain_until
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        shared.queue.close();
        shared.stopped.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let session_wait = Instant::now() + shared.cfg.drain_timeout;
        while shared.sessions.load(Ordering::Acquire) > 0 && Instant::now() < session_wait {
            std::thread::sleep(Duration::from_millis(2));
        }
        shared.engine.checkpoint()
    }
}

// ---------------------------------------------------------------------
// Accept loop.
// ---------------------------------------------------------------------

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.stopped.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_write_timeout(Some(shared.cfg.io_timeout));
                if shared.draining.load(Ordering::Acquire) {
                    refuse(stream, ERR_SHUTTING_DOWN, "server is draining");
                    continue;
                }
                if shared.sessions.load(Ordering::Acquire) >= shared.cfg.max_sessions {
                    shared.tel.count_server(ServerCounter::Rejected, 1);
                    refuse(stream, ERR_OVERLOADED, "session table full");
                    continue;
                }
                shared.sessions.fetch_add(1, Ordering::AcqRel);
                shared.tel.count_server(ServerCounter::Accepted, 1);
                let shared = Arc::clone(shared);
                // Detached on purpose: liveness is tracked through the
                // `sessions` gauge, which shutdown waits on.
                std::thread::spawn(move || {
                    session_loop(&shared, stream);
                    shared.sessions.fetch_sub(1, Ordering::AcqRel);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL_INTERVAL),
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Best-effort typed rejection to a connection that never got a
/// session slot.
fn refuse(mut stream: TcpStream, code: u32, message: &str) {
    let _ = write_frame(&mut stream, &encode_err(0, code, message));
}

// ---------------------------------------------------------------------
// Session reader loop.
// ---------------------------------------------------------------------

/// Read frames off one connection, apply admission control, and queue
/// accepted requests. Never panics on hostile bytes: every failure
/// path either answers with a typed error (framing intact) or closes
/// the connection (stream desynchronized), always releasing the slot.
fn session_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(mut reader) = stream.try_clone() else {
        return;
    };
    let session = Arc::new(Session {
        writer: Mutex::new(stream),
        meter: Arc::new(SharedMeter::new()),
        alive: AtomicBool::new(true),
        pending: AtomicUsize::new(0),
    });
    loop {
        if shared.stopped.load(Ordering::Acquire) || !session.alive.load(Ordering::Acquire) {
            break;
        }
        // Idle poll: wait for the first byte under POLL_INTERVAL so
        // shutdown and dead-session checks stay responsive, then switch
        // to the per-IO timeout once a frame has started (slow-writer
        // defense: a peer that starts a frame must keep bytes coming).
        let _ = reader.set_read_timeout(Some(POLL_INTERVAL));
        let mut probe = [0u8; 1];
        match reader.peek(&mut probe) {
            Ok(0) => {
                // EOF with work still inflight is a mid-request
                // disconnect, not a clean close.
                if session.pending.load(Ordering::Acquire) > 0 {
                    disconnect(shared, &session);
                }
                break;
            }
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(_) => {
                disconnect(shared, &session);
                break;
            }
        }
        let _ = reader.set_read_timeout(Some(shared.cfg.io_timeout));
        let frame = match read_frame(&mut reader, shared.cfg.max_frame_len) {
            Ok(frame) => frame,
            Err(protocol::FrameError::BadMagic(m)) => {
                // Desynchronized stream: answer (best effort) and close.
                session.send(shared, &encode_err(0, ERR_BAD_MAGIC, &format!("bad magic {m:#010x}")));
                break;
            }
            Err(protocol::FrameError::TooLarge { len, max }) => {
                session.send(
                    shared,
                    &encode_err(0, ERR_FRAME_TOO_LARGE, &format!("frame {len} exceeds cap {max}")),
                );
                break;
            }
            Err(protocol::FrameError::Io(_)) => {
                // Torn frame, slow-writer timeout, or reset mid-frame.
                disconnect(shared, &session);
                break;
            }
        };
        let head = match parse_head(&frame.payload) {
            Ok(head) => head,
            Err(PreludeError::Runt) => {
                // Runt payload; framing is intact, so the session survives.
                session.send(shared, &encode_err(0, protocol::ERR_DECODE, "payload shorter than request prelude"));
                continue;
            }
            Err(PreludeError::Version { got, req_id }) => {
                // The req_id field sits at a fixed offset in every
                // version, so even a version mismatch gets a typed reply
                // under the client's own id and the session survives.
                session.send(
                    shared,
                    &encode_err(
                        req_id,
                        ERR_BAD_VERSION,
                        &format!(
                            "unsupported protocol version {got} (this server speaks {})",
                            protocol::CURRENT_VERSION as u8
                        ),
                    ),
                );
                continue;
            }
        };
        admit(shared, &session, head, frame);
    }
    session.alive.store(false, Ordering::Release);
}

fn disconnect(shared: &Shared, session: &Session) {
    if session.alive.swap(false, Ordering::AcqRel) {
        shared.tel.count_server(ServerCounter::Disconnects, 1);
    }
}

/// Admission control: runs on the session thread against the 22-byte
/// prelude only. Order matters — the introspection bypass first (the
/// observability plane must answer precisely when the data plane is
/// refusing work), then drain refusal, the shedding hysteresis, and
/// the bounded queue. Every rejection leaves a flight-recorder summary
/// so shed storms are visible after the fact.
fn admit(shared: &Arc<Shared>, session: &Arc<Session>, head: RequestHead, frame: RawFrame) {
    if protocol::is_introspection_op(head.op) {
        answer_introspection(shared, session, &head, &frame);
        return;
    }
    if shared.draining.load(Ordering::Acquire) {
        shared.tel.count_server(ServerCounter::ShedShutdown, 1);
        reject(shared, session, &head, ERR_SHUTTING_DOWN, "server is draining");
        return;
    }
    let inflight = shared.inflight.load(Ordering::Acquire);
    if inflight >= shared.cfg.high_water {
        shared.shedding.store(true, Ordering::Release);
    } else if inflight <= shared.cfg.low_water {
        shared.shedding.store(false, Ordering::Release);
    }
    if shared.shedding.load(Ordering::Acquire) {
        // Counter and event stay 1:1 — the parity tests key on this.
        shared.tel.count_server(ServerCounter::Shed, 1);
        shared.tel.event(
            "server.shed",
            head.req_id.to_string(),
            vec![Field { key: "inflight", value: (inflight as u64).into() }],
        );
        reject(shared, session, &head, ERR_OVERLOADED, "overloaded: shedding load");
        return;
    }
    let requested = if head.deadline_ms == 0 {
        shared.cfg.default_deadline
    } else {
        Duration::from_millis(u64::from(head.deadline_ms))
    };
    let deadline = mm_guard::deadline_in(requested.min(shared.cfg.max_deadline));
    let job = Job {
        session: Arc::clone(session),
        req_id: head.req_id,
        op: head.op,
        trace_id: head.trace_id,
        frame,
        deadline,
        enqueued: clock::now(),
        _inflight: InflightGuard::new(shared, session),
    };
    if let Err(job) = shared.queue.try_push(job) {
        drop(job); // releases the inflight slot
        shared.tel.count_server(ServerCounter::QueueFull, 1);
        reject(shared, session, &head, ERR_QUEUE_FULL, "request queue full");
    }
}

/// Send a typed admission rejection and leave its trail in the flight
/// recorder (latency 0 — rejections never start service; rejected
/// outcomes always qualify for the slow log, so the postmortem of a
/// shed storm is one `SlowLog` op away).
fn reject(shared: &Shared, session: &Session, head: &RequestHead, code: u32, message: &str) {
    session.send(shared, &encode_err(head.req_id, code, message));
    shared.flight.record(
        RequestSummary {
            seq: 0,
            op: op_name(head.op),
            req_id: head.req_id,
            trace_id: head.trace_id,
            latency_us: 0,
            queue_wait_us: 0,
            steps: 0,
            rows: 0,
            code,
            degraded: false,
            outcome: Outcome::Rejected,
        },
        None,
    );
}

/// The metrics/flight identity of a wire op byte; `None` for bytes this
/// build does not know (they answer `ERR_UNKNOWN_OP` downstream).
fn op_kind(op: u8) -> Option<ServerOp> {
    use protocol::Op;
    Some(match op {
        x if x == Op::Ping as u8 => ServerOp::Ping,
        x if x == Op::Exchange as u8 => ServerOp::Exchange,
        x if x == Op::ExchangeBatch as u8 => ServerOp::ExchangeBatch,
        x if x == Op::Mediate as u8 => ServerOp::Mediate,
        x if x == Op::ExplainExchange as u8 => ServerOp::ExplainExchange,
        x if x == Op::Script as u8 => ServerOp::Script,
        x if x == Op::PutInstance as u8 => ServerOp::PutInstance,
        x if x == Op::InsertBatch as u8 => ServerOp::InsertBatch,
        x if x == Op::Subscribe as u8 => ServerOp::Subscribe,
        x if x == Op::Poll as u8 => ServerOp::Poll,
        x if x == Op::Ack as u8 => ServerOp::Ack,
        x if x == Op::Resume as u8 => ServerOp::Resume,
        x if x == Op::Unsubscribe as u8 => ServerOp::Unsubscribe,
        x if x == Op::Metrics as u8 => ServerOp::Metrics,
        x if x == Op::Health as u8 => ServerOp::Health,
        x if x == Op::SlowLog as u8 => ServerOp::SlowLog,
        x if x == Op::TraceGet as u8 => ServerOp::TraceGet,
        _ => return None,
    })
}

/// Stable flight-recorder name for an op byte.
fn op_name(op: u8) -> &'static str {
    op_kind(op).map_or("unknown", ServerOp::name)
}

/// Answer a read-only introspection request inline on the session
/// thread, bypassing admission control entirely: no queue slot, no
/// inflight charge, no engine work — just point-in-time reads of
/// state the server already holds. That is what keeps metrics, health,
/// and the slow log reachable while the server sheds load or drains,
/// which is exactly when an operator needs them.
fn answer_introspection(
    shared: &Arc<Shared>,
    session: &Arc<Session>,
    head: &RequestHead,
    frame: &RawFrame,
) {
    let started = clock::now();
    let payload = if !frame.crc_ok() {
        encode_err(head.req_id, ERR_BAD_CRC, "payload checksum mismatch")
    } else {
        let body = frame.payload.slice(protocol::PRELUDE_LEN..frame.payload.len());
        match protocol::decode_request(head.op, &mut mm_repository::codec::Reader::new(body)) {
            Err(fault) => encode_err(head.req_id, fault.code(), &fault.to_string()),
            Ok(request) => encode_ok(head.req_id, &introspect(shared, &request)),
        }
    };
    session.send(shared, &payload);
    // Introspection keeps its service-time histogram but stays out of
    // the flight ring and the Completed counter: the observer should
    // not scroll the observed data or pad the data-plane throughput.
    if let Some(op) = op_kind(head.op) {
        shared.tel.observe_op_service_us(op, clock::elapsed_us(started));
    }
}

/// Evaluate one introspection request against the server's own state.
fn introspect(shared: &Shared, request: &Request) -> OkBody {
    match request {
        Request::Metrics => {
            let entries = shared
                .tel
                .metrics()
                .map_or_else(Vec::new, |m| m.snapshot().values.into_iter().collect());
            OkBody::Metrics { entries }
        }
        Request::Health => OkBody::Health(health_report(shared)),
        Request::SlowLog { max } => {
            OkBody::SlowLog { lines: shared.flight.slow_lines(*max as usize) }
        }
        Request::TraceGet { trace_id } => {
            OkBody::Trace { lines: shared.flight.trace_lines(*trace_id) }
        }
        // decode_request is keyed on the op byte, and only the four
        // introspection ops reach this function.
        _ => OkBody::Done,
    }
}

/// A point-in-time health read: gauges from the server's own atomics,
/// lifetime counters from telemetry (0 when the server runs without).
fn health_report(shared: &Shared) -> HealthReport {
    let get = |c| shared.tel.metrics().map_or(0, |m| m.get_server(c));
    HealthReport {
        draining: shared.draining.load(Ordering::Acquire),
        shedding: shared.shedding.load(Ordering::Acquire),
        inflight: shared.inflight.load(Ordering::Acquire) as u64,
        queue_depth: shared.queue.len() as u64,
        queue_capacity: shared.cfg.queue_depth as u64,
        sessions: shared.sessions.load(Ordering::Acquire) as u64,
        completed: get(ServerCounter::Completed),
        shed: get(ServerCounter::Shed)
            + get(ServerCounter::QueueFull)
            + get(ServerCounter::ShedShutdown),
        events_dropped: shared.tel.events_dropped(),
        slow_entries: shared.flight.slow_len(),
    }
}

// ---------------------------------------------------------------------
// Workers.
// ---------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        // The engine's contract is typed errors, never panics; the
        // catch_unwind is a backstop so one violated invariant cannot
        // take the worker (and with it the queue) down.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process(shared, &job);
        }));
        if result.is_err() {
            job.session.send(
                shared,
                &encode_err(job.req_id, protocol::ERR_INTERNAL, "internal: request panicked"),
            );
        }
    }
}

/// What a slow request needs for a post-hoc plan EXPLAIN: the mapping
/// name and source instance, *moved* (never cloned) out of
/// exchange-shaped requests after execution borrowed them. The plan
/// explain runs only for requests that actually keep a slow-log entry,
/// after the reply bytes are on the wire — the fast path pays nothing.
struct ExplainCtx {
    mapping: String,
    source_db: Database,
}

/// Did the success body record a degradation the flight recorder should
/// flag (mediator fallback, propagation resync)?
fn body_degraded(body: &OkBody) -> bool {
    match body {
        OkBody::Mediate { degraded, .. } => *degraded,
        OkBody::Notifications { notifications, .. } => notifications
            .iter()
            .any(|n| matches!(n, mm_propagate::Notification::Resync { .. })),
        _ => false,
    }
}

/// Execute one admitted request end to end: deadline check, CRC
/// verification, body decode, governed execution, response — then the
/// observability epilogue: latency histograms, the flight-recorder
/// summary, and (for requests that qualify) the captured span tree
/// plus a plan EXPLAIN.
fn process(shared: &Arc<Shared>, job: &Job) {
    let tel = &shared.tel;
    let queue_wait_us = clock::elapsed_us(job.enqueued);
    tel.observe_hist(Hist::ServerQueueWaitUs, queue_wait_us);
    // Stamp the client's trace id on every span/event this request
    // produces, and keep a bounded copy for the slow log. The scope is
    // inert for untraced requests (they still get latency histograms
    // and an EXPLAIN, just no span tree).
    let mut scope = tel.trace_scope(job.trace_id, true);
    let started = clock::now();
    let mut span = Span::enter(tel, "server.request", job.req_id.to_string());
    span.field("op", u64::from(job.op));
    let mut code = 0u32;
    let mut degraded = false;
    let mut steps = 0u64;
    let mut rows = 0u64;
    let mut explain_ctx: Option<ExplainCtx> = None;
    let payload = if clock::now() > job.deadline {
        tel.count_server(ServerCounter::TimedOut, 1);
        code = ERR_DEADLINE_EXCEEDED;
        encode_err(job.req_id, ERR_DEADLINE_EXCEEDED, "deadline exceeded before execution")
    } else if !job.frame.crc_ok() {
        code = ERR_BAD_CRC;
        encode_err(job.req_id, ERR_BAD_CRC, "payload checksum mismatch")
    } else {
        let body = job.frame.payload.slice(protocol::PRELUDE_LEN..job.frame.payload.len());
        match protocol::decode_request(job.op, &mut mm_repository::codec::Reader::new(body)) {
            Err(fault) => {
                code = fault.code();
                encode_err(job.req_id, code, &fault.to_string())
            }
            Ok(request) => {
                let budget =
                    shared.cfg.session_budget.clone().with_deadline_at(job.deadline);
                let mut gov = Governor::attach_shared(&budget, &job.session.meter);
                let (outcome, ctx) = execute(shared, request, &mut gov);
                explain_ctx = ctx;
                gov.publish();
                steps = gov.steps_consumed();
                rows = gov.rows_consumed();
                match outcome {
                    Ok(body) => {
                        degraded = body_degraded(&body);
                        encode_ok(job.req_id, &body)
                    }
                    Err((c, message)) => {
                        if c == ERR_DEADLINE_EXCEEDED {
                            tel.count_server(ServerCounter::TimedOut, 1);
                        }
                        code = c;
                        encode_err(job.req_id, c, &message)
                    }
                }
            }
        }
    };
    job.session.send(shared, &payload);
    tel.count_server(ServerCounter::Completed, 1);
    span.finish();
    let latency_us = clock::elapsed_us(started);
    tel.observe_hist(Hist::ServerServiceUs, latency_us);
    if let Some(op) = op_kind(job.op) {
        tel.observe_op_service_us(op, latency_us);
    }
    let summary = RequestSummary {
        seq: 0,
        op: op_name(job.op),
        req_id: job.req_id,
        trace_id: job.trace_id,
        latency_us,
        queue_wait_us,
        steps,
        rows,
        code,
        degraded,
        outcome: if code == 0 { Outcome::Ok } else { Outcome::Error },
    };
    // The span drain and plan EXPLAIN run only for requests that keep a
    // slow entry, after the reply is already on the wire.
    let detail = shared.flight.qualifies(&summary).then(|| {
        let events = scope.take_captured();
        let explain = explain_ctx
            .and_then(|ctx| shared.engine.plan_explain(&ctx.mapping, &ctx.source_db).ok());
        (events, explain)
    });
    shared.flight.record(summary, detail);
}

fn engine_err(e: EngineError) -> (u32, String) {
    (protocol::engine_error_code(&e), e.to_string())
}

/// Run the decoded request. Besides the outcome, exchange-shaped
/// requests hand back an [`ExplainCtx`] (their mapping and source
/// instance, moved out after the borrowing calls return) so the flight
/// recorder can attach a plan EXPLAIN to slow entries without cloning
/// anything on the fast path.
fn execute(
    shared: &Shared,
    request: Request,
    gov: &mut Governor,
) -> (Result<OkBody, (u32, String)>, Option<ExplainCtx>) {
    let engine = &shared.engine;
    match request {
        Request::Ping => {
            let r = gov
                .check_now()
                .map(|()| OkBody::Pong)
                .map_err(|e: ExecError| (protocol::exec_error_code(&e), e.to_string()));
            (r, None)
        }
        Request::Exchange { mapping, target_schema, source_db } => {
            let r = engine
                .exchange_governed(&mapping, &target_schema, &source_db, gov)
                .map(|(db, stats)| OkBody::Exchange { db, stats: WireStats::from(stats) })
                .map_err(engine_err);
            (r, Some(ExplainCtx { mapping, source_db }))
        }
        Request::ExchangeBatch { items } => {
            let slots = items
                .iter()
                .map(|(mapping, target, db)| {
                    engine
                        .exchange_governed(mapping, target, db, gov)
                        .map(|(db, stats)| (db, WireStats::from(stats)))
                        .map_err(engine_err)
                })
                .collect();
            // The batch's first slot stands in for the EXPLAIN — one
            // plan per entry would defeat the cheap-epilogue rule.
            let ctx = items
                .into_iter()
                .next()
                .map(|(mapping, _, source_db)| ExplainCtx { mapping, source_db });
            (Ok(OkBody::Batch { slots }), ctx)
        }
        Request::Mediate { base_schema, chain, query, base_db } => {
            let r = engine
                .mediate_governed(&base_schema, &chain, &query, &base_db, gov)
                .map(|result| OkBody::Mediate {
                    rows: result.rows,
                    chained: matches!(result.mode, mm_runtime::MediationMode::Chained),
                    degraded: result.degradation.is_some(),
                })
                .map_err(engine_err);
            (r, None)
        }
        Request::ExplainExchange { mapping, target_schema, source_db } => {
            // The explain path runs under the engine's configured budget
            // (reports are for operators, not tenants); the deadline is
            // still honored at the boundary by the pre-execution check.
            let r = engine
                .explain_exchange(&mapping, &target_schema, &source_db)
                .map(|(db, stats, explain)| OkBody::Explain {
                    db,
                    stats: WireStats::from(stats),
                    text: explain.to_string(),
                })
                .map_err(engine_err);
            (r, Some(ExplainCtx { mapping, source_db }))
        }
        Request::Script { text } => {
            let r = run_script(engine, &text)
                .map(|outputs| OkBody::Script { outputs })
                .map_err(|e| (ERR_SCRIPT, e.to_string()));
            (r, None)
        }
        // Update propagation (DESIGN.md §14). Writes are amortized (one
        // WAL frame, one coalesced feed event per request); polls run
        // at the consumer's pace, including any resync recompute.
        Request::PutInstance { name, db } => {
            let r = engine
                .put_instance(&name, db)
                .map(|seq| OkBody::Committed { seq })
                .map_err(engine_err);
            (r, None)
        }
        Request::InsertBatch { instance, inserts } => {
            let r = engine
                .insert_batch(&instance, inserts)
                .map(|seq| OkBody::Committed { seq })
                .map_err(engine_err);
            (r, None)
        }
        Request::Subscribe { instance, views } => {
            let r = engine
                .subscribe(&instance, views)
                .map(|id| OkBody::Subscribed { id })
                .map_err(engine_err);
            (r, None)
        }
        Request::Poll { id, max } => {
            let r = engine
                .poll(id, max as usize)
                .map(|response| OkBody::Notifications {
                    notifications: response.notifications,
                    lagging: response.lagging,
                })
                .map_err(engine_err);
            (r, None)
        }
        Request::Ack { id, cursor } => {
            let r = engine.ack(id, cursor).map(|()| OkBody::Done).map_err(engine_err);
            (r, None)
        }
        Request::Resume { id, cursor } => {
            let r = engine.resume(id, cursor).map(|()| OkBody::Done).map_err(engine_err);
            (r, None)
        }
        Request::Unsubscribe { id } => {
            let r = engine.unsubscribe(id).map(|()| OkBody::Done).map_err(engine_err);
            (r, None)
        }
        // Introspection ops are answered inline at admission; a worker
        // never sees them.
        req @ (Request::Metrics
        | Request::Health
        | Request::SlowLog { .. }
        | Request::TraceGet { .. }) => (Ok(introspect(shared, &req)), None),
    }
}
