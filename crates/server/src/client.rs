//! A minimal blocking client for the wire protocol — the reference
//! peer the README quickstart, the verify smoke, and the fault tests
//! drive. One request at a time (no pipelining); the server itself
//! accepts pipelined requests from clients that interleave.

use crate::protocol::{
    self, decode_response, encode_request, read_frame, write_frame, OkBody, Request, WireStats,
};
use mm_expr::Expr;
use mm_instance::{Database, Relation};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

pub use crate::protocol::{ERR_OVERLOADED, ERR_QUEUE_FULL, ERR_SHUTTING_DOWN};

/// Client-side failure: transport, protocol, or a typed server
/// rejection carrying its stable wire code.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    /// The stream desynchronized or a frame failed to decode.
    Protocol(String),
    /// The server answered with a typed error frame.
    Rejected { code: u32, message: String },
}

impl ClientError {
    pub fn code(&self) -> Option<u32> {
        match self {
            ClientError::Rejected { code, .. } => Some(*code),
            _ => None,
        }
    }

    pub fn is_overloaded(&self) -> bool {
        self.code() == Some(ERR_OVERLOADED)
    }

    pub fn is_shutting_down(&self) -> bool {
        self.code() == Some(ERR_SHUTTING_DOWN)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Rejected { code, message } => {
                write!(f, "server rejected (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result of a mediation query.
#[derive(Debug, Clone)]
pub struct MediateReply {
    pub rows: Relation,
    /// True when the mediator answered hop-by-hop through the chain.
    pub chained: bool,
    /// True when the collapsed plan degraded under budget pressure.
    pub degraded: bool,
}

/// The blocking client.
pub struct Client {
    stream: TcpStream,
    next_req: u64,
    max_frame_len: u32,
    /// Deadline request (milliseconds) stamped on every call; 0 asks
    /// for the server default.
    deadline_ms: u32,
}

impl Client {
    /// Connect with a 30-second read timeout (a hung server must not
    /// hang the client forever).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client {
            stream,
            next_req: 1,
            max_frame_len: protocol::DEFAULT_MAX_FRAME_LEN,
            deadline_ms: 0,
        })
    }

    /// Request this per-call deadline (milliseconds, clamped by the
    /// server's `max_deadline`) on subsequent calls; 0 restores the
    /// server default.
    pub fn set_deadline_ms(&mut self, ms: u32) {
        self.deadline_ms = ms;
    }

    /// The underlying stream — escape hatch for fault-injection tests
    /// that write hostile bytes directly.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    fn call(&mut self, req: &Request) -> Result<OkBody, ClientError> {
        let req_id = self.next_req;
        self.next_req += 1;
        let payload = encode_request(req_id, self.deadline_ms, req);
        write_frame(&mut self.stream, &payload)?;
        let frame = read_frame(&mut self.stream, self.max_frame_len)
            .map_err(|e| match e {
                protocol::FrameError::Io(io) => ClientError::Io(io),
                other => ClientError::Protocol(other.to_string()),
            })?;
        if !frame.crc_ok() {
            return Err(ClientError::Protocol("response checksum mismatch".to_string()));
        }
        let (id, body) =
            decode_response(frame.payload).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if id != req_id {
            return Err(ClientError::Protocol(format!(
                "response for request {id}, expected {req_id}"
            )));
        }
        body.map_err(|(code, message)| ClientError::Rejected { code, message })
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            OkBody::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Data exchange: chase `source_db` through stored `mapping` into
    /// stored `target_schema`.
    pub fn exchange(
        &mut self,
        mapping: &str,
        target_schema: &str,
        source_db: &Database,
    ) -> Result<(Database, WireStats), ClientError> {
        let req = Request::Exchange {
            mapping: mapping.to_string(),
            target_schema: target_schema.to_string(),
            source_db: source_db.clone(),
        };
        match self.call(&req)? {
            OkBody::Exchange { db, stats } => Ok((db, stats)),
            other => Err(ClientError::Protocol(format!("expected exchange body, got {other:?}"))),
        }
    }

    /// Batch exchange; slots answer independently.
    #[allow(clippy::type_complexity)]
    pub fn exchange_batch(
        &mut self,
        items: &[(String, String, Database)],
    ) -> Result<Vec<Result<(Database, WireStats), (u32, String)>>, ClientError> {
        let req = Request::ExchangeBatch { items: items.to_vec() };
        match self.call(&req)? {
            OkBody::Batch { slots } => Ok(slots),
            other => Err(ClientError::Protocol(format!("expected batch body, got {other:?}"))),
        }
    }

    /// Mediation query through a chain of stored view sets.
    pub fn mediate(
        &mut self,
        base_schema: &str,
        chain: &[String],
        query: &Expr,
        base_db: &Database,
    ) -> Result<MediateReply, ClientError> {
        let req = Request::Mediate {
            base_schema: base_schema.to_string(),
            chain: chain.to_vec(),
            query: query.clone(),
            base_db: base_db.clone(),
        };
        match self.call(&req)? {
            OkBody::Mediate { rows, chained, degraded } => {
                Ok(MediateReply { rows, chained, degraded })
            }
            other => Err(ClientError::Protocol(format!("expected mediate body, got {other:?}"))),
        }
    }

    /// Exchange with the EXPLAIN report rendered server-side.
    pub fn explain_exchange(
        &mut self,
        mapping: &str,
        target_schema: &str,
        source_db: &Database,
    ) -> Result<(Database, WireStats, String), ClientError> {
        let req = Request::ExplainExchange {
            mapping: mapping.to_string(),
            target_schema: target_schema.to_string(),
            source_db: source_db.clone(),
        };
        match self.call(&req)? {
            OkBody::Explain { db, stats, text } => Ok((db, stats, text)),
            other => Err(ClientError::Protocol(format!("expected explain body, got {other:?}"))),
        }
    }

    /// Run a transactional operator script; returns its output lines.
    pub fn script(&mut self, text: &str) -> Result<Vec<String>, ClientError> {
        match self.call(&Request::Script { text: text.to_string() })? {
            OkBody::Script { outputs } => Ok(outputs),
            other => Err(ClientError::Protocol(format!("expected script body, got {other:?}"))),
        }
    }
}
