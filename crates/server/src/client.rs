//! A minimal blocking client for the wire protocol — the reference
//! peer the README quickstart, the verify smoke, and the fault tests
//! drive. One request at a time (no pipelining); the server itself
//! accepts pipelined requests from clients that interleave.

use crate::protocol::{
    self, decode_response, encode_request, read_frame, write_frame, HealthReport, OkBody,
    Request, WireStats,
};
use mm_expr::{Expr, ViewSet};
use mm_instance::{Database, Relation, Tuple};
use mm_propagate::Notification;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

pub use crate::protocol::{ERR_OVERLOADED, ERR_QUEUE_FULL, ERR_SHUTTING_DOWN};

/// Client-side failure: transport, protocol, or a typed server
/// rejection carrying its stable wire code.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    /// The stream desynchronized or a frame failed to decode.
    Protocol(String),
    /// A well-formed response answered the wrong request — on this
    /// strictly request/response client that means the stream skewed
    /// (e.g. a stale response from before a timeout). Typed so callers
    /// can tell skew (reconnect) from garbage (give up).
    ReqIdMismatch { got: u64, expected: u64 },
    /// The server answered with a typed error frame.
    Rejected { code: u32, message: String },
}

impl ClientError {
    pub fn code(&self) -> Option<u32> {
        match self {
            ClientError::Rejected { code, .. } => Some(*code),
            _ => None,
        }
    }

    pub fn is_overloaded(&self) -> bool {
        self.code() == Some(ERR_OVERLOADED)
    }

    pub fn is_shutting_down(&self) -> bool {
        self.code() == Some(ERR_SHUTTING_DOWN)
    }

    /// `retry_after`-style triage for a failed call, given how many
    /// retries have already happened (`attempt`, 0-based).
    ///
    /// Transient overload — the admission rejections `Overloaded` (50)
    /// and `QueueFull` (51) — earns a capped, jittered exponential
    /// backoff: the server shed this request to protect itself, and
    /// the same request is expected to succeed once pressure drops.
    /// `ShuttingDown` (52) fails fast: the server is draining for good
    /// and retrying against it only delays failover. Every other error
    /// (typed engine errors, protocol faults, I/O) also fails fast —
    /// retrying a malformed request or a desynchronized stream cannot
    /// help.
    pub fn retry_advice(&self, attempt: u32) -> RetryAdvice {
        match self.code() {
            Some(ERR_OVERLOADED) | Some(ERR_QUEUE_FULL) => {
                RetryAdvice::After(backoff_delay(attempt))
            }
            _ => RetryAdvice::FailFast,
        }
    }
}

/// What [`ClientError::retry_advice`] tells the caller's retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryAdvice {
    /// Transient overload: wait this long, then retry.
    After(Duration),
    /// Drain or a non-admission error: do not retry.
    FailFast,
}

/// Backoff for retry `attempt` (0-based): exponential from 10 ms,
/// capped at 1 s, with deterministic multiplicative-hash jitter in the
/// upper half of the window so a fleet of clients rejected together
/// does not retry in lockstep. No RNG dependency — the jitter is a
/// pure function of the attempt number, which keeps retry schedules
/// reproducible in tests.
pub fn backoff_delay(attempt: u32) -> Duration {
    let base_ms = 10u64.saturating_mul(1u64 << attempt.min(7)).min(1_000);
    let jitter = (u64::from(attempt) + 1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        % (base_ms / 2 + 1);
    Duration::from_millis(base_ms / 2 + jitter)
}

/// SplitMix64 finalizer: the trace-id generator. A pure bijective
/// mixer — deterministic per (connection, request) pair, well spread,
/// and dependency-free.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::ReqIdMismatch { got, expected } => {
                write!(f, "response for request {got}, expected {expected}")
            }
            ClientError::Rejected { code, message } => {
                write!(f, "server rejected (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result of a mediation query.
#[derive(Debug, Clone)]
pub struct MediateReply {
    pub rows: Relation,
    /// True when the mediator answered hop-by-hop through the chain.
    pub chained: bool,
    /// True when the collapsed plan degraded under budget pressure.
    pub degraded: bool,
}

/// The blocking client.
pub struct Client {
    stream: TcpStream,
    next_req: u64,
    max_frame_len: u32,
    /// Deadline request (milliseconds) stamped on every call; 0 asks
    /// for the server default.
    deadline_ms: u32,
    /// Per-connection trace seed; each call derives its trace id from
    /// this and the request counter.
    trace_seed: u64,
    /// The trace id stamped on the most recent call (0 before any).
    last_trace_id: u64,
    /// When false, calls go out untraced (trace id 0).
    tracing: bool,
}

impl Client {
    /// Connect with a 30-second read timeout (a hung server must not
    /// hang the client forever).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        // Process-unique connection counter -> splitmix-style seed: no
        // RNG dependency, no clock, and distinct across the clients of
        // one process (trace ids only need to avoid colliding within a
        // server's bounded flight-recorder window).
        static CONN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let conn = CONN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(Client {
            stream,
            next_req: 1,
            max_frame_len: protocol::DEFAULT_MAX_FRAME_LEN,
            deadline_ms: 0,
            trace_seed: mix64(conn ^ 0x6D6D_5F74_7261_6365), // "mm_trace"
            last_trace_id: 0,
            tracing: true,
        })
    }

    /// Request this per-call deadline (milliseconds, clamped by the
    /// server's `max_deadline`) on subsequent calls; 0 restores the
    /// server default.
    pub fn set_deadline_ms(&mut self, ms: u32) {
        self.deadline_ms = ms;
    }

    /// Turn trace-id stamping on or off (on by default). Untraced calls
    /// carry trace id 0: the server serves them identically but records
    /// no span tree for them.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// The trace id stamped on the most recent call (0 before the first
    /// call or with tracing off) — pass it to [`Client::trace`] to pull
    /// the server-side record of that request.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    /// The underlying stream — escape hatch for fault-injection tests
    /// that write hostile bytes directly.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    fn call(&mut self, req: &Request) -> Result<OkBody, ClientError> {
        let req_id = self.next_req;
        self.next_req += 1;
        let trace_id = if self.tracing {
            // Guaranteed non-zero: 0 is the untraced sentinel.
            mix64(self.trace_seed.wrapping_add(req_id)) | 1
        } else {
            0
        };
        self.last_trace_id = trace_id;
        let payload = encode_request(req_id, self.deadline_ms, trace_id, req);
        write_frame(&mut self.stream, &payload)?;
        let frame = read_frame(&mut self.stream, self.max_frame_len)
            .map_err(|e| match e {
                protocol::FrameError::Io(io) => ClientError::Io(io),
                other => ClientError::Protocol(other.to_string()),
            })?;
        if !frame.crc_ok() {
            return Err(ClientError::Protocol("response checksum mismatch".to_string()));
        }
        let (id, body) =
            decode_response(frame.payload).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if id != req_id {
            return Err(ClientError::ReqIdMismatch { got: id, expected: req_id });
        }
        body.map_err(|(code, message)| ClientError::Rejected { code, message })
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            OkBody::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Data exchange: chase `source_db` through stored `mapping` into
    /// stored `target_schema`.
    pub fn exchange(
        &mut self,
        mapping: &str,
        target_schema: &str,
        source_db: &Database,
    ) -> Result<(Database, WireStats), ClientError> {
        let req = Request::Exchange {
            mapping: mapping.to_string(),
            target_schema: target_schema.to_string(),
            source_db: source_db.clone(),
        };
        match self.call(&req)? {
            OkBody::Exchange { db, stats } => Ok((db, stats)),
            other => Err(ClientError::Protocol(format!("expected exchange body, got {other:?}"))),
        }
    }

    /// Batch exchange; slots answer independently.
    #[allow(clippy::type_complexity)]
    pub fn exchange_batch(
        &mut self,
        items: &[(String, String, Database)],
    ) -> Result<Vec<Result<(Database, WireStats), (u32, String)>>, ClientError> {
        let req = Request::ExchangeBatch { items: items.to_vec() };
        match self.call(&req)? {
            OkBody::Batch { slots } => Ok(slots),
            other => Err(ClientError::Protocol(format!("expected batch body, got {other:?}"))),
        }
    }

    /// Mediation query through a chain of stored view sets.
    pub fn mediate(
        &mut self,
        base_schema: &str,
        chain: &[String],
        query: &Expr,
        base_db: &Database,
    ) -> Result<MediateReply, ClientError> {
        let req = Request::Mediate {
            base_schema: base_schema.to_string(),
            chain: chain.to_vec(),
            query: query.clone(),
            base_db: base_db.clone(),
        };
        match self.call(&req)? {
            OkBody::Mediate { rows, chained, degraded } => {
                Ok(MediateReply { rows, chained, degraded })
            }
            other => Err(ClientError::Protocol(format!("expected mediate body, got {other:?}"))),
        }
    }

    /// Exchange with the EXPLAIN report rendered server-side.
    pub fn explain_exchange(
        &mut self,
        mapping: &str,
        target_schema: &str,
        source_db: &Database,
    ) -> Result<(Database, WireStats, String), ClientError> {
        let req = Request::ExplainExchange {
            mapping: mapping.to_string(),
            target_schema: target_schema.to_string(),
            source_db: source_db.clone(),
        };
        match self.call(&req)? {
            OkBody::Explain { db, stats, text } => Ok((db, stats, text)),
            other => Err(ClientError::Protocol(format!("expected explain body, got {other:?}"))),
        }
    }

    /// Run a transactional operator script; returns its output lines.
    pub fn script(&mut self, text: &str) -> Result<Vec<String>, ClientError> {
        match self.call(&Request::Script { text: text.to_string() })? {
            OkBody::Script { outputs } => Ok(outputs),
            other => Err(ClientError::Protocol(format!("expected script body, got {other:?}"))),
        }
    }

    // --- update propagation ------------------------------------------------

    /// Create or replace a tracked instance wholesale (bulk load): one
    /// WAL frame and one coalesced feed event server-side, however
    /// many tuples `db` carries. Returns the commit sequence.
    pub fn put_instance(&mut self, name: &str, db: &Database) -> Result<u64, ClientError> {
        let req = Request::PutInstance { name: name.to_string(), db: db.clone() };
        match self.call(&req)? {
            OkBody::Committed { seq } => Ok(seq),
            other => Err(ClientError::Protocol(format!("expected committed body, got {other:?}"))),
        }
    }

    /// Insert-only batch against a tracked instance; subscribers see
    /// one coalesced notification. Returns the commit sequence.
    pub fn insert_batch(
        &mut self,
        instance: &str,
        inserts: &[(String, Vec<Tuple>)],
    ) -> Result<u64, ClientError> {
        let req = Request::InsertBatch {
            instance: instance.to_string(),
            inserts: inserts.to_vec(),
        };
        match self.call(&req)? {
            OkBody::Committed { seq } => Ok(seq),
            other => Err(ClientError::Protocol(format!("expected committed body, got {other:?}"))),
        }
    }

    /// Register a continuous query over a tracked instance. The first
    /// poll delivers the bootstrap snapshot. Returns the subscription
    /// id — keep it (with the last acked cursor) to resume after a
    /// disconnect.
    pub fn subscribe(&mut self, instance: &str, views: &ViewSet) -> Result<u64, ClientError> {
        let req = Request::Subscribe { instance: instance.to_string(), views: views.clone() };
        match self.call(&req)? {
            OkBody::Subscribed { id } => Ok(id),
            other => Err(ClientError::Protocol(format!("expected subscribed body, got {other:?}"))),
        }
    }

    /// Drain up to `max` pending notifications. The `bool` is the
    /// lagging flag: true while the subscriber's server-side queue sits
    /// above the high-water mark — poll harder or expect a resync.
    pub fn poll(&mut self, id: u64, max: u32) -> Result<(Vec<Notification>, bool), ClientError> {
        match self.call(&Request::Poll { id, max })? {
            OkBody::Notifications { notifications, lagging } => Ok((notifications, lagging)),
            other => Err(ClientError::Protocol(format!("expected notifications, got {other:?}"))),
        }
    }

    /// Durably acknowledge everything up to `cursor`: the server
    /// journals the cursor advance, so it survives a crash on either
    /// side.
    pub fn ack(&mut self, id: u64, cursor: u64) -> Result<(), ClientError> {
        match self.call(&Request::Ack { id, cursor })? {
            OkBody::Done => Ok(()),
            other => Err(ClientError::Protocol(format!("expected done body, got {other:?}"))),
        }
    }

    /// After reconnecting, resume subscription `id` from the last
    /// durably acked `cursor`. Streaming continues if the server still
    /// covers everything past the cursor; otherwise the next poll
    /// delivers a cursor-lost resync snapshot.
    pub fn resume(&mut self, id: u64, cursor: u64) -> Result<(), ClientError> {
        match self.call(&Request::Resume { id, cursor })? {
            OkBody::Done => Ok(()),
            other => Err(ClientError::Protocol(format!("expected done body, got {other:?}"))),
        }
    }

    /// Drop subscription `id`.
    pub fn unsubscribe(&mut self, id: u64) -> Result<(), ClientError> {
        match self.call(&Request::Unsubscribe { id })? {
            OkBody::Done => Ok(()),
            other => Err(ClientError::Protocol(format!("expected done body, got {other:?}"))),
        }
    }

    // --- introspection (DESIGN.md §15) -------------------------------------

    /// A point-in-time metrics snapshot: stable sorted `(key, value)`
    /// rows (empty when the server runs without telemetry). Answered
    /// inline by the server even while it sheds or drains.
    pub fn metrics(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        match self.call(&Request::Metrics)? {
            OkBody::Metrics { entries } => Ok(entries),
            other => Err(ClientError::Protocol(format!("expected metrics body, got {other:?}"))),
        }
    }

    /// Liveness, queue depth, and shed/drain state — enough to drive a
    /// scrape/alert loop without parsing metrics. Answered inline even
    /// while the server sheds or drains.
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        match self.call(&Request::Health)? {
            OkBody::Health(report) => Ok(report),
            other => Err(ClientError::Protocol(format!("expected health body, got {other:?}"))),
        }
    }

    /// Up to `max` slow-query log entries (0 = everything retained) as
    /// stable JSON lines, oldest first: summary fields plus the
    /// captured span tree and, for exchange-shaped ops, a plan EXPLAIN.
    pub fn slow_log(&mut self, max: u32) -> Result<Vec<String>, ClientError> {
        match self.call(&Request::SlowLog { max })? {
            OkBody::SlowLog { lines } => Ok(lines),
            other => Err(ClientError::Protocol(format!("expected slow-log body, got {other:?}"))),
        }
    }

    /// Everything the server's flight recorder holds for `trace_id`
    /// (see [`Client::last_trace_id`]), as stable JSON lines. Empty for
    /// id 0, unknown ids, and requests already evicted from the rings.
    pub fn trace(&mut self, trace_id: u64) -> Result<Vec<String>, ClientError> {
        match self.call(&Request::TraceGet { trace_id })? {
            OkBody::Trace { lines } => Ok(lines),
            other => Err(ClientError::Protocol(format!("expected trace body, got {other:?}"))),
        }
    }

    /// Run `op` under [`ClientError::retry_advice`]: transient overload
    /// rejections (50/51) back off and retry up to `max_attempts` total
    /// tries; drain (52) and every other error return immediately.
    pub fn retrying<T>(
        &mut self,
        max_attempts: u32,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0;
        loop {
            match op(self) {
                Ok(v) => return Ok(v),
                Err(e) => match e.retry_advice(attempt) {
                    RetryAdvice::After(delay) if attempt + 1 < max_attempts => {
                        std::thread::sleep(delay);
                        attempt += 1;
                    }
                    _ => return Err(e),
                },
            }
        }
    }
}
