//! `mm-server`: the fault-tolerant wire front-end of the model
//! management engine.
//!
//! The paper frames model management as a *system* serving
//! user-oriented tools, not a library linked into one process (§2,
//! Figure 1). This crate is that system boundary: a zero-dependency
//! threaded TCP server (std `TcpListener`, no async runtime) exposing
//! exchange, batch exchange, mediation queries, EXPLAIN, and
//! transactional script execution over a hand-rolled length-prefixed,
//! CRC32-framed protocol that reuses the repository's WAL codec
//! discipline.
//!
//! Robustness is the headline, not an afterthought — see [`server`]
//! for the invariants (bounded queues with typed rejections,
//! shed-before-decode admission control with hysteresis, per-request
//! hard deadlines enforced inside the engine via
//! `ExecError::DeadlineExceeded`, per-session shared budgets, per-IO
//! timeouts, and a graceful drain that checkpoints the repository).
//! [`protocol`] defines the frames and the stable error-code table;
//! [`client`] is the bundled minimal client.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod client;
pub mod flight;
pub mod protocol;
pub mod server;

pub use client::{backoff_delay, Client, ClientError, MediateReply, RetryAdvice};
pub use flight::{FlightRecorder, Outcome, RequestSummary, SlowEntry};
pub use protocol::{
    decode_notification, encode_notification, engine_error_code, exec_error_code,
    is_introspection_op, propagate_error_code, HealthReport, Op, Request, WireStats,
    DEFAULT_MAX_FRAME_LEN, ERR_UNKNOWN_INSTANCE, ERR_UNKNOWN_SUBSCRIBER,
};
pub use server::{Server, ServerConfig, ServerHandle};
