//! TransGen: generating executable transformations from mapping
//! constraints (§4 of the paper).
//!
//! The input is a set of Figure 2-style constraints — equalities between
//! a selected/projected slice of an entity hierarchy and a relational
//! expression. TransGen compiles them into two view sets, following the
//! ADO.NET mapping-compilation design the paper describes:
//!
//! * an **update view** per table: the source expressed as a function of
//!   the target entity model, used to translate entity updates into table
//!   updates ([`update_views()`]);
//! * a **query view** per entity set: the entity model reconstructed from
//!   the tables — the left-outer-join + `CASE WHEN _from…` query of the
//!   paper's Figure 3 ([`query_views()`]).
//!
//! "The views must be lossless … the composition of the update view with
//! the query view must equal the identity on the target. It is called
//! **roundtripping**." [`roundtrip`] checks exactly that, both on sample
//! instances and via coverage analysis.
//!
//! [`corr`] covers §3.1.2 — turning correspondences into mapping
//! constraints: the snowflake interpretation of the paper's Figure 4, and
//! the Clio'00-style "correspondences as a visual programming language"
//! baseline that generates transformations directly.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod constraint_prop;
pub mod corr;
pub mod fragments;
pub mod query_views;
pub mod roundtrip;
pub mod update_views;

pub use constraint_prop::{
    check_implication, propagate_to_tables, unexpressible_constraints, PropagatedConstraint,
    Unexpressible,
};
pub use corr::{correspondences_to_views, snowflake_constraints, CorrError};
pub use fragments::{parse_fragments, Fragment, TransGenError};
pub use query_views::query_views;
pub use roundtrip::{check_coverage, verify_roundtrip, CoverageGap, RoundtripReport};
pub use update_views::update_views;
