//! Update-view generation: the tables as functions of the entity model.
//!
//! This is the easy direction of the ADO.NET compilation: each Figure 2
//! constraint *is* the definition of its table over the entity schema —
//! the compiler only has to rename the entity attribute names back to the
//! table's column names. The views translate entity-level updates into
//! table updates (§5, "Update propagation").

use crate::fragments::{Fragment, TransGenError};
use mm_expr::{Expr, Predicate, ViewDef, ViewSet};
use mm_metamodel::Schema;

#[allow(clippy::expect_used)] // invariant-backed: see expect messages
/// Generate update views (one per fragment whose relational side is a
/// bare table) over the entity schema.
pub fn update_views(
    er: &Schema,
    rel: &Schema,
    fragments: &[Fragment],
) -> Result<ViewSet, TransGenError> {
    let mut out = ViewSet::new(er.name.clone(), rel.name.clone());
    for f in fragments {
        let Some(table) = &f.table else {
            // a computed relational side is not updatable through this
            // fragment; skip (the roundtrip checker will flag it if the
            // table is otherwise uncovered)
            continue;
        };
        // source side: σ_types(ext(extent_type)) projected to f.columns
        let ext = mm_expr::entity_extent(er, &f.extent_type)
            .map_err(|e| TransGenError::BadReference(e.to_string()))?;
        let mut e = ext;
        if !f.types.is_empty() {
            let mut pred: Option<Predicate> = None;
            for alt in &f.types {
                let p = Predicate::IsOf { ty: alt.ty.clone(), only: alt.only };
                pred = Some(match pred {
                    None => p,
                    Some(q) => q.or(p),
                });
            }
            e = e.select(pred.expect("non-empty types"));
        }
        e = e.project_owned(f.columns.clone());
        // rename entity attribute names to the table's column names
        let table_attrs = rel
            .instance_layout(table)
            .ok_or_else(|| TransGenError::BadReference(format!("unknown table `{table}`")))?;
        let renames: Vec<(String, String)> = f
            .columns
            .iter()
            .zip(&table_attrs)
            .filter(|(c, a)| *c != &a.name)
            .map(|(c, a)| (c.clone(), a.name.clone()))
            .collect();
        if !renames.is_empty() {
            e = Expr::Rename { input: Box::new(e), renames };
        }
        out.push(ViewDef::new(table.clone(), e));
    }
    if out.is_empty() {
        return Err(TransGenError::Empty);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::parse_fragments;
    use crate::fragments::tests::{fig2_er, fig2_mapping, fig2_rel};
    use mm_eval::materialize_views;
    use mm_instance::{Database, Value};

    fn fig2_entities() -> Database {
        let er = fig2_er();
        let mut db = Database::empty_of(&er);
        db.insert_entity("Person", "Person", vec![Value::Int(1), Value::text("pat")]);
        db.insert_entity(
            "Employee",
            "Employee",
            vec![Value::Int(2), Value::text("eve"), Value::text("hr")],
        );
        db.insert_entity(
            "Customer",
            "Customer",
            vec![
                Value::Int(3),
                Value::text("carl"),
                Value::Int(700),
                Value::text("5 Rue"),
            ],
        );
        db
    }

    #[test]
    fn update_views_populate_tables_from_entities() {
        let er = fig2_er();
        let rel = fig2_rel();
        let frags = parse_fragments(&er, &rel, &fig2_mapping(&er)).unwrap();
        let uv = update_views(&er, &rel, &frags).unwrap();
        assert_eq!(uv.len(), 3);
        let tables = materialize_views(&uv, &er, &fig2_entities()).unwrap();
        // HR holds persons + employees (pat, eve)
        assert_eq!(tables.relation("HR").unwrap().len(), 2);
        // Empl holds employees only
        assert_eq!(tables.relation("Empl").unwrap().len(), 1);
        // Client holds customers, with renamed Score/Addr columns
        let client = tables.relation("Client").unwrap();
        assert_eq!(client.len(), 1);
        let names: Vec<&str> = client.schema.names().collect();
        assert_eq!(names, ["Id", "Name", "Score", "Addr"]);
    }

    #[test]
    fn customers_never_leak_into_hr() {
        let er = fig2_er();
        let rel = fig2_rel();
        let frags = parse_fragments(&er, &rel, &fig2_mapping(&er)).unwrap();
        let uv = update_views(&er, &rel, &frags).unwrap();
        let tables = materialize_views(&uv, &er, &fig2_entities()).unwrap();
        let hr = tables.relation("HR").unwrap();
        assert!(hr.iter().all(|t| t.values()[0] != Value::Int(3)));
    }
}
