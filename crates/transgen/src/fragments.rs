//! Recognizing Figure 2-style mapping constraints as *fragments*.
//!
//! A fragment is the structured reading of one constraint
//! `π_cols(σ_types(extent)) = table-expr`: which slice of which entity
//! hierarchy equals which relational expression. TransGen's compilation
//! works on fragments rather than raw ASTs.

use mm_expr::{entity_extent, Expr, Mapping, MappingConstraint, Predicate};
use mm_metamodel::Schema;
use std::fmt;

/// One type alternative of a fragment's membership test: `IS OF ty` /
/// `IS OF ONLY ty`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeAlt {
    pub ty: String,
    pub only: bool,
}

/// A structured Figure 2 constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Fragment {
    /// The entity type whose extent the source side selects from.
    pub extent_type: String,
    /// Root of the hierarchy `extent_type` belongs to.
    pub root: String,
    /// OR-ed type membership alternatives; empty means "all of the
    /// extent" (equivalent to `IS OF extent_type`).
    pub types: Vec<TypeAlt>,
    /// Projected entity attributes (in order), first ones forming the key.
    pub columns: Vec<String>,
    /// The relational side, with output columns positionally matching
    /// `columns`.
    pub table_expr: Expr,
    /// Table name when the relational side is a bare relation scan.
    pub table: Option<String>,
}

impl Fragment {
    /// Does an entity of most-derived type `ty` belong to this fragment?
    pub fn contains_type(&self, schema: &Schema, ty: &str) -> bool {
        if !schema.is_subtype(ty, &self.extent_type) {
            return false;
        }
        if self.types.is_empty() {
            return true;
        }
        self.types.iter().any(|alt| {
            if alt.only {
                alt.ty == ty
            } else {
                schema.is_subtype(ty, &alt.ty)
            }
        })
    }
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let types: Vec<String> = self
            .types
            .iter()
            .map(|a| {
                if a.only {
                    format!("ONLY {}", a.ty)
                } else {
                    a.ty.clone()
                }
            })
            .collect();
        write!(
            f,
            "π[{}](σ[{}]({})) = {}",
            self.columns.join(", "),
            if types.is_empty() { "*".to_string() } else { types.join(" | ") },
            self.extent_type,
            self.table.as_deref().unwrap_or("<expr>")
        )
    }
}

/// Errors from fragment recognition / compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum TransGenError {
    /// A constraint is not in the recognizable Figure 2 shape.
    Unrecognized(String),
    /// A constraint is recognized but refers to unknown schema parts.
    BadReference(String),
    /// The relational side's arity disagrees with the projected columns.
    ArityMismatch { constraint: String, source: usize, target: usize },
    /// No constraints for an entity hierarchy that the mapping claims to
    /// cover.
    Empty,
    /// Two entity types have identical fragment-membership vectors, so
    /// the reconstructed type of a row cannot be decided (an invalid
    /// mapping in the ADO.NET sense).
    AmbiguousTypes { left: String, right: String },
    /// No key columns shared by every fragment of a hierarchy, and no
    /// declared key — the fragments cannot be joined back together.
    NoJoinKey(String),
}

impl fmt::Display for TransGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransGenError::Unrecognized(c) => write!(f, "unrecognized constraint: {c}"),
            TransGenError::BadReference(m) => write!(f, "bad reference: {m}"),
            TransGenError::ArityMismatch { constraint, source, target } => write!(
                f,
                "arity mismatch in `{constraint}`: source {source} vs target {target}"
            ),
            TransGenError::Empty => f.write_str("no fragments"),
            TransGenError::AmbiguousTypes { left, right } => {
                write!(f, "types `{left}` and `{right}` are indistinguishable under the mapping")
            }
            TransGenError::NoJoinKey(root) => {
                write!(f, "hierarchy `{root}` has no join key across fragments")
            }
        }
    }
}

impl std::error::Error for TransGenError {}

/// Flatten an OR-tree of `IsOf` predicates into type alternatives.
fn parse_type_pred(p: &Predicate) -> Option<Vec<TypeAlt>> {
    match p {
        Predicate::IsOf { ty, only } => Some(vec![TypeAlt { ty: ty.clone(), only: *only }]),
        Predicate::Or(a, b) => {
            let mut l = parse_type_pred(a)?;
            l.extend(parse_type_pred(b)?);
            Some(l)
        }
        _ => None,
    }
}

#[allow(clippy::expect_used)] // invariant-backed: see expect messages
/// Try to recognize the source side as `π_cols(σ_types(ext(T)))`,
/// `π_cols(ext(T))`, or `σ_types(ext(T))` for some entity type `T` of
/// `er`.
fn parse_source(er: &Schema, src: &Expr) -> Option<(String, Vec<TypeAlt>, Vec<String>)> {
    // peel optional projection
    let (inner, columns): (&Expr, Option<Vec<String>>) = match src {
        Expr::Project { input, columns } => (input, Some(columns.clone())),
        other => (other, None),
    };
    // peel optional selection
    let (core, types): (&Expr, Vec<TypeAlt>) = match inner {
        Expr::Select { input, predicate } => (input, parse_type_pred(predicate)?),
        other => (other, Vec::new()),
    };
    // the core must be the extent of some entity type
    for e in er.elements() {
        if !e.is_entity_type() {
            continue;
        }
        if let Ok(ext) = entity_extent(er, &e.name) {
            if &ext == core {
                let columns = columns.unwrap_or_else(|| {
                    er.instance_layout(&e.name)
                        .expect("entity layout")
                        .into_iter()
                        .map(|a| a.name)
                        .collect()
                });
                return Some((e.name.clone(), types, columns));
            }
        }
    }
    None
}

#[allow(clippy::expect_used)] // invariant-backed: see expect messages
/// Parse every constraint of `mapping` into fragments. The mapping's
/// source schema is the ER side (`er`), its target the relational side
/// (`rel`).
pub fn parse_fragments(
    er: &Schema,
    rel: &Schema,
    mapping: &Mapping,
) -> Result<Vec<Fragment>, TransGenError> {
    let mut out = Vec::new();
    for c in &mapping.constraints {
        let MappingConstraint::ExprEq { source, target } = c else {
            return Err(TransGenError::Unrecognized(c.to_string()));
        };
        let Some((extent_type, types, columns)) = parse_source(er, source) else {
            return Err(TransGenError::Unrecognized(c.to_string()));
        };
        let root = er
            .ancestry(&extent_type)
            .map_err(|e| TransGenError::BadReference(e.to_string()))?
            .last()
            .map(|s| s.to_string())
            .expect("ancestry non-empty");
        // target arity check
        let tgt_attrs = mm_expr::output_schema(target, rel)
            .map_err(|e| TransGenError::BadReference(e.to_string()))?;
        if tgt_attrs.len() != columns.len() {
            return Err(TransGenError::ArityMismatch {
                constraint: c.to_string(),
                source: columns.len(),
                target: tgt_attrs.len(),
            });
        }
        let table = match target {
            Expr::Base(n) => Some(n.clone()),
            _ => None,
        };
        out.push(Fragment {
            extent_type,
            root,
            types,
            columns,
            table_expr: target.clone(),
            table,
        });
    }
    if out.is_empty() {
        return Err(TransGenError::Empty);
    }
    Ok(out)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use mm_metamodel::{DataType, SchemaBuilder};

    pub(crate) fn fig2_er() -> Schema {
        SchemaBuilder::new("ER")
            .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .entity_sub("Employee", "Person", &[("Dept", DataType::Text)])
            .entity_sub("Customer", "Person", &[
                ("CreditScore", DataType::Int),
                ("BillingAddr", DataType::Text),
            ])
            .key("Person", &["Id"])
            .build()
            .unwrap()
    }

    pub(crate) fn fig2_rel() -> Schema {
        SchemaBuilder::new("SQL")
            .relation("HR", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .relation("Empl", &[("Id", DataType::Int), ("Dept", DataType::Text)])
            .relation("Client", &[
                ("Id", DataType::Int),
                ("Name", DataType::Text),
                ("Score", DataType::Int),
                ("Addr", DataType::Text),
            ])
            .build()
            .unwrap()
    }

    /// The paper's Figure 2, expressed in the engine's algebra.
    pub(crate) fn fig2_mapping(er: &Schema) -> Mapping {
        let ext = |ty: &str| entity_extent(er, ty).unwrap();
        let mut m = Mapping::new("ER", "SQL");
        // 1. persons that are ONLY Person or ONLY Employee -> HR
        m.push(MappingConstraint::ExprEq {
            source: ext("Person")
                .select(
                    Predicate::IsOf { ty: "Person".into(), only: true }.or(Predicate::IsOf {
                        ty: "Employee".into(),
                        only: true,
                    }),
                )
                .project(&["Id", "Name"]),
            target: Expr::base("HR"),
        });
        // 2. employees -> Empl
        m.push(MappingConstraint::ExprEq {
            source: ext("Employee")
                .select(Predicate::IsOf { ty: "Employee".into(), only: false })
                .project(&["Id", "Dept"]),
            target: Expr::base("Empl"),
        });
        // 3. customers -> Client (note the renamed columns Score/Addr)
        m.push(MappingConstraint::ExprEq {
            source: ext("Customer")
                .select(Predicate::IsOf { ty: "Customer".into(), only: false })
                .project(&["Id", "Name", "CreditScore", "BillingAddr"]),
            target: Expr::base("Client"),
        });
        m
    }

    #[test]
    fn fig2_constraints_parse_into_fragments() {
        let er = fig2_er();
        let rel = fig2_rel();
        let frags = parse_fragments(&er, &rel, &fig2_mapping(&er)).unwrap();
        assert_eq!(frags.len(), 3);
        assert_eq!(frags[0].extent_type, "Person");
        assert_eq!(frags[0].types.len(), 2);
        assert!(frags[0].types.iter().all(|t| t.only));
        assert_eq!(frags[1].columns, ["Id", "Dept"]);
        assert_eq!(frags[2].table.as_deref(), Some("Client"));
        assert_eq!(frags[2].root, "Person");
    }

    #[test]
    fn membership_respects_only_and_subtyping() {
        let er = fig2_er();
        let rel = fig2_rel();
        let frags = parse_fragments(&er, &rel, &fig2_mapping(&er)).unwrap();
        let hr = &frags[0];
        assert!(hr.contains_type(&er, "Person"));
        assert!(hr.contains_type(&er, "Employee"));
        assert!(!hr.contains_type(&er, "Customer"));
        let empl = &frags[1];
        assert!(empl.contains_type(&er, "Employee"));
        assert!(!empl.contains_type(&er, "Person"));
        let client = &frags[2];
        assert!(client.contains_type(&er, "Customer"));
        assert!(!client.contains_type(&er, "Employee"));
    }

    #[test]
    fn unselected_extent_means_whole_type() {
        let er = fig2_er();
        let rel = SchemaBuilder::new("SQL")
            .relation("T", &[("Id", DataType::Int), ("Dept", DataType::Text)])
            .build()
            .unwrap();
        let m = Mapping::with_constraints(
            "ER",
            "SQL",
            vec![MappingConstraint::ExprEq {
                source: entity_extent(&er, "Employee").unwrap().project(&["Id", "Dept"]),
                target: Expr::base("T"),
            }],
        );
        let frags = parse_fragments(&er, &rel, &m).unwrap();
        assert!(frags[0].types.is_empty());
        assert!(frags[0].contains_type(&er, "Employee"));
        assert!(!frags[0].contains_type(&er, "Customer"));
    }

    #[test]
    fn arity_mismatch_detected() {
        let er = fig2_er();
        let rel = fig2_rel();
        let m = Mapping::with_constraints(
            "ER",
            "SQL",
            vec![MappingConstraint::ExprEq {
                source: entity_extent(&er, "Person").unwrap().project(&["Id"]),
                target: Expr::base("HR"),
            }],
        );
        assert!(matches!(
            parse_fragments(&er, &rel, &m),
            Err(TransGenError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn non_extent_source_rejected() {
        let er = fig2_er();
        let rel = fig2_rel();
        let m = Mapping::with_constraints(
            "ER",
            "SQL",
            vec![MappingConstraint::ExprEq {
                source: Expr::base("Person"), // bare set, not the extent
                target: Expr::base("HR"),
            }],
        );
        assert!(matches!(
            parse_fragments(&er, &rel, &m),
            Err(TransGenError::Unrecognized(_))
        ));
    }
}
