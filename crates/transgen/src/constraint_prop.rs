//! Integrity-constraint propagation across mappings (§2, §5).
//!
//! "For a given source and target database that are related by a given
//! mapping, we might need to check that if the source database satisfies
//! the source integrity constraints then the target database also
//! satisfies the target integrity constraints" (§2). And from §5: "due to
//! differences in S's and T's metamodels, some constraints on T may not
//! be expressible on S. For example, the disjointness of two sets of
//! instances of two classes in T with a common superclass is not
//! expressible as relational integrity constraints on S if … the classes
//! are mapped to distinct tables."
//!
//! This module reasons over a fragment mapping (entity model T, tables S):
//!
//! * [`propagate_to_tables`] — derive the table-side constraints implied
//!   by the entity model: hierarchy keys become table keys, subtype
//!   fragments foreign-key into fragments storing their supertypes,
//!   non-nullable entity attributes become NOT NULL columns;
//! * [`unexpressible_constraints`] — entity-side constraints with no
//!   relational rendering under the mapping, headlined by the paper's
//!   disjointness example (vacuously enforced by horizontal partitioning,
//!   *not expressible* when siblings share a table slice or live in
//!   distinct tables keyed independently);
//! * [`check_implication`] — the dynamic check from §2: chase a sample
//!   source instance through the update views and validate the target
//!   constraints.

use crate::fragments::Fragment;
use crate::update_views::update_views;
use mm_eval::materialize_views;
use mm_instance::{validate, Database, InstanceViolation};
use mm_metamodel::{Constraint, ForeignKey, Key, Schema};

/// A propagated constraint together with its justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagatedConstraint {
    pub constraint: Constraint,
    /// Which entity-side fact implies it.
    pub because: String,
}

/// A target-side constraint the mapping cannot express on the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unexpressible {
    pub constraint: Constraint,
    pub reason: String,
}

fn table_of<'a>(fragments: &'a [Fragment], ty: &str, schema: &Schema) -> Option<&'a Fragment> {
    fragments
        .iter()
        .find(|f| f.table.is_some() && f.contains_type(schema, ty))
}

/// Derive relational constraints on the fragment tables from the entity
/// model's constraints and the mapping structure.
pub fn propagate_to_tables(
    er: &Schema,
    rel: &Schema,
    fragments: &[Fragment],
) -> Vec<PropagatedConstraint> {
    let mut out = Vec::new();
    // 1. hierarchy keys become keys of every fragment table that projects
    //    all key columns
    for f in fragments {
        let Some(table) = &f.table else { continue };
        let Some(key) = er.declared_key(&f.root) else { continue };
        if !key.iter().all(|k| f.columns.contains(k)) {
            continue;
        }
        // positions of the key columns in the table's layout
        let Some(layout) = rel.instance_layout(table) else { continue };
        let table_key: Option<Vec<String>> = key
            .iter()
            .map(|k| {
                f.columns
                    .iter()
                    .position(|c| c == k)
                    .and_then(|i| layout.get(i))
                    .map(|a| a.name.clone())
            })
            .collect();
        let Some(table_key) = table_key else { continue };
        out.push(PropagatedConstraint {
            constraint: Constraint::Key(Key {
                element: table.clone(),
                attributes: table_key,
            }),
            because: format!("key of hierarchy `{}` projected by `{f}`", f.root),
        });
    }
    // 2. a fragment storing a subtype slice references any fragment
    //    storing a supertype slice of the same entities (its rows are a
    //    subset, so the key columns form an inclusion/foreign key)
    for sub in fragments {
        let (Some(sub_table), Some(key)) = (&sub.table, er.declared_key(&sub.root)) else {
            continue;
        };
        if !key.iter().all(|k| sub.columns.contains(k)) {
            continue;
        }
        for sup in fragments {
            let Some(sup_table) = &sup.table else { continue };
            if std::ptr::eq(sub, sup) || sub.root != sup.root {
                continue;
            }
            if !key.iter().all(|k| sup.columns.contains(k)) {
                continue;
            }
            // every type stored by `sub` must also be stored by `sup`
            let covered = er
                .subtree(&sub.root)
                .iter()
                .filter(|ty| sub.contains_type(er, ty))
                .all(|ty| sup.contains_type(er, ty));
            if !covered {
                continue;
            }
            let col_name = |f: &Fragment, table: &str, k: &str| -> Option<String> {
                let layout = rel.instance_layout(table)?;
                f.columns
                    .iter()
                    .position(|c| c == k)
                    .and_then(|i| layout.get(i))
                    .map(|a| a.name.clone())
            };
            let from_attrs: Option<Vec<String>> =
                key.iter().map(|k| col_name(sub, sub_table, k)).collect();
            let to_attrs: Option<Vec<String>> =
                key.iter().map(|k| col_name(sup, sup_table, k)).collect();
            if let (Some(from_attrs), Some(to_attrs)) = (from_attrs, to_attrs) {
                out.push(PropagatedConstraint {
                    constraint: Constraint::ForeignKey(ForeignKey {
                        from: sub_table.clone(),
                        from_attrs,
                        to: sup_table.clone(),
                        to_attrs,
                    }),
                    because: format!(
                        "rows of `{sub_table}` are the `{}`-slice of `{sup_table}`",
                        sub.extent_type
                    ),
                });
            }
        }
    }
    // 3. non-nullable entity attributes become NOT NULL on their columns
    for f in fragments {
        let Some(table) = &f.table else { continue };
        let Ok(attrs) = er.all_attributes(&f.extent_type) else { continue };
        let Some(layout) = rel.instance_layout(table) else { continue };
        for (i, col) in f.columns.iter().enumerate() {
            let Some(src) = attrs.iter().find(|a| &a.name == col) else { continue };
            if !src.nullable {
                if let Some(tcol) = layout.get(i) {
                    out.push(PropagatedConstraint {
                        constraint: Constraint::NotNull {
                            element: table.clone(),
                            attribute: tcol.name.clone(),
                        },
                        because: format!("`{}.{}` is non-nullable", f.extent_type, col),
                    });
                }
            }
        }
    }
    out
}

/// Entity-side constraints that have no relational rendering under the
/// mapping — the paper's §5 integrity-constraint discussion.
pub fn unexpressible_constraints(
    er: &Schema,
    fragments: &[Fragment],
) -> Vec<Unexpressible> {
    let mut out = Vec::new();
    for c in &er.constraints {
        match c {
            Constraint::Disjoint { left, right } => {
                let lt = table_of(fragments, left, er).and_then(|f| f.table.clone());
                let rt = table_of(fragments, right, er).and_then(|f| f.table.clone());
                match (lt, rt) {
                    (Some(a), Some(b)) if a != b => out.push(Unexpressible {
                        constraint: c.clone(),
                        reason: format!(
                            "`{left}` and `{right}` map to distinct tables `{a}`/`{b}`: \
                             their disjointness is not a relational constraint on either \
                             table (the paper's §5 example)"
                        ),
                    }),
                    (Some(a), Some(b)) => {
                        // same table: distinguishable only if the slices
                        // carry a discriminator — the fragment type lists
                        // are the static witness, so this is expressible
                        let _ = (a, b);
                    }
                    _ => out.push(Unexpressible {
                        constraint: c.clone(),
                        reason: format!("`{left}` or `{right}` is unmapped"),
                    }),
                }
            }
            Constraint::Covering { parent, children } => {
                // expressible only if the parent's slice table equals the
                // union of the children's — never derivable from the
                // fragments alone when they live in distinct tables
                let pt = table_of(fragments, parent, er).and_then(|f| f.table.clone());
                let kid_tables: Vec<_> = children
                    .iter()
                    .map(|k| table_of(fragments, k, er).and_then(|f| f.table.clone()))
                    .collect();
                if kid_tables.iter().any(Option::is_none) || pt.is_none() {
                    out.push(Unexpressible {
                        constraint: c.clone(),
                        reason: "covering across unmapped types".into(),
                    });
                } else if kid_tables.iter().any(|t| t != &pt) {
                    out.push(Unexpressible {
                        constraint: c.clone(),
                        reason: format!(
                            "covering of `{parent}` spans multiple tables; relational \
                             schemas cannot state it without assertions"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// The §2 dynamic check: push a source-constraint-satisfying entity
/// sample through the update views and validate the *propagated* table
/// constraints on the result. Returns violations (empty = implication
/// held on this sample).
pub fn check_implication(
    er: &Schema,
    rel: &Schema,
    fragments: &[Fragment],
    sample: &Database,
) -> Result<Vec<InstanceViolation>, crate::fragments::TransGenError> {
    // the entity sample must itself be valid
    let source_violations = validate(er, sample);
    if !source_violations.is_empty() {
        return Ok(source_violations);
    }
    let uv = update_views(er, rel, fragments)?;
    let tables = materialize_views(&uv, er, sample)
        .map_err(|e| crate::fragments::TransGenError::BadReference(e.to_string()))?;
    let mut rel_with_constraints = rel.clone();
    for p in propagate_to_tables(er, rel, fragments) {
        let _ = rel_with_constraints.add_constraint(p.constraint);
    }
    Ok(validate(&rel_with_constraints, &tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::parse_fragments;
    use crate::fragments::tests::{fig2_er, fig2_mapping, fig2_rel};
    use mm_instance::Value;

    fn frags() -> (Schema, Schema, Vec<Fragment>) {
        let er = fig2_er();
        let rel = fig2_rel();
        let f = parse_fragments(&er, &rel, &fig2_mapping(&er)).expect("fragments");
        (er, rel, f)
    }

    #[test]
    fn hierarchy_key_propagates_to_every_fragment_table() {
        let (er, rel, f) = frags();
        let props = propagate_to_tables(&er, &rel, &f);
        for table in ["HR", "Empl", "Client"] {
            assert!(
                props.iter().any(|p| matches!(
                    &p.constraint,
                    Constraint::Key(k) if k.element == table && k.attributes == vec!["Id".to_string()]
                )),
                "no key propagated to {table}"
            );
        }
    }

    #[test]
    fn subtype_tables_reference_supertype_tables() {
        let (er, rel, f) = frags();
        let props = propagate_to_tables(&er, &rel, &f);
        // Empl stores Employee ⊆ {Person, Employee} = HR's slice
        assert!(props.iter().any(|p| matches!(
            &p.constraint,
            Constraint::ForeignKey(fk) if fk.from == "Empl" && fk.to == "HR"
        )));
        // Client's Customer slice is NOT a subset of HR's slice
        assert!(!props.iter().any(|p| matches!(
            &p.constraint,
            Constraint::ForeignKey(fk) if fk.from == "Client" && fk.to == "HR"
        )));
    }

    #[test]
    fn papers_disjointness_example_is_unexpressible() {
        let (mut er, rel, _) = frags();
        er.add_constraint(Constraint::Disjoint {
            left: "Employee".into(),
            right: "Customer".into(),
        })
        .expect("valid constraint");
        let f = parse_fragments(&er, &rel, &fig2_mapping(&er)).expect("fragments");
        let un = unexpressible_constraints(&er, &f);
        assert_eq!(un.len(), 1);
        assert!(un[0].reason.contains("distinct tables"));
    }

    #[test]
    fn covering_across_tables_is_unexpressible() {
        let (mut er, rel, _) = frags();
        er.add_constraint(Constraint::Covering {
            parent: "Person".into(),
            children: vec!["Employee".into(), "Customer".into()],
        })
        .expect("valid constraint");
        let f = parse_fragments(&er, &rel, &fig2_mapping(&er)).expect("fragments");
        let un = unexpressible_constraints(&er, &f);
        assert!(un.iter().any(|u| matches!(u.constraint, Constraint::Covering { .. })));
    }

    #[test]
    fn implication_holds_on_valid_sample() {
        let (er, rel, f) = frags();
        let mut db = Database::empty_of(&er);
        db.insert_entity("Person", "Person", vec![Value::Int(1), Value::text("pat")]);
        db.insert_entity(
            "Employee",
            "Employee",
            vec![Value::Int(2), Value::text("eve"), Value::text("hr")],
        );
        let v = check_implication(&er, &rel, &f, &db).expect("check runs");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn implication_check_catches_key_violation() {
        let (er, rel, f) = frags();
        let mut db = Database::empty_of(&er);
        // two distinct persons sharing the key: the entity-side key is
        // violated and reported before propagation
        db.insert_entity("Person", "Person", vec![Value::Int(1), Value::text("a")]);
        db.insert_entity("Person", "Person", vec![Value::Int(1), Value::text("b")]);
        let v = check_implication(&er, &rel, &f, &db).expect("check runs");
        assert!(v.iter().any(|x| matches!(x, InstanceViolation::KeyViolation { .. })));
    }
}
