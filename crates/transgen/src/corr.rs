//! From correspondences to mapping constraints and transformations
//! (§3.1.2 of the paper).
//!
//! Two generators:
//!
//! * [`snowflake_constraints`] — the unambiguous interpretation of
//!   correspondences between two snowflake schemas (Melnik et al., the
//!   paper's Figure 4): given a root correspondence, every attribute
//!   correspondence becomes the equality of two join expressions;
//! * [`correspondences_to_views`] — the Clio'00-style baseline that
//!   generates transformations *directly* from correspondences
//!   ("correspondences amount to a visual programming language"), used as
//!   the comparison point for constraint-based TransGen.

use mm_expr::{
    Correspondence, CorrespondenceSet, Expr, Lit, Mapping, MappingConstraint, Scalar,
    ViewDef, ViewSet,
};
use mm_metamodel::{Constraint, Schema};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// Errors from correspondence interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorrError {
    /// No element-level root correspondence found.
    NoRootCorrespondence,
    /// An element mentioned by a correspondence is missing.
    UnknownElement(String),
    /// No foreign-key join path from the root to this element.
    NoJoinPath { root: String, element: String },
}

impl fmt::Display for CorrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrError::NoRootCorrespondence => f.write_str("no root correspondence"),
            CorrError::UnknownElement(e) => write!(f, "unknown element `{e}`"),
            CorrError::NoJoinPath { root, element } => {
                write!(f, "no join path from `{root}` to `{element}`")
            }
        }
    }
}

impl std::error::Error for CorrError {}

/// The key column of an element: declared key head or first attribute.
fn key_col(schema: &Schema, element: &str) -> Result<String, CorrError> {
    if let Some(k) = schema.declared_key(element) {
        return Ok(k[0].clone());
    }
    schema
        .element(element)
        .and_then(|e| e.attributes.first())
        .map(|a| a.name.clone())
        .ok_or_else(|| CorrError::UnknownElement(element.to_string()))
}

/// Adjacency: element → (neighbour, join columns as (this side,
/// neighbour side)).
type FkGraph<'a> = HashMap<&'a str, Vec<(&'a str, (String, String))>>;

/// Foreign-key adjacency (bidirectional).
fn fk_graph(schema: &Schema) -> FkGraph<'_> {
    let mut g: FkGraph<'_> = HashMap::new();
    for c in &schema.constraints {
        if let Constraint::ForeignKey(fk) = c {
            g.entry(fk.from.as_str()).or_default().push((
                fk.to.as_str(),
                (fk.from_attrs[0].clone(), fk.to_attrs[0].clone()),
            ));
            g.entry(fk.to.as_str()).or_default().push((
                fk.from.as_str(),
                (fk.to_attrs[0].clone(), fk.from_attrs[0].clone()),
            ));
        }
    }
    g
}

/// BFS join path `root → element`; returns the left-deep join expression
/// starting at `Base(root)`. `root == element` gives the bare scan.
fn join_path(schema: &Schema, root: &str, element: &str) -> Result<Expr, CorrError> {
    if schema.element(element).is_none() {
        return Err(CorrError::UnknownElement(element.to_string()));
    }
    if root == element {
        return Ok(Expr::base(root));
    }
    let g = fk_graph(schema);
    // BFS recording predecessor edges
    let mut prev: HashMap<&str, (&str, (String, String))> = HashMap::new();
    let mut queue = VecDeque::from([root]);
    while let Some(cur) = queue.pop_front() {
        if cur == element {
            break;
        }
        if let Some(edges) = g.get(cur) {
            for (next, cols) in edges {
                if *next != root && !prev.contains_key(next) {
                    prev.insert(next, (cur, cols.clone()));
                    queue.push_back(next);
                }
            }
        }
    }
    if !prev.contains_key(element) {
        return Err(CorrError::NoJoinPath {
            root: root.to_string(),
            element: element.to_string(),
        });
    }
    // reconstruct path root -> element
    let mut path: Vec<(&str, (String, String))> = Vec::new();
    let mut cur = element;
    while cur != root {
        let (p, cols) = prev[&cur].clone();
        path.push((cur, cols));
        cur = p;
    }
    path.reverse();
    let mut expr = Expr::base(root);
    for (node, (near_col, far_col)) in path {
        expr = expr.join(Expr::base(node), &[(near_col.as_str(), far_col.as_str())]);
    }
    Ok(expr)
}

/// Interpret correspondences between two snowflake schemas as mapping
/// constraints (Figure 4). Requires one element-level correspondence
/// designating the two roots; each attribute correspondence
/// `S-elem.a ~ T-elem.b` becomes
/// `π(key_s, a)(joinpath_s) = π(key_t, b)(joinpath_t)`,
/// and the root correspondence itself becomes the key equality.
pub fn snowflake_constraints(
    source: &Schema,
    target: &Schema,
    corrs: &CorrespondenceSet,
) -> Result<Mapping, CorrError> {
    let root_corr = corrs
        .correspondences
        .iter()
        .find(|c| c.source.attribute.is_none() && c.target.attribute.is_none())
        .ok_or(CorrError::NoRootCorrespondence)?;
    let s_root = &root_corr.source.element;
    let t_root = &root_corr.target.element;
    let s_key = key_col(source, s_root)?;
    let t_key = key_col(target, t_root)?;

    let mut m = Mapping::new(source.name.clone(), target.name.clone());
    // constraint 1: key equality from the root correspondence
    m.push(MappingConstraint::ExprEq {
        source: Expr::base(s_root.clone()).project(&[s_key.as_str()]),
        target: Expr::base(t_root.clone()).project(&[t_key.as_str()]),
    });
    for c in &corrs.correspondences {
        let (Some(sa), Some(ta)) = (&c.source.attribute, &c.target.attribute) else {
            continue;
        };
        let s_expr = join_path(source, s_root, &c.source.element)?
            .project(&[s_key.as_str(), sa.as_str()]);
        let t_expr = join_path(target, t_root, &c.target.element)?
            .project(&[t_key.as_str(), ta.as_str()]);
        m.push(MappingConstraint::ExprEq { source: s_expr, target: t_expr });
    }
    Ok(m)
}

#[allow(clippy::expect_used)] // invariant-backed: see expect messages
/// The Clio'00-style direct generator: for each target element with at
/// least one attribute correspondence, join the involved source elements
/// along foreign-key paths (anchored at the source element with the most
/// correspondences), map corresponding attributes across, and pad
/// unmatched target attributes with NULL.
pub fn correspondences_to_views(
    source: &Schema,
    target: &Schema,
    corrs: &CorrespondenceSet,
) -> Result<ViewSet, CorrError> {
    // best correspondence per (target element, target attribute)
    let mut best: BTreeMap<(String, String), &Correspondence> = BTreeMap::new();
    for c in &corrs.correspondences {
        let (Some(_), Some(ta)) = (&c.source.attribute, &c.target.attribute) else {
            continue;
        };
        let k = (c.target.element.clone(), ta.clone());
        if best.get(&k).map(|b| c.confidence > b.confidence).unwrap_or(true) {
            best.insert(k, c);
        }
    }
    let mut out = ViewSet::new(source.name.clone(), target.name.clone());
    for te in target.elements() {
        let picks: Vec<(&str, &Correspondence)> = te
            .attributes
            .iter()
            .filter_map(|a| {
                best.get(&(te.name.clone(), a.name.clone()))
                    .map(|c| (a.name.as_str(), *c))
            })
            .collect();
        if picks.is_empty() {
            continue;
        }
        // anchor = the source element with the most picks
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for (_, c) in &picks {
            *counts.entry(c.source.element.as_str()).or_default() += 1;
        }
        let anchor = counts
            .iter()
            .max_by_key(|(name, n)| (**n, std::cmp::Reverse(**name)))
            .map(|(name, _)| *name)
            .expect("picks non-empty");
        // join every other involved element onto the anchor
        let mut expr = Expr::base(anchor);
        let mut joined: Vec<&str> = vec![anchor];
        for (_, c) in &picks {
            let elem = c.source.element.as_str();
            if joined.contains(&elem) {
                continue;
            }
            // reuse the path machinery; the path starts at the anchor
            let path_expr = join_path(source, anchor, elem)?;
            // replace the path's leading Base(anchor) with what we have so
            // far (the path is left-deep, so substitute at the leaf)
            expr = graft(path_expr, &expr, anchor);
            joined.push(elem);
        }
        // compute target attributes
        let mut cols: Vec<String> = Vec::with_capacity(te.attributes.len());
        for a in &te.attributes {
            let tmp = format!("${}", a.name);
            let scalar = match picks.iter().find(|(ta, _)| *ta == a.name) {
                Some((_, c)) => {
                    Scalar::col(c.source.attribute.clone().expect("attr corr"))
                }
                None => Scalar::Lit(Lit::Null),
            };
            expr = expr.extend(&tmp, scalar);
            cols.push(tmp);
        }
        expr = expr.project_owned(cols.clone());
        let renames: Vec<(String, String)> = cols
            .iter()
            .zip(&te.attributes)
            .map(|(tmp, a)| (tmp.clone(), a.name.clone()))
            .collect();
        expr = Expr::Rename { input: Box::new(expr), renames };
        out.push(ViewDef::new(te.name.clone(), expr));
    }
    Ok(out)
}

/// Replace the left-most `Base(anchor)` leaf of `path` with `stem`.
fn graft(path: Expr, stem: &Expr, anchor: &str) -> Expr {
    match path {
        Expr::Base(ref n) if n == anchor => stem.clone(),
        Expr::Join { left, right, on } => Expr::Join {
            left: Box::new(graft(*left, stem, anchor)),
            right,
            on,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_eval::eval;
    use mm_expr::PathRef;
    use mm_instance::{Database, Tuple, Value};
    use mm_metamodel::{DataType, SchemaBuilder};

    /// The paper's Figure 4 schemas: Empl/Addr vs Staff.
    fn fig4_source() -> Schema {
        SchemaBuilder::new("S")
            .relation("Empl", &[
                ("EID", DataType::Int),
                ("Name", DataType::Text),
                ("Tel", DataType::Text),
                ("AID", DataType::Int),
            ])
            .relation("Addr", &[
                ("AID", DataType::Int),
                ("City", DataType::Text),
                ("Zip", DataType::Text),
            ])
            .key("Empl", &["EID"])
            .foreign_key("Empl", &["AID"], "Addr", &["AID"])
            .build()
            .unwrap()
    }

    fn fig4_target() -> Schema {
        SchemaBuilder::new("T")
            .relation("Staff", &[
                ("SID", DataType::Int),
                ("Name", DataType::Text),
                ("BirthDate", DataType::Date),
                ("City", DataType::Text),
            ])
            .key("Staff", &["SID"])
            .build()
            .unwrap()
    }

    fn fig4_corrs() -> CorrespondenceSet {
        let mut cs = CorrespondenceSet::new("S", "T");
        cs.push(Correspondence::new(
            PathRef::element("Empl"),
            PathRef::element("Staff"),
            1.0,
        ));
        cs.push(Correspondence::new(
            PathRef::attr("Empl", "Name"),
            PathRef::attr("Staff", "Name"),
            1.0,
        ));
        cs.push(Correspondence::new(
            PathRef::attr("Addr", "City"),
            PathRef::attr("Staff", "City"),
            1.0,
        ));
        cs
    }

    #[test]
    fn fig4_constraints_match_paper() {
        let m = snowflake_constraints(&fig4_source(), &fig4_target(), &fig4_corrs()).unwrap();
        assert_eq!(m.len(), 3);
        // 1. πEID(Empl) = πSID(Staff)
        match &m.constraints[0] {
            MappingConstraint::ExprEq { source, target } => {
                assert_eq!(source, &Expr::base("Empl").project(&["EID"]));
                assert_eq!(target, &Expr::base("Staff").project(&["SID"]));
            }
            _ => panic!(),
        }
        // 2. πEID,Name(Empl) = πSID,Name(Staff)
        match &m.constraints[1] {
            MappingConstraint::ExprEq { source, .. } => {
                assert_eq!(source, &Expr::base("Empl").project(&["EID", "Name"]));
            }
            _ => panic!(),
        }
        // 3. πEID,City(Empl ⋈ Addr) = πSID,City(Staff)
        match &m.constraints[2] {
            MappingConstraint::ExprEq { source, target } => {
                assert_eq!(
                    source,
                    &Expr::base("Empl")
                        .join(Expr::base("Addr"), &[("AID", "AID")])
                        .project(&["EID", "City"])
                );
                assert_eq!(target, &Expr::base("Staff").project(&["SID", "City"]));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn missing_root_correspondence_rejected() {
        let mut cs = fig4_corrs();
        cs.correspondences.remove(0);
        assert_eq!(
            snowflake_constraints(&fig4_source(), &fig4_target(), &cs),
            Err(CorrError::NoRootCorrespondence)
        );
    }

    #[test]
    fn unreachable_element_reported() {
        let mut s = fig4_source();
        s.add_element(mm_metamodel::Element {
            name: "Island".into(),
            kind: mm_metamodel::ElementKind::Relation,
            attributes: vec![mm_metamodel::Attribute::new("X", DataType::Int)],
        })
        .unwrap();
        let mut cs = fig4_corrs();
        cs.push(Correspondence::new(
            PathRef::attr("Island", "X"),
            PathRef::attr("Staff", "BirthDate"),
            0.9,
        ));
        assert!(matches!(
            snowflake_constraints(&s, &fig4_target(), &cs),
            Err(CorrError::NoJoinPath { .. })
        ));
    }

    #[test]
    fn clio_style_view_joins_and_pads() {
        let s = fig4_source();
        let t = fig4_target();
        let views = correspondences_to_views(&s, &t, &fig4_corrs()).unwrap();
        let staff = views.view("Staff").unwrap();

        let mut db = Database::empty_of(&s);
        db.insert(
            "Empl",
            Tuple::from([Value::Int(1), Value::text("ann"), Value::text("555"), Value::Int(10)]),
        );
        db.insert("Addr", Tuple::from([Value::Int(10), Value::text("rome"), Value::text("00100")]));
        let r = eval(&staff.expr, &s, &db).unwrap();
        assert_eq!(r.len(), 1);
        let names: Vec<&str> = r.schema.names().collect();
        assert_eq!(names, ["SID", "Name", "BirthDate", "City"]);
        let row = r.iter().next().unwrap();
        // SID unmapped -> NULL (no corr for SID in this set), Name mapped,
        // BirthDate padded NULL, City joined from Addr
        assert_eq!(row.values()[1], Value::text("ann"));
        assert_eq!(row.values()[2], Value::Null);
        assert_eq!(row.values()[3], Value::text("rome"));
    }

    #[test]
    fn clio_style_single_relation_no_join() {
        let s = fig4_source();
        let t = fig4_target();
        let mut cs = CorrespondenceSet::new("S", "T");
        cs.push(Correspondence::new(
            PathRef::attr("Empl", "EID"),
            PathRef::attr("Staff", "SID"),
            1.0,
        ));
        cs.push(Correspondence::new(
            PathRef::attr("Empl", "Name"),
            PathRef::attr("Staff", "Name"),
            1.0,
        ));
        let views = correspondences_to_views(&s, &t, &cs).unwrap();
        let staff = views.view("Staff").unwrap();
        // no Addr join needed
        assert_eq!(mm_expr::analyze::base_relations(&staff.expr), ["Empl"]);
    }
}
