//! Roundtripping verification (§4): update view ∘ query view = identity.

use crate::fragments::{Fragment, TransGenError};
use crate::query_views::query_views;
use crate::update_views::update_views;
use mm_eval::materialize_views;
use mm_instance::Database;
use mm_metamodel::Schema;
use std::collections::BTreeSet;
use std::fmt;

/// A static coverage problem that would break roundtripping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverageGap {
    /// No fragment stores entities of this type: they vanish on update.
    TypeUnmapped { ty: String },
    /// An attribute of the type is stored by no fragment covering the
    /// type: its value is lost.
    AttributeUnmapped { ty: String, attribute: String },
}

impl fmt::Display for CoverageGap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverageGap::TypeUnmapped { ty } => write!(f, "type `{ty}` is unmapped"),
            CoverageGap::AttributeUnmapped { ty, attribute } => {
                write!(f, "attribute `{ty}.{attribute}` is unmapped")
            }
        }
    }
}

#[allow(clippy::expect_used)] // invariant-backed: see expect messages
/// Statically check that every type and attribute of every hierarchy
/// touched by `fragments` is stored somewhere.
pub fn check_coverage(er: &Schema, fragments: &[Fragment]) -> Vec<CoverageGap> {
    let mut gaps = Vec::new();
    let roots: BTreeSet<&str> = fragments.iter().map(|f| f.root.as_str()).collect();
    for root in roots {
        for ty in er.subtree(root) {
            let covering: Vec<&Fragment> =
                fragments.iter().filter(|f| f.contains_type(er, ty)).collect();
            if covering.is_empty() {
                gaps.push(CoverageGap::TypeUnmapped { ty: ty.to_string() });
                continue;
            }
            let layout = er.instance_layout(ty).expect("entity layout");
            for a in layout.iter().skip(1) {
                if !covering.iter().any(|f| f.columns.contains(&a.name)) {
                    gaps.push(CoverageGap::AttributeUnmapped {
                        ty: ty.to_string(),
                        attribute: a.name.clone(),
                    });
                }
            }
        }
    }
    gaps
}

/// The outcome of a dynamic roundtrip check.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundtripReport {
    /// Static gaps found before execution.
    pub gaps: Vec<CoverageGap>,
    /// Entity sets whose roundtripped contents differ from the input
    /// (name, expected size, actual size).
    pub mismatches: Vec<(String, usize, usize)>,
}

impl RoundtripReport {
    pub fn roundtrips(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Compile both view sets from `fragments` and verify on `sample` that
/// entities → tables → entities is the identity.
pub fn verify_roundtrip(
    er: &Schema,
    rel: &Schema,
    fragments: &[Fragment],
    sample: &Database,
) -> Result<RoundtripReport, TransGenError> {
    let gaps = check_coverage(er, fragments);
    let uv = update_views(er, rel, fragments)?;
    let qv = query_views(er, rel, fragments)?;
    let tables = materialize_views(&uv, er, sample)
        .map_err(|e| TransGenError::BadReference(e.to_string()))?;
    let back = materialize_views(&qv, rel, &tables)
        .map_err(|e| TransGenError::BadReference(e.to_string()))?;
    let mut mismatches = Vec::new();
    for (name, rel_in) in sample.relations() {
        let Some(rel_out) = back.relation(name) else {
            if !rel_in.is_empty() {
                mismatches.push((name.to_string(), rel_in.len(), 0));
            }
            continue;
        };
        if !rel_in.set_eq(rel_out) {
            mismatches.push((name.to_string(), rel_in.len(), rel_out.len()));
        }
    }
    Ok(RoundtripReport { gaps, mismatches })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::parse_fragments;
    use crate::fragments::tests::{fig2_er, fig2_mapping, fig2_rel};
    use mm_instance::Value;

    fn entities() -> Database {
        let er = fig2_er();
        let mut db = Database::empty_of(&er);
        db.insert_entity("Person", "Person", vec![Value::Int(1), Value::text("pat")]);
        db.insert_entity(
            "Employee",
            "Employee",
            vec![Value::Int(2), Value::text("eve"), Value::text("hr")],
        );
        db.insert_entity(
            "Customer",
            "Customer",
            vec![Value::Int(3), Value::text("carl"), Value::Int(700), Value::text("5 Rue")],
        );
        db
    }

    #[test]
    fn fig2_mapping_roundtrips() {
        let er = fig2_er();
        let rel = fig2_rel();
        let frags = parse_fragments(&er, &rel, &fig2_mapping(&er)).unwrap();
        let report = verify_roundtrip(&er, &rel, &frags, &entities()).unwrap();
        assert!(report.gaps.is_empty(), "{:?}", report.gaps);
        assert!(report.roundtrips(), "{:?}", report.mismatches);
    }

    #[test]
    fn dropping_a_constraint_creates_gaps_and_breaks_roundtrip() {
        let er = fig2_er();
        let rel = fig2_rel();
        let mut m = fig2_mapping(&er);
        m.constraints.remove(2); // drop the Customer -> Client constraint
        let frags = parse_fragments(&er, &rel, &m).unwrap();
        let gaps = check_coverage(&er, &frags);
        assert!(gaps.contains(&CoverageGap::TypeUnmapped { ty: "Customer".into() }));
        let report = verify_roundtrip(&er, &rel, &frags, &entities()).unwrap();
        assert!(!report.roundtrips());
        assert!(report.mismatches.iter().any(|(n, ..)| n == "Customer"));
    }

    #[test]
    fn attribute_gap_detected() {
        use mm_expr::{entity_extent, Expr, Mapping, MappingConstraint};
        use mm_metamodel::{DataType, SchemaBuilder};
        let er = SchemaBuilder::new("ER")
            .entity("P", &[("Id", DataType::Int), ("Name", DataType::Text)])
            .key("P", &["Id"])
            .build()
            .unwrap();
        let rel = SchemaBuilder::new("SQL")
            .relation("T", &[("Id", DataType::Int)])
            .build()
            .unwrap();
        let m = Mapping::with_constraints(
            "ER",
            "SQL",
            vec![MappingConstraint::ExprEq {
                source: entity_extent(&er, "P").unwrap().project(&["Id"]),
                target: Expr::base("T"),
            }],
        );
        let frags = parse_fragments(&er, &rel, &m).unwrap();
        let gaps = check_coverage(&er, &frags);
        assert_eq!(
            gaps,
            vec![CoverageGap::AttributeUnmapped { ty: "P".into(), attribute: "Name".into() }]
        );
    }

    #[test]
    fn empty_entity_db_roundtrips_trivially() {
        let er = fig2_er();
        let rel = fig2_rel();
        let frags = parse_fragments(&er, &rel, &fig2_mapping(&er)).unwrap();
        let report =
            verify_roundtrip(&er, &rel, &frags, &Database::empty_of(&er)).unwrap();
        assert!(report.roundtrips());
    }
}
