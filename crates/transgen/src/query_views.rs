//! Query-view generation: reconstructing the entity model from the tables
//! (the paper's Figure 3 query, generalized).
//!
//! For each hierarchy, the generated query:
//! 1. normalizes every fragment's relational expression to entity
//!    attribute names, tags it with a `_from`-style flag, and renames its
//!    non-key columns apart;
//! 2. collects all keys, left-outer-joins every fragment onto them (the
//!    set-algebra simulation of the full outer join);
//! 3. reconstructs the most-derived type with a `CASE` over the flag
//!    vector — exactly the `CASE WHEN (T5._from2 AND NOT(T5._from1))
//!    THEN Person(…)` analysis of Figure 3;
//! 4. reconstructs each attribute with a `COALESCE` over the fragments
//!    that carry it, and emits one view per entity set.

// Translator-internal lookups are guarded by construction (schemas and
// view sets built in this module); `expect` here documents invariants,
// not caller-facing failure modes (DESIGN.md §7).
#![allow(clippy::expect_used)]

use crate::fragments::{Fragment, TransGenError};
use mm_expr::{Expr, Func, Lit, Predicate, Scalar, ViewDef, ViewSet};
use mm_metamodel::{Schema, TYPE_ATTR};
use std::collections::BTreeMap;

/// The join key of a group of fragments: the hierarchy root's declared
/// key if present, otherwise the columns every fragment projects.
fn join_key(er: &Schema, root: &str, frags: &[&Fragment]) -> Result<Vec<String>, TransGenError> {
    if let Some(k) = er.declared_key(root) {
        return Ok(k.to_vec());
    }
    let first = frags.first().ok_or(TransGenError::Empty)?;
    let shared: Vec<String> = first
        .columns
        .iter()
        .filter(|c| frags.iter().all(|f| f.columns.contains(c)))
        .cloned()
        .collect();
    if shared.is_empty() {
        return Err(TransGenError::NoJoinKey(root.to_string()));
    }
    Ok(shared)
}

fn flag_col(i: usize) -> String {
    format!("$from{i}")
}

fn frag_col(col: &str, i: usize) -> String {
    format!("{col}@f{i}")
}

/// Generate query views (entity sets over the relational schema) for all
/// hierarchies covered by `fragments`.
pub fn query_views(
    er: &Schema,
    rel: &Schema,
    fragments: &[Fragment],
) -> Result<ViewSet, TransGenError> {
    let mut by_root: BTreeMap<&str, Vec<&Fragment>> = BTreeMap::new();
    for f in fragments {
        by_root.entry(f.root.as_str()).or_default().push(f);
    }
    let mut out = ViewSet::new(rel.name.clone(), er.name.clone());
    for (root, frags) in by_root {
        build_root_views(er, rel, root, &frags, &mut out)?;
    }
    Ok(out)
}

fn build_root_views(
    er: &Schema,
    rel: &Schema,
    root: &str,
    frags: &[&Fragment],
    out: &mut ViewSet,
) -> Result<(), TransGenError> {
    let key = join_key(er, root, frags)?;

    // 1. normalized, tagged fragment expressions
    let mut normalized: Vec<Expr> = Vec::with_capacity(frags.len());
    for (i, f) in frags.iter().enumerate() {
        // positional rename: relational columns -> entity attribute names
        let tgt_attrs = mm_expr::output_schema(&f.table_expr, rel)
            .map_err(|e| TransGenError::BadReference(e.to_string()))?;
        let renames: Vec<(String, String)> = tgt_attrs
            .iter()
            .zip(&f.columns)
            .filter(|(a, c)| &a.name != *c)
            .map(|(a, c)| (a.name.clone(), c.clone()))
            .collect();
        let mut e = f.table_expr.clone();
        if !renames.is_empty() {
            e = Expr::Rename { input: Box::new(e), renames };
        }
        // rename non-key columns apart
        let apart: Vec<(String, String)> = f
            .columns
            .iter()
            .filter(|c| !key.contains(c))
            .map(|c| (c.clone(), frag_col(c, i)))
            .collect();
        if !apart.is_empty() {
            e = Expr::Rename { input: Box::new(e), renames: apart };
        }
        // tag with the _from flag
        e = e.extend(&flag_col(i), Scalar::lit(true));
        normalized.push(e);
    }

    // 2. all keys, then left-join every fragment
    let mut keys: Option<Expr> = None;
    for nf in &normalized {
        let k = nf.clone().project_owned(key.clone());
        keys = Some(match keys {
            None => k,
            Some(e) => e.union(k),
        });
    }
    let mut joined = keys.expect("at least one fragment");
    for nf in &normalized {
        let on: Vec<(&str, &str)> =
            key.iter().map(|k| (k.as_str(), k.as_str())).collect();
        let on_owned: Vec<(String, String)> =
            on.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect();
        joined = Expr::LeftJoin {
            left: Box::new(joined),
            right: Box::new(nf.clone()),
            on: on_owned,
        };
    }

    // 3. the type-reconstruction CASE over flag vectors
    let types = er.subtree(root);
    let mut vectors: BTreeMap<Vec<bool>, &str> = BTreeMap::new();
    let mut branches: Vec<(Predicate, Scalar)> = Vec::new();
    for ty in &types {
        let vector: Vec<bool> = frags.iter().map(|f| f.contains_type(er, ty)).collect();
        if !vector.iter().any(|b| *b) {
            // type entirely unmapped: it cannot be reconstructed; the
            // coverage checker reports it
            continue;
        }
        if let Some(other) = vectors.insert(vector.clone(), ty) {
            return Err(TransGenError::AmbiguousTypes {
                left: other.to_string(),
                right: ty.to_string(),
            });
        }
        let mut pred = Predicate::True;
        for (i, member) in vector.iter().enumerate() {
            let flag = Scalar::col(flag_col(i));
            let test = if *member {
                Predicate::eq(flag, Scalar::lit(true))
            } else {
                Predicate::IsNull(flag)
            };
            pred = pred.and(test);
        }
        branches.push((pred, Scalar::lit(*ty)));
    }
    let type_case = Scalar::Case {
        branches,
        otherwise: Box::new(Scalar::Lit(Lit::Null)),
    };
    let tagged = joined.extend(TYPE_ATTR, type_case);

    // 4. per-set views
    for ty in &types {
        let layout = er.instance_layout(ty).expect("entity layout");
        // entities of most-derived type exactly `ty` (canonical storage)
        let selected = tagged
            .clone()
            .select(Predicate::col_eq_lit(TYPE_ATTR, *ty));
        let mut with_attrs = selected;
        let mut cols: Vec<String> = vec![TYPE_ATTR.to_string()];
        for a in layout.iter().skip(1) {
            cols.push(a.name.clone());
            if key.contains(&a.name) {
                continue; // key columns are already present under their name
            }
            // COALESCE over fragments that carry this attribute for `ty`
            let sources: Vec<Scalar> = frags
                .iter()
                .enumerate()
                .filter(|(_, f)| f.contains_type(er, ty) && f.columns.contains(&a.name))
                .map(|(i, _)| Scalar::col(frag_col(&a.name, i)))
                .collect();
            let value = match sources.len() {
                0 => Scalar::Lit(Lit::Null), // coverage gap
                1 => sources.into_iter().next().expect("len checked"),
                _ => Scalar::Func(Func::Coalesce, sources),
            };
            with_attrs = with_attrs.extend(&a.name, value);
        }
        out.push(ViewDef::new(*ty, with_attrs.project_owned(cols)));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::parse_fragments;
    use crate::fragments::tests::{fig2_er, fig2_mapping, fig2_rel};
    use mm_eval::materialize_views;
    use mm_instance::{Database, Tuple, Value};

    fn fig2_tables() -> Database {
        let rel = fig2_rel();
        let mut db = Database::empty_of(&rel);
        // pat is a plain person; eve an employee; carl a customer
        db.insert("HR", Tuple::from([Value::Int(1), Value::text("pat")]));
        db.insert("HR", Tuple::from([Value::Int(2), Value::text("eve")]));
        db.insert("Empl", Tuple::from([Value::Int(2), Value::text("hr")]));
        db.insert(
            "Client",
            Tuple::from([
                Value::Int(3),
                Value::text("carl"),
                Value::Int(700),
                Value::text("5 Rue"),
            ]),
        );
        db
    }

    #[test]
    fn fig3_query_reconstructs_entities_from_tables() {
        let er = fig2_er();
        let rel = fig2_rel();
        let frags = parse_fragments(&er, &rel, &fig2_mapping(&er)).unwrap();
        let qv = query_views(&er, &rel, &frags).unwrap();
        assert_eq!(qv.len(), 3);
        let entities = materialize_views(&qv, &rel, &fig2_tables()).unwrap();

        let person = entities.relation("Person").unwrap();
        assert_eq!(person.len(), 1);
        let row = person.iter().next().unwrap();
        assert_eq!(row.values()[0], Value::text("Person"));
        assert_eq!(row.values()[1], Value::Int(1));
        assert_eq!(row.values()[2], Value::text("pat"));

        let emp = entities.relation("Employee").unwrap();
        assert_eq!(emp.len(), 1);
        let row = emp.iter().next().unwrap();
        assert_eq!(
            row.values(),
            [
                Value::text("Employee"),
                Value::Int(2),
                Value::text("eve"),
                Value::text("hr")
            ]
        );

        let cust = entities.relation("Customer").unwrap();
        assert_eq!(cust.len(), 1);
        let row = cust.iter().next().unwrap();
        assert_eq!(row.values()[3], Value::Int(700));
        assert_eq!(row.values()[4], Value::text("5 Rue"));
    }

    #[test]
    fn generated_query_prints_with_case_when_flags() {
        // the textual shape of Figure 3: CASE WHEN over _from flags
        let er = fig2_er();
        let rel = fig2_rel();
        let frags = parse_fragments(&er, &rel, &fig2_mapping(&er)).unwrap();
        let qv = query_views(&er, &rel, &frags).unwrap();
        let text = qv.view("Person").unwrap().expr.to_string();
        assert!(text.contains("CASE WHEN"), "{text}");
        assert!(text.contains("$from0"), "{text}");
        assert!(text.contains("LEFT OUTER JOIN"), "{text}");
    }

    #[test]
    fn ambiguous_type_vectors_rejected() {
        use mm_expr::{entity_extent, Mapping, MappingConstraint};
        use mm_metamodel::{DataType, SchemaBuilder};
        let er = SchemaBuilder::new("ER")
            .entity("P", &[("Id", DataType::Int)])
            .entity_sub("C", "P", &[])
            .key("P", &["Id"])
            .build()
            .unwrap();
        let rel = SchemaBuilder::new("SQL")
            .relation("T", &[("Id", DataType::Int)])
            .build()
            .unwrap();
        // one fragment covering both P and C: their vectors coincide
        let m = Mapping::with_constraints(
            "ER",
            "SQL",
            vec![MappingConstraint::ExprEq {
                source: entity_extent(&er, "P").unwrap().project(&["Id"]),
                target: Expr::base("T"),
            }],
        );
        let frags = parse_fragments(&er, &rel, &m).unwrap();
        assert!(matches!(
            query_views(&er, &rel, &frags),
            Err(TransGenError::AmbiguousTypes { .. })
        ));
    }

    #[test]
    fn missing_key_rejected() {
        use mm_expr::{entity_extent, Mapping, MappingConstraint};
        use mm_metamodel::{DataType, SchemaBuilder};
        // two fragments with disjoint columns and no declared key
        let er = SchemaBuilder::new("ER")
            .entity("P", &[("A", DataType::Int), ("B", DataType::Int)])
            .build()
            .unwrap();
        let rel = SchemaBuilder::new("SQL")
            .relation("TA", &[("A", DataType::Int)])
            .relation("TB", &[("B", DataType::Int)])
            .build()
            .unwrap();
        let m = Mapping::with_constraints(
            "ER",
            "SQL",
            vec![
                MappingConstraint::ExprEq {
                    source: entity_extent(&er, "P").unwrap().project(&["A"]),
                    target: Expr::base("TA"),
                },
                MappingConstraint::ExprEq {
                    source: entity_extent(&er, "P").unwrap().project(&["B"]),
                    target: Expr::base("TB"),
                },
            ],
        );
        let frags = parse_fragments(&er, &rel, &m).unwrap();
        assert!(matches!(
            query_views(&er, &rel, &frags),
            Err(TransGenError::NoJoinKey(_))
        ));
    }
}
