//! The shared monotonic clock.
//!
//! Spans, duration metrics, and `mm-guard`'s wall-clock budget metering
//! all read time through this module, so "elapsed" means the same thing
//! to a span as it does to the budget that cancels the operation the
//! span measures. A single chokepoint also keeps direct `Instant::now()`
//! calls out of hot paths — there is exactly one place to audit.

use std::time::{Duration, Instant};

/// One reading of the monotonic clock.
#[inline]
pub fn now() -> Instant {
    Instant::now()
}

/// Microseconds elapsed since `since`, saturating at `u64::MAX`.
#[inline]
pub fn elapsed_us(since: Instant) -> u64 {
    duration_us(now().saturating_duration_since(since))
}

/// A [`Duration`] as whole microseconds, saturating at `u64::MAX`.
#[inline]
pub fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_and_nonnegative() {
        let a = now();
        let b = now();
        assert!(b >= a);
        assert!(elapsed_us(a) < 60_000_000, "a fresh reading is not an hour old");
    }

    #[test]
    fn duration_conversion_saturates() {
        assert_eq!(duration_us(Duration::from_micros(5)), 5);
        assert_eq!(duration_us(Duration::MAX), u64::MAX);
    }
}
