//! Spans, events, and the [`Telemetry`] handle that gates them.
//!
//! A [`Telemetry`] handle is either *disabled* (the default — every call
//! reduces to one branch on an `Option`, no allocation, no clock read)
//! or *enabled* around a shared [`Collector`] plus an
//! [`crate::EngineMetrics`] registry. Handles are cheap to clone and
//! share: all clones feed the same collector and registry.
//!
//! Spans nest through a thread-local stack of live span ids, so an
//! engine-level operator span becomes the parent of the chase span it
//! runs — no plumbing of parent ids through call signatures.

use crate::clock;
use crate::collector::Collector;
use crate::metrics::{Counter, EngineMetrics, Timer};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A typed span/event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => f.write_str(v),
        }
    }
}

/// One typed key/value pair on a span or event.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub key: &'static str,
    pub value: FieldValue,
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `elapsed_us` is its duration.
    SpanEnd,
    /// A point-in-time event (e.g. a recorded degradation).
    Point,
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SpanEnd => "span",
            EventKind::Point => "event",
        }
    }
}

/// The unit collectors receive: a finished span or a point event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub kind: EventKind,
    /// Operation name, dotted (`"engine.exchange"`, `"chase.general"`).
    pub op: &'static str,
    /// Artifact the operation acted on (`"mapping:m@v0"`), or empty.
    pub artifact: String,
    /// Id of the span this event belongs to (0 for detached points).
    pub span_id: u64,
    /// Id of the enclosing span, if any.
    pub parent_id: Option<u64>,
    /// Span duration in microseconds (span-end events only).
    pub elapsed_us: Option<u64>,
    pub fields: Vec<Field>,
}

impl Event {
    /// Render as one stable JSON object (hand-rolled: the workspace has
    /// no real serde). Key order is fixed; strings are escaped per RFC
    /// 8259 (quotes, backslashes, control characters).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"kind\":\"");
        s.push_str(self.kind.name());
        s.push_str("\",\"op\":\"");
        json_escape_into(&mut s, self.op);
        s.push_str("\",\"artifact\":\"");
        json_escape_into(&mut s, &self.artifact);
        s.push('"');
        let _ = write!(s, ",\"span\":{}", self.span_id);
        if let Some(p) = self.parent_id {
            let _ = write!(s, ",\"parent\":{p}");
        }
        if let Some(us) = self.elapsed_us {
            let _ = write!(s, ",\"elapsed_us\":{us}");
        }
        s.push_str(",\"fields\":{");
        for (i, f) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            json_escape_into(&mut s, f.key);
            s.push_str("\":");
            match &f.value {
                FieldValue::Str(v) => {
                    s.push('"');
                    json_escape_into(&mut s, v);
                    s.push('"');
                }
                FieldValue::F64(v) if !v.is_finite() => {
                    // JSON has no NaN/Inf; stringify to stay parseable
                    let _ = write!(s, "\"{v}\"");
                }
                other => {
                    let _ = write!(s, "{other}");
                }
            }
        }
        s.push_str("}}");
        s
    }

    /// The value of a named field, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|f| f.key == key).map(|f| &f.value)
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

struct Inner {
    collector: Arc<dyn Collector>,
    metrics: EngineMetrics,
    next_span: AtomicU64,
}

thread_local! {
    /// Live span ids on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The cloneable telemetry handle. `Telemetry::default()` is disabled:
/// every instrumentation call is a single `Option` branch, which is what
/// keeps the no-op overhead of an instrumented hot path inside noise.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// The disabled handle (same as `Default`).
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle feeding `collector`, with a fresh metrics
    /// registry.
    pub fn new(collector: Arc<dyn Collector>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                collector,
                metrics: EngineMetrics::new(),
                next_span: AtomicU64::new(1),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&EngineMetrics> {
        self.inner.as_deref().map(|i| &i.metrics)
    }

    /// Add `n` to `c` (no-op when disabled).
    #[inline]
    pub fn count(&self, c: Counter, n: u64) {
        if let Some(i) = &self.inner {
            i.metrics.add(c, n);
        }
    }

    /// Add `n` to a server counter (no-op when disabled).
    #[inline]
    pub fn count_server(&self, c: crate::ServerCounter, n: u64) {
        if let Some(i) = &self.inner {
            i.metrics.add_server(c, n);
        }
    }

    /// Record one duration observation (no-op when disabled).
    #[inline]
    pub fn observe_us(&self, t: Timer, us: u64) {
        if let Some(i) = &self.inner {
            i.metrics.observe_us(t, us);
        }
    }

    /// Emit a point event, parented to the innermost live span on this
    /// thread (no-op when disabled).
    pub fn event(&self, op: &'static str, artifact: impl Into<String>, fields: Vec<Field>) {
        let Some(i) = &self.inner else { return };
        let parent_id = SPAN_STACK.with(|s| s.borrow().last().copied());
        i.collector.record(Event {
            kind: EventKind::Point,
            op,
            artifact: artifact.into(),
            span_id: 0,
            parent_id,
            elapsed_us: None,
            fields,
        });
    }
}

/// An in-flight span. Created by [`Span::enter`]; records a
/// [`EventKind::SpanEnd`] event with its duration when finished (or
/// dropped). Disabled telemetry yields an inert span: no id, no clock
/// read, fields discarded.
pub struct Span {
    tel: Option<Arc<Inner>>,
    op: &'static str,
    artifact: String,
    id: u64,
    parent: Option<u64>,
    start: Option<Instant>,
    fields: Vec<Field>,
    finished: bool,
}

impl Span {
    /// Open a span for `op` on `artifact`. Nesting is automatic: the
    /// innermost live span on this thread becomes the parent.
    pub fn enter(tel: &Telemetry, op: &'static str, artifact: impl Into<String>) -> Span {
        match &tel.inner {
            None => Span {
                tel: None,
                op,
                artifact: String::new(),
                id: 0,
                parent: None,
                start: None,
                fields: Vec::new(),
                finished: true, // nothing to emit on drop
            },
            Some(inner) => {
                let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
                let parent = SPAN_STACK.with(|s| {
                    let mut s = s.borrow_mut();
                    let parent = s.last().copied();
                    s.push(id);
                    parent
                });
                Span {
                    tel: Some(Arc::clone(inner)),
                    op,
                    artifact: artifact.into(),
                    id,
                    parent,
                    start: Some(clock::now()),
                    fields: Vec::new(),
                    finished: false,
                }
            }
        }
    }

    /// Is this span actually recording?
    pub fn is_enabled(&self) -> bool {
        self.tel.is_some()
    }

    /// This span's id (0 when disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach a typed field (no-op when disabled).
    #[inline]
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.tel.is_some() {
            self.fields.push(Field { key, value: value.into() });
        }
    }

    /// Close the span now, emitting its end event. Equivalent to drop,
    /// but lets callers sequence the emission explicitly.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let Some(inner) = self.tel.take() else { return };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // pop through to our id: robust even if an inner span leaked
            while let Some(top) = s.pop() {
                if top == self.id {
                    break;
                }
            }
        });
        let elapsed = self.start.map(clock::elapsed_us);
        inner.collector.record(Event {
            kind: EventKind::SpanEnd,
            op: self.op,
            artifact: std::mem::take(&mut self.artifact),
            span_id: self.id,
            parent_id: self.parent,
            elapsed_us: elapsed,
            fields: std::mem::take(&mut self.fields),
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::collector::RingCollector;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let mut span = Span::enter(&tel, "noop", "a");
        span.field("k", 1u64);
        span.finish();
        tel.event("e", "", vec![]);
        tel.count(Counter::ChaseRounds, 5);
        assert!(tel.metrics().is_none());
    }

    #[test]
    fn spans_nest_and_emit_in_completion_order() {
        let ring = RingCollector::with_capacity(16);
        let tel = Telemetry::new(ring.clone());
        let outer = Span::enter(&tel, "outer", "art");
        let mut inner = Span::enter(&tel, "inner", "");
        inner.field("n", 7u64);
        inner.finish();
        outer.finish();
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].op, "inner");
        assert_eq!(events[0].parent_id, Some(events[1].span_id));
        assert_eq!(events[0].field("n"), Some(&FieldValue::U64(7)));
        assert_eq!(events[1].op, "outer");
        assert_eq!(events[1].artifact, "art");
        assert_eq!(events[1].parent_id, None);
        assert!(events.iter().all(|e| e.elapsed_us.is_some()));
    }

    #[test]
    fn point_events_parent_to_live_span() {
        let ring = RingCollector::with_capacity(16);
        let tel = Telemetry::new(ring.clone());
        let span = Span::enter(&tel, "op", "");
        tel.event("degraded", "view:v", vec![Field { key: "cause", value: "steps".into() }]);
        span.finish();
        let events = ring.events();
        assert_eq!(events[0].kind, EventKind::Point);
        assert_eq!(events[0].parent_id, Some(events[1].span_id));
    }

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let e = Event {
            kind: EventKind::Point,
            op: "test",
            artifact: "a\"b\\c\nd".into(),
            span_id: 0,
            parent_id: None,
            elapsed_us: None,
            fields: vec![
                Field { key: "s", value: "x\ty".into() },
                Field { key: "n", value: 3u64.into() },
                Field { key: "b", value: true.into() },
            ],
        };
        assert_eq!(
            e.to_json(),
            "{\"kind\":\"event\",\"op\":\"test\",\"artifact\":\"a\\\"b\\\\c\\nd\",\
             \"span\":0,\"fields\":{\"s\":\"x\\ty\",\"n\":3,\"b\":true}}"
        );
    }

    #[test]
    fn dropping_a_span_emits_its_end() {
        let ring = RingCollector::with_capacity(4);
        let tel = Telemetry::new(ring.clone());
        {
            let _span = Span::enter(&tel, "scoped", "");
        }
        assert_eq!(ring.events().len(), 1);
    }
}
