//! Spans, events, and the [`Telemetry`] handle that gates them.
//!
//! A [`Telemetry`] handle is either *disabled* (the default — every call
//! reduces to one branch on an `Option`, no allocation, no clock read)
//! or *enabled* around a shared [`Collector`] plus an
//! [`crate::EngineMetrics`] registry. Handles are cheap to clone and
//! share: all clones feed the same collector and registry.
//!
//! Spans nest through a thread-local stack of live span ids, so an
//! engine-level operator span becomes the parent of the chase span it
//! runs — no plumbing of parent ids through call signatures.

use crate::clock;
use crate::collector::Collector;
use crate::metrics::{Counter, EngineMetrics, Timer};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A typed span/event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => f.write_str(v),
        }
    }
}

/// One typed key/value pair on a span or event.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub key: &'static str,
    pub value: FieldValue,
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `elapsed_us` is its duration.
    SpanEnd,
    /// A point-in-time event (e.g. a recorded degradation).
    Point,
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SpanEnd => "span",
            EventKind::Point => "event",
        }
    }
}

/// The unit collectors receive: a finished span or a point event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub kind: EventKind,
    /// Operation name, dotted (`"engine.exchange"`, `"chase.general"`).
    pub op: &'static str,
    /// Artifact the operation acted on (`"mapping:m@v0"`), or empty.
    pub artifact: String,
    /// Id of the span this event belongs to (0 for detached points).
    pub span_id: u64,
    /// Id of the enclosing span, if any.
    pub parent_id: Option<u64>,
    /// Distributed trace id stitching this event to the request that
    /// caused it (0 = no trace; rendered only when non-zero, so
    /// pre-tracing JSON stays byte-identical).
    pub trace_id: u64,
    /// Span duration in microseconds (span-end events only).
    pub elapsed_us: Option<u64>,
    pub fields: Vec<Field>,
}

impl Event {
    /// Render as one stable JSON object (hand-rolled: the workspace has
    /// no real serde). Key order is fixed; strings are escaped per RFC
    /// 8259 (quotes, backslashes, control characters).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"kind\":\"");
        s.push_str(self.kind.name());
        s.push_str("\",\"op\":\"");
        json_escape_into(&mut s, self.op);
        s.push_str("\",\"artifact\":\"");
        json_escape_into(&mut s, &self.artifact);
        s.push('"');
        let _ = write!(s, ",\"span\":{}", self.span_id);
        if let Some(p) = self.parent_id {
            let _ = write!(s, ",\"parent\":{p}");
        }
        if self.trace_id != 0 {
            let _ = write!(s, ",\"trace\":{}", self.trace_id);
        }
        if let Some(us) = self.elapsed_us {
            let _ = write!(s, ",\"elapsed_us\":{us}");
        }
        s.push_str(",\"fields\":{");
        for (i, f) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            json_escape_into(&mut s, f.key);
            s.push_str("\":");
            match &f.value {
                FieldValue::Str(v) => {
                    s.push('"');
                    json_escape_into(&mut s, v);
                    s.push('"');
                }
                FieldValue::F64(v) if !v.is_finite() => {
                    // JSON has no NaN/Inf; stringify to stay parseable
                    let _ = write!(s, "\"{v}\"");
                }
                other => {
                    let _ = write!(s, "{other}");
                }
            }
        }
        s.push_str("}}");
        s
    }

    /// The value of a named field, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|f| f.key == key).map(|f| &f.value)
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

struct Inner {
    collector: Arc<dyn Collector>,
    metrics: EngineMetrics,
    next_span: AtomicU64,
}

thread_local! {
    /// Live span ids on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// The trace id of the request this thread is currently serving
    /// (0 = none). Set by [`Telemetry::trace_scope`]; read by every
    /// span/event so one id stitches the whole request tree. Threads
    /// spawned mid-request (the parallel pool) start at 0 — the pool is
    /// a scheduling detail, and its spans are already stitched through
    /// parent ids on the spawning thread.
    static TRACE_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    /// When a trace scope asked for capture, the events recorded on
    /// this thread while it is live (bounded at [`CAPTURE_CAP`]); the
    /// flight recorder drains this into slow-log entries.
    static CAPTURE: RefCell<Option<Vec<Event>>> = const { RefCell::new(None) };
}

/// Upper bound on events a capturing trace scope retains — a runaway
/// request keeps its first `CAPTURE_CAP` events and drops the rest
/// (the collector still sees everything).
pub const CAPTURE_CAP: usize = 512;

/// The trace id live on this thread right now (0 = none).
fn current_trace() -> u64 {
    TRACE_ID.with(|t| t.get())
}

/// Tee a just-recorded event into the live capture buffer, if any.
fn capture_event(event: &Event) {
    CAPTURE.with(|c| {
        if let Some(buf) = c.borrow_mut().as_mut() {
            if buf.len() < CAPTURE_CAP {
                buf.push(event.clone());
            }
        }
    });
}

/// RAII guard installing a trace id (and optionally an event-capture
/// buffer) on the current thread; restores the previous state on drop,
/// so scopes nest. Created by [`Telemetry::trace_scope`].
pub struct TraceScope {
    active: bool,
    prev_id: u64,
    prev_capture: Option<Vec<Event>>,
}

impl TraceScope {
    /// Take the events captured so far, ending capture for the rest of
    /// the scope. Returns an empty vec for inert or non-capturing
    /// scopes.
    pub fn take_captured(&mut self) -> Vec<Event> {
        if !self.active {
            return Vec::new();
        }
        CAPTURE.with(|c| c.borrow_mut().take()).unwrap_or_default()
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        TRACE_ID.with(|t| t.set(self.prev_id));
        let prev = self.prev_capture.take();
        CAPTURE.with(|c| *c.borrow_mut() = prev);
    }
}

/// The cloneable telemetry handle. `Telemetry::default()` is disabled:
/// every instrumentation call is a single `Option` branch, which is what
/// keeps the no-op overhead of an instrumented hot path inside noise.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// The disabled handle (same as `Default`).
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle feeding `collector`, with a fresh metrics
    /// registry.
    pub fn new(collector: Arc<dyn Collector>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                collector,
                metrics: EngineMetrics::new(),
                next_span: AtomicU64::new(1),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&EngineMetrics> {
        self.inner.as_deref().map(|i| &i.metrics)
    }

    /// Add `n` to `c` (no-op when disabled).
    #[inline]
    pub fn count(&self, c: Counter, n: u64) {
        if let Some(i) = &self.inner {
            i.metrics.add(c, n);
        }
    }

    /// Add `n` to a server counter (no-op when disabled).
    #[inline]
    pub fn count_server(&self, c: crate::ServerCounter, n: u64) {
        if let Some(i) = &self.inner {
            i.metrics.add_server(c, n);
        }
    }

    /// Raise the allocation-pressure gauges to the given process-wide
    /// totals (no-op when disabled). Callers sample the instance-layer
    /// counters at operation boundaries and pass the running totals;
    /// `fetch_max` underneath makes concurrent samples race-safe.
    #[inline]
    pub fn sample_alloc(&self, tuples: u64, interned: u64) {
        if let Some(i) = &self.inner {
            i.metrics.raise_alloc(crate::AllocCounter::Tuples, tuples);
            i.metrics.raise_alloc(crate::AllocCounter::Interned, interned);
        }
    }

    /// Record one duration observation (no-op when disabled).
    #[inline]
    pub fn observe_us(&self, t: Timer, us: u64) {
        if let Some(i) = &self.inner {
            i.metrics.observe_us(t, us);
        }
    }

    /// Record one histogram observation (no-op when disabled).
    #[inline]
    pub fn observe_hist(&self, h: crate::Hist, value: u64) {
        if let Some(i) = &self.inner {
            i.metrics.observe_hist(h, value);
        }
    }

    /// Record one per-op service-time observation (no-op when disabled).
    #[inline]
    pub fn observe_op_service_us(&self, op: crate::ServerOp, us: u64) {
        if let Some(i) = &self.inner {
            i.metrics.observe_op_service_us(op, us);
        }
    }

    /// Events the collector behind this handle has dropped (ring
    /// overflow or sink write failures); 0 when disabled.
    pub fn events_dropped(&self) -> u64 {
        self.inner.as_deref().map_or(0, |i| i.collector.events_dropped())
    }

    /// Install `trace_id` on the current thread for the lifetime of the
    /// returned guard: every span and point event recorded on this
    /// thread carries it, stitching the request tree across crate
    /// boundaries without threading an id through call signatures. With
    /// `capture`, the guard also retains a bounded copy of those events
    /// ([`CAPTURE_CAP`]) for the flight recorder — see
    /// [`TraceScope::take_captured`]. Inert (and free) when the handle
    /// is disabled or `trace_id` is 0.
    pub fn trace_scope(&self, trace_id: u64, capture: bool) -> TraceScope {
        if self.inner.is_none() || trace_id == 0 {
            return TraceScope { active: false, prev_id: 0, prev_capture: None };
        }
        let prev_id = TRACE_ID.with(|t| t.replace(trace_id));
        let new_buf = if capture { Some(Vec::new()) } else { None };
        let prev_capture = CAPTURE.with(|c| std::mem::replace(&mut *c.borrow_mut(), new_buf));
        TraceScope { active: true, prev_id, prev_capture }
    }

    /// Emit a point event, parented to the innermost live span on this
    /// thread (no-op when disabled).
    pub fn event(&self, op: &'static str, artifact: impl Into<String>, fields: Vec<Field>) {
        let Some(i) = &self.inner else { return };
        let parent_id = SPAN_STACK.with(|s| s.borrow().last().copied());
        let event = Event {
            kind: EventKind::Point,
            op,
            artifact: artifact.into(),
            span_id: 0,
            parent_id,
            trace_id: current_trace(),
            elapsed_us: None,
            fields,
        };
        capture_event(&event);
        i.collector.record(event);
    }
}

/// An in-flight span. Created by [`Span::enter`]; records a
/// [`EventKind::SpanEnd`] event with its duration when finished (or
/// dropped). Disabled telemetry yields an inert span: no id, no clock
/// read, fields discarded.
pub struct Span {
    tel: Option<Arc<Inner>>,
    op: &'static str,
    artifact: String,
    id: u64,
    parent: Option<u64>,
    trace: u64,
    start: Option<Instant>,
    fields: Vec<Field>,
    finished: bool,
}

impl Span {
    /// Open a span for `op` on `artifact`. Nesting is automatic: the
    /// innermost live span on this thread becomes the parent.
    pub fn enter(tel: &Telemetry, op: &'static str, artifact: impl Into<String>) -> Span {
        match &tel.inner {
            None => Span {
                tel: None,
                op,
                artifact: String::new(),
                id: 0,
                parent: None,
                trace: 0,
                start: None,
                fields: Vec::new(),
                finished: true, // nothing to emit on drop
            },
            Some(inner) => {
                let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
                let parent = SPAN_STACK.with(|s| {
                    let mut s = s.borrow_mut();
                    let parent = s.last().copied();
                    s.push(id);
                    parent
                });
                Span {
                    tel: Some(Arc::clone(inner)),
                    op,
                    artifact: artifact.into(),
                    id,
                    parent,
                    trace: current_trace(),
                    start: Some(clock::now()),
                    fields: Vec::new(),
                    finished: false,
                }
            }
        }
    }

    /// Is this span actually recording?
    pub fn is_enabled(&self) -> bool {
        self.tel.is_some()
    }

    /// This span's id (0 when disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach a typed field (no-op when disabled).
    #[inline]
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.tel.is_some() {
            self.fields.push(Field { key, value: value.into() });
        }
    }

    /// Close the span now, emitting its end event. Equivalent to drop,
    /// but lets callers sequence the emission explicitly.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let Some(inner) = self.tel.take() else { return };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // pop through to our id: robust even if an inner span leaked
            while let Some(top) = s.pop() {
                if top == self.id {
                    break;
                }
            }
        });
        let elapsed = self.start.map(clock::elapsed_us);
        let event = Event {
            kind: EventKind::SpanEnd,
            op: self.op,
            artifact: std::mem::take(&mut self.artifact),
            span_id: self.id,
            parent_id: self.parent,
            trace_id: self.trace,
            elapsed_us: elapsed,
            fields: std::mem::take(&mut self.fields),
        };
        capture_event(&event);
        inner.collector.record(event);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::collector::RingCollector;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let mut span = Span::enter(&tel, "noop", "a");
        span.field("k", 1u64);
        span.finish();
        tel.event("e", "", vec![]);
        tel.count(Counter::ChaseRounds, 5);
        assert!(tel.metrics().is_none());
    }

    #[test]
    fn spans_nest_and_emit_in_completion_order() {
        let ring = RingCollector::with_capacity(16);
        let tel = Telemetry::new(ring.clone());
        let outer = Span::enter(&tel, "outer", "art");
        let mut inner = Span::enter(&tel, "inner", "");
        inner.field("n", 7u64);
        inner.finish();
        outer.finish();
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].op, "inner");
        assert_eq!(events[0].parent_id, Some(events[1].span_id));
        assert_eq!(events[0].field("n"), Some(&FieldValue::U64(7)));
        assert_eq!(events[1].op, "outer");
        assert_eq!(events[1].artifact, "art");
        assert_eq!(events[1].parent_id, None);
        assert!(events.iter().all(|e| e.elapsed_us.is_some()));
    }

    #[test]
    fn point_events_parent_to_live_span() {
        let ring = RingCollector::with_capacity(16);
        let tel = Telemetry::new(ring.clone());
        let span = Span::enter(&tel, "op", "");
        tel.event("degraded", "view:v", vec![Field { key: "cause", value: "steps".into() }]);
        span.finish();
        let events = ring.events();
        assert_eq!(events[0].kind, EventKind::Point);
        assert_eq!(events[0].parent_id, Some(events[1].span_id));
    }

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let e = Event {
            kind: EventKind::Point,
            op: "test",
            artifact: "a\"b\\c\nd".into(),
            span_id: 0,
            parent_id: None,
            trace_id: 0,
            elapsed_us: None,
            fields: vec![
                Field { key: "s", value: "x\ty".into() },
                Field { key: "n", value: 3u64.into() },
                Field { key: "b", value: true.into() },
            ],
        };
        assert_eq!(
            e.to_json(),
            "{\"kind\":\"event\",\"op\":\"test\",\"artifact\":\"a\\\"b\\\\c\\nd\",\
             \"span\":0,\"fields\":{\"s\":\"x\\ty\",\"n\":3,\"b\":true}}"
        );
    }

    #[test]
    fn trace_scope_stamps_spans_and_captures_events() {
        let ring = RingCollector::with_capacity(16);
        let tel = Telemetry::new(ring.clone());
        let captured = {
            let mut scope = tel.trace_scope(0xABCD, true);
            let inner = Span::enter(&tel, "traced", "");
            tel.event("pt", "", vec![]);
            inner.finish();
            scope.take_captured()
        };
        // outside the scope: no trace id
        Span::enter(&tel, "untraced", "").finish();
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].trace_id, 0xABCD, "point event stamped");
        assert_eq!(events[1].trace_id, 0xABCD, "span end stamped");
        assert_eq!(events[2].trace_id, 0, "scope restored on drop");
        assert_eq!(captured.len(), 2, "capture tees the scoped events");
        assert!(captured.iter().all(|e| e.trace_id == 0xABCD));
        // JSON carries the trace only when set
        assert!(events[0].to_json().contains(",\"trace\":43981"));
        assert!(!events[2].to_json().contains("\"trace\":"));
    }

    #[test]
    fn trace_scope_is_inert_when_disabled_or_zero() {
        let tel = Telemetry::disabled();
        let mut scope = tel.trace_scope(7, true);
        assert!(scope.take_captured().is_empty());
        drop(scope);
        let ring = RingCollector::with_capacity(4);
        let tel = Telemetry::new(ring.clone());
        let _scope = tel.trace_scope(0, true);
        Span::enter(&tel, "x", "").finish();
        assert_eq!(ring.events()[0].trace_id, 0, "trace 0 means no trace");
    }

    #[test]
    fn dropping_a_span_emits_its_end() {
        let ring = RingCollector::with_capacity(4);
        let tel = Telemetry::new(ring.clone());
        {
            let _span = Span::enter(&tel, "scoped", "");
        }
        assert_eq!(ring.events().len(), 1);
    }
}
