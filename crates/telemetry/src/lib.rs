//! Zero-dependency telemetry for the model management engine.
//!
//! After PR 1–3 the engine has budgets, compiled plans, plan caches,
//! semi-naive deltas, degradation fallbacks, WAL commits, and recovery —
//! none of which emitted an observable signal. This crate is the
//! instrumentation substrate every execution-path crate threads through:
//!
//! * [`span`] — a lightweight span/event API ([`Span::enter`], typed
//!   fields, monotonic timing, nesting) behind a cloneable [`Telemetry`]
//!   handle whose disabled default costs one branch per call site;
//! * [`collector`] — the pluggable [`Collector`] sink: [`RingCollector`]
//!   for in-memory capture, [`JsonLinesCollector`] streaming one JSON
//!   object per event through a [`LineSink`] (`mm-repository` adapts its
//!   `Storage` trait to this);
//! * [`metrics`] — [`EngineMetrics`], an atomically-updated registry of
//!   counters and duration stats (chase rounds, tgd activations, delta
//!   sizes, homomorphisms found vs pruned, plan-cache hits/misses,
//!   compose clauses, degradations by cause, WAL frames/bytes,
//!   checkpoint/recovery durations, budget consumption);
//! * [`explain`] — the [`ExplainNode`] tree every `Engine::explain_*`
//!   report renders into, with a deterministic pretty-printer;
//! * [`clock`] — the shared monotonic clock spans *and* `ExecBudget`
//!   wall metering read, so they agree on elapsed time.
//!
//! The crate is std-only by design: it sits below `mm-guard` in the
//! dependency graph, so nothing in the workspace can cycle into it.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod clock;
pub mod collector;
pub mod explain;
pub mod histogram;
pub mod metrics;
pub mod span;

pub use collector::{Collector, JsonLinesCollector, LineSink, RingCollector, VecSink};
pub use explain::ExplainNode;
pub use histogram::{Histogram, HistogramSummary};
pub use metrics::{
    AllocCounter, Cause, Counter, DegradationSite, EngineMetrics, Hist, MetricsSnapshot,
    PropagateCounter, ServerCounter, ServerOp, Timer,
};
pub use span::{Event, EventKind, Field, FieldValue, Span, Telemetry, TraceScope};
