//! The engine metrics registry: atomically-updated counters and
//! duration statistics, shared by every instrumented crate through the
//! [`crate::Telemetry`] handle.
//!
//! The inventory is a closed enum rather than string keys: updating a
//! counter is one relaxed atomic add with no hashing or allocation, so
//! metering is safe to leave on inside the chase round loop. Snapshots
//! render to a `BTreeMap` with stable snake-case names, which is what
//! the JSON-lines dump and the tests key on.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::histogram::Histogram;

/// Monotonic counters the engine exports. Names in snapshots are the
/// lowercase snake-case of the variant (see [`Counter::name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Fixpoint rounds executed by the chase (st chase counts 1).
    ChaseRounds,
    /// Tgd activations: firings that inserted at least one tuple.
    ChaseFirings,
    /// Labeled nulls minted by chase firings.
    ChaseNullsMinted,
    /// Tuples inserted by the chase (delta size summed over rounds).
    ChaseDeltaTuples,
    /// Homomorphisms found by conjunctive-query evaluation.
    HomFound,
    /// Join candidates metered but pruned before becoming homomorphisms.
    HomPruned,
    /// Engine chase-plan cache hits.
    PlanCacheHits,
    /// Engine chase-plan cache misses (compiles).
    PlanCacheMisses,
    /// SO-tgd clauses emitted by composition splicing.
    ComposeClausesEmitted,
    /// WAL batch frames appended.
    WalFramesAppended,
    /// WAL bytes appended (frame headers included).
    WalBytesAppended,
    /// Checkpoints completed.
    Checkpoints,
    /// Durable recoveries completed (`open_durable`).
    Recoveries,
    /// Budget steps consumed by completed governed operations.
    BudgetStepsConsumed,
    /// Budget rows consumed by completed governed operations.
    BudgetRowsConsumed,
    /// Workers that participated in parallel pool runs (summed per run;
    /// a run that degraded to sequential contributes 1).
    ParallelWorkers,
    /// Successful work steals across all parallel pool runs.
    ParallelSteals,
    /// Tasks executed by parallel pool runs (chunks, not tuples).
    ParallelTasks,
    /// Cached/compiled plans whose statistics drifted beyond the
    /// configured re-plan ratio (detected misestimates).
    PlanMisestimates,
    /// Plans recompiled by adaptive re-optimization (cache invalidation
    /// + costed recompile, or a mid-chase plan swap).
    PlanReplans,
    /// Duplicate batch entries served from a shared evaluation by
    /// multi-query optimization instead of re-running.
    MqoSharedPlans,
}

const COUNTERS: usize = Counter::MqoSharedPlans as usize + 1;

impl Counter {
    /// Stable snapshot key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ChaseRounds => "chase_rounds",
            Counter::ChaseFirings => "chase_firings",
            Counter::ChaseNullsMinted => "chase_nulls_minted",
            Counter::ChaseDeltaTuples => "chase_delta_tuples",
            Counter::HomFound => "hom_found",
            Counter::HomPruned => "hom_pruned",
            Counter::PlanCacheHits => "plan_cache_hits",
            Counter::PlanCacheMisses => "plan_cache_misses",
            Counter::ComposeClausesEmitted => "compose_clauses_emitted",
            Counter::WalFramesAppended => "wal_frames_appended",
            Counter::WalBytesAppended => "wal_bytes_appended",
            Counter::Checkpoints => "checkpoints",
            Counter::Recoveries => "recoveries",
            Counter::BudgetStepsConsumed => "budget_steps_consumed",
            Counter::BudgetRowsConsumed => "budget_rows_consumed",
            Counter::ParallelWorkers => "parallel_workers",
            Counter::ParallelSteals => "parallel_steals",
            Counter::ParallelTasks => "parallel_tasks",
            Counter::PlanMisestimates => "plan_misestimates",
            Counter::PlanReplans => "plan_replans",
            Counter::MqoSharedPlans => "mqo_shared_plans",
        }
    }

    fn all() -> [Counter; COUNTERS] {
        [
            Counter::ChaseRounds,
            Counter::ChaseFirings,
            Counter::ChaseNullsMinted,
            Counter::ChaseDeltaTuples,
            Counter::HomFound,
            Counter::HomPruned,
            Counter::PlanCacheHits,
            Counter::PlanCacheMisses,
            Counter::ComposeClausesEmitted,
            Counter::WalFramesAppended,
            Counter::WalBytesAppended,
            Counter::Checkpoints,
            Counter::Recoveries,
            Counter::BudgetStepsConsumed,
            Counter::BudgetRowsConsumed,
            Counter::ParallelWorkers,
            Counter::ParallelSteals,
            Counter::ParallelTasks,
            Counter::PlanMisestimates,
            Counter::PlanReplans,
            Counter::MqoSharedPlans,
        ]
    }
}

/// Counters for the wire front-end (`mm-server`). Kept as a separate
/// closed enum so the server can meter without widening [`Counter`]'s
/// array on engine-only deployments; snapshots render them under
/// dotted `server.*` keys with zero values elided (same discipline as
/// degradations — a snapshot from a process that never served traffic
/// carries no server rows at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ServerCounter {
    /// Connections accepted into a session slot.
    Accepted,
    /// Connections refused at accept time (session table full).
    Rejected,
    /// Requests shed by admission control before body decode.
    Shed,
    /// Requests rejected because the executor queue was full.
    QueueFull,
    /// Requests that tripped their deadline (wall cap or hard deadline).
    TimedOut,
    /// Sessions that ended with the client gone mid-request or
    /// mid-response (read/write error or EOF before a clean close).
    Disconnects,
    /// Requests that reached a worker and produced a response frame
    /// (success or typed error).
    Completed,
    /// Requests refused with `ShuttingDown` during drain.
    ShedShutdown,
}

const SERVER_COUNTERS: usize = ServerCounter::ShedShutdown as usize + 1;

impl ServerCounter {
    /// Stable snapshot key (dotted, sorts into one `server.*` block).
    pub fn name(self) -> &'static str {
        match self {
            ServerCounter::Accepted => "server.accepted",
            ServerCounter::Rejected => "server.rejected",
            ServerCounter::Shed => "server.shed",
            ServerCounter::QueueFull => "server.queue_full",
            ServerCounter::TimedOut => "server.timed_out",
            ServerCounter::Disconnects => "server.disconnects",
            ServerCounter::Completed => "server.completed",
            ServerCounter::ShedShutdown => "server.shed_shutdown",
        }
    }

    fn all() -> [ServerCounter; SERVER_COUNTERS] {
        [
            ServerCounter::Accepted,
            ServerCounter::Rejected,
            ServerCounter::Shed,
            ServerCounter::QueueFull,
            ServerCounter::TimedOut,
            ServerCounter::Disconnects,
            ServerCounter::Completed,
            ServerCounter::ShedShutdown,
        ]
    }
}

/// Counters for the update-propagation pipeline (`mm-propagate`).
/// Same discipline as [`ServerCounter`]: a separate closed enum with
/// dotted `propagate.*` snapshot keys and zero values elided, so a
/// process with no subscribers carries no propagation rows at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum PropagateCounter {
    /// Change-feed events published (one per committed data batch; a
    /// bulk load publishes a single coalesced event).
    EventsPublished,
    /// Incremental delta notifications enqueued for subscribers.
    DeltasPushed,
    /// High-water mark of any subscriber queue depth (monotone max).
    QueueHighWater,
    /// Subscribers flipped to recompute-and-resync because their queue
    /// overflowed its bound (lag past the high-water bound).
    ResyncsOverflow,
    /// Subscribers flipped to recompute-and-resync because their cursor
    /// fell off the retained feed (too old to replay incrementally).
    ResyncsCursorLost,
    /// Subscribers flipped to recompute-and-resync because delta
    /// computation tripped its budget.
    ResyncsBudget,
    /// Resync snapshots actually delivered to subscribers.
    ResyncsDelivered,
}

const PROPAGATE_COUNTERS: usize = PropagateCounter::ResyncsDelivered as usize + 1;

impl PropagateCounter {
    /// Stable snapshot key (dotted, sorts into one `propagate.*` block).
    pub fn name(self) -> &'static str {
        match self {
            PropagateCounter::EventsPublished => "propagate.events_published",
            PropagateCounter::DeltasPushed => "propagate.deltas_pushed",
            PropagateCounter::QueueHighWater => "propagate.queue_high_water",
            PropagateCounter::ResyncsOverflow => "propagate.resyncs_overflow",
            PropagateCounter::ResyncsCursorLost => "propagate.resyncs_cursor_lost",
            PropagateCounter::ResyncsBudget => "propagate.resyncs_budget",
            PropagateCounter::ResyncsDelivered => "propagate.resyncs_delivered",
        }
    }

    fn all() -> [PropagateCounter; PROPAGATE_COUNTERS] {
        [
            PropagateCounter::EventsPublished,
            PropagateCounter::DeltasPushed,
            PropagateCounter::QueueHighWater,
            PropagateCounter::ResyncsOverflow,
            PropagateCounter::ResyncsCursorLost,
            PropagateCounter::ResyncsBudget,
            PropagateCounter::ResyncsDelivered,
        ]
    }
}

/// Allocation-pressure gauges for the compact data plane. The actual
/// counts accumulate in `mm-instance` process-wide statics (telemetry
/// sits *below* the instance crate, so it cannot read them itself);
/// the engine samples the running totals at operation boundaries and
/// raises these monotone gauges via [`EngineMetrics::raise_alloc`].
/// Snapshots render them under dotted `alloc.*` keys with zero values
/// elided, so a process that never spilled a tuple or interned a
/// string carries no allocation rows at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum AllocCounter {
    /// Tuples whose values spilled to a heap allocation (arity above
    /// the inline bound, or compact mode off).
    Tuples,
    /// Distinct strings admitted to the process-wide intern pool.
    Interned,
}

const ALLOC_COUNTERS: usize = AllocCounter::Interned as usize + 1;

impl AllocCounter {
    /// Stable snapshot key (dotted, sorts into one `alloc.*` block).
    pub fn name(self) -> &'static str {
        match self {
            AllocCounter::Tuples => "alloc.tuples",
            AllocCounter::Interned => "alloc.interned",
        }
    }

    fn all() -> [AllocCounter; ALLOC_COUNTERS] {
        [AllocCounter::Tuples, AllocCounter::Interned]
    }
}

/// Latency/size distributions the engine exports as log-bucketed
/// [`Histogram`]s. Snapshots render each as five
/// `<name>_{p50,p90,p99,max,count}` keys, with never-observed
/// histograms elided entirely (same discipline as `server.*` rows — a
/// fresh snapshot is byte-identical to the pre-histogram era).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Wire request service time (decode through response write), µs.
    ServerServiceUs,
    /// Time a request spent queued before a worker picked it up, µs.
    ServerQueueWaitUs,
    /// Duration of one chase fixpoint round (st chase counts its single
    /// pass as one round), µs.
    ChaseRoundUs,
    /// `append_batch` WAL write latency, µs.
    WalAppendUs,
    /// Checkpoint (write-new-then-swap) latency, µs.
    WalCheckpointUs,
    /// Rows carried by one pushed delta notification.
    PropagateDeltaRows,
    /// Notifications drained by one `poll` call.
    PropagatePollBatch,
}

const HISTS: usize = Hist::PropagatePollBatch as usize + 1;

impl Hist {
    /// Stable snapshot key prefix (dotted, sorts beside its subsystem).
    pub fn name(self) -> &'static str {
        match self {
            Hist::ServerServiceUs => "server.service_us",
            Hist::ServerQueueWaitUs => "server.queue_wait_us",
            Hist::ChaseRoundUs => "chase.round_us",
            Hist::WalAppendUs => "wal.append_us",
            Hist::WalCheckpointUs => "wal.checkpoint_us",
            Hist::PropagateDeltaRows => "propagate.delta_rows",
            Hist::PropagatePollBatch => "propagate.poll_batch",
        }
    }

    fn all() -> [Hist; HISTS] {
        [
            Hist::ServerServiceUs,
            Hist::ServerQueueWaitUs,
            Hist::ChaseRoundUs,
            Hist::WalAppendUs,
            Hist::WalCheckpointUs,
            Hist::PropagateDeltaRows,
            Hist::PropagatePollBatch,
        ]
    }
}

/// The wire operations `mm-server` breaks service time down by.
/// Mirrors the server's `Op` enum without depending on it — the server
/// sits *above* telemetry in the dependency graph (same pattern as
/// [`Cause`] mirroring `mm_guard::Resource`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ServerOp {
    Ping,
    Exchange,
    ExchangeBatch,
    Mediate,
    ExplainExchange,
    Script,
    PutInstance,
    InsertBatch,
    Subscribe,
    Poll,
    Ack,
    Resume,
    Unsubscribe,
    Metrics,
    Health,
    SlowLog,
    TraceGet,
}

const SERVER_OPS: usize = ServerOp::TraceGet as usize + 1;

impl ServerOp {
    /// Stable snapshot key segment (`server.op.<name>.service_us_*`).
    pub fn name(self) -> &'static str {
        match self {
            ServerOp::Ping => "ping",
            ServerOp::Exchange => "exchange",
            ServerOp::ExchangeBatch => "exchange_batch",
            ServerOp::Mediate => "mediate",
            ServerOp::ExplainExchange => "explain_exchange",
            ServerOp::Script => "script",
            ServerOp::PutInstance => "put_instance",
            ServerOp::InsertBatch => "insert_batch",
            ServerOp::Subscribe => "subscribe",
            ServerOp::Poll => "poll",
            ServerOp::Ack => "ack",
            ServerOp::Resume => "resume",
            ServerOp::Unsubscribe => "unsubscribe",
            ServerOp::Metrics => "metrics",
            ServerOp::Health => "health",
            ServerOp::SlowLog => "slow_log",
            ServerOp::TraceGet => "trace_get",
        }
    }

    fn all() -> [ServerOp; SERVER_OPS] {
        [
            ServerOp::Ping,
            ServerOp::Exchange,
            ServerOp::ExchangeBatch,
            ServerOp::Mediate,
            ServerOp::ExplainExchange,
            ServerOp::Script,
            ServerOp::PutInstance,
            ServerOp::InsertBatch,
            ServerOp::Subscribe,
            ServerOp::Poll,
            ServerOp::Ack,
            ServerOp::Resume,
            ServerOp::Unsubscribe,
            ServerOp::Metrics,
            ServerOp::Health,
            ServerOp::SlowLog,
            ServerOp::TraceGet,
        ]
    }
}

/// Duration statistics (count / total / max, in microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Timer {
    /// `Repository::checkpoint` wall time.
    Checkpoint,
    /// `Repository::open_durable` recovery wall time.
    Recovery,
    /// Whole chase invocations (st and general).
    Chase,
    /// SO-tgd composition invocations.
    Compose,
}

const TIMERS: usize = Timer::Compose as usize + 1;

impl Timer {
    /// Stable snapshot key prefix.
    pub fn name(self) -> &'static str {
        match self {
            Timer::Checkpoint => "checkpoint",
            Timer::Recovery => "recovery",
            Timer::Chase => "chase",
            Timer::Compose => "compose",
        }
    }

    fn all() -> [Timer; TIMERS] {
        [Timer::Checkpoint, Timer::Recovery, Timer::Chase, Timer::Compose]
    }
}

/// Which fallback path recorded a degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum DegradationSite {
    /// Mediator: collapsed chain degraded to hop-by-hop unfolding.
    Mediator,
    /// IVM: incremental delta rules degraded to a full recompute.
    Ivm,
    /// Propagation: incremental push degraded to recompute-and-resync.
    Propagate,
}

const SITES: usize = DegradationSite::Propagate as usize + 1;

impl DegradationSite {
    pub fn name(self) -> &'static str {
        match self {
            DegradationSite::Mediator => "mediator",
            DegradationSite::Ivm => "ivm",
            DegradationSite::Propagate => "propagate",
        }
    }

    fn all() -> [DegradationSite; SITES] {
        [DegradationSite::Mediator, DegradationSite::Ivm, DegradationSite::Propagate]
    }
}

/// The budget resource (or cancellation) that caused a degradation.
/// Mirrors `mm_guard::Resource` without depending on it — guard sits
/// *above* telemetry in the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Cause {
    Steps,
    Rows,
    Rounds,
    Clauses,
    WallClock,
    Cancelled,
    Other,
}

const CAUSES: usize = Cause::Other as usize + 1;

impl Cause {
    pub fn name(self) -> &'static str {
        match self {
            Cause::Steps => "steps",
            Cause::Rows => "rows",
            Cause::Rounds => "rounds",
            Cause::Clauses => "clauses",
            Cause::WallClock => "wall_clock",
            Cause::Cancelled => "cancelled",
            Cause::Other => "other",
        }
    }

    fn all() -> [Cause; CAUSES] {
        [
            Cause::Steps,
            Cause::Rows,
            Cause::Rounds,
            Cause::Clauses,
            Cause::WallClock,
            Cause::Cancelled,
            Cause::Other,
        ]
    }
}

#[derive(Default)]
struct DurationStat {
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

impl DurationStat {
    fn observe(&self, us: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }
}

/// The registry. One instance lives inside each enabled
/// [`crate::Telemetry`] handle; all clones of the handle share it.
#[derive(Default)]
pub struct EngineMetrics {
    counters: [AtomicU64; COUNTERS],
    server_counters: [AtomicU64; SERVER_COUNTERS],
    propagate_counters: [AtomicU64; PROPAGATE_COUNTERS],
    alloc_counters: [AtomicU64; ALLOC_COUNTERS],
    timers: [DurationStat; TIMERS],
    hists: [Histogram; HISTS],
    op_service: [Histogram; SERVER_OPS],
    degradations: [[AtomicU64; CAUSES]; SITES],
}

impl EngineMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to a counter (relaxed; totals only).
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of a counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Add `n` to a server counter (relaxed; totals only).
    #[inline]
    pub fn add_server(&self, c: ServerCounter, n: u64) {
        self.server_counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of a server counter.
    pub fn get_server(&self, c: ServerCounter) -> u64 {
        self.server_counters[c as usize].load(Ordering::Relaxed)
    }

    /// Add `n` to a propagation counter (relaxed; totals only).
    #[inline]
    pub fn add_propagate(&self, c: PropagateCounter, n: u64) {
        self.propagate_counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Raise a propagation counter to at least `v` (monotone max; used
    /// for queue-depth high-water marks).
    #[inline]
    pub fn raise_propagate(&self, c: PropagateCounter, v: u64) {
        self.propagate_counters[c as usize].fetch_max(v, Ordering::Relaxed);
    }

    /// Current value of a propagation counter.
    pub fn get_propagate(&self, c: PropagateCounter) -> u64 {
        self.propagate_counters[c as usize].load(Ordering::Relaxed)
    }

    /// Raise an allocation gauge to at least `v`. The instance-layer
    /// totals are process-wide and monotone, so concurrent samplers
    /// can race freely: `fetch_max` keeps the gauge at the freshest
    /// observed total.
    #[inline]
    pub fn raise_alloc(&self, c: AllocCounter, v: u64) {
        self.alloc_counters[c as usize].fetch_max(v, Ordering::Relaxed);
    }

    /// Current value of an allocation gauge.
    pub fn get_alloc(&self, c: AllocCounter) -> u64 {
        self.alloc_counters[c as usize].load(Ordering::Relaxed)
    }

    /// Record one duration observation, in microseconds.
    #[inline]
    pub fn observe_us(&self, t: Timer, us: u64) {
        self.timers[t as usize].observe(us);
    }

    /// Record one observation into a registered histogram.
    #[inline]
    pub fn observe_hist(&self, h: Hist, value: u64) {
        self.hists[h as usize].observe(value);
    }

    /// The live [`Histogram`] behind `h`, for direct quantile reads.
    pub fn hist(&self, h: Hist) -> &Histogram {
        &self.hists[h as usize]
    }

    /// Record one per-op service-time observation (µs).
    #[inline]
    pub fn observe_op_service_us(&self, op: ServerOp, us: u64) {
        self.op_service[op as usize].observe(us);
    }

    /// The per-op service-time [`Histogram`] for `op`.
    pub fn op_service(&self, op: ServerOp) -> &Histogram {
        &self.op_service[op as usize]
    }

    /// Record one degradation at `site` attributed to `cause`.
    #[inline]
    pub fn degradation(&self, site: DegradationSite, cause: Cause) {
        self.degradations[site as usize][cause as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Total degradations recorded at `site`, across causes.
    pub fn degradations_at(&self, site: DegradationSite) -> u64 {
        self.degradations[site as usize]
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// Degradations recorded at `site` for one specific `cause`.
    pub fn degradations_by(&self, site: DegradationSite, cause: Cause) -> u64 {
        self.degradations[site as usize][cause as usize].load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every metric under stable names:
    /// counters as-is, timers as `<name>_{count,total_us,max_us}`,
    /// degradations as `degradations_<site>_<cause>` (zero rows elided).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut values = BTreeMap::new();
        for c in Counter::all() {
            values.insert(c.name().to_string(), self.get(c));
        }
        for t in Timer::all() {
            let s = &self.timers[t as usize];
            values.insert(format!("{}_count", t.name()), s.count.load(Ordering::Relaxed));
            values.insert(format!("{}_total_us", t.name()), s.total_us.load(Ordering::Relaxed));
            values.insert(format!("{}_max_us", t.name()), s.max_us.load(Ordering::Relaxed));
        }
        for c in ServerCounter::all() {
            let v = self.get_server(c);
            if v != 0 {
                values.insert(c.name().to_string(), v);
            }
        }
        for c in PropagateCounter::all() {
            let v = self.get_propagate(c);
            if v != 0 {
                values.insert(c.name().to_string(), v);
            }
        }
        for c in AllocCounter::all() {
            let v = self.get_alloc(c);
            if v != 0 {
                values.insert(c.name().to_string(), v);
            }
        }
        for h in Hist::all() {
            snapshot_hist(&mut values, h.name(), &self.hists[h as usize]);
        }
        for op in ServerOp::all() {
            let name = format!("server.op.{}.service_us", op.name());
            snapshot_hist(&mut values, &name, &self.op_service[op as usize]);
        }
        for site in DegradationSite::all() {
            for cause in Cause::all() {
                let v = self.degradations_by(site, cause);
                if v != 0 {
                    values.insert(
                        format!("degradations_{}_{}", site.name(), cause.name()),
                        v,
                    );
                }
            }
        }
        MetricsSnapshot { values }
    }
}

/// Render one histogram as its five stable keys, eliding it entirely
/// when nothing was ever observed so fresh snapshots stay byte-stable.
fn snapshot_hist(values: &mut BTreeMap<String, u64>, name: &str, h: &Histogram) {
    let s = h.summary();
    if s.count == 0 {
        return;
    }
    values.insert(format!("{name}_p50"), s.p50);
    values.insert(format!("{name}_p90"), s.p90);
    values.insert(format!("{name}_p99"), s.p99);
    values.insert(format!("{name}_max"), s.max);
    values.insert(format!("{name}_count"), s.count);
}

/// A point-in-time metric dump with stable, sorted keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub values: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// Value under a stable key, defaulting to 0 for unknown keys.
    pub fn value(&self, key: &str) -> u64 {
        self.values.get(key).copied().unwrap_or(0)
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = EngineMetrics::new();
        m.add(Counter::ChaseRounds, 3);
        m.add(Counter::ChaseRounds, 2);
        m.add(Counter::PlanCacheHits, 1);
        assert_eq!(m.get(Counter::ChaseRounds), 5);
        let snap = m.snapshot();
        assert_eq!(snap.value("chase_rounds"), 5);
        assert_eq!(snap.value("plan_cache_hits"), 1);
        assert_eq!(snap.value("plan_cache_misses"), 0);
    }

    #[test]
    fn timers_track_count_total_max() {
        let m = EngineMetrics::new();
        m.observe_us(Timer::Checkpoint, 100);
        m.observe_us(Timer::Checkpoint, 50);
        let snap = m.snapshot();
        assert_eq!(snap.value("checkpoint_count"), 2);
        assert_eq!(snap.value("checkpoint_total_us"), 150);
        assert_eq!(snap.value("checkpoint_max_us"), 100);
    }

    #[test]
    fn server_counters_are_zero_elided_and_sorted() {
        let m = EngineMetrics::new();
        assert!(
            !m.snapshot().values.keys().any(|k| k.starts_with("server.")),
            "a process that never served traffic must carry no server rows"
        );
        m.add_server(ServerCounter::Shed, 3);
        m.add_server(ServerCounter::Accepted, 1);
        let snap = m.snapshot();
        assert_eq!(snap.value("server.shed"), 3);
        assert_eq!(snap.value("server.accepted"), 1);
        assert!(!snap.values.contains_key("server.timed_out"), "zero elided");
        let server_keys: Vec<&String> =
            snap.values.keys().filter(|k| k.starts_with("server.")).collect();
        let mut sorted = server_keys.clone();
        sorted.sort();
        assert_eq!(server_keys, sorted, "BTreeMap keeps server.* keys sorted");
    }

    #[test]
    fn propagate_counters_are_zero_elided_and_high_water_is_monotone() {
        let m = EngineMetrics::new();
        assert!(
            !m.snapshot().values.keys().any(|k| k.starts_with("propagate.")),
            "a process with no subscribers must carry no propagate rows"
        );
        m.add_propagate(PropagateCounter::EventsPublished, 2);
        m.raise_propagate(PropagateCounter::QueueHighWater, 7);
        m.raise_propagate(PropagateCounter::QueueHighWater, 3);
        let snap = m.snapshot();
        assert_eq!(snap.value("propagate.events_published"), 2);
        assert_eq!(snap.value("propagate.queue_high_water"), 7, "max, not sum");
        assert!(!snap.values.contains_key("propagate.deltas_pushed"), "zero elided");
    }

    #[test]
    fn alloc_gauges_are_zero_elided_and_monotone() {
        let m = EngineMetrics::new();
        assert!(
            !m.snapshot().values.keys().any(|k| k.starts_with("alloc.")),
            "a process that never allocated must carry no alloc rows"
        );
        m.raise_alloc(AllocCounter::Tuples, 10);
        m.raise_alloc(AllocCounter::Tuples, 4);
        m.raise_alloc(AllocCounter::Interned, 3);
        let snap = m.snapshot();
        assert_eq!(snap.value("alloc.tuples"), 10, "max, not last-write");
        assert_eq!(snap.value("alloc.interned"), 3);
    }

    #[test]
    fn histograms_are_zero_elided_and_render_five_keys() {
        let m = EngineMetrics::new();
        assert!(
            !m.snapshot().values.keys().any(|k| k.contains("service_us")
                || k.contains("queue_wait")
                || k.contains("round_us")),
            "never-observed histograms must be elided entirely"
        );
        m.observe_hist(Hist::ServerQueueWaitUs, 10);
        m.observe_hist(Hist::ServerQueueWaitUs, 500);
        m.observe_op_service_us(ServerOp::Ping, 7);
        let snap = m.snapshot();
        assert_eq!(snap.value("server.queue_wait_us_count"), 2);
        assert_eq!(snap.value("server.queue_wait_us_max"), 500);
        assert!(snap.value("server.queue_wait_us_p50") <= snap.value("server.queue_wait_us_p99"));
        assert_eq!(snap.value("server.op.ping.service_us_count"), 1);
        assert_eq!(snap.value("server.op.ping.service_us_p99"), 7);
        assert!(
            !snap.values.contains_key("server.op.exchange.service_us_count"),
            "untouched per-op banks stay elided"
        );
    }

    #[test]
    fn degradations_bucket_by_site_and_cause() {
        let m = EngineMetrics::new();
        m.degradation(DegradationSite::Mediator, Cause::Clauses);
        m.degradation(DegradationSite::Mediator, Cause::Clauses);
        m.degradation(DegradationSite::Ivm, Cause::Steps);
        assert_eq!(m.degradations_at(DegradationSite::Mediator), 2);
        assert_eq!(m.degradations_by(DegradationSite::Ivm, Cause::Steps), 1);
        let snap = m.snapshot();
        assert_eq!(snap.value("degradations_mediator_clauses"), 2);
        assert_eq!(snap.value("degradations_ivm_steps"), 1);
    }
}
