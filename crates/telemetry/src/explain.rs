//! The explain report tree.
//!
//! Every `Engine::explain_*` variant returns typed, operator-specific
//! structs (join orders, per-round deltas, mediation strategy) that also
//! render into this generic [`ExplainNode`] tree. The tree's `Display`
//! is deterministic — fields print in insertion order, children in
//! order, indentation is two spaces per level — so two identical runs
//! produce byte-identical reports, which the integration tests assert.

use std::fmt;

/// One node of an explain report: a title, ordered key/value fields, and
/// ordered children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainNode {
    pub title: String,
    pub fields: Vec<(String, String)>,
    pub children: Vec<ExplainNode>,
}

impl ExplainNode {
    pub fn new(title: impl Into<String>) -> ExplainNode {
        ExplainNode { title: title.into(), fields: Vec::new(), children: Vec::new() }
    }

    /// Append a field (builder style).
    pub fn field(mut self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        self.push_field(key, value);
        self
    }

    /// Append a field in place.
    pub fn push_field(&mut self, key: impl Into<String>, value: impl fmt::Display) {
        self.fields.push((key.into(), value.to_string()));
    }

    /// Append a child (builder style).
    pub fn child(mut self, node: ExplainNode) -> Self {
        self.children.push(node);
        self
    }

    /// Append a child in place.
    pub fn push_child(&mut self, node: ExplainNode) {
        self.children.push(node);
    }

    /// The value of a field on this node.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Depth-first search for the first descendant (or self) with this
    /// title.
    pub fn find(&self, title: &str) -> Option<&ExplainNode> {
        if self.title == title {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(title))
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        write!(f, "{pad}{}", self.title)?;
        if !self.fields.is_empty() {
            let rendered: Vec<String> =
                self.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            write!(f, " [{}]", rendered.join(" "))?;
        }
        writeln!(f)?;
        for c in &self.children {
            c.fmt_indented(f, depth + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for ExplainNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExplainNode {
        ExplainNode::new("chase")
            .field("rounds", 2)
            .child(
                ExplainNode::new("tgd#0")
                    .field("join_order", "E,T")
                    .field("head_ground", false),
            )
            .child(ExplainNode::new("round#1").field("new_tuples", 3))
    }

    #[test]
    fn display_is_deterministic_and_indented() {
        let a = sample().to_string();
        let b = sample().to_string();
        assert_eq!(a, b);
        assert_eq!(
            a,
            "chase [rounds=2]\n  tgd#0 [join_order=E,T head_ground=false]\n  round#1 [new_tuples=3]\n"
        );
    }

    #[test]
    fn find_and_get_navigate_the_tree() {
        let n = sample();
        assert_eq!(n.find("round#1").and_then(|r| r.get("new_tuples")), Some("3"));
        assert_eq!(n.get("rounds"), Some("2"));
        assert!(n.find("absent").is_none());
    }
}
