//! Pluggable event sinks.
//!
//! The [`Collector`] trait is the only extension point spans know about.
//! Two implementations ship here: [`RingCollector`] (bounded in-memory
//! capture, the test and debugging workhorse) and [`JsonLinesCollector`]
//! (streams one JSON object per event through a [`LineSink`]).
//! `mm-repository` adapts its `Storage` trait to `LineSink`, so the
//! JSON-lines stream can land on the same backend as the WAL without a
//! dependency cycle (telemetry sits below the repository crate).

use crate::span::Event;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// An event sink. Implementations must be cheap and non-blocking-ish:
/// collectors run inline on the instrumented thread.
pub trait Collector: Send + Sync {
    fn record(&self, event: Event);

    /// Events this collector has lost (ring eviction, sink write
    /// failures). Surfaced in health reports so event loss is visible
    /// without holding the concrete collector handle.
    fn events_dropped(&self) -> u64 {
        0
    }
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // a panicking recorder thread must not wedge telemetry for everyone
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A bounded in-memory ring of the most recent events.
pub struct RingCollector {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl RingCollector {
    /// A ring keeping the last `cap` events (older ones are dropped and
    /// counted).
    pub fn with_capacity(cap: usize) -> Arc<RingCollector> {
        Arc::new(RingCollector {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        })
    }

    /// The retained events, oldest first (clones).
    pub fn events(&self) -> Vec<Event> {
        lock_ignoring_poison(&self.buf).iter().cloned().collect()
    }

    /// Retained events whose `op` matches.
    pub fn events_for(&self, op: &str) -> Vec<Event> {
        lock_ignoring_poison(&self.buf)
            .iter()
            .filter(|e| e.op == op)
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        lock_ignoring_poison(&self.buf).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Take everything, leaving the ring empty.
    pub fn drain(&self) -> Vec<Event> {
        lock_ignoring_poison(&self.buf).drain(..).collect()
    }
}

impl Collector for RingCollector {
    fn record(&self, event: Event) {
        let mut buf = lock_ignoring_poison(&self.buf);
        if buf.len() == self.cap {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event);
    }

    fn events_dropped(&self) -> u64 {
        self.dropped()
    }
}

/// Where [`JsonLinesCollector`] writes. One call per event; the line has
/// no trailing newline (the sink appends its own framing). Errors are
/// reported back so the collector can count them — telemetry must never
/// turn an observability failure into an engine failure.
pub trait LineSink: Send + Sync {
    fn append_line(&self, line: &str) -> Result<(), String>;
}

/// A `LineSink` buffering lines in memory — for tests and for dumping a
/// bounded capture without a storage backend.
#[derive(Default)]
pub struct VecSink {
    lines: Mutex<Vec<String>>,
}

impl VecSink {
    pub fn new() -> Arc<VecSink> {
        Arc::new(VecSink::default())
    }

    pub fn lines(&self) -> Vec<String> {
        lock_ignoring_poison(&self.lines).clone()
    }
}

impl LineSink for VecSink {
    fn append_line(&self, line: &str) -> Result<(), String> {
        lock_ignoring_poison(&self.lines).push(line.to_string());
        Ok(())
    }
}

/// Streams every event as one JSON object per line through a
/// [`LineSink`]. Write failures are swallowed and counted
/// ([`JsonLinesCollector::write_errors`]); the instrumented operation
/// never observes them.
pub struct JsonLinesCollector {
    sink: Arc<dyn LineSink>,
    write_errors: AtomicU64,
}

impl JsonLinesCollector {
    pub fn new(sink: Arc<dyn LineSink>) -> Arc<JsonLinesCollector> {
        Arc::new(JsonLinesCollector { sink, write_errors: AtomicU64::new(0) })
    }

    /// Lines lost to sink failures so far.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }
}

impl Collector for JsonLinesCollector {
    fn record(&self, event: Event) {
        if self.sink.append_line(&event.to_json()).is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn events_dropped(&self) -> u64 {
        self.write_errors()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::span::{EventKind, Field};

    fn point(op: &'static str, n: u64) -> Event {
        Event {
            kind: EventKind::Point,
            op,
            artifact: String::new(),
            span_id: 0,
            parent_id: None,
            trace_id: 0,
            elapsed_us: None,
            fields: vec![Field { key: "n", value: n.into() }],
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let ring = RingCollector::with_capacity(2);
        ring.record(point("a", 1));
        ring.record(point("b", 2));
        ring.record(point("c", 3));
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].op, "b");
        assert_eq!(events[1].op, "c");
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.is_empty());
    }

    #[test]
    fn json_lines_go_through_the_sink() {
        let sink = VecSink::new();
        let col = JsonLinesCollector::new(sink.clone());
        col.record(point("x", 9));
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"op\":\"x\""));
        assert_eq!(col.write_errors(), 0);
    }

    #[test]
    fn sink_failures_are_counted_not_raised() {
        struct Failing;
        impl LineSink for Failing {
            fn append_line(&self, _line: &str) -> Result<(), String> {
                Err("disk on fire".into())
            }
        }
        let col = JsonLinesCollector::new(Arc::new(Failing));
        col.record(point("x", 1));
        col.record(point("x", 2));
        assert_eq!(col.write_errors(), 2);
    }
}
