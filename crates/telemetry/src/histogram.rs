//! Lock-free log-bucketed latency/size histogram.
//!
//! A [`Histogram`] is 65 relaxed atomic buckets indexed by the bit
//! length of the observed value (0 gets its own bucket), plus an exact
//! count and an exact maximum. `observe` is two-three relaxed atomic
//! RMWs with no locking, hashing, or allocation — the same discipline
//! as [`crate::metrics::EngineMetrics`] counters, safe to leave on
//! inside the chase round loop and the server hot path.
//!
//! Quantiles are read by rank-walking the cumulative bucket counts: a
//! percentile reports the upper bound of the bucket its rank lands in,
//! clamped to the exact observed maximum. Power-of-two buckets bound the
//! relative error at 2× — coarse, but honest, stable across platforms,
//! and monotone by construction: `p50 <= p90 <= p99 <= max` always
//! holds, because ranks are non-decreasing in the quantile and the
//! clamp is order-preserving.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket 0 holds exact zeros; bucket `b >= 1` holds values whose bit
/// length is `b`, i.e. the range `[2^(b-1), 2^b - 1]`.
const BUCKETS: usize = 65;

/// A concurrent histogram of `u64` observations (microseconds, rows,
/// batch sizes — unitless by design; the registry names carry units).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// `value -> bucket index`: 0 -> 0, otherwise the bit length (1..=64).
#[inline]
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket, for quantile reporting.
fn bucket_upper(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation. Never panics, never blocks; wraps only
    /// after 2^64 observations.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact maximum observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0.0, 1.0]`: the upper bound of the
    /// bucket holding the rank-`ceil(q * count)` observation, clamped to
    /// the exact maximum. Returns 0 on an empty histogram. Concurrent
    /// `observe` calls may skew the answer by the in-flight observations
    /// — reads are a snapshot, not a barrier.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil without going through floats near u64::MAX; rank >= 1.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (b, slot) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(slot.load(Ordering::Relaxed));
            if seen >= rank {
                return bucket_upper(b).min(self.max());
            }
        }
        // Racing observers bumped `count` before their bucket: report
        // the maximum, the only bound we know holds.
        self.max()
    }

    /// The `(p50, p90, p99, max, count)` tuple snapshots render.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
            count: self.count(),
        }
    }
}

/// A point-in-time read of one histogram's reported statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!((s.p50, s.p90, s.p99, s.max, s.count), (0, 0, 0, 0, 0));
    }

    #[test]
    fn buckets_are_bit_length_indexed() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_bound_and_order_simple_series() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 10, 100, 1_000, 5_000] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 7);
        assert_eq!(s.max, 5_000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        // p99 rank = ceil(0.99*7) = 7 -> last bucket, clamped to max.
        assert_eq!(s.p99, 5_000);
        // p50 rank = ceil(0.5*7) = 4 -> the bucket of 10, upper bound 15.
        assert_eq!(s.p50, 15);
    }

    #[test]
    fn single_value_collapses_all_quantiles_to_it() {
        let h = Histogram::new();
        h.observe(42);
        let s = h.summary();
        assert_eq!((s.p50, s.p90, s.p99, s.max, s.count), (42, 42, 42, 42, 1));
    }

    #[test]
    fn extremes_do_not_panic() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p50, 0);
        assert_eq!(s.p99, u64::MAX);
    }
}
