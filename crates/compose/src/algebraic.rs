//! Algebraic composition of functional mappings (view sets) by
//! substitution, and of Figure 2-style equality-constraint mappings when
//! one side is directly substitutable.

use mm_expr::rewrite::{simplify_fix, substitute_bases};
use mm_expr::{Expr, Mapping, MappingConstraint, ViewDef, ViewSet};
use std::collections::HashMap;

/// Compose two view sets: `first` defines the relations of an intermediate
/// schema V over base B; `second` defines W over V. The result defines W
/// directly over B (unfold `second` through `first`).
///
/// This is the manipulation behind the paper's Figure 6: with
/// `first = mapS′→S` (old relations defined over the evolved schema) and
/// `second = mapS→V` (the view over the old schema), the composition is
/// the repaired view `mapS′→V`.
pub fn compose_views(first: &ViewSet, second: &ViewSet) -> ViewSet {
    let defs: HashMap<String, Expr> =
        first.views.iter().map(|v| (v.name.clone(), v.expr.clone())).collect();
    let mut out = ViewSet::new(first.base_schema.clone(), second.view_schema.clone());
    for v in &second.views {
        out.push(ViewDef::new(
            v.name.clone(),
            simplify_fix(&substitute_bases(&v.expr, &defs)),
        ));
    }
    out
}

/// Compose two equality-constraint mappings `m12 : S1 → S2`, `m23 : S2 →
/// S3` when `m12`'s constraints have the *substitutable* shape
/// `Base(R) = expr` with `R` a relation of S2 (each S2 relation defined by
/// an expression over S1). Every S2 relation mentioned by `m23`'s source
/// sides is then replaced by its S1 definition.
///
/// Returns `None` when `m12` is not in substitutable shape for the
/// relations `m23` uses — the caller should fall back to the logic-level
/// algorithm ([`crate::sotgd::compose_st_tgds`]).
pub fn compose_expr_mappings(m12: &Mapping, m23: &Mapping) -> Option<Mapping> {
    // build S2-relation → S1-expression definitions from m12
    let mut defs: HashMap<String, Expr> = HashMap::new();
    for c in &m12.constraints {
        if let MappingConstraint::ExprEq { source, target: Expr::Base(name) } = c {
            // the S2 side must be a bare relation to be substitutable
            defs.insert(name.clone(), source.clone());
        }
    }
    let mut out = Mapping::new(m12.source_schema.clone(), m23.target_schema.clone());
    for c in &m23.constraints {
        match c {
            MappingConstraint::ExprEq { source, target } => {
                // every S2 relation used by `source` must have a definition
                for base in mm_expr::analyze::base_relations(source) {
                    if !defs.contains_key(base) {
                        return None;
                    }
                }
                out.push(MappingConstraint::ExprEq {
                    source: simplify_fix(&substitute_bases(source, &defs)),
                    target: target.clone(),
                });
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_expr::{Lit, Predicate};

    /// The paper's Figure 6, verbatim:
    /// mapV-S:  Students = π_{Name,Address,Country}(Names ⋈ Addresses)
    /// mapS-S′: Names = Names′
    ///          σ_{Country='US'}(Addresses) = Local × {'US'}
    ///          σ_{Country≠'US'}(Addresses) = Foreign
    /// composition: Students = π(Names′ ⋈ (Local×{'US'} ∪ Foreign))
    fn students_view() -> ViewSet {
        let mut v = ViewSet::new("S", "V");
        v.push(ViewDef::new(
            "Students",
            Expr::base("Names")
                .join(Expr::base("Addresses"), &[("SID", "SID")])
                .project(&["Name", "Address", "Country"]),
        ));
        v
    }

    /// mapS′→S as a view set: old relations defined over the new schema.
    fn old_over_new() -> ViewSet {
        let mut v = ViewSet::new("Sprime", "S");
        v.push(ViewDef::new("Names", Expr::base("NamesP")));
        v.push(ViewDef::new(
            "Addresses",
            Expr::base("Local")
                .product(Expr::literal_row(&["Country"], vec![Lit::text("US")]))
                .union(Expr::base("Foreign")),
        ));
        v
    }

    #[test]
    fn fig6_composition_produces_expected_view() {
        let composed = compose_views(&old_over_new(), &students_view());
        assert_eq!(composed.base_schema, "Sprime");
        assert_eq!(composed.view_schema, "V");
        let students = composed.view("Students").unwrap();
        let expected = Expr::base("NamesP")
            .join(
                Expr::base("Local")
                    .product(Expr::literal_row(&["Country"], vec![Lit::text("US")]))
                    .union(Expr::base("Foreign")),
                &[("SID", "SID")],
            )
            .project(&["Name", "Address", "Country"]);
        assert_eq!(students.expr, expected);
    }

    #[test]
    fn composition_is_associative_on_chains() {
        // three layers of projections compose the same either way
        let mut ab = ViewSet::new("A", "B");
        ab.push(ViewDef::new("B1", Expr::base("A1").project(&["x", "y"])));
        let mut bc = ViewSet::new("B", "C");
        bc.push(ViewDef::new("C1", Expr::base("B1").project(&["x"])));
        let mut cd = ViewSet::new("C", "D");
        cd.push(ViewDef::new("D1", Expr::base("C1").select(Predicate::True)));

        let left = compose_views(&compose_views(&ab, &bc), &cd);
        let right = compose_views(&ab, &compose_views(&bc, &cd));
        assert_eq!(left.view("D1").unwrap().expr, right.view("D1").unwrap().expr);
        // and the collapsed chain simplified to a single projection
        assert_eq!(
            left.view("D1").unwrap().expr,
            Expr::base("A1").project(&["x"])
        );
    }

    #[test]
    fn expr_mapping_composition_requires_substitutable_shape() {
        // m12 with non-bare target side: not substitutable
        let m12 = Mapping::with_constraints(
            "S1",
            "S2",
            vec![MappingConstraint::ExprEq {
                source: Expr::base("A"),
                target: Expr::base("B").project(&["x"]),
            }],
        );
        let m23 = Mapping::with_constraints(
            "S2",
            "S3",
            vec![MappingConstraint::ExprEq {
                source: Expr::base("B"),
                target: Expr::base("C"),
            }],
        );
        assert!(compose_expr_mappings(&m12, &m23).is_none());
    }

    #[test]
    fn expr_mapping_composition_substitutes() {
        let m12 = Mapping::with_constraints(
            "S1",
            "S2",
            vec![MappingConstraint::ExprEq {
                source: Expr::base("A").project(&["x", "y"]),
                target: Expr::base("B"),
            }],
        );
        let m23 = Mapping::with_constraints(
            "S2",
            "S3",
            vec![MappingConstraint::ExprEq {
                source: Expr::base("B").project(&["x"]),
                target: Expr::base("C"),
            }],
        );
        let m13 = compose_expr_mappings(&m12, &m23).unwrap();
        assert_eq!(m13.source_schema, "S1");
        assert_eq!(m13.target_schema, "S3");
        match &m13.constraints[0] {
            MappingConstraint::ExprEq { source, .. } => {
                assert_eq!(source, &Expr::base("A").project(&["x"]));
            }
            _ => panic!(),
        }
    }
}
