//! Instance transport through an intermediate schema — the semantic
//! oracle for composition.

use mm_chase::{chase_st, ChaseStats};
use mm_expr::Tgd;
use mm_instance::Database;
use mm_metamodel::Schema;

/// Chase `d1` through `m12` into S2, then through `m23` into S3 — the
/// instance-level composition ⟨D1, D3⟩ realized by the canonical universal
/// intermediate instance. Returns the final instance plus both chase
/// stats (the EQ1/EQ7 benchmarks report these).
pub fn transport_via(
    s2: &Schema,
    m12: &[Tgd],
    s3: &Schema,
    m23: &[Tgd],
    d1: &Database,
) -> (Database, ChaseStats, ChaseStats) {
    let (d2, st12) = chase_st(s2, m12, d1);
    let (d3, st23) = chase_st(s3, m23, &d2);
    (d3, st12, st23)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sotgd::{apply_sotgd, compose_st_tgds, DEFAULT_CLAUSE_BOUND};
    use mm_chase::hom_equivalent;
    use mm_expr::Atom;
    use mm_instance::{Tuple, Value};
    use mm_metamodel::{DataType, SchemaBuilder};

    /// Property-style check over a family of small mappings: composed
    /// SO-tgd application agrees with transport, including when
    /// existentials chain through the intermediate schema.
    #[test]
    fn chained_existentials_transport_equivalence() {
        let s1 = SchemaBuilder::new("S1")
            .relation("A", &[("x", DataType::Int)])
            .build()
            .unwrap();
        let s2 = SchemaBuilder::new("S2")
            .relation("B", &[("x", DataType::Int), ("w", DataType::Int)])
            .build()
            .unwrap();
        let s3 = SchemaBuilder::new("S3")
            .relation("C", &[("x", DataType::Int), ("w", DataType::Int), ("v", DataType::Int)])
            .build()
            .unwrap();
        // A(x) -> exists w . B(x, w); B(x, w) -> exists v . C(x, w, v)
        let m12 = vec![Tgd::new(vec![Atom::vars("A", &["x"])], vec![Atom::vars("B", &["x", "w"])])];
        let m23 =
            vec![Tgd::new(vec![Atom::vars("B", &["x", "w"])], vec![Atom::vars("C", &["x", "w", "v"])])];

        let mut d1 = Database::empty_of(&s1);
        for i in 0..4 {
            d1.insert("A", Tuple::from([Value::Int(i)]));
        }

        let (d3_chase, _, _) = transport_via(&s2, &m12, &s3, &m23, &d1);
        let so = compose_st_tgds(&m12, &m23, DEFAULT_CLAUSE_BOUND).unwrap();
        let d3_direct = apply_sotgd(&so, &d1, &s3).unwrap();
        assert!(hom_equivalent(&d3_chase, &d3_direct));
        assert_eq!(d3_direct.relation("C").unwrap().len(), 4);
    }

    #[test]
    fn multi_atom_bodies_transport_equivalence() {
        let s1 = SchemaBuilder::new("S1")
            .relation("E", &[("a", DataType::Int), ("b", DataType::Int)])
            .build()
            .unwrap();
        let s2 = SchemaBuilder::new("S2")
            .relation("P", &[("a", DataType::Int), ("b", DataType::Int)])
            .build()
            .unwrap();
        let s3 = SchemaBuilder::new("S3")
            .relation("Q", &[("a", DataType::Int), ("c", DataType::Int)])
            .build()
            .unwrap();
        let m12 = vec![Tgd::new(
            vec![Atom::vars("E", &["a", "b"])],
            vec![Atom::vars("P", &["a", "b"])],
        )];
        // two-hop join in the middle schema
        let m23 = vec![Tgd::new(
            vec![Atom::vars("P", &["a", "b"]), Atom::vars("P", &["b", "c"])],
            vec![Atom::vars("Q", &["a", "c"])],
        )];
        let mut d1 = Database::empty_of(&s1);
        d1.insert("E", Tuple::from([Value::Int(1), Value::Int(2)]));
        d1.insert("E", Tuple::from([Value::Int(2), Value::Int(3)]));
        d1.insert("E", Tuple::from([Value::Int(3), Value::Int(1)]));

        let (d3_chase, _, _) = transport_via(&s2, &m12, &s3, &m23, &d1);
        let so = compose_st_tgds(&m12, &m23, DEFAULT_CLAUSE_BOUND).unwrap();
        let d3_direct = apply_sotgd(&so, &d1, &s3).unwrap();
        assert!(hom_equivalent(&d3_chase, &d3_direct));
        assert_eq!(d3_direct.relation("Q").unwrap().len(), 3);
    }
}
