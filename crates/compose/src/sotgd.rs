//! Composition of st-tgd mappings via second-order tgds (Fagin, Kolaitis,
//! Popa, Tan: "Composing schema mappings: second-order dependencies to the
//! rescue", the algorithm §6.1 of the paper summarizes).
//!
//! st-tgds are not closed under composition; the algorithm Skolemizes both
//! mappings and splices every way of producing each intermediate-schema
//! body atom, which is where the exponential lower bound on output size
//! comes from (benchmark EQ1 measures exactly this growth).

use mm_eval::cq::find_homomorphisms_governed;
use mm_expr::{Atom, Lit, SoClause, SoTgd, Term, Tgd};
use mm_guard::{ExecBudget, ExecError, Governor};
use mm_instance::{Database, Tuple, Value};
use mm_metamodel::Schema;
use mm_telemetry::{Counter, Span, Telemetry, Timer};
use std::collections::HashMap;
use std::fmt;

/// Errors from logic-level composition.
#[derive(Debug, Clone, PartialEq)]
pub enum ComposeError {
    /// A constraint of the first mapping is not a valid tgd.
    InvalidTgd(String),
    /// Output size exceeded the configured bound (the exponential blowup
    /// is real; callers opt into large outputs explicitly).
    OutputTooLarge { clauses: usize, bound: usize },
    /// Governance failure: execution budget tripped or cancellation
    /// observed while splicing.
    Exec(ExecError),
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::InvalidTgd(m) => write!(f, "invalid tgd: {m}"),
            ComposeError::OutputTooLarge { clauses, bound } => {
                write!(f, "composition produced {clauses} clauses, bound is {bound}")
            }
            ComposeError::Exec(e) => write!(f, "composition aborted: {e}"),
        }
    }
}

impl std::error::Error for ComposeError {}

impl From<ExecError> for ComposeError {
    fn from(e: ExecError) -> Self {
        ComposeError::Exec(e)
    }
}

/// Default bound on the number of output clauses.
pub const DEFAULT_CLAUSE_BOUND: usize = 1 << 16;

/// Compose `m12 : S1 → S2` with `m23 : S2 → S3`, producing an SO-tgd from
/// S1 to S3. `clause_bound` caps the (worst-case exponential) output.
///
/// Ungoverned wrapper over [`compose_st_tgds_governed`] (unbounded
/// budget; the explicit `clause_bound` still applies).
pub fn compose_st_tgds(
    m12: &[Tgd],
    m23: &[Tgd],
    clause_bound: usize,
) -> Result<SoTgd, ComposeError> {
    compose_st_tgds_governed(m12, m23, clause_bound, &ExecBudget::unbounded())
}

/// Governed composition: in addition to the hard `clause_bound`, the
/// budget's clause cap, step cap, wall clock, and cancellation token are
/// observed while splicing — the splice loop is the exponential part, so
/// it polls the governor per produced clause *before* materializing it.
pub fn compose_st_tgds_governed(
    m12: &[Tgd],
    m23: &[Tgd],
    clause_bound: usize,
    budget: &ExecBudget,
) -> Result<SoTgd, ComposeError> {
    let mut gov = Governor::new(budget);
    compose_impl(m12, m23, clause_bound, &mut gov)
}

/// [`compose_st_tgds_governed`] with telemetry: a `compose.splice` span
/// carrying input sizes, emitted-clause count, and the governor's final
/// consumption; feeds [`Counter::ComposeClausesEmitted`] and the compose
/// timer. With disabled telemetry this is the plain governed call.
pub fn compose_st_tgds_traced(
    m12: &[Tgd],
    m23: &[Tgd],
    clause_bound: usize,
    budget: &ExecBudget,
    tel: &Telemetry,
) -> Result<SoTgd, ComposeError> {
    let mut gov = Governor::new(budget);
    if !tel.is_enabled() {
        return compose_impl(m12, m23, clause_bound, &mut gov);
    }
    let started = mm_telemetry::clock::now();
    let mut span = Span::enter(tel, "compose.splice", "");
    let result = compose_impl(m12, m23, clause_bound, &mut gov);
    span.field("m12_tgds", m12.len());
    span.field("m23_tgds", m23.len());
    match &result {
        Ok(so) => {
            if let Some(m) = tel.metrics() {
                m.add(Counter::ComposeClausesEmitted, so.clauses.len() as u64);
            }
            let c = gov.consumption();
            tel.count(Counter::BudgetStepsConsumed, c.steps);
            span.field("clauses", so.clauses.len());
            span.field("steps", c.steps);
            span.field("wall_us", c.wall_us);
        }
        Err(e) => span.field("error", e.to_string()),
    }
    if let Some(m) = tel.metrics() {
        m.observe_us(Timer::Compose, mm_telemetry::clock::elapsed_us(started));
    }
    span.finish();
    result
}

fn compose_impl(
    m12: &[Tgd],
    m23: &[Tgd],
    clause_bound: usize,
    gov: &mut Governor,
) -> Result<SoTgd, ComposeError> {
    for t in m12.iter().chain(m23) {
        t.validate().map_err(|e| ComposeError::InvalidTgd(e.to_string()))?;
    }
    // Skolemize both mappings; function symbols are global existentials.
    let so12 = SoTgd::skolemize(m12, "f");
    let so23 = SoTgd::skolemize(m23, "g");

    let mut functions = so12.functions.clone();
    functions.extend(so23.functions.iter().cloned());

    // index Σ12 head atoms by relation
    let mut producers: HashMap<&str, Vec<(usize, usize)>> = HashMap::new();
    for (ci, c) in so12.clauses.iter().enumerate() {
        for (ai, a) in c.head.iter().enumerate() {
            producers.entry(a.relation.as_str()).or_default().push((ci, ai));
        }
    }

    let mut out_clauses: Vec<SoClause> = Vec::new();
    let mut fresh = 0usize;

    for clause23 in &so23.clauses {
        // all ways of assigning a producer to each body atom
        let options: Vec<&Vec<(usize, usize)>> = match clause23
            .body
            .iter()
            .map(|a| producers.get(a.relation.as_str()))
            .collect::<Option<Vec<_>>>()
        {
            Some(v) => v,
            // some body atom can never be produced by Σ12: this clause
            // contributes nothing to the composition
            None => continue,
        };
        let mut combo = vec![0usize; options.len()];
        loop {
            // govern *before* materializing the next clause: the hard
            // bound stops the exponential splice without first paying
            // for the oversized clause
            if out_clauses.len() + 1 > clause_bound {
                return Err(ComposeError::OutputTooLarge {
                    clauses: out_clauses.len() + 1,
                    bound: clause_bound,
                });
            }
            gov.clauses(out_clauses.len() as u64 + 1)?;
            gov.step()?;
            // build one spliced clause
            let mut body: Vec<Atom> = Vec::new();
            let mut eqs: Vec<(Term, Term)> = Vec::new();
            for (bi, atom23) in clause23.body.iter().enumerate() {
                let (ci, ai) = options[bi][combo[bi]];
                let clause12 = &so12.clauses[ci];
                // fresh-rename clause12's variables for this use
                let prefix = format!("u{fresh}_");
                fresh += 1;
                let sub = |v: &str| Some(Term::Var(format!("{prefix}{v}")));
                for b in &clause12.body {
                    body.push(b.substitute(&sub));
                }
                for (l, r) in &clause12.eqs {
                    eqs.push((l.substitute(&sub), r.substitute(&sub)));
                }
                let produced = clause12.head[ai].substitute(&sub);
                debug_assert_eq!(produced.relation, atom23.relation);
                for (t23, t12) in atom23.terms.iter().zip(&produced.terms) {
                    eqs.push((t23.clone(), t12.clone()));
                }
            }
            let mut clause = SoClause {
                body,
                eqs,
                head: clause23.head.clone(),
            };
            simplify_clause(&mut clause);
            out_clauses.push(clause);
            // next combination
            let mut i = 0;
            loop {
                if i == combo.len() {
                    break;
                }
                combo[i] += 1;
                if combo[i] < options[i].len() {
                    break;
                }
                combo[i] = 0;
                i += 1;
            }
            if i == combo.len() {
                break;
            }
        }
    }
    Ok(SoTgd { functions, clauses: out_clauses })
}

/// Eliminate equalities of the form `x = t` (or `t = x`) where `x` is a
/// plain variable, by substituting `t` for `x` throughout the clause.
///
/// An elimination is performed only when it is sound and keeps the clause
/// chaseable:
/// * occurs check — `t` must not contain `x`;
/// * body atoms must stay function-free (they are matched by first-order
///   homomorphism search), so a functional `t` is substituted only if `x`
///   does not occur in the body.
///
/// Equalities that cannot be eliminated (e.g. `f(e) = e` from the Fagin
/// self-manager example) remain as explicit conditions on the clause.
fn simplify_clause(clause: &mut SoClause) {
    loop {
        let mut picked: Option<usize> = None;
        for (i, (l, r)) in clause.eqs.iter().enumerate() {
            let candidate = match (l, r) {
                (Term::Var(v), t) | (t, Term::Var(v)) => Some((v, t)),
                _ => None,
            };
            let Some((v, t)) = candidate else { continue };
            // occurs check
            let mut vars = std::collections::BTreeSet::new();
            t.vars(&mut vars);
            if vars.contains(v.as_str()) && t != &Term::Var(v.clone()) {
                continue;
            }
            // keep bodies function-free
            if t.has_func() && clause.body.iter().any(|a| a.variables().contains(v.as_str())) {
                continue;
            }
            picked = Some(i);
            break;
        }
        let Some(idx) = picked else { return };
        let (l, r) = clause.eqs.remove(idx);
        let (var, term) = match (&l, &r) {
            (Term::Var(v), t) => (v.clone(), t.clone()),
            (t, Term::Var(v)) => (v.clone(), t.clone()),
            _ => unreachable!("picked eq has a variable side"),
        };
        if Term::Var(var.clone()) == term {
            continue; // x = x, dropped
        }
        let sub = |v: &str| (v == var).then(|| term.clone());
        for a in clause.body.iter_mut() {
            *a = a.substitute(&sub);
        }
        for a in clause.head.iter_mut() {
            *a = a.substitute(&sub);
        }
        for (el, er) in clause.eqs.iter_mut() {
            *el = el.substitute(&sub);
            *er = er.substitute(&sub);
        }
    }
}

fn lit_to_value(l: &Lit) -> Value {
    match l {
        Lit::Int(v) => Value::Int(*v),
        Lit::Double(v) => Value::Double(*v),
        Lit::Bool(v) => Value::Bool(*v),
        Lit::Text(v) => Value::text(v.as_str()),
        Lit::Date(v) => Value::Date(*v),
        Lit::Null => Value::Null,
    }
}

/// Apply an SO-tgd to a source database under the **Skolem
/// interpretation**: each function term `f(v̄)` denotes a memoized labeled
/// null per argument vector, distinct from every constant and from every
/// other Skolem value. Equalities act as *filters*: a clause fires for a
/// binding only if each equality's two sides evaluate to the same value.
///
/// This interpretation yields the canonical universal solution — the same
/// instance (up to null renaming) the restricted chase produces when
/// transporting through the intermediate schema, which is what makes
/// [`crate::transport::transport_via`] a valid oracle for the composition
/// algorithm.
pub fn apply_sotgd(
    sotgd: &SoTgd,
    source_db: &Database,
    target_schema: &Schema,
) -> Result<Database, ExecError> {
    apply_sotgd_governed(sotgd, source_db, target_schema, &ExecBudget::unbounded())
}

/// Governed [`apply_sotgd`]: homomorphism search and produced tuples are
/// metered against `budget`. An unbound variable in a head or equality
/// (malformed SO-tgd) surfaces as [`ExecError::Malformed`], not a panic.
pub fn apply_sotgd_governed(
    sotgd: &SoTgd,
    source_db: &Database,
    target_schema: &Schema,
    budget: &ExecBudget,
) -> Result<Database, ExecError> {
    let mut gov = Governor::new(budget);
    let mut target = Database::empty_of(target_schema);
    target.set_label_watermark(source_db.label_watermark());
    // memoized Skolem values: (function, args) -> labeled null
    let mut skolem: HashMap<(String, Vec<Value>), Value> = HashMap::new();

    for clause in &sotgd.clauses {
        let bindings =
            find_homomorphisms_governed(&clause.body, source_db, &Default::default(), &mut gov)?;
        'bindings: for b in bindings {
            for (l, r) in &clause.eqs {
                gov.step()?;
                let lv = eval_term_rec(l, &b, &mut skolem, &mut target)?;
                let rv = eval_term_rec(r, &b, &mut skolem, &mut target)?;
                if lv != rv {
                    continue 'bindings;
                }
            }
            for atom in &clause.head {
                gov.row()?;
                let vals: Vec<Value> = atom
                    .terms
                    .iter()
                    .map(|t| eval_term_rec(t, &b, &mut skolem, &mut target))
                    .collect::<Result<_, _>>()?;
                target.insert(&atom.relation, Tuple::new(vals));
            }
        }
    }
    Ok(target)
}

fn eval_term_rec(
    t: &Term,
    b: &mm_eval::cq::Binding,
    skolem: &mut HashMap<(String, Vec<Value>), Value>,
    target: &mut Database,
) -> Result<Value, ExecError> {
    Ok(match t {
        Term::Var(v) => b.get(v).cloned().ok_or_else(|| {
            ExecError::malformed(format!("unbound variable `{v}` in SO-tgd head/equality"))
        })?,
        Term::Const(l) => lit_to_value(l),
        Term::Func(f, args) => {
            let arg_vals: Vec<Value> = args
                .iter()
                .map(|a| eval_term_rec(a, b, skolem, target))
                .collect::<Result<_, _>>()?;
            skolem
                .entry((f.clone(), arg_vals))
                .or_insert_with(|| target.fresh_labeled())
                .clone()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_chase::{chase_st, hom_equivalent};
    use mm_metamodel::{DataType, SchemaBuilder};

    // The canonical Fagin et al. example:
    //   m12: Emp(e) -> exists m . Mgr1(e, m)
    //   m23: Mgr1(e, m) -> Mgr(e, m)
    //        Mgr1(e, e) -> SelfMgr(e)
    // composition requires a function symbol: Mgr(e, f(e)) and
    // SelfMgr(e) whenever f(e) = e.
    fn m12() -> Vec<Tgd> {
        vec![Tgd::new(vec![Atom::vars("Emp", &["e"])], vec![Atom::vars("Mgr1", &["e", "m"])])]
    }

    fn m23() -> Vec<Tgd> {
        vec![
            Tgd::new(vec![Atom::vars("Mgr1", &["e", "m"])], vec![Atom::vars("Mgr", &["e", "m"])]),
            Tgd::new(vec![Atom::vars("Mgr1", &["e", "e"])], vec![Atom::vars("SelfMgr", &["e"])]),
        ]
    }

    #[test]
    fn fagin_example_produces_function_terms_and_equality() {
        let so = compose_st_tgds(&m12(), &m23(), DEFAULT_CLAUSE_BOUND).unwrap();
        assert_eq!(so.clauses.len(), 2);
        // first clause: Emp(e) -> Mgr(e, f(e))
        let c0 = &so.clauses[0];
        assert!(c0.eqs.is_empty());
        assert_eq!(c0.head[0].relation, "Mgr");
        assert!(matches!(c0.head[0].terms[1], Term::Func(..)));
        // second clause: Emp(e) & f(e) = e -> SelfMgr(e)  (equality between
        // a function term and a universal variable term survives as an eq
        // after the variable-elimination pass folds one side)
        let c1 = &so.clauses[1];
        assert_eq!(c1.head[0].relation, "SelfMgr");
        assert_eq!(c1.eqs.len(), 1);
    }

    #[test]
    fn full_tgds_compose_to_function_free_clauses() {
        let a = vec![Tgd::new(vec![Atom::vars("R", &["x", "y"])], vec![Atom::vars("S", &["x", "y"])])];
        let b = vec![Tgd::new(vec![Atom::vars("S", &["x", "y"])], vec![Atom::vars("T", &["y", "x"])])];
        let so = compose_st_tgds(&a, &b, DEFAULT_CLAUSE_BOUND).unwrap();
        assert_eq!(so.clauses.len(), 1);
        let c = &so.clauses[0];
        assert!(c.eqs.is_empty());
        assert_eq!(c.body[0].relation, "R");
        assert_eq!(c.head[0].relation, "T");
        assert!(!c.head[0].has_func());
    }

    #[test]
    fn unproducible_body_atom_drops_clause() {
        let a = vec![Tgd::new(vec![Atom::vars("R", &["x"])], vec![Atom::vars("S", &["x"])])];
        // m23 needs S and Z; Z is never produced
        let b = vec![Tgd::new(
            vec![Atom::vars("S", &["x"]), Atom::vars("Z", &["x"])],
            vec![Atom::vars("T", &["x"])],
        )];
        let so = compose_st_tgds(&a, &b, DEFAULT_CLAUSE_BOUND).unwrap();
        assert!(so.clauses.is_empty());
    }

    #[test]
    fn splice_is_cartesian_over_producers() {
        // two producers of S, body with two S atoms -> 4 clauses
        let a = vec![
            Tgd::new(vec![Atom::vars("R1", &["x"])], vec![Atom::vars("S", &["x"])]),
            Tgd::new(vec![Atom::vars("R2", &["x"])], vec![Atom::vars("S", &["x"])]),
        ];
        let b = vec![Tgd::new(
            vec![Atom::vars("S", &["x"]), Atom::vars("S", &["y"])],
            vec![Atom::vars("T", &["x", "y"])],
        )];
        let so = compose_st_tgds(&a, &b, DEFAULT_CLAUSE_BOUND).unwrap();
        assert_eq!(so.clauses.len(), 4);
    }

    #[test]
    fn clause_bound_enforced() {
        let a = vec![
            Tgd::new(vec![Atom::vars("R1", &["x"])], vec![Atom::vars("S", &["x"])]),
            Tgd::new(vec![Atom::vars("R2", &["x"])], vec![Atom::vars("S", &["x"])]),
        ];
        let b = vec![Tgd::new(
            vec![
                Atom::vars("S", &["x"]),
                Atom::vars("S", &["y"]),
                Atom::vars("S", &["z"]),
            ],
            vec![Atom::vars("T", &["x", "y", "z"])],
        )];
        let err = compose_st_tgds(&a, &b, 4).unwrap_err();
        assert!(matches!(err, ComposeError::OutputTooLarge { .. }));
    }

    /// End-to-end semantic validation: applying the composed SO-tgd to D1
    /// is homomorphically equivalent to chasing D1 → D2 → D3.
    #[test]
    fn composition_agrees_with_transport() {
        let s2 = SchemaBuilder::new("S2")
            .relation("Mgr1", &[("e", DataType::Text), ("m", DataType::Text)])
            .build()
            .unwrap();
        let s3 = SchemaBuilder::new("S3")
            .relation("Mgr", &[("e", DataType::Text), ("m", DataType::Text)])
            .relation("SelfMgr", &[("e", DataType::Text)])
            .build()
            .unwrap();
        let s1 = SchemaBuilder::new("S1")
            .relation("Emp", &[("e", DataType::Text)])
            .build()
            .unwrap();
        let mut d1 = Database::empty_of(&s1);
        d1.insert("Emp", Tuple::from([Value::text("ann")]));
        d1.insert("Emp", Tuple::from([Value::text("bob")]));

        // transport: chase through S2 then S3
        let (d2, _) = chase_st(&s2, &m12(), &d1);
        let (d3_chase, _) = chase_st(&s3, &m23(), &d2);

        // direct: apply composed SO-tgd
        let so = compose_st_tgds(&m12(), &m23(), DEFAULT_CLAUSE_BOUND).unwrap();
        let d3_direct = apply_sotgd(&so, &d1, &s3).unwrap();

        assert!(
            hom_equivalent(&d3_chase, &d3_direct),
            "chase:\n{d3_chase}\ndirect:\n{d3_direct}"
        );
        // and neither claims a self-manager certainly
        assert!(d3_direct.relation("SelfMgr").unwrap().is_empty());
        assert_eq!(d3_direct.relation("Mgr").unwrap().len(), 2);
    }

    #[test]
    fn composed_equalities_unify_skolems_with_constants() {
        // m12: R(x) -> S(x, c) with constant via full tgd using const term
        // simpler: m12: R(x) -> S(x, x); m23: S(x, y) & S(y, x) -> T(x)
        let a = vec![Tgd::new(vec![Atom::vars("R", &["x"])], vec![Atom::vars("S", &["x", "x"])])];
        let b = vec![Tgd::new(
            vec![Atom::vars("S", &["x", "y"]), Atom::vars("S", &["y", "x"])],
            vec![Atom::vars("T", &["x"])],
        )];
        let so = compose_st_tgds(&a, &b, DEFAULT_CLAUSE_BOUND).unwrap();
        let s1 = SchemaBuilder::new("S1")
            .relation("R", &[("x", DataType::Int)])
            .build()
            .unwrap();
        let s3 = SchemaBuilder::new("S3")
            .relation("T", &[("x", DataType::Int)])
            .build()
            .unwrap();
        let mut d1 = Database::empty_of(&s1);
        d1.insert("R", Tuple::from([Value::Int(1)]));
        let d3 = apply_sotgd(&so, &d1, &s3).unwrap();
        // S(1,1) satisfies both body atoms with x=y=1 -> T(1)
        assert!(d3.relation("T").unwrap().contains(&Tuple::from([Value::Int(1)])));
    }
}
