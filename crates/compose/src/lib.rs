//! The Compose operator (§6.1 of the paper).
//!
//! Given mappings `map12 : S1 → S2` and `map23 : S2 → S3`, the composition
//! `map12 ∘ map23` is the set of instance pairs ⟨D1, D3⟩ such that some D2
//! satisfies both mappings. This crate implements composition at the two
//! levels the paper discusses:
//!
//! * **Algebraic** ([`algebraic`]): functional mappings (view sets)
//!   compose by substitution — the Figure 6 schema-evolution example;
//! * **Logic** ([`sotgd`]): st-tgds are *not* closed under composition
//!   (Fagin et al.); the composition algorithm Skolemizes into second-
//!   order tgds, with a worst-case exponential output. [`deskolem`] tries
//!   to fold the result back into first-order st-tgds when the function
//!   terms allow it;
//! * **Transport** ([`transport`]): the instance-level semantics, used to
//!   validate the syntactic algorithms — chase through S2 and compare
//!   (up to homomorphic equivalence) with applying the composed mapping
//!   directly.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod algebraic;
pub mod deskolem;
pub mod sotgd;
pub mod transport;

pub use algebraic::{compose_expr_mappings, compose_views};
pub use deskolem::{try_deskolemize, try_deskolemize_governed};
pub use sotgd::{
    apply_sotgd, apply_sotgd_governed, compose_st_tgds, compose_st_tgds_governed,
    compose_st_tgds_traced, ComposeError, DEFAULT_CLAUSE_BOUND,
};
pub use transport::transport_via;
