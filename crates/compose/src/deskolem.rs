//! Deskolemization: folding an SO-tgd back into first-order st-tgds when
//! the function terms allow it.
//!
//! The composition of st-tgds is expressible as st-tgds in many practical
//! cases (e.g. when the first mapping is full); the SO-tgd algorithm still
//! produces Skolem terms syntactically. This pass detects when each
//! function symbol can be soundly replaced by an existential variable:
//!
//! * the clause has no residual equalities (an equality such as
//!   `f(e) = e` constrains the function and is genuinely second-order);
//! * each function symbol appears in at most one clause;
//! * within the clause, every occurrence of the symbol has the identical
//!   argument list, and the arguments are plain universal variables.
//!
//! Under these conditions `f(x̄)` behaves exactly like one existential
//! witness per binding of x̄, which is what a first-order existential
//! provides.

use mm_expr::{Atom, SoTgd, Term, Tgd};
use mm_guard::{ExecBudget, ExecError, Governor};
use std::collections::HashMap;

/// Try to rewrite `so` as a set of first-order st-tgds. Returns `None`
/// when any clause is genuinely second-order (by the conservative
/// conditions above).
pub fn try_deskolemize(so: &SoTgd) -> Option<Vec<Tgd>> {
    let mut gov = Governor::new(&ExecBudget::unbounded());
    // Unbounded governor never reports exhaustion/cancellation.
    try_deskolemize_governed(so, &mut gov).unwrap_or_default()
}

/// Budgeted variant of [`try_deskolemize`]: the folding pass is linear in
/// the SO-tgd, but composition can hand it an exponentially large input,
/// so the walk accrues one step per head term against `gov`.
pub fn try_deskolemize_governed(
    so: &SoTgd,
    gov: &mut Governor,
) -> Result<Option<Vec<Tgd>>, ExecError> {
    gov.clauses(so.clauses.len() as u64)?;
    // function symbol -> (clause index, argument list) of first sighting
    let mut usage: HashMap<&str, (usize, &[Term])> = HashMap::new();
    for (ci, clause) in so.clauses.iter().enumerate() {
        if !clause.eqs.is_empty() {
            return Ok(None);
        }
        for atom in &clause.head {
            for term in &atom.terms {
                gov.step()?;
                if !check_term(term, ci, &mut usage) {
                    return Ok(None);
                }
            }
        }
        // bodies must already be function-free (they are, by construction)
        if clause.body.iter().any(Atom::has_func) {
            return Ok(None);
        }
    }

    let mut out = Vec::with_capacity(so.clauses.len());
    for (ci, clause) in so.clauses.iter().enumerate() {
        let mut renames: HashMap<String, Term> = HashMap::new();
        let mut counter = 0usize;
        let head = clause
            .head
            .iter()
            .map(|a| Atom {
                relation: a.relation.clone(),
                terms: a
                    .terms
                    .iter()
                    .map(|t| fold_term(t, ci, &mut renames, &mut counter))
                    .collect(),
            })
            .collect();
        gov.steps_n(clause.body.len() as u64 + clause.head.len() as u64)?;
        out.push(Tgd::new(clause.body.clone(), head));
    }
    Ok(Some(out))
}

/// Validate one head term: function terms must have variable-only args,
/// appear in a single clause, and always with the same argument list.
fn check_term<'a>(
    term: &'a Term,
    clause_idx: usize,
    usage: &mut HashMap<&'a str, (usize, &'a [Term])>,
) -> bool {
    match term {
        Term::Var(_) | Term::Const(_) => true,
        Term::Func(f, args) => {
            if !args.iter().all(|a| matches!(a, Term::Var(_))) {
                return false; // nested functions or constants in args
            }
            match usage.get(f.as_str()) {
                Some((ci, prev_args)) => *ci == clause_idx && *prev_args == args.as_slice(),
                None => {
                    usage.insert(f, (clause_idx, args.as_slice()));
                    true
                }
            }
        }
    }
}

fn fold_term(
    term: &Term,
    clause_idx: usize,
    renames: &mut HashMap<String, Term>,
    counter: &mut usize,
) -> Term {
    match term {
        Term::Var(_) | Term::Const(_) => term.clone(),
        Term::Func(f, _) => renames
            .entry(f.clone())
            .or_insert_with(|| {
                let v = Term::Var(format!("ex{clause_idx}_{counter}"));
                *counter += 1;
                v
            })
            .clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sotgd::{compose_st_tgds, DEFAULT_CLAUSE_BOUND};
    use mm_expr::SoClause;

    #[test]
    fn simple_skolem_head_folds_back() {
        // Emp(e) -> Mgr(e, f(e))  becomes  Emp(e) -> exists m . Mgr(e, m)
        let so = SoTgd {
            functions: vec!["f".into()],
            clauses: vec![SoClause {
                body: vec![Atom::vars("Emp", &["e"])],
                eqs: vec![],
                head: vec![Atom::new(
                    "Mgr",
                    vec![Term::var("e"), Term::Func("f".into(), vec![Term::var("e")])],
                )],
            }],
        };
        let tgds = try_deskolemize(&so).unwrap();
        assert_eq!(tgds.len(), 1);
        assert_eq!(tgds[0].existential_vars().len(), 1);
        assert!(tgds[0].validate().is_ok());
    }

    #[test]
    fn residual_equality_blocks_deskolemization() {
        let so = SoTgd {
            functions: vec!["f".into()],
            clauses: vec![SoClause {
                body: vec![Atom::vars("Emp", &["e"])],
                eqs: vec![(
                    Term::Func("f".into(), vec![Term::var("e")]),
                    Term::var("e"),
                )],
                head: vec![Atom::vars("SelfMgr", &["e"])],
            }],
        };
        assert!(try_deskolemize(&so).is_none());
    }

    #[test]
    fn function_shared_across_clauses_blocks() {
        let f = Term::Func("f".into(), vec![Term::var("x")]);
        let so = SoTgd {
            functions: vec!["f".into()],
            clauses: vec![
                SoClause {
                    body: vec![Atom::vars("A", &["x"])],
                    eqs: vec![],
                    head: vec![Atom::new("T", vec![Term::var("x"), f.clone()])],
                },
                SoClause {
                    body: vec![Atom::vars("B", &["x"])],
                    eqs: vec![],
                    head: vec![Atom::new("U", vec![Term::var("x"), f])],
                },
            ],
        };
        // f links the two clauses (same witness for A- and B-derived rows);
        // first-order existentials cannot express that
        assert!(try_deskolemize(&so).is_none());
    }

    #[test]
    fn shared_function_within_one_clause_folds_to_shared_existential() {
        let f = Term::Func("f".into(), vec![Term::var("x")]);
        let so = SoTgd {
            functions: vec!["f".into()],
            clauses: vec![SoClause {
                body: vec![Atom::vars("A", &["x"])],
                eqs: vec![],
                head: vec![
                    Atom::new("T", vec![Term::var("x"), f.clone()]),
                    Atom::new("U", vec![f]),
                ],
            }],
        };
        let tgds = try_deskolemize(&so).unwrap();
        let t = &tgds[0];
        // same existential variable in both head atoms
        assert_eq!(t.head[0].terms[1], t.head[1].terms[0]);
        assert_eq!(t.existential_vars().len(), 1);
    }

    #[test]
    fn nested_function_args_block() {
        let inner = Term::Func("g".into(), vec![Term::var("x")]);
        let so = SoTgd {
            functions: vec!["f".into(), "g".into()],
            clauses: vec![SoClause {
                body: vec![Atom::vars("A", &["x"])],
                eqs: vec![],
                head: vec![Atom::new("T", vec![Term::Func("f".into(), vec![inner])])],
            }],
        };
        assert!(try_deskolemize(&so).is_none());
    }

    #[test]
    fn composition_of_full_then_existential_mapping_deskolemizes() {
        // m12 full: R(x,y) -> S(x,y); m23: S(x,y) -> exists z . T(x, z)
        let m12 = vec![Tgd::new(
            vec![Atom::vars("R", &["x", "y"])],
            vec![Atom::vars("S", &["x", "y"])],
        )];
        let m23 = vec![Tgd::new(
            vec![Atom::vars("S", &["x", "y"])],
            vec![Atom::vars("T", &["x", "z"])],
        )];
        let so = compose_st_tgds(&m12, &m23, DEFAULT_CLAUSE_BOUND).unwrap();
        let tgds = try_deskolemize(&so).expect("composition should be first-order here");
        assert_eq!(tgds.len(), 1);
        assert_eq!(tgds[0].body[0].relation, "R");
        assert_eq!(tgds[0].head[0].relation, "T");
        assert_eq!(tgds[0].existential_vars().len(), 1);
    }
}
