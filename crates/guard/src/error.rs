//! The unified error taxonomy for governed execution.

use std::error::Error;
use std::fmt;

/// The meterable resources an [`crate::ExecBudget`] can cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Logical units of work (atom instantiations, join probes, term
    /// evaluations). The finest-grained meter.
    Steps,
    /// Tuples materialized into results or intermediate instances.
    Rows,
    /// Fixpoint iterations (chase rounds).
    Rounds,
    /// Formula clauses produced (SO-tgd composition output).
    Clauses,
    /// Elapsed wall-clock time.
    WallClock,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Resource::Steps => "steps",
            Resource::Rows => "rows",
            Resource::Rounds => "rounds",
            Resource::Clauses => "clauses",
            Resource::WallClock => "wall-clock",
        };
        f.write_str(name)
    }
}

/// Typed failure of a governed operation.
///
/// Invariant the engine maintains: operators return one of these (or a
/// degraded result carrying a [`Degradation`]) for *any* input — never
/// a panic, never an unbounded run.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A budget cap was hit. `consumed` is the amount metered when the
    /// cap tripped (for `WallClock`, milliseconds).
    BudgetExhausted {
        resource: Resource,
        consumed: u64,
        limit: u64,
    },
    /// The cancellation token was tripped; `after_steps` is how much
    /// work had been metered when the operator noticed.
    Cancelled { after_steps: u64 },
    /// A fixpoint failed to converge within its round limit — the
    /// dependency set is divergent (or the limit is too small).
    Diverged { rounds: u64 },
    /// The input asks for something outside the supported fragment
    /// (e.g. a function term where only first-order terms are legal).
    Unsupported { what: String },
    /// Caller-supplied data is structurally invalid (arity mismatch,
    /// unbound variable, missing column).
    Malformed { what: String },
    /// An internal invariant broke. Reported instead of panicking so
    /// callers can still unwind cleanly.
    Internal { what: String },
    /// A storage/I/O operation failed (durable repository journaling,
    /// snapshot swap). Not a resource error: retrying without fixing
    /// the underlying device won't help.
    Io { what: String },
    /// A hard deadline passed ([`crate::ExecBudget::with_deadline_at`]).
    /// Distinct from a `WallClock` [`ExecError::BudgetExhausted`]: a
    /// wall cap bounds *this operation's* elapsed time from its own
    /// start, while a deadline is an absolute instant imposed from
    /// outside (a server request timeout) — the work was doomed no
    /// matter how fast the operator itself ran.
    DeadlineExceeded {
        /// How far past the deadline the check fired, in milliseconds.
        late_ms: u64,
    },
}

impl ExecError {
    pub fn unsupported(what: impl Into<String>) -> Self {
        ExecError::Unsupported { what: what.into() }
    }

    pub fn malformed(what: impl Into<String>) -> Self {
        ExecError::Malformed { what: what.into() }
    }

    pub fn internal(what: impl Into<String>) -> Self {
        ExecError::Internal { what: what.into() }
    }

    pub fn io(what: impl Into<String>) -> Self {
        ExecError::Io { what: what.into() }
    }

    /// True for errors caused by resource limits (the cases degradation
    /// strategies may recover from), false for input/logic errors.
    pub fn is_resource(&self) -> bool {
        matches!(
            self,
            ExecError::BudgetExhausted { .. }
                | ExecError::Cancelled { .. }
                | ExecError::Diverged { .. }
                | ExecError::DeadlineExceeded { .. }
        )
    }

    /// The telemetry cause bucket this error belongs to — how
    /// degradation counters attribute the fallback
    /// ([`mm_telemetry::EngineMetrics::degradation`]).
    pub fn telemetry_cause(&self) -> mm_telemetry::Cause {
        use mm_telemetry::Cause;
        match self {
            ExecError::BudgetExhausted { resource, .. } => match resource {
                Resource::Steps => Cause::Steps,
                Resource::Rows => Cause::Rows,
                Resource::Rounds => Cause::Rounds,
                Resource::Clauses => Cause::Clauses,
                Resource::WallClock => Cause::WallClock,
            },
            ExecError::Cancelled { .. } => Cause::Cancelled,
            ExecError::Diverged { .. } => Cause::Rounds,
            ExecError::DeadlineExceeded { .. } => Cause::WallClock,
            _ => Cause::Other,
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BudgetExhausted { resource, consumed, limit } => {
                write!(f, "budget exhausted: {consumed} {resource} consumed (limit {limit})")
            }
            ExecError::Cancelled { after_steps } => {
                write!(f, "cancelled after {after_steps} steps")
            }
            ExecError::Diverged { rounds } => {
                write!(f, "fixpoint diverged: no convergence within {rounds} rounds")
            }
            ExecError::Unsupported { what } => write!(f, "unsupported: {what}"),
            ExecError::Malformed { what } => write!(f, "malformed input: {what}"),
            ExecError::Internal { what } => write!(f, "internal error: {what}"),
            ExecError::Io { what } => write!(f, "i/o error: {what}"),
            ExecError::DeadlineExceeded { late_ms } => {
                write!(f, "deadline exceeded ({late_ms} ms past the deadline)")
            }
        }
    }
}

impl Error for ExecError {}

/// How an operator degraded instead of failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationKind {
    /// Mediator: the pre-composed (collapsed) mapping tripped its
    /// budget; answered hop-by-hop through the mapping chain instead.
    CollapsedToChained,
    /// IVM: delta-rule maintenance tripped its budget; fell back to a
    /// full recompute of the affected view.
    IncrementalToRecompute,
    /// Propagation: incremental push to a subscriber was abandoned
    /// (queue overflow, lost cursor, or delta budget); the subscriber
    /// is handed a full recompute-and-resync snapshot instead.
    PushToResync,
}

impl fmt::Display for DegradationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DegradationKind::CollapsedToChained => "collapsed mediation -> chained unfolding",
            DegradationKind::IncrementalToRecompute => "incremental maintenance -> full recompute",
            DegradationKind::PushToResync => "incremental push -> recompute-and-resync",
        };
        f.write_str(name)
    }
}

/// Record of a graceful fallback, carried alongside the (still valid)
/// result so callers can observe that the fast path was abandoned.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    pub kind: DegradationKind,
    /// The resource error that forced the fallback.
    pub cause: ExecError,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "degraded ({}): {}", self.kind, self.cause)
    }
}
