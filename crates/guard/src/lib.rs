//! Execution governance for model-management operators.
//!
//! Every potentially-unbounded computation in the engine — chase
//! fixpoints, SO-tgd composition splicing, homomorphism joins, IVM
//! delta maintenance — runs under an [`ExecBudget`]: caps on logical
//! steps, produced rows, fixpoint rounds, output clauses, and wall
//! clock, plus a cooperative [`CancelToken`]. Operators meter
//! themselves through a [`Governor`] and surface violations as typed
//! [`ExecError`]s instead of panicking or silently truncating.
//!
//! Degradations (an operator falling back to a cheaper strategy after
//! tripping a budget, rather than failing outright) are first-class:
//! see [`Degradation`].

#![warn(clippy::unwrap_used, clippy::expect_used)]

mod budget;
mod cancel;
mod error;
mod governor;

pub use budget::{deadline_in, ExecBudget};
pub use cancel::CancelToken;
pub use error::{Degradation, DegradationKind, ExecError, Resource};
pub use governor::{Consumption, Governor, SharedMeter};
