//! Budget declarations.

use std::time::{Duration, Instant};

use crate::CancelToken;

/// Resource caps for one governed operation (or a pipeline of them).
///
/// All caps are optional; [`ExecBudget::unbounded`] is the identity
/// budget that only ever fails through its [`CancelToken`]. The wall
/// clock cap is anchored at construction time (`with_wall`), so a
/// budget threaded through several operators bounds their *combined*
/// elapsed time, not each one separately.
#[derive(Debug, Clone)]
pub struct ExecBudget {
    pub(crate) max_steps: Option<u64>,
    pub(crate) max_rows: Option<u64>,
    pub(crate) max_rounds: Option<u64>,
    pub(crate) max_clauses: Option<u64>,
    pub(crate) deadline: Option<Instant>,
    /// Absolute cutoff imposed from outside (a request timeout). Trips
    /// as [`crate::ExecError::DeadlineExceeded`], unlike `deadline`
    /// which trips as a `WallClock` budget exhaustion.
    pub(crate) hard_deadline: Option<Instant>,
    pub(crate) cancel: CancelToken,
}

/// An absolute deadline `d` from now on the shared monotonic clock
/// ([`mm_telemetry::clock`]) — the clock [`ExecBudget::with_deadline_at`]
/// and the telemetry spans read, so a deadline computed here and the
/// governor that enforces it agree on elapsed time.
pub fn deadline_in(d: Duration) -> Instant {
    mm_telemetry::clock::now() + d
}

impl ExecBudget {
    /// No caps; cancellable only.
    pub fn unbounded() -> Self {
        ExecBudget {
            max_steps: None,
            max_rows: None,
            max_rounds: None,
            max_clauses: None,
            deadline: None,
            hard_deadline: None,
            cancel: CancelToken::new(),
        }
    }

    /// Cap logical work units (atom instantiations, join probes).
    pub fn with_steps(mut self, n: u64) -> Self {
        self.max_steps = Some(n);
        self
    }

    /// Cap materialized tuples.
    pub fn with_rows(mut self, n: u64) -> Self {
        self.max_rows = Some(n);
        self
    }

    /// Cap fixpoint rounds (chase iterations).
    pub fn with_rounds(mut self, n: u64) -> Self {
        self.max_rounds = Some(n);
        self
    }

    /// Cap produced clauses (SO-tgd composition output size).
    pub fn with_clauses(mut self, n: u64) -> Self {
        self.max_clauses = Some(n);
        self
    }

    /// Cap wall-clock time, measured from *now* on the shared monotonic
    /// clock ([`mm_telemetry::clock`]) — the same clock spans read, so
    /// budgets and telemetry agree on elapsed time.
    pub fn with_wall(mut self, d: Duration) -> Self {
        self.deadline = Some(mm_telemetry::clock::now() + d);
        self
    }

    /// Impose an absolute hard deadline (see [`deadline_in`]). Unlike
    /// [`ExecBudget::with_wall`], which anchors at construction and
    /// reports `BudgetExhausted { WallClock }`, a hard deadline is an
    /// instant fixed by the caller (e.g. a server request timeout) and
    /// trips as [`crate::ExecError::DeadlineExceeded`]. Both may be set;
    /// whichever passes first wins.
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.hard_deadline = Some(at);
        self
    }

    pub fn hard_deadline(&self) -> Option<Instant> {
        self.hard_deadline
    }

    /// Attach an externally held cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    pub fn max_rounds(&self) -> Option<u64> {
        self.max_rounds
    }

    pub fn max_clauses(&self) -> Option<u64> {
        self.max_clauses
    }
}

impl Default for ExecBudget {
    fn default() -> Self {
        ExecBudget::unbounded()
    }
}
