//! The runtime meter operators thread through their hot loops.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::{ExecBudget, ExecError, Resource};

/// How many steps pass between expensive checks (cancellation poll +
/// `Instant::now`). Power of two so the test is a mask. Step/row limit
/// comparisons still happen on every call — they are two predictable
/// branches and keep the error's `consumed` exact.
const CHECK_INTERVAL: u64 = 1024;

/// Per-operation meter over an [`ExecBudget`].
///
/// Cheap to construct; hot loops call [`Governor::step`]/[`Governor::row`]
/// per unit of work. The expensive observations (atomic cancellation
/// poll, wall-clock read) are amortized over [`CHECK_INTERVAL`] steps,
/// keeping governance overhead well under 5% even on tight chase loops.
#[derive(Debug, Clone)]
pub struct Governor {
    budget: ExecBudget,
    steps: u64,
    rows: u64,
    rounds: u64,
    clauses: u64,
    started: Instant,
    /// Cross-worker meter this governor publishes into (parallel
    /// regions only; `None` on the ordinary sequential path).
    shared: Option<Arc<SharedMeter>>,
    /// Own steps/rows already published to `shared`.
    flushed_steps: u64,
    flushed_rows: u64,
    /// Last observed consumption by *other* governors on the same
    /// meter (refreshed at every [`Governor::check_now`] safepoint, so
    /// at most `CHECK_INTERVAL` steps stale per worker).
    foreign_steps: u64,
    foreign_rows: u64,
}

impl Governor {
    pub fn new(budget: &ExecBudget) -> Self {
        Governor {
            budget: budget.clone(),
            steps: 0,
            rows: 0,
            rounds: 0,
            clauses: 0,
            started: mm_telemetry::clock::now(),
            shared: None,
            flushed_steps: 0,
            flushed_rows: 0,
            foreign_steps: 0,
            foreign_rows: 0,
        }
    }

    /// Meter one logical unit of work.
    #[inline]
    pub fn step(&mut self) -> Result<(), ExecError> {
        self.advance(1)
    }

    /// Meter `n` units at once (bulk operations).
    #[inline]
    pub fn steps_n(&mut self, n: u64) -> Result<(), ExecError> {
        self.advance(n.max(1))
    }

    /// Advance the step counter by `n` (≥ 1), checking the cap and
    /// hitting the periodic safepoint. A bulk advance can jump clean
    /// over a multiple of [`CHECK_INTERVAL`], so the safepoint fires on
    /// *crossing* an interval boundary rather than landing exactly on
    /// one — otherwise bulk-metered work would never poll cancellation
    /// or publish to a shared meter.
    #[inline]
    fn advance(&mut self, n: u64) -> Result<(), ExecError> {
        let before = self.steps;
        self.steps += n;
        if let Some(limit) = self.budget.max_steps {
            if self.steps + self.foreign_steps > limit {
                return Err(ExecError::BudgetExhausted {
                    resource: Resource::Steps,
                    consumed: self.steps + self.foreign_steps,
                    limit,
                });
            }
        }
        if self.steps / CHECK_INTERVAL != before / CHECK_INTERVAL {
            self.check_now()?;
        }
        Ok(())
    }

    /// Meter one materialized tuple.
    #[inline]
    pub fn row(&mut self) -> Result<(), ExecError> {
        self.rows_n(1)
    }

    /// Meter `n` materialized tuples at once (bulk operations). Lets a
    /// caller charge a whole batch *before* mutating shared state, so a
    /// budget trip leaves no partial effect.
    #[inline]
    pub fn rows_n(&mut self, n: u64) -> Result<(), ExecError> {
        if n == 0 {
            return self.check_now();
        }
        self.rows += n;
        if let Some(limit) = self.budget.max_rows {
            if self.rows + self.foreign_rows > limit {
                return Err(ExecError::BudgetExhausted {
                    resource: Resource::Rows,
                    consumed: self.rows + self.foreign_rows,
                    limit,
                });
            }
        }
        self.advance(n)
    }

    /// Check a fixpoint round count (1-based) against the round cap;
    /// also forces a cancellation/deadline check, since a round
    /// boundary is a natural safepoint.
    pub fn round(&mut self, completed_rounds: u64) -> Result<(), ExecError> {
        self.rounds = self.rounds.max(completed_rounds);
        if let Some(limit) = self.budget.max_rounds {
            if completed_rounds > limit {
                return Err(ExecError::BudgetExhausted {
                    resource: Resource::Rounds,
                    consumed: completed_rounds,
                    limit,
                });
            }
        }
        self.check_now()
    }

    /// Check a produced-clause count against the clause cap.
    pub fn clauses(&mut self, count: u64) -> Result<(), ExecError> {
        self.clauses = self.clauses.max(count);
        if let Some(limit) = self.budget.max_clauses {
            if count > limit {
                return Err(ExecError::BudgetExhausted {
                    resource: Resource::Clauses,
                    consumed: count,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Unamortized cancellation + deadline check. Call at loop
    /// boundaries where waiting up to [`CHECK_INTERVAL`] steps would be
    /// too coarse.
    pub fn check_now(&mut self) -> Result<(), ExecError> {
        if self.budget.cancel.poll() {
            return Err(ExecError::Cancelled { after_steps: self.steps });
        }
        if self.shared.is_some() {
            self.sync_shared()?;
        }
        if self.budget.deadline.is_some() || self.budget.hard_deadline.is_some() {
            let now = mm_telemetry::clock::now();
            if let Some(hard) = self.budget.hard_deadline {
                if now > hard {
                    return Err(ExecError::DeadlineExceeded {
                        late_ms: now.duration_since(hard).as_millis() as u64,
                    });
                }
            }
            if let Some(deadline) = self.budget.deadline {
                if now > deadline {
                    return Err(ExecError::BudgetExhausted {
                        resource: Resource::WallClock,
                        consumed: now.duration_since(self.started).as_millis() as u64,
                        limit: deadline.duration_since(self.started).as_millis() as u64,
                    });
                }
            }
        }
        Ok(())
    }

    /// Publish this governor's unflushed steps/rows into the shared
    /// meter, refresh the view of other workers' consumption, and
    /// re-check the global caps. No-op for governors without a meter.
    fn sync_shared(&mut self) -> Result<(), ExecError> {
        let Some(meter) = self.shared.clone() else {
            return Ok(());
        };
        meter.add(
            self.steps - self.flushed_steps,
            self.rows - self.flushed_rows,
        );
        self.flushed_steps = self.steps;
        self.flushed_rows = self.rows;
        // The meter now holds every worker's flushed total including
        // all of our own, so the difference is foreign consumption.
        self.foreign_steps = meter.steps().saturating_sub(self.steps);
        self.foreign_rows = meter.rows().saturating_sub(self.rows);
        if let Some(limit) = self.budget.max_steps {
            let total = self.steps + self.foreign_steps;
            if total > limit {
                return Err(ExecError::BudgetExhausted {
                    resource: Resource::Steps,
                    consumed: total,
                    limit,
                });
            }
        }
        if let Some(limit) = self.budget.max_rows {
            let total = self.rows + self.foreign_rows;
            if total > limit {
                return Err(ExecError::BudgetExhausted {
                    resource: Resource::Rows,
                    consumed: total,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Split this governor for a parallel region: returns a
    /// [`SharedMeter`] pre-charged with everything consumed so far plus
    /// `workers` governors that meter against it. Worker governors
    /// share the caller's budget (and therefore its [`crate::CancelToken`]
    /// and wall deadline), publish their consumption into the meter at
    /// every safepoint, and see each other's flushed consumption as
    /// `foreign` work counted against the caps — so a global step/row
    /// limit trips across the whole region with at most
    /// [`CHECK_INTERVAL`] steps of per-worker lag. After the region
    /// joins, fold each worker's [`Governor::consumption`] back with
    /// [`Governor::absorb`].
    pub fn fork_shared(&self, workers: usize) -> (Arc<SharedMeter>, Vec<Governor>) {
        let meter = Arc::new(SharedMeter::default());
        meter.add(self.steps, self.rows);
        let govs = (0..workers)
            .map(|_| Governor {
                budget: self.budget.clone(),
                steps: 0,
                rows: 0,
                rounds: 0,
                clauses: 0,
                started: self.started,
                shared: Some(Arc::clone(&meter)),
                flushed_steps: 0,
                flushed_rows: 0,
                foreign_steps: self.steps,
                foreign_rows: self.rows,
            })
            .collect();
        (meter, govs)
    }

    /// Attach a fresh governor to an existing [`SharedMeter`] under its
    /// own budget. Where [`Governor::fork_shared`] clones the lead's
    /// budget into every worker (one operation split across threads),
    /// this lets *independent* operations meter against one shared pool
    /// while each keeps its own caps, deadline, and cancel token — the
    /// server uses it to charge every request of a session against the
    /// session budget while the request carries its own hard deadline.
    /// Caps in `budget` apply to the *combined* meter total; call
    /// [`Governor::publish`] when the operation finishes so the final
    /// partial interval reaches the meter.
    pub fn attach_shared(budget: &ExecBudget, meter: &Arc<SharedMeter>) -> Self {
        let mut g = Governor::new(budget);
        g.foreign_steps = meter.steps();
        g.foreign_rows = meter.rows();
        g.shared = Some(Arc::clone(meter));
        g
    }

    /// Flush any unpublished steps/rows to the attached shared meter
    /// (no-op without one). Unlike the periodic safepoint flush this
    /// never fails: it is for the end of an operation, where the work
    /// is already done and only the accounting remains.
    pub fn publish(&mut self) {
        if let Some(meter) = self.shared.clone() {
            meter.add(
                self.steps - self.flushed_steps,
                self.rows - self.flushed_rows,
            );
            self.flushed_steps = self.steps;
            self.flushed_rows = self.rows;
        }
    }

    /// Fold a joined worker's consumption into this governor and
    /// re-check the caps. On the success path the sum over all workers
    /// equals what the sequential oracle would have metered, so this
    /// cannot trip unless the sequential run would have tripped too.
    pub fn absorb(&mut self, c: &Consumption) -> Result<(), ExecError> {
        self.steps += c.steps;
        self.rows += c.rows;
        if let Some(limit) = self.budget.max_steps {
            let total = self.steps + self.foreign_steps;
            if total > limit {
                return Err(ExecError::BudgetExhausted {
                    resource: Resource::Steps,
                    consumed: total,
                    limit,
                });
            }
        }
        if let Some(limit) = self.budget.max_rows {
            let total = self.rows + self.foreign_rows;
            if total > limit {
                return Err(ExecError::BudgetExhausted {
                    resource: Resource::Rows,
                    consumed: total,
                    limit,
                });
            }
        }
        self.check_now()
    }

    pub fn steps_consumed(&self) -> u64 {
        self.steps
    }

    pub fn rows_consumed(&self) -> u64 {
        self.rows
    }

    /// Everything this meter has consumed so far — steps, rows, the
    /// highest round and clause counts checked, and wall time since
    /// construction. Until PR 4 consumption was visible only inside
    /// `ExecError::BudgetExhausted`; this exports it on the success path
    /// too (telemetry records it as span fields on completed operators).
    pub fn consumption(&self) -> Consumption {
        Consumption {
            steps: self.steps,
            rows: self.rows,
            rounds: self.rounds,
            clauses: self.clauses,
            wall_us: mm_telemetry::clock::elapsed_us(self.started),
        }
    }

    pub fn budget(&self) -> &ExecBudget {
        &self.budget
    }
}

/// A cross-worker consumption meter for parallel regions.
///
/// Workers [`Governor::fork_shared`]-ed off one caller publish their
/// steps/rows here at every safepoint; each worker counts the others'
/// published consumption against the budget caps, so a global limit
/// trips across the whole region rather than per worker. Purely
/// additive atomics — never read on the per-step fast path.
#[derive(Debug, Default)]
pub struct SharedMeter {
    steps: AtomicU64,
    rows: AtomicU64,
}

impl SharedMeter {
    /// An empty meter for [`Governor::attach_shared`] sessions.
    pub fn new() -> Self {
        SharedMeter::default()
    }

    fn add(&self, steps: u64, rows: u64) {
        if steps > 0 {
            self.steps.fetch_add(steps, Ordering::Relaxed);
        }
        if rows > 0 {
            self.rows.fetch_add(rows, Ordering::Relaxed);
        }
    }

    /// Total steps published by every attached governor so far.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Total rows published by every attached governor so far.
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }
}

/// A snapshot of a [`Governor`]'s consumed resources.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Consumption {
    /// Logical work units metered ([`Governor::step`]).
    pub steps: u64,
    /// Materialized tuples metered ([`Governor::row`]).
    pub rows: u64,
    /// Highest completed-round count checked ([`Governor::round`]).
    pub rounds: u64,
    /// Highest produced-clause count checked ([`Governor::clauses`]).
    pub clauses: u64,
    /// Wall-clock time since the governor started, in microseconds.
    pub wall_us: u64,
}

impl std::fmt::Display for Consumption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "steps={} rows={} rounds={} clauses={} wall_us={}",
            self.steps, self.rows, self.rounds, self.clauses, self.wall_us
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::CancelToken;

    #[test]
    fn step_budget_trips_exactly() {
        let mut g = Governor::new(&ExecBudget::unbounded().with_steps(10));
        for _ in 0..10 {
            g.step().expect("within budget");
        }
        match g.step() {
            Err(ExecError::BudgetExhausted { resource: Resource::Steps, consumed, limit }) => {
                assert_eq!((consumed, limit), (11, 10));
            }
            other => panic!("expected step exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn row_budget_trips() {
        let mut g = Governor::new(&ExecBudget::unbounded().with_rows(2));
        g.row().expect("row 1");
        g.row().expect("row 2");
        assert!(matches!(
            g.row(),
            Err(ExecError::BudgetExhausted { resource: Resource::Rows, .. })
        ));
    }

    #[test]
    fn cancellation_observed_at_safepoint() {
        let token = CancelToken::new();
        let mut g = Governor::new(&ExecBudget::unbounded().with_cancel(token.clone()));
        g.check_now().expect("not yet cancelled");
        token.cancel();
        assert!(matches!(g.check_now(), Err(ExecError::Cancelled { .. })));
    }

    #[test]
    fn cancellation_observed_within_check_interval_steps() {
        let token = CancelToken::new();
        token.cancel();
        let mut g = Governor::new(&ExecBudget::unbounded().with_cancel(token));
        let mut tripped = false;
        for _ in 0..CHECK_INTERVAL + 1 {
            if g.step().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "cancellation must surface within one check interval");
    }

    #[test]
    fn rounds_and_clauses() {
        let mut g = Governor::new(&ExecBudget::unbounded().with_rounds(3).with_clauses(100));
        g.round(3).expect("at the cap is fine");
        assert!(matches!(
            g.round(4),
            Err(ExecError::BudgetExhausted { resource: Resource::Rounds, .. })
        ));
        g.clauses(100).expect("at the cap is fine");
        assert!(matches!(
            g.clauses(101),
            Err(ExecError::BudgetExhausted { resource: Resource::Clauses, .. })
        ));
    }

    #[test]
    fn forked_workers_trip_a_global_step_cap_together() {
        // Cap of 3 * CHECK_INTERVAL; four workers each try to run
        // 2 * CHECK_INTERVAL steps. Individually each is under the cap,
        // but the flushed global total must trip at a safepoint.
        let limit = 3 * CHECK_INTERVAL;
        let lead = Governor::new(&ExecBudget::unbounded().with_steps(limit));
        let (_meter, workers) = lead.fork_shared(4);
        let mut tripped = 0;
        for mut g in workers {
            for _ in 0..2 * CHECK_INTERVAL {
                if g.step().is_err() {
                    tripped += 1;
                    break;
                }
            }
        }
        assert!(tripped >= 1, "global cap never observed across workers");
    }

    #[test]
    fn absorb_restores_exact_sequential_totals() {
        let budget = ExecBudget::unbounded().with_steps(10_000);
        let mut lead = Governor::new(&budget);
        lead.steps_n(5).expect("prefix");
        let (_meter, mut workers) = lead.fork_shared(2);
        for (i, g) in workers.iter_mut().enumerate() {
            for _ in 0..(i + 1) * 3 {
                g.step().expect("worker step");
            }
            g.row().expect("worker row");
        }
        for g in &workers {
            lead.absorb(&g.consumption()).expect("under budget");
        }
        // 5 + (3 + 1) + (6 + 1) steps, 2 rows (row() also steps).
        assert_eq!(lead.steps_consumed(), 16);
        assert_eq!(lead.rows_consumed(), 2);
    }

    #[test]
    fn forked_workers_share_the_cancel_token() {
        let token = CancelToken::new();
        let lead = Governor::new(&ExecBudget::unbounded().with_cancel(token.clone()));
        let (_meter, mut workers) = lead.fork_shared(3);
        token.cancel();
        for g in &mut workers {
            assert!(matches!(g.check_now(), Err(ExecError::Cancelled { .. })));
        }
    }

    #[test]
    fn hard_deadline_trips_as_deadline_exceeded() {
        let at = crate::deadline_in(std::time::Duration::ZERO);
        let mut g = Governor::new(&ExecBudget::unbounded().with_deadline_at(at));
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(matches!(g.check_now(), Err(ExecError::DeadlineExceeded { .. })));
    }

    #[test]
    fn hard_deadline_is_distinct_from_wall_cap() {
        // A generous wall cap plus an already-passed hard deadline must
        // report DeadlineExceeded, not WallClock exhaustion.
        let at = crate::deadline_in(std::time::Duration::ZERO);
        let budget = ExecBudget::unbounded()
            .with_wall(std::time::Duration::from_secs(3600))
            .with_deadline_at(at);
        let mut g = Governor::new(&budget);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(matches!(g.check_now(), Err(ExecError::DeadlineExceeded { .. })));
    }

    #[test]
    fn attach_shared_meters_against_a_session_pool() {
        // Two sequential "requests" share a session meter with a
        // combined step cap; each request alone is under the cap.
        let meter = Arc::new(SharedMeter::new());
        let session = ExecBudget::unbounded().with_steps(10);
        let mut r1 = Governor::attach_shared(&session, &meter);
        r1.steps_n(6).expect("request 1 under the session cap");
        r1.publish();
        assert_eq!(meter.steps(), 6);

        let mut r2 = Governor::attach_shared(&session, &meter);
        assert!(
            matches!(
                r2.steps_n(6),
                Err(ExecError::BudgetExhausted { resource: Resource::Steps, .. })
            ),
            "request 2 must see request 1's published consumption"
        );
    }

    #[test]
    fn attached_governor_keeps_its_own_deadline() {
        let meter = Arc::new(SharedMeter::new());
        let session = ExecBudget::unbounded();
        let expired = session
            .clone()
            .with_deadline_at(crate::deadline_in(std::time::Duration::ZERO));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let mut doomed = Governor::attach_shared(&expired, &meter);
        assert!(matches!(doomed.check_now(), Err(ExecError::DeadlineExceeded { .. })));
        // A sibling request without the deadline is unaffected.
        let mut fine = Governor::attach_shared(&session, &meter);
        fine.check_now().expect("no deadline on this request");
    }

    #[test]
    fn wall_clock_deadline_trips() {
        let mut g = Governor::new(&ExecBudget::unbounded().with_wall(std::time::Duration::ZERO));
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(matches!(
            g.check_now(),
            Err(ExecError::BudgetExhausted { resource: Resource::WallClock, .. })
        ));
    }
}
