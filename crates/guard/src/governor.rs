//! The runtime meter operators thread through their hot loops.

use std::time::Instant;

use crate::{ExecBudget, ExecError, Resource};

/// How many steps pass between expensive checks (cancellation poll +
/// `Instant::now`). Power of two so the test is a mask. Step/row limit
/// comparisons still happen on every call — they are two predictable
/// branches and keep the error's `consumed` exact.
const CHECK_INTERVAL: u64 = 1024;

/// Per-operation meter over an [`ExecBudget`].
///
/// Cheap to construct; hot loops call [`Governor::step`]/[`Governor::row`]
/// per unit of work. The expensive observations (atomic cancellation
/// poll, wall-clock read) are amortized over [`CHECK_INTERVAL`] steps,
/// keeping governance overhead well under 5% even on tight chase loops.
#[derive(Debug, Clone)]
pub struct Governor {
    budget: ExecBudget,
    steps: u64,
    rows: u64,
    rounds: u64,
    clauses: u64,
    started: Instant,
}

impl Governor {
    pub fn new(budget: &ExecBudget) -> Self {
        Governor {
            budget: budget.clone(),
            steps: 0,
            rows: 0,
            rounds: 0,
            clauses: 0,
            started: mm_telemetry::clock::now(),
        }
    }

    /// Meter one logical unit of work.
    #[inline]
    pub fn step(&mut self) -> Result<(), ExecError> {
        self.steps += 1;
        if let Some(limit) = self.budget.max_steps {
            if self.steps > limit {
                return Err(ExecError::BudgetExhausted {
                    resource: Resource::Steps,
                    consumed: self.steps,
                    limit,
                });
            }
        }
        if self.steps.is_multiple_of(CHECK_INTERVAL) {
            self.check_now()?;
        }
        Ok(())
    }

    /// Meter `n` units at once (bulk operations).
    #[inline]
    pub fn steps_n(&mut self, n: u64) -> Result<(), ExecError> {
        self.steps += n.saturating_sub(1);
        self.step()
    }

    /// Meter one materialized tuple.
    #[inline]
    pub fn row(&mut self) -> Result<(), ExecError> {
        self.rows += 1;
        if let Some(limit) = self.budget.max_rows {
            if self.rows > limit {
                return Err(ExecError::BudgetExhausted {
                    resource: Resource::Rows,
                    consumed: self.rows,
                    limit,
                });
            }
        }
        self.step()
    }

    /// Meter `n` materialized tuples at once (bulk operations). Lets a
    /// caller charge a whole batch *before* mutating shared state, so a
    /// budget trip leaves no partial effect.
    #[inline]
    pub fn rows_n(&mut self, n: u64) -> Result<(), ExecError> {
        if n == 0 {
            return self.check_now();
        }
        self.rows += n - 1;
        self.steps += n - 1;
        self.row()
    }

    /// Check a fixpoint round count (1-based) against the round cap;
    /// also forces a cancellation/deadline check, since a round
    /// boundary is a natural safepoint.
    pub fn round(&mut self, completed_rounds: u64) -> Result<(), ExecError> {
        self.rounds = self.rounds.max(completed_rounds);
        if let Some(limit) = self.budget.max_rounds {
            if completed_rounds > limit {
                return Err(ExecError::BudgetExhausted {
                    resource: Resource::Rounds,
                    consumed: completed_rounds,
                    limit,
                });
            }
        }
        self.check_now()
    }

    /// Check a produced-clause count against the clause cap.
    pub fn clauses(&mut self, count: u64) -> Result<(), ExecError> {
        self.clauses = self.clauses.max(count);
        if let Some(limit) = self.budget.max_clauses {
            if count > limit {
                return Err(ExecError::BudgetExhausted {
                    resource: Resource::Clauses,
                    consumed: count,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Unamortized cancellation + deadline check. Call at loop
    /// boundaries where waiting up to [`CHECK_INTERVAL`] steps would be
    /// too coarse.
    pub fn check_now(&mut self) -> Result<(), ExecError> {
        if self.budget.cancel.poll() {
            return Err(ExecError::Cancelled { after_steps: self.steps });
        }
        if let Some(deadline) = self.budget.deadline {
            let now = mm_telemetry::clock::now();
            if now > deadline {
                return Err(ExecError::BudgetExhausted {
                    resource: Resource::WallClock,
                    consumed: now.duration_since(self.started).as_millis() as u64,
                    limit: deadline.duration_since(self.started).as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    pub fn steps_consumed(&self) -> u64 {
        self.steps
    }

    pub fn rows_consumed(&self) -> u64 {
        self.rows
    }

    /// Everything this meter has consumed so far — steps, rows, the
    /// highest round and clause counts checked, and wall time since
    /// construction. Until PR 4 consumption was visible only inside
    /// `ExecError::BudgetExhausted`; this exports it on the success path
    /// too (telemetry records it as span fields on completed operators).
    pub fn consumption(&self) -> Consumption {
        Consumption {
            steps: self.steps,
            rows: self.rows,
            rounds: self.rounds,
            clauses: self.clauses,
            wall_us: mm_telemetry::clock::elapsed_us(self.started),
        }
    }

    pub fn budget(&self) -> &ExecBudget {
        &self.budget
    }
}

/// A snapshot of a [`Governor`]'s consumed resources.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Consumption {
    /// Logical work units metered ([`Governor::step`]).
    pub steps: u64,
    /// Materialized tuples metered ([`Governor::row`]).
    pub rows: u64,
    /// Highest completed-round count checked ([`Governor::round`]).
    pub rounds: u64,
    /// Highest produced-clause count checked ([`Governor::clauses`]).
    pub clauses: u64,
    /// Wall-clock time since the governor started, in microseconds.
    pub wall_us: u64,
}

impl std::fmt::Display for Consumption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "steps={} rows={} rounds={} clauses={} wall_us={}",
            self.steps, self.rows, self.rounds, self.clauses, self.wall_us
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::CancelToken;

    #[test]
    fn step_budget_trips_exactly() {
        let mut g = Governor::new(&ExecBudget::unbounded().with_steps(10));
        for _ in 0..10 {
            g.step().expect("within budget");
        }
        match g.step() {
            Err(ExecError::BudgetExhausted { resource: Resource::Steps, consumed, limit }) => {
                assert_eq!((consumed, limit), (11, 10));
            }
            other => panic!("expected step exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn row_budget_trips() {
        let mut g = Governor::new(&ExecBudget::unbounded().with_rows(2));
        g.row().expect("row 1");
        g.row().expect("row 2");
        assert!(matches!(
            g.row(),
            Err(ExecError::BudgetExhausted { resource: Resource::Rows, .. })
        ));
    }

    #[test]
    fn cancellation_observed_at_safepoint() {
        let token = CancelToken::new();
        let mut g = Governor::new(&ExecBudget::unbounded().with_cancel(token.clone()));
        g.check_now().expect("not yet cancelled");
        token.cancel();
        assert!(matches!(g.check_now(), Err(ExecError::Cancelled { .. })));
    }

    #[test]
    fn cancellation_observed_within_check_interval_steps() {
        let token = CancelToken::new();
        token.cancel();
        let mut g = Governor::new(&ExecBudget::unbounded().with_cancel(token));
        let mut tripped = false;
        for _ in 0..CHECK_INTERVAL + 1 {
            if g.step().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "cancellation must surface within one check interval");
    }

    #[test]
    fn rounds_and_clauses() {
        let mut g = Governor::new(&ExecBudget::unbounded().with_rounds(3).with_clauses(100));
        g.round(3).expect("at the cap is fine");
        assert!(matches!(
            g.round(4),
            Err(ExecError::BudgetExhausted { resource: Resource::Rounds, .. })
        ));
        g.clauses(100).expect("at the cap is fine");
        assert!(matches!(
            g.clauses(101),
            Err(ExecError::BudgetExhausted { resource: Resource::Clauses, .. })
        ));
    }

    #[test]
    fn wall_clock_deadline_trips() {
        let mut g = Governor::new(&ExecBudget::unbounded().with_wall(std::time::Duration::ZERO));
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(matches!(
            g.check_now(),
            Err(ExecError::BudgetExhausted { resource: Resource::WallClock, .. })
        ));
    }
}
