//! Cooperative cancellation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const NEVER: u64 = u64::MAX;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Fault-injection hook: auto-trip once this many polls have
    /// happened. `NEVER` disables the hook.
    trip_at: AtomicU64,
    polls: AtomicU64,
}

/// Shared cancellation flag. Clones observe the same flag; any holder
/// (another thread, a timeout driver, a fault harness) can trip it and
/// every governed loop will stop at its next poll with
/// [`crate::ExecError::Cancelled`].
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                trip_at: AtomicU64::new(NEVER),
                polls: AtomicU64::new(0),
            }),
        }
    }

    /// Request cancellation. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Fault-injection: arrange for the token to trip itself on its
    /// `n`-th poll. Deterministic, unlike wall-clock-based cancellation,
    /// so tests can stop an operator at an exact point mid-run.
    pub fn trip_after_polls(&self, n: u64) {
        self.inner.trip_at.store(n, Ordering::Release);
    }

    /// Number of times governed code has polled this token.
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::Acquire)
    }

    /// Poll from governed code: counts the poll, applies the
    /// fault-injection trip point, and reports the flag.
    pub(crate) fn poll(&self) -> bool {
        let polls = self.inner.polls.fetch_add(1, Ordering::AcqRel) + 1;
        if polls >= self.inner.trip_at.load(Ordering::Acquire) {
            self.inner.cancelled.store(true, Ordering::Release);
        }
        self.is_cancelled()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn trip_after_polls_is_deterministic() {
        let t = CancelToken::new();
        t.trip_after_polls(3);
        assert!(!t.poll());
        assert!(!t.poll());
        assert!(t.poll());
        assert!(t.is_cancelled());
    }
}
