//! Evolution-chain generator (Figure 5 at scale): a sequence of schema
//! changes, each with a forward migration and the substitutable
//! old-over-new mapping needed for view repair by composition.

// Fixture generators: schemas/data/tgd sets are built from static,
// known-good literals; `expect`/`unwrap` failures are generator bugs,
// not runtime failure modes (DESIGN.md §7).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mm_expr::{Expr, Predicate, ViewDef, ViewSet};
use mm_metamodel::{Attribute, DataType, Element, ElementKind, Schema};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One evolution step: the evolved schema plus both mapping directions.
#[derive(Debug, Clone)]
pub struct EvolutionStep {
    /// The schema after the change.
    pub schema: Schema,
    /// Forward views: new relations over the old schema (migration).
    pub migration: ViewSet,
    /// Substitutable views: old relations over the new schema (repair).
    pub old_over_new: ViewSet,
    /// Human-readable description of the change.
    pub description: String,
}

/// Generate a chain of `steps` single-relation evolutions starting from
/// `schema`. Each step randomly renames a relation, renames an attribute,
/// or horizontally splits a relation on a boolean-ish predicate (the
/// Figure 6 Local/Foreign pattern).
pub fn evolution_chain(schema: &Schema, seed: u64, steps: usize) -> Vec<EvolutionStep> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(steps);
    let mut cur = schema.clone();
    for step in 0..steps {
        let names: Vec<String> = cur
            .elements()
            .filter(|e| matches!(e.kind, ElementKind::Relation))
            .map(|e| e.name.clone())
            .collect();
        if names.is_empty() {
            break;
        }
        let victim = names[rng.gen_range(0..names.len())].clone();
        let elem = cur.element(&victim).expect("chosen from names").clone();
        let kind = rng.gen_range(0..3);
        let next = match kind {
            0 => rename_relation(&cur, &elem, step),
            1 if elem.attributes.len() > 1 => rename_attribute(&cur, &elem, step, &mut rng),
            _ => split_relation(&cur, &elem, step),
        };
        cur = next.schema.clone();
        out.push(next);
    }
    out
}

fn clone_without(schema: &Schema, name: &str, new_name: &str) -> Schema {
    let mut s = Schema::new(new_name.to_string());
    for e in schema.elements() {
        if e.name != name {
            s.add_element(e.clone()).expect("copy of valid schema");
        }
    }
    s
}

fn identity_views(
    schema: &Schema,
    except: &str,
    base_name: &str,
    view_name: &str,
) -> ViewSet {
    let mut vs = ViewSet::new(base_name.to_string(), view_name.to_string());
    for e in schema.elements() {
        if e.name != except {
            vs.push(ViewDef::new(e.name.clone(), Expr::base(e.name.clone())));
        }
    }
    vs
}

fn rename_relation(cur: &Schema, elem: &Element, step: usize) -> EvolutionStep {
    let new_rel = format!("{}_v{step}", elem.name);
    let new_schema_name = format!("{}_s{step}", cur.name);
    let mut schema = clone_without(cur, &elem.name, &new_schema_name);
    schema
        .add_element(Element { name: new_rel.clone(), ..elem.clone() })
        .expect("renamed relation unique");
    let mut migration = identity_views(cur, &elem.name, &cur.name, &new_schema_name);
    migration.push(ViewDef::new(new_rel.clone(), Expr::base(elem.name.clone())));
    let mut old_over_new = identity_views(cur, &elem.name, &new_schema_name, &cur.name);
    old_over_new.push(ViewDef::new(elem.name.clone(), Expr::base(new_rel.clone())));
    EvolutionStep {
        schema,
        migration,
        old_over_new,
        description: format!("rename relation {} -> {new_rel}", elem.name),
    }
}

fn rename_attribute(
    cur: &Schema,
    elem: &Element,
    step: usize,
    rng: &mut SmallRng,
) -> EvolutionStep {
    let idx = rng.gen_range(1..elem.attributes.len()); // keep the key column
    let old_attr = elem.attributes[idx].name.clone();
    let new_attr = format!("{old_attr}_v{step}");
    let new_schema_name = format!("{}_s{step}", cur.name);
    let mut new_elem = elem.clone();
    new_elem.attributes[idx].name = new_attr.clone();
    let mut schema = clone_without(cur, &elem.name, &new_schema_name);
    schema.add_element(new_elem).expect("same relation name");
    let mut migration = identity_views(cur, &elem.name, &cur.name, &new_schema_name);
    migration.push(ViewDef::new(
        elem.name.clone(),
        Expr::base(elem.name.clone()).rename(&[(old_attr.as_str(), new_attr.as_str())]),
    ));
    let mut old_over_new = identity_views(cur, &elem.name, &new_schema_name, &cur.name);
    old_over_new.push(ViewDef::new(
        elem.name.clone(),
        Expr::base(elem.name.clone()).rename(&[(new_attr.as_str(), old_attr.as_str())]),
    ));
    EvolutionStep {
        schema,
        migration,
        old_over_new,
        description: format!("rename {}.{old_attr} -> {new_attr}", elem.name),
    }
}

/// Horizontal split on the key parity — the Figure 6 Local/Foreign shape:
/// `R = R_even ∪ R_odd` with a `part` marker column discriminating.
fn split_relation(cur: &Schema, elem: &Element, step: usize) -> EvolutionStep {
    let key = elem.attributes.first().expect("non-empty relation").name.clone();
    let new_schema_name = format!("{}_s{step}", cur.name);
    let a_name = format!("{}A{step}", elem.name);
    let b_name = format!("{}B{step}", elem.name);
    let part_col = format!("part{step}");
    let split_elem = |name: &str| Element {
        name: name.to_string(),
        kind: ElementKind::Relation,
        attributes: {
            let mut v = elem.attributes.clone();
            v.push(Attribute::new(part_col.clone(), DataType::Text));
            v
        },
    };
    let mut schema = clone_without(cur, &elem.name, &new_schema_name);
    schema.add_element(split_elem(&a_name)).expect("unique");
    schema.add_element(split_elem(&b_name)).expect("unique");

    // migration: partition on key < pivot (pivot = 2^62 keeps everything
    // in A for generated non-negative keys of moderate size; use modulo 2
    // via extend? algebra lacks modulo — use comparison against a pivot)
    let pivot = 5i64;
    let below = Predicate::Cmp {
        op: mm_expr::CmpOp::Lt,
        left: mm_expr::Scalar::col(&key),
        right: mm_expr::Scalar::lit(pivot),
    };
    let mut migration = identity_views(cur, &elem.name, &cur.name, &new_schema_name);
    migration.push(ViewDef::new(
        a_name.clone(),
        Expr::base(elem.name.clone())
            .select(below.clone())
            .extend(&part_col, mm_expr::Scalar::lit("A")),
    ));
    migration.push(ViewDef::new(
        b_name.clone(),
        Expr::base(elem.name.clone())
            .select(below.clone().negate())
            .extend(&part_col, mm_expr::Scalar::lit("B")),
    ));
    let cols: Vec<String> = elem.attributes.iter().map(|a| a.name.clone()).collect();
    let mut old_over_new = identity_views(cur, &elem.name, &new_schema_name, &cur.name);
    old_over_new.push(ViewDef::new(
        elem.name.clone(),
        Expr::base(a_name.clone())
            .project_owned(cols.clone())
            .union(Expr::base(b_name.clone()).project_owned(cols)),
    ));
    EvolutionStep {
        schema,
        migration,
        old_over_new,
        description: format!("split {} into {a_name}/{b_name}", elem.name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::populate_relational;
    use crate::schemas::relational_schema;
    use mm_compose::compose_views;
    use mm_eval::{eval, materialize_views};

    #[test]
    fn chain_preserves_view_semantics_under_repair() {
        let s0 = relational_schema(21, 3, 3);
        let db0 = populate_relational(&s0, 7, 10);
        // a simple view over the first relation
        let first = s0.element_names().next().unwrap().to_string();
        let cols: Vec<String> = s0
            .element(&first)
            .unwrap()
            .attributes
            .iter()
            .take(2)
            .map(|a| a.name.clone())
            .collect();
        let mut v = ViewSet::new(s0.name.clone(), "V");
        v.push(ViewDef::new("TheView", Expr::base(first.clone()).project_owned(cols)));
        let before = eval(&v.view("TheView").unwrap().expr, &s0, &db0).unwrap();

        let steps = evolution_chain(&s0, 3, 4);
        assert!(!steps.is_empty());
        // migrate the data and repair the view through every step
        let mut schema = s0.clone();
        let mut db = db0;
        let mut views = v;
        for step in &steps {
            db = materialize_views(&step.migration, &schema, &db).unwrap();
            views = compose_views(&step.old_over_new, &views);
            schema = step.schema.clone();
        }
        let after = eval(&views.view("TheView").unwrap().expr, &schema, &db).unwrap();
        assert!(before.set_eq(&after), "view changed along the chain");
    }

    #[test]
    fn chain_is_deterministic() {
        let s0 = relational_schema(21, 3, 3);
        let a = evolution_chain(&s0, 5, 3);
        let b = evolution_chain(&s0, 5, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.description, y.description);
            assert_eq!(x.schema, y.schema);
        }
    }
}
