//! Schema generators.

// Fixture generators: schemas/data/tgd sets are built from static,
// known-good literals; `expect`/`unwrap` failures are generator bugs,
// not runtime failure modes (DESIGN.md §7).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mm_metamodel::{Attribute, DataType, Element, ElementKind, ForeignKey, Key, Schema};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const WORDS: &[&str] = &[
    "order", "customer", "invoice", "line", "item", "product", "supplier", "region",
    "employee", "department", "account", "payment", "shipment", "address", "contact",
    "price", "quantity", "status", "date", "name", "code", "total", "city", "country",
    "phone", "email", "category", "stock", "branch", "budget",
];

fn word(rng: &mut SmallRng) -> &'static str {
    WORDS[rng.gen_range(0..WORDS.len())]
}

fn attr_name(rng: &mut SmallRng, used: &mut Vec<String>) -> String {
    loop {
        let n = if rng.gen_bool(0.5) {
            format!("{}_{}", word(rng), word(rng))
        } else {
            word(rng).to_string()
        };
        if !used.contains(&n) {
            used.push(n.clone());
            return n;
        }
    }
}

fn data_type(rng: &mut SmallRng) -> DataType {
    DataType::CONCRETE[rng.gen_range(0..DataType::CONCRETE.len())]
}

/// A flat relational schema with `relations` tables of `attrs_per` columns
/// each (first column is an Int key), plus random single-column foreign
/// keys between consecutive tables.
pub fn relational_schema(seed: u64, relations: usize, attrs_per: usize) -> Schema {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut schema = Schema::new(format!("rel{seed}"));
    let mut names: Vec<String> = Vec::new();
    for i in 0..relations {
        let rel_name = format!("{}_{}", word(&mut rng), i);
        let mut used = Vec::new();
        let mut attrs = vec![Attribute::new(format!("{rel_name}_id"), DataType::Int)];
        for _ in 1..attrs_per.max(1) {
            attrs.push(Attribute::new(attr_name(&mut rng, &mut used), data_type(&mut rng)));
        }
        schema
            .add_element(Element {
                name: rel_name.clone(),
                kind: ElementKind::Relation,
                attributes: attrs,
            })
            .expect("generated names unique");
        schema
            .add_constraint(mm_metamodel::Constraint::Key(Key {
                element: rel_name.clone(),
                attributes: vec![format!("{rel_name}_id")],
            }))
            .expect("key over own column");
        names.push(rel_name);
    }
    schema
}

/// A snowflake schema: one fact relation referencing `dims` dimension
/// relations, each with `attrs_per` attributes. The fact's key column is
/// `<fact>_id`; each dimension has `<dim>_id` and an FK from the fact.
pub fn snowflake_schema(seed: u64, dims: usize, attrs_per: usize) -> Schema {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut schema = Schema::new(format!("snow{seed}"));
    // dimensions first so FKs validate
    let mut dim_names = Vec::with_capacity(dims);
    for i in 0..dims {
        let name = format!("dim{i}_{}", word(&mut rng));
        let mut used = Vec::new();
        let mut attrs = vec![Attribute::new(format!("{name}_id"), DataType::Int)];
        for _ in 0..attrs_per {
            attrs.push(Attribute::new(attr_name(&mut rng, &mut used), data_type(&mut rng)));
        }
        schema
            .add_element(Element {
                name: name.clone(),
                kind: ElementKind::Relation,
                attributes: attrs,
            })
            .expect("unique");
        dim_names.push(name);
    }
    let mut fact_attrs = vec![Attribute::new("fact_id", DataType::Int)];
    let mut used = Vec::new();
    for d in &dim_names {
        fact_attrs.push(Attribute::new(format!("{d}_ref"), DataType::Int));
    }
    for _ in 0..attrs_per {
        fact_attrs.push(Attribute::new(attr_name(&mut rng, &mut used), data_type(&mut rng)));
    }
    schema
        .add_element(Element {
            name: "fact".into(),
            kind: ElementKind::Relation,
            attributes: fact_attrs,
        })
        .expect("unique");
    schema
        .add_constraint(mm_metamodel::Constraint::Key(Key {
            element: "fact".into(),
            attributes: vec!["fact_id".into()],
        }))
        .expect("valid key");
    for d in &dim_names {
        schema
            .add_constraint(mm_metamodel::Constraint::Key(Key {
                element: d.clone(),
                attributes: vec![format!("{d}_id")],
            }))
            .expect("valid key");
        schema
            .add_constraint(mm_metamodel::Constraint::ForeignKey(ForeignKey {
                from: "fact".into(),
                from_attrs: vec![format!("{d}_ref")],
                to: d.clone(),
                to_attrs: vec![format!("{d}_id")],
            }))
            .expect("valid fk");
    }
    schema
}

/// An ER schema with one hierarchy: a root entity with `depth` levels of
/// `fanout` subtypes each; every type adds `attrs_per` own attributes.
/// The root declares an Int key `Id`.
pub fn er_hierarchy(seed: u64, depth: usize, fanout: usize, attrs_per: usize) -> Schema {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut schema = Schema::new(format!("er{seed}"));
    let mut root_attrs = vec![Attribute::new("Id", DataType::Int)];
    let mut used = vec!["Id".to_string()];
    for _ in 0..attrs_per {
        root_attrs.push(Attribute::new(attr_name(&mut rng, &mut used), data_type(&mut rng)));
    }
    schema
        .add_element(Element {
            name: "Root".into(),
            kind: ElementKind::EntityType { parent: None },
            attributes: root_attrs,
        })
        .expect("unique");
    schema
        .add_constraint(mm_metamodel::Constraint::Key(Key {
            element: "Root".into(),
            attributes: vec!["Id".into()],
        }))
        .expect("valid key");
    let mut level = vec!["Root".to_string()];
    let mut counter = 0usize;
    for _ in 0..depth {
        let mut next = Vec::new();
        for parent in &level {
            for _ in 0..fanout {
                let name = format!("T{counter}");
                counter += 1;
                let mut attrs = Vec::new();
                for _ in 0..attrs_per.max(1) {
                    attrs.push(Attribute::new(
                        attr_name(&mut rng, &mut used),
                        data_type(&mut rng),
                    ));
                }
                schema
                    .add_element(Element {
                        name: name.clone(),
                        kind: ElementKind::EntityType { parent: Some(parent.clone()) },
                        attributes: attrs,
                    })
                    .expect("unique");
                next.push(name);
            }
        }
        level = next;
    }
    schema
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_metamodel::Metamodel;

    #[test]
    fn relational_generator_is_deterministic_and_conformant() {
        let a = relational_schema(7, 5, 4);
        let b = relational_schema(7, 5, 4);
        assert_eq!(a, b);
        assert!(Metamodel::Relational.conforms(&a));
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn snowflake_has_fact_and_fk_per_dim() {
        let s = snowflake_schema(3, 4, 3);
        assert!(s.element("fact").is_some());
        let fks = s
            .constraints
            .iter()
            .filter(|c| matches!(c, mm_metamodel::Constraint::ForeignKey(_)))
            .count();
        assert_eq!(fks, 4);
    }

    #[test]
    fn er_hierarchy_size_and_profile() {
        let s = er_hierarchy(1, 2, 2, 2);
        // 1 root + 2 + 4 = 7 types
        assert_eq!(s.len(), 7);
        assert!(Metamodel::EntityRelationship.conforms(&s));
        assert_eq!(s.subtree("Root").len(), 7);
        // every type inherits Id
        for ty in s.subtree("Root") {
            let attrs = s.all_attributes(ty).unwrap();
            assert_eq!(attrs[0].name, "Id");
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(relational_schema(1, 3, 3), relational_schema(2, 3, 3));
    }
}
