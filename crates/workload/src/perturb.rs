//! Schema perturbation with ground truth — the matcher's evaluation
//! harness (EQ3).
//!
//! A perturbed copy renames elements and attributes through abbreviation,
//! synonym substitution, case-convention changes, and suffix noise, drops
//! some attributes, and adds distractors. The generator returns the exact
//! attribute-level ground-truth pairs, so precision/recall and top-k hit
//! rates are measurable.

use mm_expr::PathRef;
use mm_metamodel::{Attribute, DataType, Element, Schema};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Ground truth of a perturbation: pairs of (original path, perturbed
/// path) that a perfect matcher should find.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    pub pairs: Vec<(PathRef, PathRef)>,
}

impl GroundTruth {
    pub fn contains(&self, source: &PathRef, target: &PathRef) -> bool {
        self.pairs.iter().any(|(s, t)| s == source && t == target)
    }

    /// The expected target for a source path.
    pub fn expected(&self, source: &PathRef) -> Option<&PathRef> {
        self.pairs.iter().find(|(s, _)| s == source).map(|(_, t)| t)
    }

    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

const SYNONYM_PAIRS: &[(&str, &str)] = &[
    ("customer", "client"),
    ("employee", "staff"),
    ("id", "key"),
    ("name", "title"),
    ("address", "addr"),
    ("quantity", "qty"),
    ("department", "dept"),
    ("phone", "tel"),
];

fn perturb_name(rng: &mut SmallRng, name: &str, strength: f64) -> String {
    let mut out = name.to_string();
    // synonym substitution on word parts
    for (a, b) in SYNONYM_PAIRS {
        if rng.gen_bool(strength) {
            if out.contains(a) {
                out = out.replace(a, b);
            } else if out.contains(b) {
                out = out.replace(b, a);
            }
        }
    }
    // abbreviation: drop vowels from the tail
    if rng.gen_bool(strength * 0.6) && out.len() > 5 {
        let head: String = out.chars().take(3).collect();
        let tail: String =
            out.chars().skip(3).filter(|c| !"aeiou".contains(*c)).collect();
        out = format!("{head}{tail}");
    }
    // case convention flip: snake_case <-> camelCase
    if rng.gen_bool(strength * 0.8) {
        if out.contains('_') {
            let mut camel = String::new();
            let mut upper_next = false;
            for ch in out.chars() {
                if ch == '_' {
                    upper_next = true;
                } else if upper_next {
                    camel.extend(ch.to_uppercase());
                    upper_next = false;
                } else {
                    camel.push(ch);
                }
            }
            out = camel;
        } else {
            out = out.to_uppercase();
        }
    }
    // suffix noise
    if rng.gen_bool(strength * 0.3) {
        out.push('2');
    }
    out
}

/// Perturb `schema` into a renamed copy. `strength` in `[0,1]` scales how
/// aggressive the renames are; `drop_prob` removes attributes (no ground
/// truth emitted for them); `add_prob` inserts distractor attributes.
pub fn perturb_schema(
    schema: &Schema,
    seed: u64,
    strength: f64,
    drop_prob: f64,
    add_prob: f64,
) -> (Schema, GroundTruth) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Schema::new(format!("{}_perturbed", schema.name));
    let mut truth = GroundTruth::default();
    let mut distractor = 0usize;
    for e in schema.elements() {
        let new_elem_name = perturb_name(&mut rng, &e.name, strength);
        let mut attrs = Vec::new();
        for a in &e.attributes {
            if rng.gen_bool(drop_prob) {
                continue;
            }
            let new_attr = perturb_name(&mut rng, &a.name, strength);
            if attrs.iter().any(|x: &Attribute| x.name == new_attr) {
                continue; // collision after rename: treat as dropped
            }
            attrs.push(Attribute { name: new_attr.clone(), ty: a.ty, nullable: a.nullable });
            truth.pairs.push((
                PathRef::attr(e.name.clone(), a.name.clone()),
                PathRef::attr(new_elem_name.clone(), new_attr),
            ));
        }
        if rng.gen_bool(add_prob) {
            attrs.push(Attribute::new(format!("extra_{distractor}"), DataType::Text));
            distractor += 1;
        }
        // keep the element kind structure intact for relations; entity
        // hierarchies keep their (renamed) parents
        let kind = match &e.kind {
            mm_metamodel::ElementKind::EntityType { parent: Some(p) } => {
                // the parent was emitted earlier with its perturbed name;
                // recover it from the truth table's element renames
                let renamed = truth
                    .pairs
                    .iter()
                    .find(|(s, _)| &s.element == p)
                    .map(|(_, t)| t.element.clone())
                    .unwrap_or_else(|| p.clone());
                mm_metamodel::ElementKind::EntityType { parent: Some(renamed) }
            }
            other => other.clone(),
        };
        if out
            .add_element(Element { name: new_elem_name.clone(), kind, attributes: attrs })
            .is_err()
        {
            // element-name collision: drop this element's ground truth
            truth.pairs.retain(|(_, t)| t.element != new_elem_name);
            continue;
        }
        truth
            .pairs
            .push((PathRef::element(e.name.clone()), PathRef::element(new_elem_name)));
    }
    (out, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::relational_schema;

    #[test]
    fn zero_strength_keeps_names() {
        let s = relational_schema(3, 3, 4);
        let (p, truth) = perturb_schema(&s, 1, 0.0, 0.0, 0.0);
        assert_eq!(p.len(), s.len());
        // all names identical
        for (src, tgt) in &truth.pairs {
            assert_eq!(src.element, tgt.element);
            assert_eq!(src.attribute, tgt.attribute);
        }
    }

    #[test]
    fn strong_perturbation_changes_names_but_keeps_truth() {
        let s = relational_schema(3, 3, 4);
        let (p, truth) = perturb_schema(&s, 2, 0.9, 0.0, 0.0);
        assert!(!truth.is_empty());
        let changed = truth
            .pairs
            .iter()
            .filter(|(a, b)| a.attribute != b.attribute || a.element != b.element)
            .count();
        assert!(changed > 0, "nothing was renamed");
        // every truth target exists in the perturbed schema
        for (_, tgt) in &truth.pairs {
            let elem = p.element(&tgt.element).expect("target element exists");
            if let Some(a) = &tgt.attribute {
                assert!(elem.attribute(a).is_some(), "{tgt} missing");
            }
        }
    }

    #[test]
    fn drops_shrink_ground_truth() {
        let s = relational_schema(3, 4, 6);
        let (_, full) = perturb_schema(&s, 5, 0.3, 0.0, 0.0);
        let (_, dropped) = perturb_schema(&s, 5, 0.3, 0.5, 0.0);
        assert!(dropped.len() < full.len());
    }

    #[test]
    fn deterministic() {
        let s = relational_schema(3, 3, 3);
        let (p1, t1) = perturb_schema(&s, 9, 0.5, 0.1, 0.2);
        let (p2, t2) = perturb_schema(&s, 9, 0.5, 0.1, 0.2);
        assert_eq!(p1, p2);
        assert_eq!(t1.pairs, t2.pairs);
    }
}
