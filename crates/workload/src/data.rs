//! Instance generators: populate schemas with consistent synthetic data.

// Fixture generators: schemas/data/tgd sets are built from static,
// known-good literals; `expect`/`unwrap` failures are generator bugs,
// not runtime failure modes (DESIGN.md §7).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mm_instance::{Database, Tuple, Value};
use mm_metamodel::{Constraint, DataType, ElementKind, Schema};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn value_of(rng: &mut SmallRng, ty: DataType, key_hint: Option<i64>) -> Value {
    match ty {
        DataType::Int => Value::Int(key_hint.unwrap_or_else(|| rng.gen_range(0..10_000))),
        DataType::Double => Value::Double((rng.gen_range(0..1_000_000) as f64) / 100.0),
        DataType::Bool => Value::Bool(rng.gen_bool(0.5)),
        DataType::Text => Value::text(format!("s{}", rng.gen_range(0..100_000))),
        DataType::Date => Value::Date(rng.gen_range(10_000..20_000)),
        DataType::Any => Value::Int(rng.gen_range(0..10_000)),
    }
}

/// Populate a relational schema with `rows_per` rows per relation.
/// Key columns (per declared keys) receive sequential values; foreign-key
/// columns reference existing parent keys, so the instance validates.
pub fn populate_relational(schema: &Schema, seed: u64, rows_per: usize) -> Database {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::empty_of(schema);
    // key column per relation
    let mut key_col: HashMap<&str, String> = HashMap::new();
    for e in schema.elements() {
        let k = schema
            .declared_key(&e.name)
            .map(|k| k[0].clone())
            .or_else(|| e.attributes.first().map(|a| a.name.clone()));
        if let Some(k) = k {
            key_col.insert(e.name.as_str(), k);
        }
    }
    // FK columns: (relation, column) -> parent relation
    let mut fk_of: HashMap<(String, String), String> = HashMap::new();
    for c in &schema.constraints {
        if let Constraint::ForeignKey(fk) = c {
            if fk.from_attrs.len() == 1 {
                fk_of.insert((fk.from.clone(), fk.from_attrs[0].clone()), fk.to.clone());
            }
        }
    }
    // populate FK targets (non-referencing relations) first: iterate twice,
    // inserting relations without outgoing FKs first
    let mut order: Vec<&str> = schema
        .elements()
        .filter(|e| matches!(e.kind, ElementKind::Relation))
        .map(|e| e.name.as_str())
        .collect();
    order.sort_by_key(|n| {
        fk_of.keys().filter(|(from, _)| from == n).count() // leaves first
    });
    for name in order {
        let elem = schema.element(name).expect("enumerated");
        for i in 0..rows_per {
            let mut vals = Vec::with_capacity(elem.attributes.len());
            for a in &elem.attributes {
                let v = if key_col.get(name).map(String::as_str) == Some(a.name.as_str()) {
                    Value::Int(i as i64)
                } else if let Some(parent) = fk_of.get(&(name.to_string(), a.name.clone())) {
                    // reference an existing parent key
                    let parent_rows = db.relation(parent).map(|r| r.len()).unwrap_or(0);
                    if parent_rows == 0 {
                        Value::Int(0)
                    } else {
                        Value::Int(rng.gen_range(0..parent_rows) as i64)
                    }
                } else {
                    value_of(&mut rng, a.ty, None)
                };
                vals.push(v);
            }
            db.insert(name, Tuple::new(vals));
        }
    }
    db
}

/// Populate an ER hierarchy schema with `per_type` entities of each type,
/// stored canonically (each entity in its most-derived type's set),
/// globally unique Int keys in the first key position.
pub fn populate_er(schema: &Schema, seed: u64, per_type: usize) -> Database {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::empty_of(schema);
    let mut next_key: i64 = 0;
    for e in schema.elements() {
        if !e.is_entity_type() {
            continue;
        }
        let attrs = schema.all_attributes(&e.name).expect("entity attrs");
        for _ in 0..per_type {
            let mut vals = Vec::with_capacity(attrs.len());
            for (i, a) in attrs.iter().enumerate() {
                let v = if i == 0 {
                    let k = next_key;
                    next_key += 1;
                    value_of(&mut rng, a.ty, Some(k))
                } else {
                    value_of(&mut rng, a.ty, None)
                };
                vals.push(v);
            }
            db.insert_entity(&e.name, &e.name, vals);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::{er_hierarchy, snowflake_schema};
    use mm_instance::validate;

    #[test]
    fn snowflake_instance_validates() {
        let s = snowflake_schema(11, 3, 3);
        let db = populate_relational(&s, 42, 20);
        let violations = validate(&s, &db);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(db.relation("fact").unwrap().len(), 20);
    }

    #[test]
    fn er_instance_validates_and_is_canonical() {
        let s = er_hierarchy(5, 2, 2, 2);
        let db = populate_er(&s, 9, 5);
        let violations = validate(&s, &db);
        assert!(violations.is_empty(), "{violations:?}");
        // every set holds exactly its own most-derived entities
        for ty in s.subtree("Root") {
            let rel = db.relation(ty).unwrap();
            assert_eq!(rel.len(), 5);
            for t in rel.iter() {
                assert_eq!(t.values()[0], Value::text(ty));
            }
        }
    }

    #[test]
    fn population_is_deterministic() {
        let s = snowflake_schema(11, 2, 2);
        assert_eq!(populate_relational(&s, 1, 10), populate_relational(&s, 1, 10));
    }
}
