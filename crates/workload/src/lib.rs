//! Synthetic workload generators for the benchmark harness and property
//! tests.
//!
//! The paper has no public testbed; these generators produce the schema
//! and data families its scenarios assume (see DESIGN.md §"Substitutions"):
//! snowflake schemas (Figure 4 / data warehousing), inheritance
//! hierarchies (Figures 2–3 / ADO.NET), perturbed schema copies with
//! ground-truth correspondences (matcher evaluation), tgd chains with
//! controllable producer fan-out (composition blowup), and evolution
//! chains (Figure 5). Everything is seeded and deterministic.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod data;
pub mod evolution;
pub mod faults;
pub mod perturb;
pub mod scale;
pub mod schemas;
pub mod skew;
pub mod tgds;

pub use data::{populate_er, populate_relational};
pub use evolution::{evolution_chain, EvolutionStep};
pub use faults::{
    bit_flip, cancel_after, divergent_tgds, exponential_compose, mutate_bytes,
    oversized_instance, quadratic_join, repo_ops, splice, terminating_chain, truncate_at,
    unbound_variable_sotgd, RepoOp,
};
pub use perturb::{perturb_schema, GroundTruth};
pub use scale::{
    evolution_scale, inheritance_scale, scale_scenarios, snowflake_scale, ScaleScenario,
};
pub use schemas::{er_hierarchy, relational_schema, snowflake_schema};
pub use skew::{correlated_join, fat_hub_join, zipf_join};
pub use tgds::{binary_schema, composition_chain, copy_tgds};
