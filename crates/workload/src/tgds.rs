//! tgd-mapping generators for the composition benchmarks (EQ1, EQ7).

// Fixture generators: schemas/data/tgd sets are built from static,
// known-good literals; `expect`/`unwrap` failures are generator bugs,
// not runtime failure modes (DESIGN.md §7).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mm_expr::{Atom, Tgd};
use mm_metamodel::{Attribute, DataType, Element, ElementKind, Schema};

/// A schema of `n` binary relations `R0..Rn-1`.
pub fn binary_schema(name: &str, prefix: &str, n: usize) -> Schema {
    let mut s = Schema::new(name);
    for i in 0..n {
        s.add_element(Element {
            name: format!("{prefix}{i}"),
            kind: ElementKind::Relation,
            attributes: vec![
                Attribute::new("a", DataType::Int),
                Attribute::new("b", DataType::Int),
            ],
        })
        .expect("unique names");
    }
    s
}

/// Simple copy tgds `Ai(x,y) -> Bi(x,y)` for `n` relations.
pub fn copy_tgds(from_prefix: &str, to_prefix: &str, n: usize) -> Vec<Tgd> {
    (0..n)
        .map(|i| {
            Tgd::new(
                vec![Atom::vars(format!("{from_prefix}{i}"), &["x", "y"])],
                vec![Atom::vars(format!("{to_prefix}{i}"), &["x", "y"])],
            )
        })
        .collect()
}

/// A composition workload engineered to exercise the exponential splice:
///
/// * `m12`: `producers` tgds each producing the single mid relation `M0`
///   from distinct source relations (`S0..`), each head introducing an
///   existential;
/// * `m23`: one tgd whose body joins `body_atoms` copies of `M0` into the
///   target `T0`.
///
/// The spliced SO-tgd has `producers ^ body_atoms` clauses.
pub fn composition_chain(
    producers: usize,
    body_atoms: usize,
) -> (Schema, Schema, Schema, Vec<Tgd>, Vec<Tgd>) {
    let s1 = binary_schema("S1", "S", producers);
    let s2 = binary_schema("S2", "M", 1);
    let mut s3 = Schema::new("S3");
    s3.add_element(Element {
        name: "T0".into(),
        kind: ElementKind::Relation,
        attributes: (0..=body_atoms)
            .map(|i| Attribute::new(format!("c{i}"), DataType::Int))
            .collect(),
    })
    .expect("single element");

    let m12: Vec<Tgd> = (0..producers)
        .map(|i| {
            // Si(x, y) -> exists z . M0(x, z)
            Tgd::new(
                vec![Atom::vars(format!("S{i}"), &["x", "y"])],
                vec![Atom::vars("M0", &["x", "z"])],
            )
        })
        .collect();

    // M0(v0,v1) & M0(v1,v2) & ... -> T0(v0..vk)
    let body: Vec<Atom> = (0..body_atoms)
        .map(|i| {
            Atom::vars(
                "M0",
                &[format!("v{i}"), format!("v{}", i + 1)]
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let head_vars: Vec<String> = (0..=body_atoms).map(|i| format!("v{i}")).collect();
    let m23 = vec![Tgd::new(
        body,
        vec![Atom::vars("T0", &head_vars.iter().map(String::as_str).collect::<Vec<_>>())],
    )];

    (s1, s2, s3, m12, m23)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_compose::{compose_st_tgds, DEFAULT_CLAUSE_BOUND};

    #[test]
    fn copy_tgds_validate() {
        let src = binary_schema("A", "A", 3);
        let tgt = binary_schema("B", "B", 3);
        for t in copy_tgds("A", "B", 3) {
            t.validate_st(&src, &tgt).unwrap();
        }
    }

    #[test]
    fn composition_chain_clause_count_is_exponential() {
        for (p, b) in [(2usize, 2usize), (2, 3), (3, 2), (3, 3)] {
            let (_, _, _, m12, m23) = composition_chain(p, b);
            let so = compose_st_tgds(&m12, &m23, DEFAULT_CLAUSE_BOUND).unwrap();
            assert_eq!(so.clauses.len(), p.pow(b as u32), "producers={p} atoms={b}");
        }
    }

    #[test]
    fn chain_mappings_validate_against_their_schemas() {
        let (s1, s2, s3, m12, m23) = composition_chain(3, 2);
        for t in &m12 {
            t.validate_st(&s1, &s2).unwrap();
        }
        for t in &m23 {
            t.validate_st(&s2, &s3).unwrap();
        }
    }
}
