//! Fault injection: adversarial inputs for the governance test suite.
//!
//! Generators for the ways a model-management operator can run away or
//! be fed garbage: divergent tgd sets whose chase never closes,
//! mapping chains whose composition is exponential, malformed SO-tgds
//! and oversized instances, and pre-armed cancellation tokens for
//! mid-operation aborts. `tests/governance.rs` drives every engine
//! operator with these and asserts a typed error or a recorded
//! degradation — never a panic, never an unbounded run.

use crate::tgds::{binary_schema, composition_chain};
use mm_expr::{Atom, SoClause, SoTgd, Term, Tgd};
use mm_guard::CancelToken;
use mm_instance::{Database, Tuple, Value};
use mm_metamodel::Schema;

/// A divergent general-chase input: `R0(x, y) → ∃z . R0(y, z)` over a
/// nonempty `R0`. Every round fires with a fresh labeled null in second
/// position, so the fixpoint never closes and only a round cap (or
/// budget) stops the chase.
pub fn divergent_tgds() -> (Schema, Database, Vec<Tgd>) {
    let schema = binary_schema("Loop", "R", 1);
    let mut db = Database::empty_of(&schema);
    db.insert("R0", Tuple::from([Value::Int(0), Value::Int(1)]));
    let tgds = vec![Tgd::new(
        vec![Atom::vars("R0", &["x", "y"])],
        vec![Atom::vars("R0", &["y", "z"])],
    )];
    (schema, db, tgds)
}

/// A weakly acyclic (terminating) general-chase input: a copy chain
/// `R0 → R1 → … → R{n-1}` with one seed tuple. The chase closes after
/// `n` rounds, firing once per hop.
pub fn terminating_chain(n: usize) -> (Schema, Database, Vec<Tgd>) {
    let schema = binary_schema("Chain", "R", n);
    let mut db = Database::empty_of(&schema);
    db.insert("R0", Tuple::from([Value::Int(0), Value::Int(1)]));
    let tgds = (0..n.saturating_sub(1))
        .map(|i| {
            Tgd::new(
                vec![Atom::vars(format!("R{i}"), &["x", "y"])],
                vec![Atom::vars(format!("R{}", i + 1), &["x", "y"])],
            )
        })
        .collect();
    (schema, db, tgds)
}

/// A composition input engineered to splice `producers ^ body_atoms`
/// clauses — exponential in the second mapping's body width. Feed a
/// clause bound below that count to trip `OutputTooLarge`, or a clause
/// budget to trip `BudgetExhausted`.
pub fn exponential_compose(
    producers: usize,
    body_atoms: usize,
) -> (Schema, Schema, Schema, Vec<Tgd>, Vec<Tgd>) {
    composition_chain(producers, body_atoms)
}

/// A malformed SO-tgd: the head of its single clause references a
/// variable the body never binds. Applying it must surface
/// `ExecError::Malformed`, not a panic.
pub fn unbound_variable_sotgd() -> (Schema, Schema, SoTgd) {
    let src = binary_schema("Src", "A", 1);
    let tgt = binary_schema("Tgt", "B", 1);
    let so = SoTgd {
        functions: Vec::new(),
        clauses: vec![SoClause {
            body: vec![Atom::vars("A0", &["x", "y"])],
            eqs: Vec::new(),
            head: vec![Atom {
                relation: "B0".into(),
                terms: vec![Term::var("x"), Term::var("never_bound")],
            }],
        }],
    };
    (src, tgt, so)
}

/// An oversized instance: `rows` tuples in the single relation `R0` of a
/// binary schema. Use with a row budget well below `rows` to verify that
/// materializing operators stop early instead of buffering everything.
pub fn oversized_instance(rows: usize) -> (Schema, Database) {
    let schema = binary_schema("Big", "R", 1);
    let mut db = Database::empty_of(&schema);
    for i in 0..rows {
        db.insert("R0", Tuple::from([Value::Int(i as i64), Value::Int((i + 1) as i64)]));
    }
    (schema, db)
}

/// A self-join workload whose homomorphism search is quadratic in `rows`:
/// `R0(x, y) & R0(y, z) → ∃w . T0(x, w)` over a dense `R0`. Good for
/// tripping step budgets inside the join loops rather than at the rim.
pub fn quadratic_join(rows: usize) -> (Schema, Schema, Database, Vec<Tgd>) {
    let src = binary_schema("QSrc", "R", 1);
    let tgt = binary_schema("QTgt", "T", 1);
    let mut db = Database::empty_of(&src);
    for i in 0..rows {
        // a clique-ish graph: everything points at everything mod a band
        for j in 0..3usize {
            db.insert(
                "R0",
                Tuple::from([Value::Int(i as i64), Value::Int(((i + j) % rows) as i64)]),
            );
        }
    }
    let tgds = vec![Tgd::new(
        vec![Atom::vars("R0", &["x", "y"]), Atom::vars("R0", &["y", "z"])],
        vec![Atom::vars("T0", &["x", "w"])],
    )];
    (src, tgt, db, tgds)
}

/// A cancellation token pre-armed to trip after `polls` governor
/// safepoints — deterministic mid-operation cancellation without
/// threads or timing.
pub fn cancel_after(polls: u64) -> CancelToken {
    let token = CancelToken::new();
    token.trip_after_polls(polls);
    token
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_chase::{chase_general_governed, ChaseOutcome};
    use mm_guard::ExecBudget;

    #[test]
    fn divergent_set_never_closes_under_round_cap() {
        let (_, mut db, tgds) = divergent_tgds();
        let err = chase_general_governed(
            &mut db,
            &tgds,
            &[],
            &ExecBudget::unbounded().with_rounds(8),
        )
        .unwrap_err();
        assert!(err.error.is_resource(), "{err}");
    }

    #[test]
    fn terminating_chain_closes() {
        let (_, mut db, tgds) = terminating_chain(4);
        let out = chase_general_governed(
            &mut db,
            &tgds,
            &[],
            &ExecBudget::unbounded().with_rounds(64),
        )
        .unwrap();
        assert!(matches!(out, ChaseOutcome::Done(_)));
        assert_eq!(db.relation("R3").unwrap().len(), 1);
    }

    #[test]
    fn oversized_instance_has_requested_rows() {
        let (_, db) = oversized_instance(100);
        assert_eq!(db.relation("R0").unwrap().len(), 100);
    }

    #[test]
    fn cancel_after_trips_at_the_requested_poll() {
        let token = cancel_after(3);
        assert!(!token.is_cancelled());
        let budget = ExecBudget::unbounded().with_cancel(token.clone());
        let mut gov = mm_guard::Governor::new(&budget);
        assert!(gov.check_now().is_ok());
        assert!(gov.check_now().is_ok());
        assert!(gov.check_now().is_err());
    }
}
