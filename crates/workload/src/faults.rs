//! Fault injection: adversarial inputs for the governance test suite.
//!
//! Generators for the ways a model-management operator can run away or
//! be fed garbage: divergent tgd sets whose chase never closes,
//! mapping chains whose composition is exponential, malformed SO-tgds
//! and oversized instances, and pre-armed cancellation tokens for
//! mid-operation aborts. `tests/governance.rs` drives every engine
//! operator with these and asserts a typed error or a recorded
//! degradation — never a panic, never an unbounded run.

use crate::tgds::{binary_schema, composition_chain};
use mm_expr::{Atom, SoClause, SoTgd, Term, Tgd};
use mm_guard::CancelToken;
use mm_instance::{Database, Tuple, Value};
use mm_metamodel::Schema;

/// A divergent general-chase input: `R0(x, y) → ∃z . R0(y, z)` over a
/// nonempty `R0`. Every round fires with a fresh labeled null in second
/// position, so the fixpoint never closes and only a round cap (or
/// budget) stops the chase.
pub fn divergent_tgds() -> (Schema, Database, Vec<Tgd>) {
    let schema = binary_schema("Loop", "R", 1);
    let mut db = Database::empty_of(&schema);
    db.insert("R0", Tuple::from([Value::Int(0), Value::Int(1)]));
    let tgds = vec![Tgd::new(
        vec![Atom::vars("R0", &["x", "y"])],
        vec![Atom::vars("R0", &["y", "z"])],
    )];
    (schema, db, tgds)
}

/// A weakly acyclic (terminating) general-chase input: a copy chain
/// `R0 → R1 → … → R{n-1}` with one seed tuple. The chase closes after
/// `n` rounds, firing once per hop.
pub fn terminating_chain(n: usize) -> (Schema, Database, Vec<Tgd>) {
    let schema = binary_schema("Chain", "R", n);
    let mut db = Database::empty_of(&schema);
    db.insert("R0", Tuple::from([Value::Int(0), Value::Int(1)]));
    let tgds = (0..n.saturating_sub(1))
        .map(|i| {
            Tgd::new(
                vec![Atom::vars(format!("R{i}"), &["x", "y"])],
                vec![Atom::vars(format!("R{}", i + 1), &["x", "y"])],
            )
        })
        .collect();
    (schema, db, tgds)
}

/// A composition input engineered to splice `producers ^ body_atoms`
/// clauses — exponential in the second mapping's body width. Feed a
/// clause bound below that count to trip `OutputTooLarge`, or a clause
/// budget to trip `BudgetExhausted`.
pub fn exponential_compose(
    producers: usize,
    body_atoms: usize,
) -> (Schema, Schema, Schema, Vec<Tgd>, Vec<Tgd>) {
    composition_chain(producers, body_atoms)
}

/// A malformed SO-tgd: the head of its single clause references a
/// variable the body never binds. Applying it must surface
/// `ExecError::Malformed`, not a panic.
pub fn unbound_variable_sotgd() -> (Schema, Schema, SoTgd) {
    let src = binary_schema("Src", "A", 1);
    let tgt = binary_schema("Tgt", "B", 1);
    let so = SoTgd {
        functions: Vec::new(),
        clauses: vec![SoClause {
            body: vec![Atom::vars("A0", &["x", "y"])],
            eqs: Vec::new(),
            head: vec![Atom {
                relation: "B0".into(),
                terms: vec![Term::var("x"), Term::var("never_bound")],
            }],
        }],
    };
    (src, tgt, so)
}

/// An oversized instance: `rows` tuples in the single relation `R0` of a
/// binary schema. Use with a row budget well below `rows` to verify that
/// materializing operators stop early instead of buffering everything.
pub fn oversized_instance(rows: usize) -> (Schema, Database) {
    let schema = binary_schema("Big", "R", 1);
    let mut db = Database::empty_of(&schema);
    for i in 0..rows {
        db.insert("R0", Tuple::from([Value::Int(i as i64), Value::Int((i + 1) as i64)]));
    }
    (schema, db)
}

/// A self-join workload whose homomorphism search is quadratic in `rows`:
/// `R0(x, y) & R0(y, z) → ∃w . T0(x, w)` over a dense `R0`. Good for
/// tripping step budgets inside the join loops rather than at the rim.
pub fn quadratic_join(rows: usize) -> (Schema, Schema, Database, Vec<Tgd>) {
    let src = binary_schema("QSrc", "R", 1);
    let tgt = binary_schema("QTgt", "T", 1);
    let mut db = Database::empty_of(&src);
    for i in 0..rows {
        // a clique-ish graph: everything points at everything mod a band
        for j in 0..3usize {
            db.insert(
                "R0",
                Tuple::from([Value::Int(i as i64), Value::Int(((i + j) % rows) as i64)]),
            );
        }
    }
    let tgds = vec![Tgd::new(
        vec![Atom::vars("R0", &["x", "y"]), Atom::vars("R0", &["y", "z"])],
        vec![Atom::vars("T0", &["x", "w"])],
    )];
    (src, tgt, db, tgds)
}

/// A cancellation token pre-armed to trip after `polls` governor
/// safepoints — deterministic mid-operation cancellation without
/// threads or timing.
pub fn cancel_after(polls: u64) -> CancelToken {
    let token = CancelToken::new();
    token.trip_after_polls(polls);
    token
}

// --- byte-level corruption (storage fault injection) ---------------------

/// Flip one bit: bit `bit % 8` of byte `offset % len`. No-op on empty
/// input.
pub fn bit_flip(bytes: &[u8], offset: usize, bit: u32) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if !out.is_empty() {
        let i = offset % out.len();
        out[i] ^= 1u8 << (bit % 8);
    }
    out
}

/// Truncate to the first `len` bytes — a torn write / partial flush.
pub fn truncate_at(bytes: &[u8], len: usize) -> Vec<u8> {
    bytes[..len.min(bytes.len())].to_vec()
}

/// Splice `insert` into the buffer at `offset % (len + 1)` — simulates a
/// misdirected write or cross-file contamination.
pub fn splice(bytes: &[u8], offset: usize, insert: &[u8]) -> Vec<u8> {
    let at = offset % (bytes.len() + 1);
    let mut out = Vec::with_capacity(bytes.len() + insert.len());
    out.extend_from_slice(&bytes[..at]);
    out.extend_from_slice(insert);
    out.extend_from_slice(&bytes[at..]);
    out
}

/// Seeded compound mutator: applies 1–4 random bit-flip / truncate /
/// splice / byte-overwrite passes. Deterministic per seed, so a failing
/// corruption reproduces from its seed alone. Decoders must survive any
/// output of this with a typed error — never a panic, never an
/// oversized allocation.
pub fn mutate_bytes(bytes: &[u8], seed: u64) -> Vec<u8> {
    use rand::prelude::*;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = bytes.to_vec();
    let passes = rng.gen_range(1usize..5);
    for _ in 0..passes {
        if out.is_empty() {
            out = vec![rng.gen_range(0u64..256) as u8];
            continue;
        }
        match rng.gen_range(0u32..4) {
            0 => out = bit_flip(&out, rng.gen_range(0usize..out.len()), rng.gen_range(0u32..8)),
            1 => out = truncate_at(&out, rng.gen_range(0usize..out.len() + 1)),
            2 => {
                let garbage: Vec<u8> = (0..rng.gen_range(1usize..9))
                    .map(|_| rng.gen_range(0u64..256) as u8)
                    .collect();
                out = splice(&out, rng.gen_range(0usize..out.len() + 1), &garbage);
            }
            _ => {
                // overwrite a byte with an adversarial length-prefix-ish
                // value (0xFF bytes maximize u32 length fields)
                let i = rng.gen_range(0usize..out.len());
                out[i] = if rng.gen_bool(0.5) { 0xFF } else { 0x00 };
            }
        }
    }
    out
}

// --- client faults (wire-server robustness suite) ------------------------

/// A seeded stream of garbage bytes — what a confused peer (or a port
/// scanner) writes to a wire server. Deterministic per seed. Servers
/// must answer with a typed protocol error or close the connection;
/// never panic, hang, or leak the session slot.
pub fn garbage_bytes(seed: u64, len: usize) -> Vec<u8> {
    use rand::prelude::*;
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect()
}

/// A slow-writer schedule: split `len` bytes into `chunks` contiguous
/// `(offset, end)` spans covering the whole buffer in order. A client
/// fault driver writes one span at a time with a pause in between,
/// exercising the server's per-IO timeouts on half-delivered frames.
pub fn chunk_plan(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.clamp(1, len.max(1));
    let base = len / chunks;
    let mut spans = Vec::with_capacity(chunks);
    let mut off = 0;
    for i in 0..chunks {
        let end = if i + 1 == chunks { len } else { off + base };
        spans.push((off, end));
        off = end;
    }
    spans
}

// --- repository workloads (crash-recovery property suite) ----------------

/// One repository mutation in a generated workload. Artifacts are
/// addressed by *index into the ops issued so far* rather than by
/// `ArtifactId`, so the generator stays independent of the repository
/// crate; the crash suite materializes ids as it applies ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepoOp {
    /// Store a fresh version of schema `S{n}` (n in a small namespace,
    /// so versions accumulate).
    StoreSchema { n: usize },
    /// Store a fresh version of a tgd mapping `m{n}`.
    StoreMapping { n: usize },
    /// Record a lineage edge from the artifacts produced by earlier ops
    /// at `input_ops` (indices into the op list) to the one at
    /// `output_op`. The generator only emits indices of store ops that
    /// precede this op.
    RecordLineage { input_ops: Vec<usize>, output_op: usize },
    /// Bulk-load (create or replace) tracked instance `I{n}` with
    /// `rows` tuples — journaled as one amortized `InstancePut` frame.
    PutInstance { n: usize, rows: usize },
    /// Apply an insert-only delta of `rows` tuples to instance `I{n}`.
    /// Only generated after a `PutInstance` for `n`.
    InsertRows { n: usize, rows: usize },
    /// Register change-feed subscription `id` over instance `I{n}`.
    /// Only generated after a `PutInstance` for `n`.
    RegisterSubscription { id: u64, n: usize },
    /// Durably advance subscription `id`'s resume cursor. Only
    /// generated while `id` is registered.
    AdvanceCursor { id: u64, cursor: u64 },
    /// Drop subscription `id` from the registry. Only generated while
    /// `id` is registered.
    DropSubscription { id: u64 },
}

/// A seeded workload of `len` repository ops over a namespace of
/// `names` distinct artifact names. Every op is valid at the point it
/// is issued: lineage edges reference earlier store ops, instance
/// deltas and subscriptions reference instances already loaded, and
/// cursor/drop ops reference live subscription ids — so applying a
/// *prefix* of the workload never fails and never dangles, the
/// invariant the crash-recovery suite asserts survives recovery.
pub fn repo_ops(seed: u64, len: usize, names: usize) -> Vec<RepoOp> {
    use rand::prelude::*;
    let mut rng = SmallRng::seed_from_u64(seed);
    let names = names.max(1);
    let mut ops: Vec<RepoOp> = Vec::with_capacity(len);
    let mut store_ops: Vec<usize> = Vec::new();
    let mut instances: Vec<usize> = Vec::new();
    let mut live_subs: Vec<u64> = Vec::new();
    let mut next_sub: u64 = 1;
    for i in 0..len {
        let roll = rng.gen_range(0u32..100);
        let op = if roll < 20 && store_ops.len() >= 2 {
            let output_op = store_ops[rng.gen_range(0usize..store_ops.len())];
            let k = rng.gen_range(1usize..3.min(store_ops.len()) + 1);
            let mut input_ops = Vec::with_capacity(k);
            for _ in 0..k {
                let cand = store_ops[rng.gen_range(0usize..store_ops.len())];
                if cand != output_op && !input_ops.contains(&cand) {
                    input_ops.push(cand);
                }
            }
            if input_ops.is_empty() {
                RepoOp::StoreSchema { n: rng.gen_range(0usize..names) }
            } else {
                RepoOp::RecordLineage { input_ops, output_op }
            }
        } else if roll < 35 {
            RepoOp::StoreSchema { n: rng.gen_range(0usize..names) }
        } else if roll < 50 {
            RepoOp::StoreMapping { n: rng.gen_range(0usize..names) }
        } else if roll < 65 || instances.is_empty() {
            RepoOp::PutInstance {
                n: rng.gen_range(0usize..names),
                rows: rng.gen_range(1usize..4),
            }
        } else if roll < 80 {
            RepoOp::InsertRows {
                n: instances[rng.gen_range(0usize..instances.len())],
                rows: rng.gen_range(1usize..4),
            }
        } else if roll < 88 {
            let id = next_sub;
            next_sub += 1;
            RepoOp::RegisterSubscription {
                id,
                n: instances[rng.gen_range(0usize..instances.len())],
            }
        } else if roll < 95 && !live_subs.is_empty() {
            RepoOp::AdvanceCursor {
                id: live_subs[rng.gen_range(0usize..live_subs.len())],
                cursor: rng.gen_range(0u64..64),
            }
        } else if !live_subs.is_empty() {
            RepoOp::DropSubscription {
                id: live_subs[rng.gen_range(0usize..live_subs.len())],
            }
        } else {
            RepoOp::InsertRows {
                n: instances[rng.gen_range(0usize..instances.len())],
                rows: rng.gen_range(1usize..4),
            }
        };
        match &op {
            RepoOp::StoreSchema { .. } | RepoOp::StoreMapping { .. } => store_ops.push(i),
            RepoOp::PutInstance { n, .. } if !instances.contains(n) => instances.push(*n),
            RepoOp::RegisterSubscription { id, .. } => live_subs.push(*id),
            RepoOp::DropSubscription { id } => live_subs.retain(|s| s != id),
            _ => {}
        }
        ops.push(op);
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_chase::{chase_general_governed, ChaseOutcome};
    use mm_guard::ExecBudget;

    #[test]
    fn divergent_set_never_closes_under_round_cap() {
        let (_, mut db, tgds) = divergent_tgds();
        let err = chase_general_governed(
            &mut db,
            &tgds,
            &[],
            &ExecBudget::unbounded().with_rounds(8),
        )
        .unwrap_err();
        assert!(err.error.is_resource(), "{err}");
    }

    #[test]
    fn terminating_chain_closes() {
        let (_, mut db, tgds) = terminating_chain(4);
        let out = chase_general_governed(
            &mut db,
            &tgds,
            &[],
            &ExecBudget::unbounded().with_rounds(64),
        )
        .unwrap();
        assert!(matches!(out, ChaseOutcome::Done(_)));
        assert_eq!(db.relation("R3").unwrap().len(), 1);
    }

    #[test]
    fn oversized_instance_has_requested_rows() {
        let (_, db) = oversized_instance(100);
        assert_eq!(db.relation("R0").unwrap().len(), 100);
    }

    #[test]
    fn byte_mutators_are_deterministic_and_bounded() {
        let input: Vec<u8> = (0..64u8).collect();
        assert_eq!(mutate_bytes(&input, 7), mutate_bytes(&input, 7));
        assert_ne!(mutate_bytes(&input, 7), mutate_bytes(&input, 8));
        assert_eq!(bit_flip(&input, 3, 0)[3], input[3] ^ 1);
        assert_eq!(truncate_at(&input, 10).len(), 10);
        assert_eq!(truncate_at(&input, 1000).len(), 64);
        assert_eq!(splice(&input, 5, &[0xAA, 0xBB]).len(), 66);
        assert!(!mutate_bytes(&[], 3).is_empty()); // grows from empty
    }

    #[test]
    fn repo_ops_every_prefix_is_valid() {
        for seed in 0..20 {
            let ops = repo_ops(seed, 40, 4);
            assert_eq!(ops.len(), 40);
            let mut instances: Vec<usize> = Vec::new();
            let mut live_subs: Vec<u64> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    RepoOp::RecordLineage { input_ops, output_op } => {
                        for &r in input_ops.iter().chain([output_op]) {
                            assert!(r < i, "op {i} references op {r}");
                            assert!(matches!(
                                ops[r],
                                RepoOp::StoreSchema { .. } | RepoOp::StoreMapping { .. }
                            ));
                        }
                    }
                    RepoOp::PutInstance { n, rows } => {
                        assert!(*rows > 0);
                        if !instances.contains(n) {
                            instances.push(*n);
                        }
                    }
                    RepoOp::InsertRows { n, rows } => {
                        assert!(*rows > 0);
                        assert!(instances.contains(n), "op {i} delta on unloaded I{n}");
                    }
                    RepoOp::RegisterSubscription { id, n } => {
                        assert!(instances.contains(n), "op {i} subscribes to unloaded I{n}");
                        live_subs.push(*id);
                    }
                    RepoOp::AdvanceCursor { id, .. } => {
                        assert!(live_subs.contains(id), "op {i} advances dead sub #{id}");
                    }
                    RepoOp::DropSubscription { id } => {
                        assert!(live_subs.contains(id), "op {i} drops dead sub #{id}");
                        live_subs.retain(|s| s != id);
                    }
                    _ => {}
                }
            }
            // the generator mixes in propagation ops, so the torn-frame
            // suite exercises every WAL record kind
            assert!(
                ops.iter().any(|o| matches!(o, RepoOp::PutInstance { .. })),
                "seed {seed} generated no instance loads"
            );
        }
    }

    #[test]
    fn cancel_after_trips_at_the_requested_poll() {
        let token = cancel_after(3);
        assert!(!token.is_cancelled());
        let budget = ExecBudget::unbounded().with_cancel(token.clone());
        let mut gov = mm_guard::Governor::new(&budget);
        assert!(gov.check_now().is_ok());
        assert!(gov.check_now().is_ok());
        assert!(gov.check_now().is_err());
    }
}
