//! Million-tuple scale scenarios for the compact-data-plane soak
//! harness (DESIGN.md §16).
//!
//! Three text-heavy scenario families, each parameterized by an
//! approximate total tuple count, designed so the chase and CQ hot
//! paths stress exactly what the compact layout changes: string
//! interning (low-cardinality Text columns repeated across hundreds of
//! thousands of rows), inline tuple storage (arities straddling the
//! inline bound), cached tuple hashes (join probes and dedup inserts),
//! and labeled-null minting at scale.
//!
//! Generators are deterministic in `(tuples, seed)` and build values
//! through [`Value::text`], so under the compact plane (the default)
//! low-cardinality strings collapse into the intern pool while the same
//! call inside `mm_instance::intern::with_compact(false, ..)` produces
//! the owned-`String` baseline representation — the soak bench builds
//! each scenario both ways and asserts the results are bit-identical.

// Fixture generators: schemas/data/tgd sets are built from static,
// known-good literals; `expect`/`unwrap` failures are generator bugs,
// not runtime failure modes (DESIGN.md §7).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mm_expr::{Atom, Lit, Term, Tgd};
use mm_instance::{Database, Tuple, Value};
use mm_metamodel::{Attribute, DataType, Element, ElementKind, Schema};

/// One soak scenario: a populated source, the migration tgds into a
/// target schema (the chase hot path), and a conjunctive-query body
/// over the source (the CQ hot path).
pub struct ScaleScenario {
    pub name: &'static str,
    pub source: Schema,
    pub target: Schema,
    pub db: Database,
    pub tgds: Vec<Tgd>,
    /// CQ body over the *source* instance; selective by construction so
    /// result counts stay proportional to the scenario size.
    pub query: Vec<Atom>,
}

impl ScaleScenario {
    /// Actual tuple count of the generated source instance.
    pub fn tuples(&self) -> usize {
        self.db.total_tuples()
    }
}

/// All three scenario families at the given scale.
pub fn scale_scenarios(tuples: usize, seed: u64) -> Vec<ScaleScenario> {
    vec![
        snowflake_scale(tuples, seed),
        inheritance_scale(tuples, seed),
        evolution_scale(tuples, seed),
    ]
}

fn relation(name: &str, attrs: &[(&str, DataType)]) -> Element {
    Element {
        name: name.into(),
        kind: ElementKind::Relation,
        attributes: attrs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect(),
    }
}

/// A cheap deterministic mixer so column values are not trivially
/// sequential (distinct streams per `(seed, salt)`).
fn mix(seed: u64, salt: u64, i: usize) -> u64 {
    let mut x = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i as u64);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x
}

/// Snowflake (paper Figure 4 / warehousing): a fact table referencing
/// customer and product dimensions. Dimension descriptors are long,
/// low-cardinality strings — the interning showcase — while customer
/// and product names are unique, so the pool sees a realistic mix of
/// hot and cold strings. The tgds denormalize facts through each
/// dimension (index-probe joins), plus a dedup-heavy projection.
pub fn snowflake_scale(tuples: usize, seed: u64) -> ScaleScenario {
    let customers = (tuples / 5).max(1);
    let products = (tuples / 10).max(1);
    let facts = tuples.saturating_sub(customers + products).max(1);

    let mut source = Schema::new("SnowSrc");
    source
        .add_element(relation("customer", &[
            ("cid", DataType::Int),
            ("cname", DataType::Text),
            ("city", DataType::Text),
            ("segment", DataType::Text),
        ]))
        .expect("unique");
    source
        .add_element(relation("product", &[
            ("pid", DataType::Int),
            ("pname", DataType::Text),
            ("category", DataType::Text),
            ("brand", DataType::Text),
        ]))
        .expect("unique");
    source
        .add_element(relation("fact", &[
            ("fid", DataType::Int),
            ("cust", DataType::Int),
            ("prod", DataType::Int),
            ("channel", DataType::Text),
        ]))
        .expect("unique");

    let mut target = Schema::new("SnowTgt");
    target
        .add_element(relation("sales_by_customer", &[
            ("fid", DataType::Int),
            ("cname", DataType::Text),
            ("city", DataType::Text),
            ("segment", DataType::Text),
        ]))
        .expect("unique");
    target
        .add_element(relation("sales_by_product", &[
            ("fid", DataType::Int),
            ("pname", DataType::Text),
            ("category", DataType::Text),
            ("brand", DataType::Text),
        ]))
        .expect("unique");
    target
        .add_element(relation("segments", &[
            ("segment", DataType::Text),
            ("city", DataType::Text),
        ]))
        .expect("unique");

    let mut db = Database::empty_of(&source);
    for c in 0..customers {
        let city = mix(seed, 1, c) % 64;
        let seg = mix(seed, 2, c) % 8;
        db.insert("customer", Tuple::from([
            Value::Int(c as i64),
            Value::text(format!("customer-{c:07}")),
            Value::text(format!("city-{city:02}-metropolitan-district")),
            Value::text(format!("segment-{seg}-enterprise-accounts")),
        ]));
    }
    for p in 0..products {
        let cat = mix(seed, 3, p) % 32;
        let brand = mix(seed, 4, p) % 48;
        db.insert("product", Tuple::from([
            Value::Int(p as i64),
            Value::text(format!("product-{p:07}")),
            Value::text(format!("category-{cat:02}-consumer-durables")),
            Value::text(format!("brand-{brand:02}-holdings-international")),
        ]));
    }
    for f in 0..facts {
        let ch = mix(seed, 5, f) % 6;
        db.insert("fact", Tuple::from([
            Value::Int(f as i64),
            Value::Int((mix(seed, 6, f) % customers as u64) as i64),
            Value::Int((mix(seed, 7, f) % products as u64) as i64),
            Value::text(format!("channel-{ch}-direct-to-consumer")),
        ]));
    }

    let by_customer = Tgd::new(
        vec![
            Atom::vars("fact", &["f", "c", "p", "ch"]),
            Atom::vars("customer", &["c", "n", "city", "seg"]),
        ],
        vec![Atom::vars("sales_by_customer", &["f", "n", "city", "seg"])],
    );
    let by_product = Tgd::new(
        vec![
            Atom::vars("fact", &["f", "c", "p", "ch"]),
            Atom::vars("product", &["p", "n", "cat", "b"]),
        ],
        vec![Atom::vars("sales_by_product", &["f", "n", "cat", "b"])],
    );
    // dedup-heavy: 64 x 8 distinct (segment, city) pairs at most, so
    // nearly every firing hits the target relation's seen-set
    let segments = Tgd::new(
        vec![Atom::vars("customer", &["c", "n", "city", "seg"])],
        vec![Atom::vars("segments", &["seg", "city"])],
    );
    let query = by_customer.body.clone();
    ScaleScenario {
        name: "snowflake",
        source,
        target,
        db,
        tgds: vec![by_customer, by_product, segments],
        query,
    }
}

/// Inheritance (paper Figures 2–3 / ADO.NET): a Root hierarchy two
/// levels deep, entities stored canonically with a Text type tag in
/// column 0 — the tag alone repeats across every row of a set, so the
/// interner collapses it to one pool entry per type. Leaf tgds flatten
/// entities into one relational target; inner-type tgds introduce an
/// existential (labeled-null minting at scale). Leaf sets share the
/// same Id space, so the CQ self-join on Id is 1:1-selective.
pub fn inheritance_scale(tuples: usize, seed: u64) -> ScaleScenario {
    // Root(Id, label) ; A(area), B(grade) under Root ;
    // AA(region), AB(district), BA(zone), BB(sector) leaves
    const LEAVES: [(&str, &str); 4] =
        [("AA", "region"), ("AB", "district"), ("BA", "zone"), ("BB", "sector")];
    let mut source = Schema::new("ErSrc");
    source
        .add_element(Element {
            name: "Root".into(),
            kind: ElementKind::EntityType { parent: None },
            attributes: vec![
                Attribute::new("Id", DataType::Int),
                Attribute::new("label", DataType::Text),
            ],
        })
        .expect("unique");
    for (name, attr, parent) in
        [("A", "area", "Root"), ("B", "grade", "Root")]
    {
        source
            .add_element(Element {
                name: name.into(),
                kind: ElementKind::EntityType { parent: Some(parent.into()) },
                attributes: vec![Attribute::new(attr, DataType::Text)],
            })
            .expect("unique");
    }
    for (i, (name, attr)) in LEAVES.iter().enumerate() {
        let parent = if i < 2 { "A" } else { "B" };
        source
            .add_element(Element {
                name: (*name).into(),
                kind: ElementKind::EntityType { parent: Some(parent.into()) },
                attributes: vec![Attribute::new(*attr, DataType::Text)],
            })
            .expect("unique");
    }

    let mut target = Schema::new("ErTgt");
    target
        .add_element(relation("flat", &[
            ("id", DataType::Int),
            ("ty", DataType::Text),
            ("label", DataType::Text),
            ("leaf", DataType::Any),
        ]))
        .expect("unique");

    // canonical storage: each leaf set holds per_leaf entities; the
    // four sets share the same Id space so leaf-vs-leaf joins on Id
    // are 1:1. Stored rows are [tag, Id, label, mid_attr, leaf_attr].
    let per_leaf = (tuples / LEAVES.len()).max(1);
    let mut db = Database::empty_of(&source);
    for (li, (leaf, _)) in LEAVES.iter().enumerate() {
        for i in 0..per_leaf {
            let label = mix(seed, 8, i) % 100;
            let mid = mix(seed, 9 + li as u64, i) % 16;
            let lf = mix(seed, 13 + li as u64, i) % 24;
            db.insert_entity(leaf, leaf, vec![
                Value::Int(i as i64),
                Value::text(format!("label-{label:03}-organizational-unit")),
                Value::text(format!("mid-{mid:02}-administrative-area")),
                Value::text(format!("leaf-{lf:02}-operational-district")),
            ]);
        }
    }

    // leaf tgds flatten [tag, id, label, mid, leaf] -> flat(id, tag,
    // label, leaf); the Root set (empty under canonical storage at
    // this depth, but part of the program) introduces an existential.
    let mut tgds: Vec<Tgd> = LEAVES
        .iter()
        .map(|(leaf, _)| {
            Tgd::new(
                vec![Atom::vars(*leaf, &["t", "id", "l", "m", "r"])],
                vec![Atom::vars("flat", &["id", "t", "l", "r"])],
            )
        })
        .collect();
    tgds.push(Tgd::new(
        vec![Atom::vars("Root", &["t", "id", "l"])],
        vec![Atom::vars("flat", &["id", "t", "l", "z"])],
    ));

    // 1:1 self-join across two leaf sets on the shared Id space
    let query = vec![
        Atom::vars("AA", &["t1", "id", "l1", "m1", "r1"]),
        Atom::vars("BB", &["t2", "id", "l2", "m2", "r2"]),
    ];
    ScaleScenario { name: "inheritance", source, target, db, tgds, query }
}

/// Evolution (paper Figure 5): migrating a v1 order table into its v2
/// shape. The migration tgd introduces an existential per row — a
/// labeled null minted for the column v1 never carried — which is the
/// null-heavy soak: a million fresh nulls flowing through firing
/// buffers, dedup and the codec. The reference-data tgd is
/// dedup-dominated (12 tiers).
pub fn evolution_scale(tuples: usize, seed: u64) -> ScaleScenario {
    let orders = (tuples * 4 / 5).max(1);
    let custs = tuples.saturating_sub(orders).max(1);

    let mut source = Schema::new("EvoV1");
    source
        .add_element(relation("orders_v1", &[
            ("oid", DataType::Int),
            ("status", DataType::Text),
            ("region", DataType::Text),
            ("note", DataType::Text),
        ]))
        .expect("unique");
    source
        .add_element(relation("customers", &[
            ("cid", DataType::Int),
            ("tier", DataType::Text),
        ]))
        .expect("unique");

    let mut target = Schema::new("EvoV2");
    target
        .add_element(relation("orders_v2", &[
            ("oid", DataType::Int),
            ("status", DataType::Text),
            ("region", DataType::Text),
            ("migrated_at", DataType::Any),
        ]))
        .expect("unique");
    target
        .add_element(relation("tiers", &[("tier", DataType::Text)]))
        .expect("unique");

    let mut db = Database::empty_of(&source);
    for o in 0..orders {
        let st = mix(seed, 20, o) % 12;
        let rg = mix(seed, 21, o) % 24;
        db.insert("orders_v1", Tuple::from([
            Value::Int(o as i64),
            Value::text(format!("status-{st:02}-pending-fulfillment")),
            Value::text(format!("region-{rg:02}-distribution-center")),
            Value::text(format!("note-{o:07}")),
        ]));
    }
    for c in 0..custs {
        let tier = mix(seed, 22, c) % 12;
        db.insert("customers", Tuple::from([
            Value::Int(c as i64),
            Value::text(format!("tier-{tier:02}-loyalty-program")),
        ]));
    }

    let migrate = Tgd::new(
        vec![Atom::vars("orders_v1", &["o", "s", "r", "n"])],
        vec![Atom::vars("orders_v2", &["o", "s", "r", "z"])],
    );
    let tiers = Tgd::new(
        vec![Atom::vars("customers", &["c", "t"])],
        vec![Atom::vars("tiers", &["t"])],
    );
    // selective scan: one constant status picks ~1/12 of the orders
    let query = vec![Atom::new("orders_v1", vec![
        Term::var("o"),
        Term::Const(Lit::Text("status-03-pending-fulfillment".into())),
        Term::var("r"),
        Term::var("n"),
    ])];
    ScaleScenario {
        name: "evolution",
        source,
        target,
        db,
        tgds: vec![migrate, tiers],
        query,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_chase::chase_st;
    use mm_eval::find_homomorphisms;
    use mm_instance::intern::with_compact;

    #[test]
    fn scenarios_hit_requested_scale() {
        for sc in scale_scenarios(1_000, 7) {
            let n = sc.tuples();
            assert!(
                (900..=1_100).contains(&n),
                "{}: {n} tuples for a 1000-tuple request",
                sc.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for (a, b) in scale_scenarios(500, 3).into_iter().zip(scale_scenarios(500, 3)) {
            assert_eq!(a.db, b.db, "{}", a.name);
        }
    }

    #[test]
    fn chase_and_query_agree_across_compact_modes() {
        for tuples in [200usize, 800] {
            for (compact, baseline) in scale_scenarios(tuples, 11)
                .into_iter()
                .zip(with_compact(false, || scale_scenarios(tuples, 11)))
            {
                let (fast, _) = chase_st(&compact.target, &compact.tgds, &compact.db);
                let (slow, _) =
                    with_compact(false, || chase_st(&baseline.target, &baseline.tgds, &baseline.db));
                assert_eq!(fast, slow, "{} chase diverged", compact.name);
                let hq = find_homomorphisms(&compact.query, &compact.db);
                let hb = with_compact(false, || find_homomorphisms(&baseline.query, &baseline.db));
                assert_eq!(hq, hb, "{} query diverged", compact.name);
                assert!(!hq.is_empty(), "{} query must select something", compact.name);
            }
        }
    }

    #[test]
    fn chase_produces_target_rows_and_nulls() {
        let sc = evolution_scale(500, 1);
        let (out, stats) = chase_st(&sc.target, &sc.tgds, &sc.db);
        assert_eq!(
            out.relation("orders_v2").map(|r| r.len()),
            sc.db.relation("orders_v1").map(|r| r.len()),
            "every v1 order migrates"
        );
        assert!(stats.nulls > 0, "migration mints a null per order");
        assert_eq!(out.relation("tiers").map(|r| r.len()), Some(12), "tiers dedup to 12");
    }
}
