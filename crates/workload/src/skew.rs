//! Skewed-data generators for the cost-based planner.
//!
//! The greedy join-order heuristic sees only relation *sizes*; these
//! generators build instances whose sizes mislead it — a small hub
//! relation fans out into a huge intermediate, a Zipfian column hides a
//! tiny distinct count behind a big row count, a correlated column pair
//! defeats independence assumptions — so a planner that consults
//! per-column statistics (distinct counts, value frequencies) picks a
//! different, much cheaper order. Each generator returns the schema, the
//! populated instance, and a conjunctive-query body over it; the query
//! result is intentionally small so run time measures join *work*, not
//! result materialization. Everything is seeded and deterministic.

// Fixture generators: schemas/data are built from static, known-good
// literals; `expect`/`unwrap` failures are generator bugs, not runtime
// failure modes (DESIGN.md §7).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mm_expr::{Atom, Term};
use mm_instance::{Database, Tuple, Value};
use mm_metamodel::{DataType, Schema, SchemaBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Draw one value in `0..domain` from a Zipf-like distribution with the
/// given exponent (inverse-CDF over precomputed cumulative weights —
/// rank 0 is the heavy head). Exposed so tests and benches can reuse the
/// sampler for their own column shapes.
pub fn zipf_sample(cumulative: &[f64], rng: &mut SmallRng) -> usize {
    let total = *cumulative.last().expect("non-empty weights");
    let needle = rng.gen_range(0.0..total);
    cumulative.partition_point(|&c| c <= needle).min(cumulative.len() - 1)
}

/// Cumulative Zipf weights for `domain` ranks at `exponent` — feed to
/// [`zipf_sample`].
pub fn zipf_weights(domain: usize, exponent: f64) -> Vec<f64> {
    let mut acc = 0.0;
    (1..=domain.max(1))
        .map(|rank| {
            acc += 1.0 / (rank as f64).powf(exponent);
            acc
        })
        .collect()
}

fn three_way_schema() -> Schema {
    SchemaBuilder::new("Skew")
        .relation("Anchor", &[("x", DataType::Int)])
        .relation("Hub", &[("x", DataType::Int), ("y", DataType::Int)])
        .relation("Sel", &[("y", DataType::Int), ("k", DataType::Int)])
        .build()
        .expect("static schema")
}

/// The query every three-way generator shares:
/// `Anchor(x) ∧ Hub(x, y) ∧ Sel(y, 7)`.
///
/// Greedy starts at `Anchor` (the smallest relation) and walks into the
/// hub, materializing every `Hub` row as an intermediate binding before
/// the selective constant on `Sel` prunes; the cost-based planner starts
/// at `Sel[k = 7]` (one row by the column statistics) and probes
/// backwards, touching a handful of tuples.
fn three_way_query() -> Vec<Atom> {
    vec![
        Atom::vars("Anchor", &["x"]),
        Atom::vars("Hub", &["x", "y"]),
        Atom::new("Sel", vec![Term::var("y"), Term::Const(mm_expr::Lit::Int(7))]),
    ]
}

/// Fat-hub join: a small anchor fans out through a hub whose join column
/// takes only a few distinct values. `Anchor` has `rows/20` tuples,
/// `Hub` has `rows` (every one reachable from the anchor), `Sel` has
/// `rows` with exactly one `k = 7` tuple. The query result is one row.
pub fn fat_hub_join(rows: usize) -> (Schema, Database, Vec<Atom>) {
    let schema = three_way_schema();
    let mut db = Database::empty_of(&schema);
    let anchors = (rows / 20).max(2);
    for i in 0..anchors {
        db.insert("Anchor", Tuple::from([Value::Int(i as i64)]));
    }
    for i in 0..rows {
        // x cycles the anchor domain: every hub row joins some anchor
        db.insert(
            "Hub",
            Tuple::from([Value::Int((i % anchors) as i64), Value::Int(i as i64)]),
        );
    }
    for i in 0..rows {
        // k = 7 appears exactly once, at y = 7
        let k = if i == 7 { 7 } else { 1_000 + i as i64 };
        db.insert("Sel", Tuple::from([Value::Int(i as i64), Value::Int(k)]));
    }
    (schema, db, three_way_query())
}

/// Zipfian hub: like [`fat_hub_join`] but the hub's join column is drawn
/// from a Zipf distribution over the anchor domain, so a large share of
/// the hub hangs off a few head values. The *distinct count* the
/// statistics see is what tells the planner the hub probe explodes;
/// sizes alone look harmless.
pub fn zipf_join(rows: usize, seed: u64) -> (Schema, Database, Vec<Atom>) {
    let schema = three_way_schema();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::empty_of(&schema);
    let anchors = (rows / 20).max(2);
    let cumulative = zipf_weights(anchors, 1.2);
    for i in 0..anchors {
        db.insert("Anchor", Tuple::from([Value::Int(i as i64)]));
    }
    for i in 0..rows {
        let x = zipf_sample(&cumulative, &mut rng) as i64;
        db.insert("Hub", Tuple::from([Value::Int(x), Value::Int(i as i64)]));
    }
    for i in 0..rows {
        let k = if i == 7 { 7 } else { 1_000 + i as i64 };
        db.insert("Sel", Tuple::from([Value::Int(i as i64), Value::Int(k)]));
    }
    (schema, db, three_way_query())
}

/// Correlated selection columns: `Sel`'s `y` and `k` co-vary (`k`
/// repeats a small modulus of `y`), so most `k` values are *frequent* —
/// except the probe constant, which stays rare. Per-value frequency
/// sketches see through the correlation where a naive
/// rows-over-distinct estimate would not.
pub fn correlated_join(rows: usize, seed: u64) -> (Schema, Database, Vec<Atom>) {
    let schema = three_way_schema();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::empty_of(&schema);
    let anchors = (rows / 20).max(2);
    for i in 0..anchors {
        db.insert("Anchor", Tuple::from([Value::Int(i as i64)]));
    }
    for i in 0..rows {
        let x = rng.gen_range(0..anchors) as i64;
        db.insert("Hub", Tuple::from([Value::Int(x), Value::Int(i as i64)]));
    }
    for i in 0..rows {
        // k tracks y through a small modulus (heavily repeated values),
        // with the probe constant k = 7 planted exactly once at y = 7
        let k = if i == 7 { 7 } else { 100 + (i as i64 % 16) };
        db.insert("Sel", Tuple::from([Value::Int(i as i64), Value::Int(k)]));
    }
    (schema, db, three_way_query())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_selective() {
        for (schema, db, query) in [
            fat_hub_join(400),
            zipf_join(400, 11),
            correlated_join(400, 11),
        ] {
            assert_eq!(schema.name, "Skew");
            assert_eq!(db.relation("Hub").unwrap().len(), 400);
            assert_eq!(db.relation("Sel").unwrap().len(), 400);
            assert_eq!(query.len(), 3);
            // exactly one Sel tuple matches the probe constant
            let hits = db
                .relation("Sel")
                .unwrap()
                .iter()
                .filter(|t| t.values()[1] == Value::Int(7))
                .count();
            assert_eq!(hits, 1);
        }
        let (_, a, _) = zipf_join(400, 11);
        let (_, b, _) = zipf_join(400, 11);
        assert_eq!(a, b, "seeded generators must be deterministic");
    }

    #[test]
    fn zipf_head_is_heavy() {
        let (_, db, _) = zipf_join(2_000, 3);
        let head = db
            .relation("Hub")
            .unwrap()
            .iter()
            .filter(|t| t.values()[0] == Value::Int(0))
            .count();
        assert!(head > 2_000 / 100, "rank 0 must be far above uniform: {head}");
    }
}
