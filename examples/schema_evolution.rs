//! The paper's Figure 5/6 schema-evolution scenario, end to end:
//! a view V over schema S survives S evolving into S′ — the instance is
//! migrated, the view is repaired by composition (Figure 6), the
//! information the mapping loses is captured with Diff, and the migration
//! can be rolled back with a computed inverse.
//!
//! ```sh
//! cargo run --example schema_evolution
//! ```

use model_management::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- S, its instance D, and the Students view V (Figure 6, verbatim)
    let s = SchemaBuilder::new("S")
        .relation("Names", &[("SID", DataType::Int), ("Name", DataType::Text)])
        .relation("Addresses", &[
            ("SID", DataType::Int),
            ("Address", DataType::Text),
            ("Country", DataType::Text),
        ])
        .key("Names", &["SID"])
        .key("Addresses", &["SID"])
        .build()?;
    let mut d = Database::empty_of(&s);
    for (sid, name) in [(1, "ann"), (2, "bob"), (3, "cyd")] {
        d.insert("Names", Tuple::from([Value::Int(sid), Value::text(name)]));
    }
    for (sid, addr, country) in
        [(1, "9 Ave", "US"), (2, "5 Rue", "FR"), (3, "2 Way", "US")]
    {
        d.insert(
            "Addresses",
            Tuple::from([Value::Int(sid), Value::text(addr), Value::text(country)]),
        );
    }
    let mut v = ViewSet::new("S", "V");
    v.push(ViewDef::new(
        "Students",
        Expr::base("Names")
            .join(Expr::base("Addresses"), &[("SID", "SID")])
            .project(&["Name", "Address", "Country"]),
    ));
    let students_before = eval(&v.views[0].expr, &s, &d)?;
    println!("== Students over S ==\n{students_before}");

    // --- S evolves: Addresses splits into Local/Foreign (Figure 6)
    let s_prime = SchemaBuilder::new("Sprime")
        .relation("NamesP", &[("SID", DataType::Int), ("Name", DataType::Text)])
        .relation("Local", &[("SID", DataType::Int), ("Address", DataType::Text)])
        .relation("Foreign", &[
            ("SID", DataType::Int),
            ("Address", DataType::Text),
            ("Country", DataType::Text),
        ])
        .build()?;
    let mut migration = ViewSet::new("S", "Sprime");
    migration.push(ViewDef::new("NamesP", Expr::base("Names")));
    migration.push(ViewDef::new(
        "Local",
        Expr::base("Addresses")
            .select(Predicate::col_eq_lit("Country", "US"))
            .project(&["SID", "Address"]),
    ));
    migration.push(ViewDef::new(
        "Foreign",
        Expr::base("Addresses").select(Predicate::col_eq_lit("Country", "US").negate()),
    ));
    let mut old_over_new = ViewSet::new("Sprime", "S");
    old_over_new.push(ViewDef::new("Names", Expr::base("NamesP")));
    old_over_new.push(ViewDef::new(
        "Addresses",
        Expr::base("Local")
            .product(Expr::literal_row(&["Country"], vec![Lit::text("US")]))
            .union(Expr::base("Foreign")),
    ));

    // --- the Figure 5 script: migrate + repair by composition
    let outcome = evolve_view(&s, &migration, &old_over_new, &v, &d)?;
    println!("== Migrated instance D′ ==\n{}", outcome.migrated);
    let repaired = &outcome.repaired_views.views[0];
    println!("== Repaired view (mapV-S′ = mapV-S ∘ mapS-S′) ==\n{repaired}\n");
    let students_after = eval(&repaired.expr, &s_prime, &outcome.migrated)?;
    assert!(students_before.set_eq(&students_after));
    println!("view preserved across evolution: true\n");

    // --- Diff: what does the Students view lose from S? (§6.2)
    let as_mapping = Mapping::with_constraints(
        "S",
        "V",
        vec![MappingConstraint::ExprEq {
            source: v.views[0].expr.clone(),
            target: Expr::base("Students"),
        }],
    );
    let lost = diff(&s, &as_mapping, mm_evolution::diff::Side::Source);
    println!("== Diff(S, mapV-S): information the view loses ==\n{}\n", lost.schema);

    // --- Inverse: roll the migration back (§6.4)
    let inverse = invert_views(&migration, &s)?;
    let kind = verify_inverse(&migration, &inverse, &s, &s_prime, &d);
    println!("== Inverse of the migration ==\nclassified as: {kind}");
    assert_eq!(kind, InverseKind::Exact);
    let back = materialize_views(&inverse, &s_prime, &outcome.migrated)?;
    assert!(back.relation("Addresses").expect("restored").set_eq(d.relation("Addresses").expect("original")));
    println!("rollback restores D exactly: true");
    Ok(())
}
