//! Quickstart: a tour of the model management engine (Figure 1 of the
//! paper), exercising every operator on the paper's running example.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use model_management::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new();

    // 1. Register the paper's ER schema (Figure 2, left side).
    let er = SchemaBuilder::new("ER")
        .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
        .entity_sub("Employee", "Person", &[("Dept", DataType::Text)])
        .entity_sub("Customer", "Person", &[
            ("CreditScore", DataType::Int),
            ("BillingAddr", DataType::Text),
        ])
        .key("Person", &["Id"])
        .build()?;
    println!("== ER schema ==\n{er}\n");
    engine.add_schema(er.clone())?;

    // 2. ModelGen: derive a relational schema plus mapping constraints.
    let gen = engine.modelgen_er_to_relational("ER", InheritanceStrategy::Vertical)?;
    println!("== Generated relational schema ==\n{}\n", gen.schema);
    println!("== Generated mapping constraints (Figure 2 style) ==\n{}\n", gen.mapping);

    // 3. TransGen: compile the constraints into query + update views.
    let (qviews, uviews) = engine.transgen("ER", &gen.schema.name, "ER->ER_rel")?;
    println!("== Query view for Person (the Figure 3 query) ==");
    println!("{}\n", qviews.view("Person").expect("person view"));

    // 4. Run data through the mapping: entities -> tables -> entities.
    let mut entities = Database::empty_of(&er);
    entities.insert_entity("Person", "Person", vec![Value::Int(1), Value::text("pat")]);
    entities.insert_entity(
        "Employee",
        "Employee",
        vec![Value::Int(2), Value::text("eve"), Value::text("hr")],
    );
    entities.insert_entity(
        "Customer",
        "Customer",
        vec![Value::Int(3), Value::text("carl"), Value::Int(700), Value::text("5 Rue")],
    );
    let tables = materialize_views(&uviews, &er, &entities)?;
    println!("== Tables after update views ==");
    for (name, rel) in tables.relations() {
        println!("{name}: {} rows", rel.len());
    }
    let back = materialize_views(&qviews, &gen.schema, &tables)?;
    println!("\n== Roundtrip check (update ∘ query = identity) ==");
    let ok = entities
        .relations()
        .all(|(n, r)| back.relation(n).map(|b| r.set_eq(b)).unwrap_or(false));
    println!("roundtrips: {ok}\n");
    assert!(ok);

    // 5. Match: line the ER schema up against an independent SQL schema.
    let legacy = SchemaBuilder::new("Legacy")
        .relation("staff", &[("staff_key", DataType::Int), ("name", DataType::Text), ("dept", DataType::Text)])
        .relation("client", &[("client_key", DataType::Int), ("name", DataType::Text), ("credit_score", DataType::Int)])
        .build()?;
    engine.add_schema(legacy)?;
    let (correspondences, _) = engine.match_schemas("ER", "Legacy", &MatchConfig::default())?;
    println!("== Top correspondences ER ~ Legacy ==");
    for c in correspondences.top_k(1).correspondences.iter().take(8) {
        println!("  {c}");
    }

    // 6. Compose: collapse the modelgen views with a reporting view.
    let mut report = ViewSet::new(gen.schema.name.clone(), "Reports");
    report.push(ViewDef::new(
        "Staff",
        Expr::base("Employee")
            .join(Expr::base("Person"), &[("Id", "Id")])
            .project(&["Id", "Name", "Dept"]),
    ));
    engine.add_viewset("modelgen.views", gen.views.clone())?;
    engine.add_viewset("report.views", report)?;
    let collapsed = engine.compose("modelgen.views", "report.views", "report.direct")?;
    println!("\n== Report view composed down to the ER schema ==");
    println!("{}", collapsed.view("Staff").expect("staff view"));

    // 7. Lineage: what did all of this produce?
    println!("\n== Lineage recorded by the repository ==");
    for edge in engine.repo.lineage() {
        let ins: Vec<String> = edge.inputs.iter().map(|i| i.to_string()).collect();
        println!("  {}({}) -> {}", edge.operator, ins.join(", "), edge.output);
    }
    Ok(())
}
