//! Message mapping (EAI middleware, §1.1 of the paper): translate
//! purchase-order messages between two partners' formats. Exercises the
//! schema text format, XML-style shredding (ModelGen), the mapping
//! debugger, compiled business-logic triggers, and the index advisor.
//!
//! ```sh
//! cargo run --example message_mapping
//! ```

use model_management::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- partner A's message format, read from its textual definition
    let partner_a = parse_schema(
        r#"
schema PartnerA {
  table Order(order_no: int, buyer: text, currency: text)
  nested Line in Order(sku: text, qty: int, price: double)
}
"#,
    )?;
    println!("== Partner A message schema ==\n{partner_a}\n");

    // --- shred the nested format into flat staging relations (ModelGen)
    let shredded = shred_nested(&partner_a)?;
    println!("== Shredded staging schema ==\n{}\n", shredded.schema);

    // --- a staged message batch
    let mut staging = Database::empty_of(&shredded.schema);
    staging.insert(
        "Order",
        Tuple::from([Value::Int(100), Value::text("acme"), Value::text("EUR")]),
    );
    staging.insert(
        "Order",
        Tuple::from([Value::Int(101), Value::text("globex"), Value::text("USD")]),
    );
    for (parent, sku, qty, price, ord) in [
        (100, "bolt", 12, 0.10, 0),
        (100, "nut", 12, 0.05, 1),
        (101, "gear", 2, 19.99, 0),
    ] {
        staging.insert(
            "Line",
            Tuple::from([
                Value::Int(parent),
                Value::text(sku),
                Value::Int(qty),
                Value::Double(price),
                Value::Int(ord),
            ]),
        );
    }

    // --- partner B wants flat line-items with buyer context: the message
    // translation is a view over the staging schema
    let mut translation = ViewSet::new(shredded.schema.name.clone(), "PartnerB");
    translation.push(ViewDef::new(
        "LineItems",
        Expr::base("Order")
            .rename(&[("order_no", "parent_ref")])
            .join(Expr::base("Line"), &[("parent_ref", "parent_ref")])
            .project(&["parent_ref", "buyer", "sku", "qty"])
            .rename(&[("parent_ref", "order_no")]),
    ));

    // --- debug the mapping: trace every operator (§5 "Debugging")
    let t = trace(
        &translation.views[0].expr,
        &shredded.schema,
        &staging,
    )?;
    println!("== Mapping trace (EXPLAIN ANALYZE for mappings) ==\n{t}");
    assert!(t.empty_steps().is_empty(), "data vanished mid-mapping");

    // --- translate the batch
    let out = materialize_views(&translation, &shredded.schema, &staging)?;
    println!("== Partner B line items ==\n{}", out.relation("LineItems").expect("translated"));

    // --- business logic in target terms, executed at source level (§5)
    let triggers = vec![Trigger::new("bulk_line", "LineItems").when(Predicate::Cmp {
        op: CmpOp::Ge,
        left: Scalar::col("qty"),
        right: Scalar::lit(10i64),
    })];
    let compiled = compile_triggers(&triggers, &translation, &shredded.schema);
    println!("== Trigger compiled to the staging schema ==");
    println!("{}\n", compiled[0].base_condition);

    let mut delta = Delta::new();
    delta.insert(
        "Line",
        Tuple::from([
            Value::Int(101),
            Value::text("chain"),
            Value::Int(50),
            Value::Double(3.5),
            Value::Int(1),
        ]),
    );
    let firings = fire_triggers(&compiled, &shredded.schema, &staging, &delta)?;
    println!("== Firings for the incoming line batch ==");
    for f in &firings {
        println!("  {}: {}", f.trigger, f.row);
    }
    assert_eq!(firings.len(), 1);

    // --- where should the staging store build indexes? (§5 "Indexing")
    let workload = vec![
        Expr::base("LineItems").select(Predicate::col_eq_lit("buyer", "acme")),
        Expr::base("LineItems").select(Predicate::col_eq_lit("sku", "bolt")),
        Expr::base("LineItems").project(&["order_no", "qty"]),
    ];
    let recs = advise_indexes(&workload, &translation, &shredded.schema);
    println!("\n== Index advice for the staging relations ==");
    for r in recs.iter().take(5) {
        println!("  {r}");
    }
    Ok(())
}
