//! Data-warehouse loading (ETL), the paper's first motivating tool
//! category (§1.1): match a source snowflake schema against the warehouse
//! schema, interpret the correspondences as mapping constraints (the
//! Figure 4 construction), exchange the data with the chase, keep the
//! warehouse fresh with incremental view maintenance, and answer "where
//! did this row come from?" with provenance.
//!
//! ```sh
//! cargo run --example data_warehouse
//! ```

use model_management::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- source: operational snowflake (Figure 4's left schema, enlarged)
    let source = SchemaBuilder::new("Ops")
        .relation("Empl", &[
            ("EID", DataType::Int),
            ("Name", DataType::Text),
            ("Tel", DataType::Text),
            ("AID", DataType::Int),
        ])
        .relation("Addr", &[
            ("AID", DataType::Int),
            ("City", DataType::Text),
            ("Zip", DataType::Text),
        ])
        .key("Empl", &["EID"])
        .foreign_key("Empl", &["AID"], "Addr", &["AID"])
        .build()?;

    // --- target: the warehouse dimension (Figure 4's right schema)
    let warehouse = SchemaBuilder::new("Warehouse")
        .relation("Staff", &[
            ("SID", DataType::Int),
            ("Name", DataType::Text),
            ("City", DataType::Text),
        ])
        .key("Staff", &["SID"])
        .build()?;

    // --- step 1: the matcher proposes candidates; the data architect
    // confirms the ones that matter (the incremental loop of §3.1.1)
    let candidates = match_schemas(&source, &warehouse, &MatchConfig::default());
    println!("== Matcher candidates (top-2 per source attribute) ==");
    for c in candidates.top_k(2).correspondences.iter().take(10) {
        println!("  {c}");
    }
    let mut session = IncrementalSession::new(candidates);
    session.accept(&PathRef::attr("Empl", "Name"), &PathRef::attr("Staff", "Name"));
    session.accept(&PathRef::attr("Addr", "City"), &PathRef::attr("Staff", "City"));

    // --- step 2: interpret as snowflake constraints (Figure 4)
    let mut confirmed = CorrespondenceSet::new("Ops", "Warehouse");
    confirmed.push(Correspondence::new(
        PathRef::element("Empl"),
        PathRef::element("Staff"),
        1.0,
    ));
    for (s, t) in session.accepted() {
        confirmed.push(Correspondence::new(s.clone(), t.clone(), 1.0));
    }
    let mapping = snowflake_constraints(&source, &warehouse, &confirmed)?;
    println!("\n== Mapping constraints (Figure 4 interpretation) ==\n{mapping}");

    // --- step 3: data exchange with the chase (certain-answer semantics)
    let tgds = vec![Tgd::new(
        vec![
            Atom::vars("Empl", &["eid", "name", "tel", "aid"]),
            Atom::vars("Addr", &["aid", "city", "zip"]),
        ],
        vec![Atom::vars("Staff", &["eid", "name", "city"])],
    )];
    let mut ops_db = Database::empty_of(&source);
    for (eid, name, tel, aid) in
        [(1, "ann", "555", 10), (2, "bob", "556", 20), (3, "cyd", "557", 10)]
    {
        ops_db.insert(
            "Empl",
            Tuple::from([Value::Int(eid), Value::text(name), Value::text(tel), Value::Int(aid)]),
        );
    }
    for (aid, city, zip) in [(10, "rome", "00100"), (20, "oslo", "0150")] {
        ops_db.insert(
            "Addr",
            Tuple::from([Value::Int(aid), Value::text(city), Value::text(zip)]),
        );
    }
    let (mut staff_db, stats) = chase_st(&warehouse, &tgds, &ops_db);
    println!("== Chase: {stats:?} ==");
    println!("Staff rows: {}", staff_db.relation("Staff").expect("chased").len());

    // --- step 4: nightly refresh via incremental view maintenance
    let mut etl = ViewSet::new("Ops", "Warehouse");
    etl.push(ViewDef::new(
        "Staff",
        Expr::base("Empl")
            .join(Expr::base("Addr"), &[("AID", "AID")])
            .project(&["EID", "Name", "City"])
            .rename(&[("EID", "SID")]),
    ));
    let mut delta = Delta::new();
    delta.insert(
        "Empl",
        Tuple::from([Value::Int(4), Value::text("dan"), Value::text("558"), Value::Int(20)]),
    );
    let strategies = maintain_insertions(&etl, &source, &ops_db, &delta, &mut staff_db)?;
    println!("\n== Incremental refresh ==");
    for (view, st) in &strategies {
        println!("  {view}: {st:?}");
    }
    println!("Staff rows after refresh: {}", staff_db.relation("Staff").expect("maintained").len());
    delta.apply_to(&mut ops_db);

    // --- step 5: provenance of a warehouse row
    let target = Tuple::from([Value::Int(4), Value::text("dan"), Value::text("oslo")]);
    let witnesses = explain(&etl.view("Staff").expect("etl view").expr, &source, &ops_db, &target)?;
    println!("\n== Provenance of {target} ==");
    for w in &witnesses {
        for (rel, tuple) in w {
            println!("  {rel}{tuple}");
        }
    }
    assert_eq!(witnesses.len(), 1);
    Ok(())
}
