//! Subscribe/notify quickstart: boot the wire front-end, register a
//! continuous query over a tracked instance, and watch committed
//! writes arrive as pushed view deltas — then force a
//! recompute-and-resync and resume from the durable cursor.
//!
//! ```sh
//! cargo run --example subscribe_quickstart
//! ```

use mm_server::{Client, Server, ServerConfig};
use model_management::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An engine with one base schema and a tracked instance.
    let engine = Engine::new();
    let base = SchemaBuilder::new("Base")
        .relation("Orders", &[("id", DataType::Int), ("total", DataType::Int)])
        .build()?;
    engine.add_schema(base.clone())?;

    let handle = Server::start(engine, ServerConfig::default())?;
    println!("serving on {}", handle.addr());
    let mut client = Client::connect(handle.addr())?;

    // Bulk-load the instance: one amortized WAL frame, one feed event.
    let mut db = Database::empty_of(&base);
    db.insert("Orders", Tuple::from([Value::Int(1), Value::Int(120)]));
    let seq = client.put_instance("orders", &db)?;
    println!("loaded `orders` at commit seq {seq}");

    // A continuous query: big orders only.
    let mut views = ViewSet::new("Base", "V");
    views.push(ViewDef::new(
        "BigOrders",
        Expr::base("Orders").select(Predicate::Cmp {
            op: CmpOp::Gt,
            left: Scalar::col("total"),
            right: Scalar::lit(100i64),
        }),
    ));
    let id = client.subscribe("orders", &views)?;

    // First poll bootstraps: one resync snapshot of the current state.
    let (notifications, _) = client.poll(id, 16)?;
    let mut cursor = 0;
    for n in &notifications {
        if let Notification::Resync { seq, cause, views } = n {
            println!(
                "bootstrap snapshot at seq {seq} ({cause}): {} big orders",
                views.relation("BigOrders").map(|r| r.len()).unwrap_or(0)
            );
            cursor = *seq;
        }
    }

    // Committed batches arrive as incremental view deltas.
    client.insert_batch(
        "orders",
        &[(
            "Orders".to_string(),
            vec![
                Tuple::from([Value::Int(2), Value::Int(90)]),  // filtered out
                Tuple::from([Value::Int(3), Value::Int(250)]), // pushed
            ],
        )],
    )?;
    let (notifications, lagging) = client.poll(id, 16)?;
    for n in &notifications {
        if let Notification::Delta { seq, view_inserts } = n {
            for (view, rows) in view_inserts {
                println!("delta at seq {seq}: +{} rows into {view}", rows.len());
            }
            cursor = *seq;
        }
    }
    println!("lagging: {lagging}");

    // Durably acknowledge — after a crash or reconnect, `resume`
    // continues from this cursor (or degrades to a resync if the
    // feed no longer covers it; never silently skips ahead).
    client.ack(id, cursor)?;
    client.resume(id, cursor)?;
    println!("acked + resumed at cursor {cursor}");

    client.unsubscribe(id)?;
    handle.shutdown()?;
    println!("drained and stopped");
    Ok(())
}
