//! OLAP / report writing (§1.1: "OLAP databases, which map data sources
//! into data cubes" and "report writers that map between structured data
//! sources and a report format"): aggregate views over a mapped star
//! schema, optimized with predicate pushdown, maintained on refresh, and
//! explained with provenance.
//!
//! ```sh
//! cargo run --example olap_report
//! ```

use model_management::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- operational star schema
    let ops = SchemaBuilder::new("Ops")
        .relation("sales", &[
            ("sid", DataType::Int),
            ("product_ref", DataType::Int),
            ("region_ref", DataType::Int),
            ("amount", DataType::Int),
        ])
        .relation("products", &[("pid", DataType::Int), ("category", DataType::Text)])
        .relation("regions", &[("rid", DataType::Int), ("name", DataType::Text)])
        .key("sales", &["sid"])
        .key("products", &["pid"])
        .key("regions", &["rid"])
        .foreign_key("sales", &["product_ref"], "products", &["pid"])
        .foreign_key("sales", &["region_ref"], "regions", &["rid"])
        .build()?;
    let mut db = Database::empty_of(&ops);
    for (pid, cat) in [(1, "tools"), (2, "toys")] {
        db.insert("products", Tuple::from([Value::Int(pid), Value::text(cat)]));
    }
    for (rid, name) in [(10, "north"), (20, "south")] {
        db.insert("regions", Tuple::from([Value::Int(rid), Value::text(name)]));
    }
    for (sid, p, r, amt) in [
        (1, 1, 10, 100),
        (2, 1, 20, 250),
        (3, 2, 10, 40),
        (4, 2, 10, 60),
        (5, 1, 10, 300),
    ] {
        db.insert(
            "sales",
            Tuple::from([Value::Int(sid), Value::Int(p), Value::Int(r), Value::Int(amt)]),
        );
    }

    // --- the cube: a mapped, aggregated view (category × region)
    let mut cube = ViewSet::new("Ops", "Cube");
    cube.push(ViewDef::new(
        "SalesCube",
        Expr::base("sales")
            .join(Expr::base("products"), &[("product_ref", "pid")])
            .join(Expr::base("regions"), &[("region_ref", "rid")])
            .aggregate(
                &["category", "name"],
                vec![
                    AggSpec::of(AggFunc::Sum, "amount", "revenue"),
                    AggSpec::count("transactions"),
                    AggSpec::of(AggFunc::Max, "amount", "biggest"),
                ],
            ),
    ));
    let mat = materialize_views(&cube, &ops, &db)?;
    println!("== Sales cube (category × region) ==\n{}", mat.relation("SalesCube").expect("cube"));

    // --- a report query, optimized down to the base tables
    let report = Expr::base("SalesCube")
        .select(Predicate::col_eq_lit("category", "tools"))
        .project(&["name", "revenue"]);
    let unfolded = unfold_query(&report, &cube);
    let optimized = optimize(&unfolded, &ops)?;
    println!("== Optimized report plan ==\n{optimized}\n");
    let rows = eval(&optimized, &ops, &db)?;
    println!("== Tools revenue by region ==\n{rows}");
    assert_eq!(rows.len(), 2);

    // --- nightly refresh: aggregates are maintained by recompute
    // (detected automatically; see MaintenanceStrategy)
    let mut mat2 = mat.clone();
    let mut delta = Delta::new();
    delta.insert(
        "sales",
        Tuple::from([Value::Int(6), Value::Int(2), Value::Int(20), Value::Int(75)]),
    );
    let strategies = maintain_insertions(&cube, &ops, &db, &delta, &mut mat2)?;
    println!("== Refresh strategy ==");
    for (view, st) in &strategies {
        println!("  {view}: {st:?}");
    }
    assert_eq!(strategies[0].1, MaintenanceStrategy::Recompute);
    println!(
        "cube rows after refresh: {}\n",
        mat2.relation("SalesCube").expect("refreshed").len()
    );

    // --- "why is tools/north revenue 400?" — provenance of a cube cell
    let cell = Tuple::from([
        Value::text("tools"),
        Value::text("north"),
        Value::Int(400),
        Value::Int(2),
        Value::Int(300),
    ]);
    let witnesses = explain(&cube.views[0].expr, &ops, &db, &cell)?;
    println!("== Provenance of the tools/north cell ==");
    for w in &witnesses {
        for (rel, t) in w {
            println!("  {rel}{t}");
        }
    }
    assert_eq!(witnesses.len(), 1);
    // the witness contains both contributing sales rows
    assert_eq!(witnesses[0].iter().filter(|(r, _)| r == "sales").count(), 2);
    Ok(())
}
