//! Live introspection quickstart: boot a telemetry-enabled server,
//! push traffic through it, and watch it from the outside — a
//! `top`-style loop over the wire-level introspection ops (DESIGN.md
//! §15): `Health` for the gauges, `Metrics` for the latency
//! histograms, `SlowLog` and `TraceGet` for per-request postmortems.
//! Everything below reads server state over TCP; nothing touches the
//! `ServerHandle` except boot and shutdown.
//!
//! ```sh
//! cargo run --example inspect
//! ```

use mm_server::{Client, Server, ServerConfig};
use model_management::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A telemetry-enabled engine with one copy mapping. The ring
    // collector retains recent spans; the metrics registry feeds the
    // `Metrics` op.
    let telemetry = Telemetry::new(RingCollector::with_capacity(4_096));
    let engine = Engine::with_config(EngineConfig {
        telemetry: telemetry.clone(),
        ..EngineConfig::default()
    })?;
    let src = SchemaBuilder::new("Src").relation("A", &[("id", DataType::Int)]).build()?;
    let dst = SchemaBuilder::new("Dst").relation("B", &[("id", DataType::Int)]).build()?;
    engine.add_schema(src.clone())?;
    engine.add_schema(dst)?;
    let mut mapping = Mapping::new("Src", "Dst");
    mapping.push_tgd(Tgd::new(vec![Atom::vars("A", &["x"])], vec![Atom::vars("B", &["x"])]));
    engine.add_mapping("copy", mapping)?;

    // Slow threshold 0: every request keeps a full slow-log entry, so
    // the example has something to show without a genuinely slow
    // workload.
    let cfg = ServerConfig { slow_threshold: Duration::from_micros(0), ..ServerConfig::default() };
    let handle = Server::start(engine, cfg)?;
    println!("serving on {}\n", handle.addr());

    // One client generates traffic (traced by default), another one
    // observes. Observers connect and introspect even while the data
    // plane sheds or drains — that is the §15 guarantee.
    let mut traffic = Client::connect(handle.addr())?;
    let mut observer = Client::connect(handle.addr())?;

    let mut db = Database::empty_of(&src);
    for i in 0..64i64 {
        db.insert("A", Tuple::from([Value::Int(i)]));
    }

    let mut last_trace = 0;
    for frame in 1..=3 {
        // A burst of traffic between frames.
        for _ in 0..10 {
            traffic.ping()?;
        }
        for _ in 0..5 {
            traffic.exchange("copy", "Dst", &db)?;
        }
        last_trace = traffic.last_trace_id();

        // --- one top-style frame, entirely over the wire ---
        let health = observer.health()?;
        println!("── frame {frame} ──────────────────────────────────────────");
        println!(
            "health    sessions {}  inflight {}  queue {}/{}  shedding {}  draining {}",
            health.sessions,
            health.inflight,
            health.queue_depth,
            health.queue_capacity,
            health.shedding,
            health.draining,
        );
        println!(
            "lifetime  completed {}  shed {}  events_dropped {}  slow_entries {}",
            health.completed, health.shed, health.events_dropped, health.slow_entries,
        );
        let metrics = observer.metrics()?;
        let read = |key: &str| metrics.iter().find(|(k, _)| k == key).map_or(0, |(_, v)| *v);
        println!(
            "service   p50 {:>6}us  p99 {:>6}us  max {:>6}us  (n={})",
            read("server.service_us_p50"),
            read("server.service_us_p99"),
            read("server.service_us_max"),
            read("server.service_us_count"),
        );
        println!(
            "queueing  p50 {:>6}us  p99 {:>6}us  max {:>6}us  (n={})",
            read("server.queue_wait_us_p50"),
            read("server.queue_wait_us_p99"),
            read("server.queue_wait_us_max"),
            read("server.queue_wait_us_count"),
        );
        for op in ["ping", "exchange"] {
            println!(
                "op {op:<9}p50 {:>6}us  p99 {:>6}us  (n={})",
                read(&format!("server.op.{op}.service_us_p50")),
                read(&format!("server.op.{op}.service_us_p99")),
                read(&format!("server.op.{op}.service_us_count")),
            );
        }
        println!();
    }

    // Per-request postmortems: the slow log, then everything the
    // flight recorder holds for the last traced exchange — its
    // summary, captured span tree, and the plan EXPLAIN.
    let slow = observer.slow_log(3)?;
    println!("── slow log (last {} of the retained entries) ────────────", slow.len());
    for line in &slow {
        let shown = if line.len() > 120 { &line[..120] } else { line };
        println!("{shown}…");
    }
    println!();
    let trace = observer.trace(last_trace)?;
    println!("── trace {last_trace:#018x} ──────────────────────────");
    for line in &trace {
        println!("{line}");
    }

    handle.shutdown()?;
    println!("\ndrained and stopped");
    Ok(())
}
