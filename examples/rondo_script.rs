//! Rondo-style scripting (§1.3/§1.4 of the paper): a whole model
//! management scenario — schema definition, ModelGen, TransGen, Match,
//! Extract/Diff — as a text script executed against the engine, with the
//! repository recording lineage for every step.
//!
//! ```sh
//! cargo run --example rondo_script
//! ```

use model_management::prelude::*;

const SCRIPT: &str = r#"
// the paper's running example, end to end
schema ER {
  entity Person(Id: int, Name: text)
  entity Employee : Person(Dept: text)
  entity Customer : Person(CreditScore: int, BillingAddr: text)
  key Person(Id)
}

// derive tables + mapping constraints, compile them to views
modelgen vertical ER
transgen ER ER_rel ER->ER_rel

// line the ER model up against its own relational rendering
match ER ER_rel

// which parts of ER does the mapping cover / miss?
extract ER ER->ER_rel
diff ER ER->ER_rel

show lineage
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new();
    println!("== script ==\n{SCRIPT}");
    println!("== execution log ==");
    for line in run_script(&engine, SCRIPT)? {
        println!("{line}");
    }

    // the artifacts are all in the repository, snapshot-able as one blob
    let snapshot = engine.repo.snapshot();
    println!("\nrepository snapshot: {} bytes", snapshot.len());
    let restored = Repository::restore(snapshot)?;
    assert_eq!(restored.lineage().len(), engine.repo.lineage().len());
    println!("snapshot restores: true");
    Ok(())
}
