//! Object-to-relational wrapper generation — the paper's running concern
//! ("coding and configuring object-to-relational mappings was 30-40% of
//! the effort", §1). Derive an object (ER) wrapper over a legacy
//! relational database with ModelGen, query it through the mediator,
//! push object-level updates back down through update views, and see a
//! base-level integrity error translated into object terms.
//!
//! ```sh
//! cargo run --example wrapper_generation
//! ```

use model_management::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- the legacy database
    let legacy = SchemaBuilder::new("LegacyDB")
        .relation("customers", &[
            ("cid", DataType::Int),
            ("name", DataType::Text),
            ("city", DataType::Text),
        ])
        .relation("orders", &[
            ("oid", DataType::Int),
            ("cust", DataType::Int),
            ("total", DataType::Double),
        ])
        .key("customers", &["cid"])
        .key("orders", &["oid"])
        .foreign_key("orders", &["cust"], "customers", &["cid"])
        .build()?;
    let mut db = Database::empty_of(&legacy);
    for (cid, name, city) in [(1, "ann", "rome"), (2, "bob", "oslo")] {
        db.insert(
            "customers",
            Tuple::from([Value::Int(cid), Value::text(name), Value::text(city)]),
        );
    }
    for (oid, cust, total) in [(10, 1, 99.5), (11, 1, 12.0), (12, 2, 45.0)] {
        db.insert(
            "orders",
            Tuple::from([Value::Int(oid), Value::Int(cust), Value::Double(total)]),
        );
    }

    // --- ModelGen: derive the object wrapper schema + views
    let wrapper = relational_to_er(&legacy)?;
    println!("== Wrapper (ER) schema ==\n{}\n", wrapper.schema);

    // --- query through the wrapper: the mediator unfolds object queries
    // down to SQL-level scans (virtual integration, §5 peer-to-peer)
    let mediator = Mediator::new(&legacy, vec![&wrapper.views]);
    let q = Expr::base("customers")
        .select(Predicate::col_eq_lit("city", "rome"))
        .project(&["name"]);
    let romans = mediator.answer_chained(&q, &db)?;
    println!("== Roman customers through the wrapper ==\n{romans}");

    // --- an entity-side mapping for update propagation: the wrapper's
    // entity sets written back to tables (Figure 2-style constraints)
    let er = wrapper.schema.clone();
    let mapping = Mapping::with_constraints(
        er.name.clone(),
        legacy.name.clone(),
        vec![
            MappingConstraint::ExprEq {
                source: entity_extent(&er, "customers")?.project(&["cid", "name", "city"]),
                target: Expr::base("customers"),
            },
            MappingConstraint::ExprEq {
                source: entity_extent(&er, "orders")?.project(&["oid", "cust", "total"]),
                target: Expr::base("orders"),
            },
        ],
    );
    let frags = parse_fragments(&er, &legacy, &mapping)?;
    let uviews = update_views(&er, &legacy, &frags)?;

    // object-level insert: a new customer object
    let mut entity_db = materialize_views(&wrapper.views, &legacy, &db)?;
    entity_db.insert_relation(
        "customers_orders",
        Relation::new(RelSchema::of(&[("$from", DataType::Any), ("$to", DataType::Any)])),
    );
    let mut delta = Delta::new();
    delta.insert(
        "customers",
        Tuple::from([
            Value::text("customers"),
            Value::Int(3),
            Value::text("cyd"),
            Value::text("rome"),
        ]),
    );
    let table_delta = propagate(&uviews, &er, &mut entity_db, &delta, &[])?;
    println!("== Table-level delta from the object insert ==");
    for (table, row) in &table_delta.inserts {
        println!("  +{table}{row}");
    }

    // --- error translation: a base-side violation in object terms
    let mut broken = db.clone();
    broken.insert(
        "orders",
        Tuple::from([Value::Int(13), Value::Int(99), Value::Double(5.0)]), // dangling cust
    );
    let violations = validate(&legacy, &broken);
    let translated = translate_violations(&legacy, &frags, &violations);
    println!("\n== Base violations in object terms ==");
    for t in &translated {
        println!("  {t}");
    }
    assert!(!translated.is_empty());
    Ok(())
}
