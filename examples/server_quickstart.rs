//! Server quickstart: boot the wire front-end on a loopback port, run
//! one data-exchange through the bundled client, and shut down
//! gracefully (draining inflight work).
//!
//! ```sh
//! cargo run --example server_quickstart
//! ```

use mm_server::{Client, Server, ServerConfig};
use model_management::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An engine with one copy mapping `copy: Src -> Dst`.
    let engine = Engine::new();
    let src = SchemaBuilder::new("Src").relation("A", &[("id", DataType::Int)]).build()?;
    let dst = SchemaBuilder::new("Dst").relation("B", &[("id", DataType::Int)]).build()?;
    engine.add_schema(src.clone())?;
    engine.add_schema(dst)?;
    let mut mapping = Mapping::new("Src", "Dst");
    mapping.push_tgd(Tgd::new(vec![Atom::vars("A", &["x"])], vec![Atom::vars("B", &["x"])]));
    engine.add_mapping("copy", mapping)?;

    // Boot on an ephemeral loopback port (addr "127.0.0.1:0").
    let handle = Server::start(engine, ServerConfig::default())?;
    println!("serving on {}", handle.addr());

    // One exchange over the wire via the bundled client.
    let mut client = Client::connect(handle.addr())?;
    client.ping()?;
    let mut db = Database::empty_of(&src);
    for i in 0..5i64 {
        db.insert("A", Tuple::from([Value::Int(i)]));
    }
    let (out, stats) = client.exchange("copy", "Dst", &db)?;
    println!(
        "exchanged {} tuples ({} tgd firings, {} chase rounds)",
        out.relation("B").map(|r| r.len()).unwrap_or(0),
        stats.fired,
        stats.rounds,
    );

    // EXPLAIN the same exchange without re-running it client-side.
    let (_, _, report) = client.explain_exchange("copy", "Dst", &db)?;
    println!("--- EXPLAIN ---\n{report}");

    // Graceful shutdown: drains inflight work, refuses new requests
    // with typed ShuttingDown frames, checkpoints durable engines.
    handle.shutdown()?;
    println!("drained and stopped");
    Ok(())
}
