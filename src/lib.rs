//! `model-management` — a generic model management engine in Rust.
//!
//! Reproduction of Bernstein & Melnik, *Model Management 2.0: Manipulating
//! Richer Mappings* (SIGMOD 2007). The facade crate re-exports the engine
//! and every operator crate; see [`prelude`] for one-stop imports, and
//! `examples/` for runnable scenarios.
//!
//! # Example: ModelGen → TransGen → roundtrip
//!
//! ```
//! use model_management::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine = Engine::new();
//! engine.add_schema(
//!     SchemaBuilder::new("ER")
//!         .entity("Person", &[("Id", DataType::Int), ("Name", DataType::Text)])
//!         .entity_sub("Employee", "Person", &[("Dept", DataType::Text)])
//!         .key("Person", &["Id"])
//!         .build()?,
//! );
//!
//! // derive a relational schema + Figure-2-style mapping constraints
//! let generated = engine.modelgen_er_to_relational("ER", InheritanceStrategy::Vertical)?;
//! // compile them into query views (Figure 3) and update views
//! let (query_views, update_views) = engine.transgen("ER", "ER_rel", "ER->ER_rel")?;
//!
//! // run entities through the mapping and back: the identity
//! let er = engine.repo.latest_schema("ER")?.0;
//! let mut entities = Database::empty_of(&er);
//! entities.insert_entity(
//!     "Employee",
//!     "Employee",
//!     vec![Value::Int(1), Value::text("eve"), Value::text("hr")],
//! );
//! let tables = materialize_views(&update_views, &er, &entities)?;
//! let back = materialize_views(&query_views, &generated.schema, &tables)?;
//! assert!(entities.relations().all(|(n, r)| back.relation(n).is_some_and(|b| r.set_eq(b))));
//! # Ok(())
//! # }
//! ```

pub use mm_engine::prelude;
pub use mm_engine::{Engine, EngineError};
