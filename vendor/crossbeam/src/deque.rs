//! Offline stand-in for `crossbeam-deque`.
//!
//! Mirrors the `Worker`/`Stealer`/`Steal` API of the real crate on top
//! of a mutex-guarded `VecDeque`. The owner pops from the front (FIFO
//! discipline, matching `Worker::new_fifo`) while stealers take from
//! the back, so an owner and its thieves contend on opposite ends. Far
//! less scalable than the lock-free original, but API-compatible and
//! correct, which is what the workspace's no-new-deps rule calls for.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The outcome of a steal attempt, mirroring `crossbeam_deque::Steal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The operation lost a race and should be retried.
    Retry,
}

impl<T> Steal<T> {
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

/// An owned work queue. Only the owning worker pushes and pops;
/// [`Stealer`] handles clone cheaply and take from the opposite end.
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

/// A handle that steals tasks from the back of a [`Worker`]'s queue.
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Worker<T> {
    /// A FIFO queue: the owner pops the oldest task first.
    pub fn new_fifo() -> Self {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    pub fn push(&self, task: T) {
        match self.inner.lock() {
            Ok(mut q) => q.push_back(task),
            Err(poisoned) => poisoned.into_inner().push_back(task),
        }
    }

    pub fn pop(&self) -> Option<T> {
        match self.inner.lock() {
            Ok(mut q) => q.pop_front(),
            Err(poisoned) => poisoned.into_inner().pop_front(),
        }
    }

    pub fn is_empty(&self) -> bool {
        match self.inner.lock() {
            Ok(q) => q.is_empty(),
            Err(poisoned) => poisoned.into_inner().is_empty(),
        }
    }

    pub fn len(&self) -> usize {
        match self.inner.lock() {
            Ok(q) => q.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal one task from the back of the queue. Never reports
    /// [`Steal::Retry`] here (the mutex serializes contenders), but the
    /// variant exists so caller retry loops compile unchanged.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock() {
            Ok(mut q) => match q.pop_back() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            },
            Err(poisoned) => match poisoned.into_inner().pop_back() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_pops_front_stealer_takes_back() {
        let w: Worker<u32> = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal(), Steal::Success(3));
        assert_eq!(s.steal(), Steal::Success(2));
        assert!(s.steal().is_empty());
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn stealers_share_across_threads() {
        let w: Worker<usize> = Worker::new_fifo();
        for i in 0..64 {
            w.push(i);
        }
        let stolen: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let s = w.stealer();
                    scope.spawn(move || {
                        let mut n = 0;
                        while let Steal::Success(_) = s.steal() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(stolen + w.len(), 64);
    }
}
