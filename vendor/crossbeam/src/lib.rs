//! Offline stand-in for `crossbeam`.
//!
//! Supplies `crossbeam::scope` on top of `std::thread::scope` (available
//! since Rust 1.63), with crossbeam's result-wrapped API so callers'
//! `.expect("crossbeam scope")` and handle `.join()` calls compile
//! unchanged.

pub mod deque;

use std::any::Any;
use std::thread;

/// A scope handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// A handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope (crossbeam
    /// convention) so nested spawns are possible.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Create a scope for spawning borrowing threads. Unlike crossbeam, a
/// panicking child propagates on join inside the scope, so the outer
/// result is always `Ok` unless the closure itself panics — callers only
/// use `.expect`, which is compatible.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1, 2, 3, 4];
        let chunks: Vec<&[i32]> = data.chunks(2).collect();
        let total: i32 = scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
