//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and
//! derive-macro namespaces so `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No actual
//! serialization is performed anywhere in the workspace (the repository
//! snapshot codec is hand-rolled), so empty traits are sufficient.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
pub trait Deserialize<'de>: Sized {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
