//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`read()`/`write()`/`lock()` return guards directly). A poisoned std
//! lock is recovered by taking the inner guard — matching parking_lot's
//! behavior of not propagating panics through locks.

use std::fmt;
use std::sync::{self, LockResult};

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.lock().len(), 2);
    }
}
