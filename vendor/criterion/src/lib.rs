//! Offline stand-in for `criterion` 0.5.
//!
//! Provides the API subset the bench targets use — `criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! `sample_size`/`bench_with_input`, `BenchmarkId`, `Bencher::iter`, and
//! `black_box` — backed by a simple wall-clock loop: warm up, then run
//! enough iterations to fill a short measurement window and report the
//! mean time per iteration. No statistics, plots, or report files.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Measurement harness handed to the closure under test.
pub struct Bencher {
    measured: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up pass; also seeds the per-iteration estimate
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed();

        // pick an iteration count that fills ~100ms, capped to keep
        // pathological benches (deliberate blowups) from stalling
        let budget = Duration::from_millis(100);
        let iters = if first.is_zero() {
            1000
        } else {
            (budget.as_nanos() / first.as_nanos().max(1)).clamp(1, 10_000) as u64
        };

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.measured = Some(start.elapsed() / iters as u32);
    }
}

fn run_bench(id: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { measured: None };
    f(&mut b);
    match b.measured {
        Some(d) => println!("bench {id:<50} {d:>12.2?}/iter"),
        None => println!("bench {id:<50} (no measurement)"),
    }
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        // sampling statistics are not modelled; accepted for API parity
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_bench(id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _c: self }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
