//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the surface `mm-repository`'s codec uses: a
//! cheaply-cloneable immutable `Bytes` with a consuming read cursor, a
//! growable `BytesMut` writer, and the `Buf`/`BufMut` traits carrying the
//! little-endian accessors. Semantics match the real crate for that
//! subset (including panics on over-read, which the codec guards against
//! with explicit `remaining` checks).

use std::ops::{Deref, Range};
use std::sync::Arc;

/// Immutable shared byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-slice sharing the same allocation. The range is relative to
    /// the current view.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "advance past end of Bytes");
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// Growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        BytesMut { data: Vec::with_capacity(n) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read-side accessors (little-endian subset).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_i32_le(&mut self) -> i32;
    fn get_i64_le(&mut self) -> i64;
    fn get_f64_le(&mut self) -> f64;
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
}

macro_rules! get_le {
    ($self:ident, $ty:ty) => {{
        let mut b = [0u8; std::mem::size_of::<$ty>()];
        b.copy_from_slice($self.take(std::mem::size_of::<$ty>()));
        <$ty>::from_le_bytes(b)
    }};
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        get_le!(self, u32)
    }

    fn get_u64_le(&mut self) -> u64 {
        get_le!(self, u64)
    }

    fn get_i32_le(&mut self) -> i32 {
        get_le!(self, i32)
    }

    fn get_i64_le(&mut self) -> i64 {
        get_le!(self, i64)
    }

    fn get_f64_le(&mut self) -> f64 {
        get_le!(self, f64)
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes::from(self.take(n).to_vec())
    }
}

/// Write-side accessors (little-endian subset).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i32_le(&mut self, v: i32);
    fn put_i64_le(&mut self, v: i64);
    fn put_f64_le(&mut self, v: f64);
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u32_le(0xdead_beef);
        w.put_u64_le(u64::MAX - 1);
        w.put_i32_le(-12);
        w.put_i64_le(i64::MIN + 3);
        w.put_f64_le(1.5);
        w.put_slice(b"xyz");
        let mut b = w.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_i32_le(), -12);
        assert_eq!(b.get_i64_le(), i64::MIN + 3);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(&b.copy_to_bytes(3)[..], b"xyz");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(&s2[..], &[3]);
    }
}
