//! Offline stand-in for `rand` 0.8.
//!
//! Implements the deterministic, seedable subset the workload generators
//! use: `SmallRng::seed_from_u64`, `gen_range` over integer ranges,
//! `gen_bool`, and `gen` for a few primitives. The core generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality and stable
//! across runs, which is all the seeded benchmark/test workloads need
//! (they never depend on matching the real crate's streams).

pub mod rngs;

use std::ops::Range;

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `gen` can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // multiply-shift bounded sampling; bias is negligible for
                // the small spans the workloads use
                let r = rng.next_u64() as u128;
                (self.start as i128 + (r % span) as i128) as $ty
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// The user-facing API surface of rand 0.8.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
