//! Concrete generators: xoshiro256++ behind both `SmallRng` and `StdRng`.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ state, seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Xoshiro256 { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

macro_rules! wrapper {
    ($name:ident) => {
        #[derive(Debug, Clone)]
        pub struct $name(Xoshiro256);

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> Self {
                $name(Xoshiro256::from_u64(seed))
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
    };
}

wrapper!(SmallRng);
wrapper!(StdRng);
