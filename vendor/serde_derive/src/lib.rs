//! Offline stand-in for `serde_derive`.
//!
//! The repository's wire format is a hand-rolled codec (`mm-repository`);
//! serde derives on the model types are declarative only. This stub
//! accepts the derive syntax (including `#[serde(...)]` helper
//! attributes) and expands to nothing, which keeps the workspace building
//! in environments with no registry access.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
