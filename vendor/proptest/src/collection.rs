//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Admissible size specifications for `vec`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_incl: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_incl: r.end - 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_incl: n }
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below(self.size.hi_incl - self.size.lo + 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
