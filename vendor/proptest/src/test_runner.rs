//! Deterministic per-case RNG and failure reporting.

/// xoshiro256++ seeded from the test name and case index, so every case
/// is reproducible from the panic message alone.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u64) -> Self {
        Self::from_seed(fnv1a(test_name.as_bytes()) ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        TestRng {
            s: [splitmix(&mut x), splitmix(&mut x), splitmix(&mut x), splitmix(&mut x)],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Names the failing case when a property body panics: without
/// shrinking, the (test name, case index) pair is the repro handle.
pub struct CaseGuard {
    name: &'static str,
    case: u64,
    armed: bool,
}

impl CaseGuard {
    pub fn new(name: &'static str, case: u64) -> Self {
        CaseGuard { name, case, armed: true }
    }

    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed at case #{} (deterministic; rerun reproduces it)",
                self.name, self.case
            );
        }
    }
}
